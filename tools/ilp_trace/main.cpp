// ilp-trace: offline companion for the src/obs instrumentation.
//
//   ilp-trace summarize <trace.json>         per-stage table from a Chrome
//       [--per-flow] [--top N] [--strict]    trace_event file, with self
//                                            cache-miss attribution by stage
//                                            (--per-flow splits by flow tag;
//                                            --top N keeps the N costliest
//                                            flows; --strict exits 1 if the
//                                            tracer ring dropped events)
//   ilp-trace summarize --fleet <fleet.json> fleet_report view: per-shard
//       [--top N] [--strict]                 rollups, latency sketches,
//                                            slowest flows, sampling
//                                            coverage and black boxes
//   ilp-trace summarize --per-stage-worker   pipelined-dataplane view: the
//       <trace.json> [--strict]              three pipeline stages grouped
//                                            by execution lane (segmentize /
//                                            fused_loop / bookkeeping) with
//                                            inclusive memsim cost, plus the
//                                            ring stall instants
//                                            (ring_full_wait /
//                                            ring_empty_wait)
//   ilp-trace validate  <file.json>          structural check of a Chrome
//                                            trace or a BENCH schema file
//   ilp-trace diff <old.json> <new.json>     compare two BENCH JSON reports
//       [--threshold=<pct>]                  (also accepted: --diff old new)
//
// Exit codes: 0 success / no regression, 1 regression beyond threshold (or
// dropped events under --strict), 2 usage, I/O, or parse error.  CI runs
// `diff` against a checked-in baseline so perf regressions fail the build
// without gating tier-1 tests.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "stats/table.h"
#include "util/json.h"

namespace {

using ilp::json::value;

int usage() {
    std::fprintf(stderr,
                 "usage: ilp-trace summarize <trace.json> [--per-flow]"
                 " [--top N] [--strict]\n"
                 "       ilp-trace summarize --fleet <fleet.json>"
                 " [--top N] [--strict]\n"
                 "       ilp-trace summarize --per-stage-worker <trace.json>"
                 " [--strict]\n"
                 "       ilp-trace validate <file.json>\n"
                 "       ilp-trace diff <old.json> <new.json>"
                 " [--threshold=<pct>]\n");
    return 2;
}

// Chrome exports either a bare array or {"traceEvents": [...]}.
const ilp::json::array* trace_events(const value& doc) {
    if (doc.is_array()) return doc.as_array();
    const value* events = doc.find("traceEvents");
    return events == nullptr ? nullptr : events->as_array();
}

// ---------------------------------------------------------------- summarize

struct stage_sum {
    std::uint64_t count = 0;
    double dur_us = 0;
    std::uint64_t self_accesses = 0;
    std::uint64_t self_l1d_misses = 0;
    std::uint64_t self_cycles = 0;
    std::uint64_t l1d_misses = 0;  // inclusive
};

// Group key: (flow, side, stage).  Flow -1 means "not flow-scoped"; without
// --per-flow every event lands there, so the extra tuple slot is invisible.
using stage_group = std::tuple<long long, std::string, std::string>;

int cmd_summarize(const std::string& path, bool per_flow, long long top,
                  bool strict) {
    const std::optional<value> doc = ilp::json::parse_file(path);
    if (!doc.has_value()) {
        std::fprintf(stderr, "ilp-trace: cannot parse %s\n", path.c_str());
        return 2;
    }
    const ilp::json::array* events = trace_events(*doc);
    if (events == nullptr) {
        std::fprintf(stderr, "ilp-trace: %s is not a trace_event file\n",
                     path.c_str());
        return 2;
    }

    std::map<double, std::string> thread_names;
    std::map<stage_group, stage_sum> stages;
    std::uint64_t instants = 0;
    for (const value& ev : *events) {
        const std::string ph = ev.string_at("ph");
        if (ph == "M" && ev.string_at("name") == "thread_name") {
            const value* args = ev.find("args");
            if (args != nullptr) {
                thread_names[ev.number_at("tid")] = args->string_at("name");
            }
            continue;
        }
        if (ph == "i") {
            ++instants;
            continue;
        }
        if (ph != "X") continue;
        const double tid = ev.number_at("tid");
        const auto tn = thread_names.find(tid);
        const std::string side =
            tn == thread_names.end() ? "-" : tn->second;
        const value* args = ev.find("args");
        long long flow = -1;
        if (per_flow && args != nullptr && args->find("flow") != nullptr) {
            flow = static_cast<long long>(args->number_at("flow"));
        }
        stage_sum& s = stages[{flow, side, ev.string_at("name")}];
        ++s.count;
        s.dur_us += ev.number_at("dur");
        if (args != nullptr) {
            s.self_accesses +=
                static_cast<std::uint64_t>(args->number_at("self_accesses"));
            s.self_l1d_misses += static_cast<std::uint64_t>(
                args->number_at("self_l1d_misses"));
            s.self_cycles +=
                static_cast<std::uint64_t>(args->number_at("self_cycles"));
            s.l1d_misses +=
                static_cast<std::uint64_t>(args->number_at("l1d_misses"));
        }
    }

    std::uint64_t total_self_misses = 0;
    for (const auto& [key, s] : stages) total_self_misses += s.self_l1d_misses;

    // --top N: keep only the N costliest flows by total self cycles.  Rows
    // not scoped to a flow (flow -1) always stay, and the miss-% column
    // keeps the whole-trace denominator so shares still add up.
    if (per_flow && top > 0) {
        std::map<long long, std::uint64_t> flow_cycles;
        for (const auto& [key, s] : stages) {
            if (std::get<0>(key) >= 0) {
                flow_cycles[std::get<0>(key)] += s.self_cycles;
            }
        }
        std::vector<std::pair<std::uint64_t, long long>> ranked;
        ranked.reserve(flow_cycles.size());
        for (const auto& [flow, cycles] : flow_cycles) {
            ranked.emplace_back(cycles, flow);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                      return a.first != b.first ? a.first > b.first
                                               : a.second < b.second;
                  });
        if (ranked.size() > static_cast<std::size_t>(top)) {
            ranked.resize(static_cast<std::size_t>(top));
        }
        std::set<long long> keep;
        for (const auto& [cycles, flow] : ranked) keep.insert(flow);
        std::erase_if(stages, [&](const auto& kv) {
            const long long flow = std::get<0>(kv.first);
            return flow >= 0 && keep.find(flow) == keep.end();
        });
    }

    std::vector<std::string> headers;
    if (per_flow) headers.push_back("flow");
    for (const char* h : {"side", "stage", "count", "dur", "self accesses",
                          "self l1d miss", "miss %", "self cycles"}) {
        headers.emplace_back(h);
    }
    ilp::stats::table out(headers);
    for (const auto& [key, s] : stages) {
        const auto& [flow, side, stage] = key;
        const double share =
            total_self_misses == 0
                ? 0.0
                : 100.0 * static_cast<double>(s.self_l1d_misses) /
                      static_cast<double>(total_self_misses);
        auto& row = out.row();
        if (per_flow) {
            if (flow < 0) {
                row.cell("-");
            } else {
                row.cell(static_cast<std::uint64_t>(flow));
            }
        }
        row.cell(side)
            .cell(stage)
            .cell(s.count)
            .cell(s.dur_us, 0)
            .cell(s.self_accesses)
            .cell(s.self_l1d_misses)
            .cell(share, 1)
            .cell(s.self_cycles);
    }
    out.print();
    std::printf("%zu stage(s), %llu span event(s), %llu instant(s)\n",
                stages.size(),
                static_cast<unsigned long long>([&] {
                    std::uint64_t n = 0;
                    for (const auto& [k, s] : stages) n += s.count;
                    return n;
                }()),
                static_cast<unsigned long long>(instants));

    // Exporter telemetry: sampling is policy (quiet note), ring overwrites
    // are data loss (loud warning, and a failure under --strict).
    std::uint64_t dropped = 0;
    std::uint64_t sampled_out = 0;
    if (const value* other = doc->find("otherData")) {
        dropped =
            static_cast<std::uint64_t>(other->number_at("dropped_events"));
        sampled_out =
            static_cast<std::uint64_t>(other->number_at("sampled_out"));
    }
    if (sampled_out > 0) {
        std::printf("%llu event(s) withheld by the flow sampler (policy)\n",
                    static_cast<unsigned long long>(sampled_out));
    }
    if (dropped > 0) {
        std::fprintf(stderr,
                     "ilp-trace: WARNING: tracer ring dropped %llu event(s) "
                     "-- the table above is incomplete; grow the ring or "
                     "sample fewer flows\n",
                     static_cast<unsigned long long>(dropped));
        if (strict) return 1;
    }
    return 0;
}

// ----------------------------------------------- summarize per-stage-worker

// Pipelined-dataplane view: only the "pipeline" category, grouped by
// execution lane (the exporter's thread_name — the attribution side the
// stage ran under) and stage name.  Stage spans report *inclusive* memsim
// cost: the three stages are disjoint siblings, so inclusive totals give a
// double-count-free split, and the fused stage's nested fused_part spans
// fold into it.  Ring stalls (stage A found every slot in flight / stage C
// waited on the fused stage) surface as instant counts per lane.
int cmd_summarize_per_stage_worker(const std::string& path, bool strict) {
    const std::optional<value> doc = ilp::json::parse_file(path);
    if (!doc.has_value()) {
        std::fprintf(stderr, "ilp-trace: cannot parse %s\n", path.c_str());
        return 2;
    }
    const ilp::json::array* events = trace_events(*doc);
    if (events == nullptr) {
        std::fprintf(stderr, "ilp-trace: %s is not a trace_event file\n",
                     path.c_str());
        return 2;
    }

    struct lane_stage {
        std::uint64_t count = 0;
        double dur_us = 0;
        std::uint64_t accesses = 0;    // inclusive
        std::uint64_t l1d_misses = 0;  // inclusive
        std::uint64_t cycles = 0;      // inclusive
    };
    std::map<double, std::string> thread_names;
    std::map<std::pair<std::string, std::string>, lane_stage> stages;
    std::map<std::pair<std::string, std::string>, std::uint64_t> stalls;
    for (const value& ev : *events) {
        const std::string ph = ev.string_at("ph");
        if (ph == "M" && ev.string_at("name") == "thread_name") {
            const value* args = ev.find("args");
            if (args != nullptr) {
                thread_names[ev.number_at("tid")] = args->string_at("name");
            }
            continue;
        }
        if (ev.string_at("cat") != "pipeline") continue;
        const auto tn = thread_names.find(ev.number_at("tid"));
        const std::string lane =
            tn == thread_names.end() ? "-" : tn->second;
        if (ph == "i") {
            ++stalls[{lane, ev.string_at("name")}];
            continue;
        }
        if (ph != "X") continue;
        lane_stage& s = stages[{lane, ev.string_at("name")}];
        ++s.count;
        s.dur_us += ev.number_at("dur");
        if (const value* args = ev.find("args")) {
            s.accesses +=
                static_cast<std::uint64_t>(args->number_at("accesses"));
            s.l1d_misses +=
                static_cast<std::uint64_t>(args->number_at("l1d_misses"));
            s.cycles += static_cast<std::uint64_t>(args->number_at("cycles"));
        }
    }
    if (stages.empty() && stalls.empty()) {
        std::fprintf(stderr,
                     "ilp-trace: %s has no pipeline-category events (was the "
                     "fleet run with flow_config::pipeline_depth > 0?)\n",
                     path.c_str());
        return strict ? 1 : 0;
    }

    std::uint64_t total_cycles = 0;
    for (const auto& [key, s] : stages) total_cycles += s.cycles;
    ilp::stats::table out({"lane", "stage", "count", "dur", "accesses",
                           "l1d misses", "cycles", "cycle %"});
    for (const auto& [key, s] : stages) {
        const double share =
            total_cycles == 0 ? 0.0
                              : 100.0 * static_cast<double>(s.cycles) /
                                    static_cast<double>(total_cycles);
        out.row()
            .cell(key.first)
            .cell(key.second)
            .cell(s.count)
            .cell(s.dur_us, 0)
            .cell(s.accesses)
            .cell(s.l1d_misses)
            .cell(s.cycles)
            .cell(share, 1);
    }
    out.print();

    std::uint64_t stall_total = 0;
    if (!stalls.empty()) {
        ilp::stats::table stall_out({"lane", "stall", "count"});
        for (const auto& [key, n] : stalls) {
            stall_out.row().cell(key.first).cell(key.second).cell(n);
            stall_total += n;
        }
        stall_out.print();
    }
    std::printf("%zu pipeline stage lane(s), %llu ring stall(s)\n",
                stages.size(), static_cast<unsigned long long>(stall_total));

    std::uint64_t dropped = 0;
    if (const value* other = doc->find("otherData")) {
        dropped =
            static_cast<std::uint64_t>(other->number_at("dropped_events"));
    }
    if (dropped > 0) {
        std::fprintf(stderr,
                     "ilp-trace: WARNING: tracer ring dropped %llu event(s) "
                     "-- the table above is incomplete\n",
                     static_cast<unsigned long long>(dropped));
        if (strict) return 1;
    }
    return 0;
}

// ---------------------------------------------------------- summarize fleet

void print_latency(const value& node, const char* label) {
    const value* lat = node.find("latency");
    if (lat == nullptr) return;
    std::printf(
        "%s: count %llu  min %llu us  p50 %.0f us  p90 %.0f us  "
        "p99 %.0f us  max %llu us\n",
        label,
        static_cast<unsigned long long>(lat->number_at("count")),
        static_cast<unsigned long long>(lat->number_at("min_us")),
        lat->number_at("p50_us"), lat->number_at("p90_us"),
        lat->number_at("p99_us"),
        static_cast<unsigned long long>(lat->number_at("max_us")));
}

int cmd_summarize_fleet(const std::string& path, long long top, bool strict) {
    const std::optional<value> doc = ilp::json::parse_file(path);
    if (!doc.has_value()) {
        std::fprintf(stderr, "ilp-trace: cannot parse %s\n", path.c_str());
        return 2;
    }
    if (doc->string_at("kind") != "fleet_report") {
        std::fprintf(stderr, "ilp-trace: %s is not a fleet_report file\n",
                     path.c_str());
        return 2;
    }

    const auto flows = static_cast<unsigned long long>(doc->number_at("flows"));
    std::printf(
        "fleet: %llu flow(s)  %llu completed  %llu verified  %llu failed  "
        "%llu deadline_exceeded  digest %s\n",
        flows, static_cast<unsigned long long>(doc->number_at("completed")),
        static_cast<unsigned long long>(doc->number_at("verified")),
        static_cast<unsigned long long>(doc->number_at("failed")),
        static_cast<unsigned long long>(doc->number_at("deadline_exceeded")),
        doc->string_at("digest").c_str());
    print_latency(*doc, "flow latency");

    std::uint64_t trace_dropped = 0;
    if (const value* sampling = doc->find("sampling")) {
        const auto sampled = static_cast<unsigned long long>(
            sampling->number_at("sampled_flows"));
        trace_dropped = static_cast<std::uint64_t>(
            sampling->number_at("trace_dropped"));
        std::printf(
            "sampling: %llu/%llu flow(s) span-traced (%.2f %%, rate %llu "
            "permyriad, seed %llu)\n",
            sampled, flows,
            flows == 0 ? 0.0
                       : 100.0 * static_cast<double>(sampled) /
                             static_cast<double>(flows),
            static_cast<unsigned long long>(
                sampling->number_at("rate_permyriad")),
            static_cast<unsigned long long>(sampling->number_at("seed")));
    }

    if (const value* shards_v = doc->find("shards")) {
        if (const ilp::json::array* shards = shards_v->as_array()) {
            ilp::stats::table out({"shard", "flows", "completed", "failed",
                                   "fallbacks", "rekeys", "elapsed us",
                                   "p50 us", "p99 us"});
            for (const value& s : *shards) {
                const value* lat = s.find("latency");
                out.row()
                    .cell(static_cast<std::uint64_t>(s.number_at("shard")))
                    .cell(static_cast<std::uint64_t>(s.number_at("flows")))
                    .cell(static_cast<std::uint64_t>(s.number_at("completed")))
                    .cell(static_cast<std::uint64_t>(s.number_at("failed")))
                    .cell(static_cast<std::uint64_t>(s.number_at("fallbacks")))
                    .cell(static_cast<std::uint64_t>(s.number_at("rekeys")))
                    .cell(
                        static_cast<std::uint64_t>(s.number_at("elapsed_us")))
                    .cell(lat == nullptr ? 0.0 : lat->number_at("p50_us"), 0)
                    .cell(lat == nullptr ? 0.0 : lat->number_at("p99_us"), 0);
            }
            out.print();
        }
    }

    if (const value* slowest_v = doc->find("top_slowest")) {
        if (const ilp::json::array* slowest = slowest_v->as_array()) {
            std::printf("slowest flow(s):");
            std::size_t shown = 0;
            for (const value& s : *slowest) {
                if (top > 0 && shown >= static_cast<std::size_t>(top)) break;
                std::printf(" %llu (%llu us)",
                            static_cast<unsigned long long>(
                                s.number_at("flow")),
                            static_cast<unsigned long long>(
                                s.number_at("elapsed_us")));
                ++shown;
            }
            std::printf("\n");
        }
    }

    if (const value* boxes_v = doc->find("black_boxes")) {
        if (const ilp::json::array* boxes = boxes_v->as_array()) {
            std::printf("%zu black box(es)\n", boxes->size());
            for (const value& b : *boxes) {
                const ilp::json::array* events =
                    b.find("events") == nullptr
                        ? nullptr
                        : b.find("events")->as_array();
                const value* fb = b.find("composed_fallback");
                std::printf(
                    "  flow %llu shard %llu: %s%s, %zu/%llu event(s)\n",
                    static_cast<unsigned long long>(b.number_at("flow")),
                    static_cast<unsigned long long>(b.number_at("shard")),
                    b.string_at("outcome").c_str(),
                    fb != nullptr && fb->as_bool() ? " (composed_fallback)"
                                                   : "",
                    events == nullptr ? 0 : events->size(),
                    static_cast<unsigned long long>(b.number_at("recorded")));
            }
        }
    }

    if (trace_dropped > 0) {
        std::fprintf(stderr,
                     "ilp-trace: WARNING: tracer ring dropped %llu event(s) "
                     "during the fleet run\n",
                     static_cast<unsigned long long>(trace_dropped));
        if (strict) return 1;
    }
    return 0;
}

// ----------------------------------------------------------------- validate

bool validate_trace(const value& doc, std::string& why) {
    const ilp::json::array* events = trace_events(doc);
    if (events == nullptr) {
        why = "no trace event array";
        return false;
    }
    for (std::size_t i = 0; i < events->size(); ++i) {
        const value& ev = (*events)[i];
        if (!ev.is_object()) {
            why = "event " + std::to_string(i) + " is not an object";
            return false;
        }
        const std::string ph = ev.string_at("ph");
        if (ph.empty()) {
            why = "event " + std::to_string(i) + " missing ph";
            return false;
        }
        if (ph == "X" &&
            (ev.find("ts") == nullptr || ev.find("dur") == nullptr ||
             ev.find("name") == nullptr)) {
            why = "complete event " + std::to_string(i) +
                  " missing ts/dur/name";
            return false;
        }
    }
    return true;
}

bool validate_bench(const value& doc, std::string& why) {
    const double version = doc.number_at("schema_version", -1);
    if (version < 2) {
        why = "schema_version missing or < 2";
        return false;
    }
    if (doc.find("bench") == nullptr || doc.find("metrics") == nullptr) {
        why = "missing bench/metrics";
        return false;
    }
    const ilp::json::array* metrics = doc.find("metrics")->as_array();
    if (metrics == nullptr) {
        why = "metrics is not an array";
        return false;
    }
    for (std::size_t i = 0; i < metrics->size(); ++i) {
        const value& m = (*metrics)[i];
        if (m.find("name") == nullptr || m.find("value") == nullptr ||
            m.find("better") == nullptr) {
            why = "metric " + std::to_string(i) + " missing name/value/better";
            return false;
        }
        const std::string better = m.string_at("better");
        if (better != "higher" && better != "lower" && better != "info") {
            why = "metric " + std::to_string(i) + " bad better: " + better;
            return false;
        }
    }
    return true;
}

int cmd_validate(const std::string& path) {
    const std::optional<value> doc = ilp::json::parse_file(path);
    if (!doc.has_value()) {
        std::fprintf(stderr, "ilp-trace: cannot parse %s\n", path.c_str());
        return 2;
    }
    std::string why;
    const bool is_bench = doc->find("schema_version") != nullptr;
    const bool ok = is_bench ? validate_bench(*doc, why)
                             : validate_trace(*doc, why);
    if (!ok) {
        std::fprintf(stderr, "ilp-trace: %s invalid (%s): %s\n", path.c_str(),
                     is_bench ? "BENCH schema" : "trace_event", why.c_str());
        return 2;
    }
    std::printf("%s: valid %s\n", path.c_str(),
                is_bench ? "BENCH schema v2 file" : "Chrome trace_event file");
    return 0;
}

// --------------------------------------------------------------------- diff

struct metric_entry {
    double value = 0;
    std::string unit;
    std::string better;
};

std::map<std::string, metric_entry> load_metrics(const value& doc) {
    std::map<std::string, metric_entry> out;
    const value* metrics = doc.find("metrics");
    const ilp::json::array* arr =
        metrics == nullptr ? nullptr : metrics->as_array();
    if (arr == nullptr) return out;
    for (const value& m : *arr) {
        out[m.string_at("name")] = {m.number_at("value"), m.string_at("unit"),
                                    m.string_at("better")};
    }
    return out;
}

int cmd_diff(const std::string& old_path, const std::string& new_path,
             double threshold_pct) {
    const std::optional<value> old_doc = ilp::json::parse_file(old_path);
    const std::optional<value> new_doc = ilp::json::parse_file(new_path);
    if (!old_doc.has_value() || !new_doc.has_value()) {
        std::fprintf(stderr, "ilp-trace: cannot parse %s\n",
                     old_doc.has_value() ? new_path.c_str()
                                         : old_path.c_str());
        return 2;
    }
    std::string why;
    if (!validate_bench(*old_doc, why)) {
        std::fprintf(stderr, "ilp-trace: %s: %s\n", old_path.c_str(),
                     why.c_str());
        return 2;
    }
    if (!validate_bench(*new_doc, why)) {
        std::fprintf(stderr, "ilp-trace: %s: %s\n", new_path.c_str(),
                     why.c_str());
        return 2;
    }

    const auto old_metrics = load_metrics(*old_doc);
    const auto new_metrics = load_metrics(*new_doc);

    ilp::stats::table out(
        {"metric", "old", "new", "delta %", "better", "verdict"});
    int regressions = 0;
    for (const auto& [name, o] : old_metrics) {
        const auto it = new_metrics.find(name);
        if (it == new_metrics.end()) {
            out.row().cell(name).cell(o.value, 4).cell("-").cell("-")
                .cell(o.better).cell("MISSING");
            if (o.better != "info") ++regressions;
            continue;
        }
        const metric_entry& n = it->second;
        const double delta_pct =
            o.value == 0.0
                ? (n.value == 0.0 ? 0.0 : 100.0)
                : 100.0 * (n.value - o.value) / std::fabs(o.value);
        const char* verdict = "ok";
        if (o.better == "higher" && delta_pct < -threshold_pct) {
            verdict = "REGRESSION";
            ++regressions;
        } else if (o.better == "lower" && delta_pct > threshold_pct) {
            verdict = "REGRESSION";
            ++regressions;
        } else if (o.better != "info" &&
                   std::fabs(delta_pct) > threshold_pct) {
            verdict = "improved";
        }
        out.row()
            .cell(name)
            .cell(o.value, 4)
            .cell(n.value, 4)
            .cell(delta_pct, 2)
            .cell(o.better)
            .cell(verdict);
    }
    for (const auto& [name, n] : new_metrics) {
        if (old_metrics.find(name) != old_metrics.end()) continue;
        out.row().cell(name).cell("-").cell(n.value, 4).cell("-")
            .cell(n.better).cell("new");
    }
    out.print();
    std::printf("threshold %.2f %%: %d regression(s)\n", threshold_pct,
                regressions);
    return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string command;
    std::vector<std::string> paths;
    double threshold_pct = 5.0;
    bool per_flow = false;
    bool per_stage_worker = false;
    bool fleet = false;
    bool strict = false;
    long long top = 0;  // 0 = unlimited
    const auto parse_top = [&](const char* text) {
        char* end = nullptr;
        top = std::strtoll(text, &end, 10);
        if (end == nullptr || *end != '\0' || top <= 0) {
            std::fprintf(stderr, "ilp-trace: bad --top %s\n", text);
            return false;
        }
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--per-flow") {
            per_flow = true;
        } else if (arg == "--per-stage-worker") {
            per_stage_worker = true;
        } else if (arg == "--fleet") {
            fleet = true;
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg.rfind("--top=", 0) == 0) {
            if (!parse_top(arg.c_str() + 6)) return 2;
        } else if (arg == "--top") {
            if (i + 1 >= argc || !parse_top(argv[++i])) return 2;
        } else if (arg.rfind("--threshold=", 0) == 0) {
            char* end = nullptr;
            threshold_pct = std::strtod(arg.c_str() + 12, &end);
            if (end == nullptr || *end != '\0' || threshold_pct < 0) {
                std::fprintf(stderr, "ilp-trace: bad threshold %s\n",
                             arg.c_str());
                return 2;
            }
        } else if (arg == "--diff") {
            command = "diff";  // `ilp-trace --diff old new` spelling
        } else if (command.empty()) {
            command = arg;
        } else {
            paths.push_back(arg);
        }
    }
    if (command == "summarize" && paths.size() == 1) {
        if (fleet) return cmd_summarize_fleet(paths[0], top, strict);
        if (per_stage_worker) {
            return cmd_summarize_per_stage_worker(paths[0], strict);
        }
        return cmd_summarize(paths[0], per_flow, top, strict);
    }
    if (command == "validate" && paths.size() == 1) {
        return cmd_validate(paths[0]);
    }
    if (command == "diff" && paths.size() == 2) {
        return cmd_diff(paths[0], paths[1], threshold_pct);
    }
    return usage();
}
