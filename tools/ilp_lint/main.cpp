// ilp-lint — fusion-legality linter for every pipeline the stack registers.
//
// Walks the pipeline registry (populated by the TCP, RPC and application
// layers), runs the paper's applicability rules over each composition, and
// reports compiler-style diagnostics.  Exit status is the CI contract:
// 0 when no error-severity finding exists, 1 otherwise.
//
//   ilp-lint             text diagnostics over all registered pipelines
//   ilp-lint --json      machine-readable report (findings + inventory)
//   ilp-lint --list      inventory only: every pipeline and its stages
//   ilp-lint --audit     additionally run the word-touch audits (the
//                        dynamic exactly-once check) on the fused
//                        send/receive paths under the memory simulator
//   ilp-lint --sweep=N   additionally check part geometry for every
//                        marshalled size up to N bytes against the send
//                        plan (plan_parts), catching torn-unit sizes
//   ilp-lint --compose   additionally sweep the runtime composition space:
//                        every cipher × framing × tap × schedule graph is
//                        composed, checked, and (where executable) run both
//                        fused and layered — accepted graphs must be
//                        bit-identical, rejected ones must name their rule
//                        (with --json, output gains a "compose" section)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/registry.h"
#include "app/compose_sweep.h"
#include "app/path_models.h"
#include "app/touch_audits.h"
#include "core/message_plan.h"
#include "crypto/safer_k64.h"
#include "rpc/pipeline_models.h"
#include "tcp/pipeline_models.h"

// GCC 12 false-positives -Wrestrict on inlined std::string concatenation
// (gcc bug 105329), same as analysis/diagnostics.cpp.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace {

using namespace ilp;

void register_builtin_pipelines(analysis::pipeline_registry& registry) {
    // Registration findings are discarded here; check_all() re-derives the
    // complete set so the report covers every model exactly once.
    (void)tcp::register_tcp_pipelines(registry);
    (void)rpc::register_rpc_pipelines(registry);
    (void)app::register_app_pipelines(registry);
}

void print_inventory(const analysis::pipeline_registry& registry) {
    const char* kind_names[] = {"fused", "word_chain", "layered"};
    for (const analysis::pipeline_model& m : registry.models()) {
        std::printf("%-24s %-10s Le=%-3zu %s\n", m.name.c_str(),
                    kind_names[static_cast<int>(m.kind)],
                    m.exchange_unit_bytes, m.site.c_str());
        for (const analysis::footprint& fp : m.stages) {
            std::printf("    %-24s unit=%zu r/w=%zu/%zu align=%zu%s%s%s\n",
                        fp.name, fp.unit_bytes, fp.reads_per_unit,
                        fp.writes_per_unit, fp.alignment,
                        fp.ordering_constrained ? " ordering-constrained" : "",
                        fp.length_known_before_loop ? "" : " mid-loop-length",
                        fp.aux_table_bytes != 0 ? " tables" : "");
        }
    }
    std::printf("%zu pipelines registered\n", registry.models().size());
}

// Geometry sweep: plan_parts() must produce a legal B,C,A plan for every
// message size the marshaller can emit.  A regression that breaks the
// padding math shows up here long before a runtime assertion does.
std::vector<analysis::finding> sweep_plans(
    const analysis::pipeline_registry& registry, std::size_t max_bytes) {
    std::vector<analysis::finding> out;
    const analysis::pipeline_model* send_model = nullptr;
    for (const analysis::pipeline_model& m : registry.models()) {
        if (m.name == "app-send-ilp") send_model = &m;
    }
    if (send_model == nullptr) return out;
    for (std::size_t marshalled = core::encryption_header_bytes;
         marshalled <= max_bytes; marshalled += 4) {
        const core::message_plan plan = core::plan_parts(marshalled);
        std::vector<analysis::part_info> parts;
        for (const core::message_part& p : plan.ilp_order()) {
            if (!p.empty()) parts.push_back({p.offset, p.len});
        }
        std::vector<analysis::finding> f =
            analysis::check_part_geometry(*send_model, parts);
        for (analysis::finding& one : f) {
            one.message += " (marshalled size " + std::to_string(marshalled) +
                           " in sweep)";
            out.push_back(std::move(one));
        }
        if (!plan.well_formed()) {
            out.push_back({analysis::severity::error, "R3-granularity",
                           send_model->site, send_model->name,
                           "plan_parts(" + std::to_string(marshalled) +
                               ") produced a malformed plan",
                           {}});
        }
    }
    return out;
}

std::vector<analysis::finding> run_audits() {
    std::vector<analysis::finding> out;
    std::array<std::byte, crypto::safer_k64::key_bytes> key{};
    rng(3).fill(key);
    const crypto::safer_k64 cipher(key);

    app::audit_outcome send = app::audit_fused_send(cipher);
    app::audit_outcome recv = app::audit_fused_receive(cipher);
    app::audit_outcome zc = app::audit_zero_copy_receive(cipher);
    out.insert(out.end(), send.findings.begin(), send.findings.end());
    out.insert(out.end(), recv.findings.begin(), recv.findings.end());
    out.insert(out.end(), zc.findings.begin(), zc.findings.end());
    if (!send.round_trip_ok) {
        out.push_back({analysis::severity::error, "A0-audit-fixture",
                       "src/app/send_path.h:send_message_ilp", "app-send-ilp",
                       "audit payload failed to round-trip through the fused "
                       "send path; the audit result is not trustworthy",
                       {}});
    }
    if (!recv.round_trip_ok) {
        out.push_back({analysis::severity::error, "A0-audit-fixture",
                       "src/app/receive_path.h:receive_reply_ilp",
                       "app-recv-reply-ilp",
                       "audit payload failed to round-trip through the fused "
                       "receive path; the audit result is not trustworthy",
                       {}});
    }
    if (!zc.round_trip_ok) {
        out.push_back({analysis::severity::error, "A0-audit-fixture",
                       "src/app/receive_path.h:receive_reply_ilp",
                       "app-recv-zero-copy",
                       "audit payload failed to round-trip through the "
                       "zero-copy fused receive path; the audit result is "
                       "not trustworthy",
                       {}});
    }
    return out;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

// Machine-readable form of the composition sweep — the verdict schema CI
// checks (see README "Composition sweep").
std::string render_compose_json(const app::compose_sweep_report& rep) {
    char hashbuf[32];
    std::string out = "{\n";
    out += "    \"graphs\": " + std::to_string(rep.cases.size()) + ",\n";
    out += "    \"accepted\": " + std::to_string(rep.accepted) + ",\n";
    out += "    \"rejected\": " + std::to_string(rep.rejected) + ",\n";
    out += "    \"executed\": " + std::to_string(rep.executed) + ",\n";
    out += "    \"miscomputations\": " + std::to_string(rep.miscomputations) +
           ",\n";
    out += "    \"unexplained_rejections\": " +
           std::to_string(rep.unexplained_rejections) + ",\n";
    out += std::string("    \"ok\": ") + (rep.ok() ? "true" : "false") +
           ",\n    \"cases\": [\n";
    for (std::size_t i = 0; i < rep.cases.size(); ++i) {
        const app::compose_case& c = rep.cases[i];
        std::snprintf(hashbuf, sizeof hashbuf, "%016llx",
                      static_cast<unsigned long long>(c.hash));
        out += "      {\"name\": \"" + json_escape(c.name) + "\", ";
        out += std::string("\"hash\": \"") + hashbuf + "\", ";
        out += std::string("\"legal\": ") + (c.legal ? "true" : "false") +
               ", ";
        out += "\"rule\": \"" + json_escape(c.rule) + "\", ";
        out += "\"offender\": \"" + json_escape(c.offender) + "\", ";
        out += std::string("\"executed\": ") +
               (c.executed ? "true" : "false") + ", ";
        out += std::string("\"outputs_match\": ") +
               (c.outputs_match ? "true" : "false") + ", ";
        out += std::string("\"taps_match\": ") +
               (c.taps_match ? "true" : "false") + ", ";
        out += std::string("\"mismatch_expected\": ") +
               (c.mismatch_expected ? "true" : "false") + ", ";
        out += std::string("\"ok\": ") + (c.ok ? "true" : "false") + ", ";
        out += "\"status\": \"" + json_escape(c.status) + "\"}";
        if (i + 1 < rep.cases.size()) out += ",";
        out += "\n";
    }
    out += "    ]\n  }";
    return out;
}

void print_compose_text(const app::compose_sweep_report& rep) {
    for (const app::compose_case& c : rep.cases) {
        if (c.ok) continue;
        std::printf("compose: FAIL %-44s %s\n", c.name.c_str(),
                    c.status.c_str());
    }
    std::printf(
        "compose: %zu graphs, %zu accepted, %zu rejected, %zu differential "
        "run(s), %zu miscomputation(s), %zu unexplained rejection(s)\n",
        rep.cases.size(), rep.accepted, rep.rejected, rep.executed,
        rep.miscomputations, rep.unexplained_rejections);
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    bool list = false;
    bool audit = false;
    bool compose = false;
    std::size_t sweep_bytes = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg == "--compose") {
            compose = true;
        } else if (arg.rfind("--sweep=", 0) == 0) {
            sweep_bytes = static_cast<std::size_t>(
                std::strtoull(arg.c_str() + 8, nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: ilp-lint [--json] [--list] [--audit] "
                        "[--compose] [--sweep=BYTES]\n");
            return 0;
        } else {
            std::fprintf(stderr, "ilp-lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    analysis::pipeline_registry registry;
    register_builtin_pipelines(registry);

    if (list) {
        print_inventory(registry);
        return 0;
    }

    std::vector<analysis::finding> findings = registry.check_all();
    if (sweep_bytes > 0) {
        std::vector<analysis::finding> swept =
            sweep_plans(registry, sweep_bytes);
        findings.insert(findings.end(), swept.begin(), swept.end());
    }
    if (audit) {
        std::vector<analysis::finding> audited = run_audits();
        findings.insert(findings.end(), audited.begin(), audited.end());
    }

    app::compose_sweep_report compose_report;
    if (compose) compose_report = app::run_compose_sweep();

    std::size_t errors = 0;
    if (json) {
        std::string doc = render_json(registry.models(), findings);
        if (compose) {
            // Wrap: {"lint": <registry doc>, "compose": <sweep doc>}.
            doc = "{\n  \"lint\": " + doc + ",\n  \"compose\": " +
                  render_compose_json(compose_report) + "\n}";
        }
        std::fputs(doc.c_str(), stdout);
        std::fputc('\n', stdout);
        for (const analysis::finding& f : findings) {
            if (f.sev == analysis::severity::error) ++errors;
        }
    } else {
        errors = analysis::print_report(stdout, findings);
        if (compose) print_compose_text(compose_report);
    }
    if (compose && !compose_report.ok()) return 1;
    return errors == 0 ? 0 : 1;
}
