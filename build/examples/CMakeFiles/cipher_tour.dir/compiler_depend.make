# Empty compiler generated dependencies file for cipher_tour.
# This may be replaced when dependencies are built.
