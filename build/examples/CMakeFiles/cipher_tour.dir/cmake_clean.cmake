file(REMOVE_RECURSE
  "CMakeFiles/cipher_tour.dir/cipher_tour.cpp.o"
  "CMakeFiles/cipher_tour.dir/cipher_tour.cpp.o.d"
  "cipher_tour"
  "cipher_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cipher_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
