# Empty dependencies file for ilp_applicability.
# This may be replaced when dependencies are built.
