file(REMOVE_RECURSE
  "CMakeFiles/ilp_applicability.dir/ilp_applicability.cpp.o"
  "CMakeFiles/ilp_applicability.dir/ilp_applicability.cpp.o.d"
  "ilp_applicability"
  "ilp_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
