file(REMOVE_RECURSE
  "CMakeFiles/ilp_net.dir/datagram.cpp.o"
  "CMakeFiles/ilp_net.dir/datagram.cpp.o.d"
  "libilp_net.a"
  "libilp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
