file(REMOVE_RECURSE
  "libilp_net.a"
)
