# Empty compiler generated dependencies file for ilp_net.
# This may be replaced when dependencies are built.
