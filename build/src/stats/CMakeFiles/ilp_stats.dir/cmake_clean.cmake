file(REMOVE_RECURSE
  "CMakeFiles/ilp_stats.dir/table.cpp.o"
  "CMakeFiles/ilp_stats.dir/table.cpp.o.d"
  "libilp_stats.a"
  "libilp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
