file(REMOVE_RECURSE
  "libilp_stats.a"
)
