# Empty dependencies file for ilp_stats.
# This may be replaced when dependencies are built.
