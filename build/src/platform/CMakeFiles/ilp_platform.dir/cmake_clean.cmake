file(REMOVE_RECURSE
  "CMakeFiles/ilp_platform.dir/estimator.cpp.o"
  "CMakeFiles/ilp_platform.dir/estimator.cpp.o.d"
  "CMakeFiles/ilp_platform.dir/machines.cpp.o"
  "CMakeFiles/ilp_platform.dir/machines.cpp.o.d"
  "libilp_platform.a"
  "libilp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
