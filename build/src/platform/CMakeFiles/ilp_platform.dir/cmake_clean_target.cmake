file(REMOVE_RECURSE
  "libilp_platform.a"
)
