# Empty compiler generated dependencies file for ilp_platform.
# This may be replaced when dependencies are built.
