file(REMOVE_RECURSE
  "libilp_app.a"
)
