# Empty compiler generated dependencies file for ilp_app.
# This may be replaced when dependencies are built.
