file(REMOVE_RECURSE
  "CMakeFiles/ilp_app.dir/file_transfer.cpp.o"
  "CMakeFiles/ilp_app.dir/file_transfer.cpp.o.d"
  "libilp_app.a"
  "libilp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
