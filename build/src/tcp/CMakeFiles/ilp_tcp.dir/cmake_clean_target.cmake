file(REMOVE_RECURSE
  "libilp_tcp.a"
)
