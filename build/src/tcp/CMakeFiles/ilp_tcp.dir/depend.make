# Empty dependencies file for ilp_tcp.
# This may be replaced when dependencies are built.
