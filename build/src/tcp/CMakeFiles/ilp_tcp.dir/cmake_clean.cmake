file(REMOVE_RECURSE
  "CMakeFiles/ilp_tcp.dir/header.cpp.o"
  "CMakeFiles/ilp_tcp.dir/header.cpp.o.d"
  "libilp_tcp.a"
  "libilp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
