file(REMOVE_RECURSE
  "CMakeFiles/ilp_xdr.dir/xdr.cpp.o"
  "CMakeFiles/ilp_xdr.dir/xdr.cpp.o.d"
  "libilp_xdr.a"
  "libilp_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
