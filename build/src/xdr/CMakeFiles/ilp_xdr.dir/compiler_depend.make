# Empty compiler generated dependencies file for ilp_xdr.
# This may be replaced when dependencies are built.
