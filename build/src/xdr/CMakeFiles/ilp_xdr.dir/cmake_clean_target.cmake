file(REMOVE_RECURSE
  "libilp_xdr.a"
)
