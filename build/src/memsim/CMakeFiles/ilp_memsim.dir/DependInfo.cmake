
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cpp" "src/memsim/CMakeFiles/ilp_memsim.dir/cache.cpp.o" "gcc" "src/memsim/CMakeFiles/ilp_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/memsim/code_layout.cpp" "src/memsim/CMakeFiles/ilp_memsim.dir/code_layout.cpp.o" "gcc" "src/memsim/CMakeFiles/ilp_memsim.dir/code_layout.cpp.o.d"
  "/root/repo/src/memsim/configs.cpp" "src/memsim/CMakeFiles/ilp_memsim.dir/configs.cpp.o" "gcc" "src/memsim/CMakeFiles/ilp_memsim.dir/configs.cpp.o.d"
  "/root/repo/src/memsim/memory_system.cpp" "src/memsim/CMakeFiles/ilp_memsim.dir/memory_system.cpp.o" "gcc" "src/memsim/CMakeFiles/ilp_memsim.dir/memory_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ilp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
