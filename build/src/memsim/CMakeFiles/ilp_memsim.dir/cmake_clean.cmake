file(REMOVE_RECURSE
  "CMakeFiles/ilp_memsim.dir/cache.cpp.o"
  "CMakeFiles/ilp_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/ilp_memsim.dir/code_layout.cpp.o"
  "CMakeFiles/ilp_memsim.dir/code_layout.cpp.o.d"
  "CMakeFiles/ilp_memsim.dir/configs.cpp.o"
  "CMakeFiles/ilp_memsim.dir/configs.cpp.o.d"
  "CMakeFiles/ilp_memsim.dir/memory_system.cpp.o"
  "CMakeFiles/ilp_memsim.dir/memory_system.cpp.o.d"
  "libilp_memsim.a"
  "libilp_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
