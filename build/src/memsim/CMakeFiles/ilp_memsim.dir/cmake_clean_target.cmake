file(REMOVE_RECURSE
  "libilp_memsim.a"
)
