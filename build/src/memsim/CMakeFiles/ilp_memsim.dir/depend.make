# Empty dependencies file for ilp_memsim.
# This may be replaced when dependencies are built.
