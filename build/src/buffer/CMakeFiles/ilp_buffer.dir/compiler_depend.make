# Empty compiler generated dependencies file for ilp_buffer.
# This may be replaced when dependencies are built.
