file(REMOVE_RECURSE
  "CMakeFiles/ilp_buffer.dir/ring_buffer.cpp.o"
  "CMakeFiles/ilp_buffer.dir/ring_buffer.cpp.o.d"
  "libilp_buffer.a"
  "libilp_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
