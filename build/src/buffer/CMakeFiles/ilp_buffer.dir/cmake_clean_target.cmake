file(REMOVE_RECURSE
  "libilp_buffer.a"
)
