file(REMOVE_RECURSE
  "CMakeFiles/ilp_core.dir/gather.cpp.o"
  "CMakeFiles/ilp_core.dir/gather.cpp.o.d"
  "CMakeFiles/ilp_core.dir/message_plan.cpp.o"
  "CMakeFiles/ilp_core.dir/message_plan.cpp.o.d"
  "libilp_core.a"
  "libilp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
