file(REMOVE_RECURSE
  "libilp_core.a"
)
