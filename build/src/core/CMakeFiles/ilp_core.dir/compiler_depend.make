# Empty compiler generated dependencies file for ilp_core.
# This may be replaced when dependencies are built.
