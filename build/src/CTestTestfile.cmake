# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("memsim")
subdirs("buffer")
subdirs("checksum")
subdirs("crypto")
subdirs("xdr")
subdirs("core")
subdirs("net")
subdirs("tcp")
subdirs("rpc")
subdirs("app")
subdirs("platform")
