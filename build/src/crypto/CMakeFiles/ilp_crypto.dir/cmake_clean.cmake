file(REMOVE_RECURSE
  "CMakeFiles/ilp_crypto.dir/des.cpp.o"
  "CMakeFiles/ilp_crypto.dir/des.cpp.o.d"
  "CMakeFiles/ilp_crypto.dir/safer_k64.cpp.o"
  "CMakeFiles/ilp_crypto.dir/safer_k64.cpp.o.d"
  "CMakeFiles/ilp_crypto.dir/safer_tables.cpp.o"
  "CMakeFiles/ilp_crypto.dir/safer_tables.cpp.o.d"
  "libilp_crypto.a"
  "libilp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
