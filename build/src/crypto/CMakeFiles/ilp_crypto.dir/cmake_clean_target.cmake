file(REMOVE_RECURSE
  "libilp_crypto.a"
)
