
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/des.cpp" "src/crypto/CMakeFiles/ilp_crypto.dir/des.cpp.o" "gcc" "src/crypto/CMakeFiles/ilp_crypto.dir/des.cpp.o.d"
  "/root/repo/src/crypto/safer_k64.cpp" "src/crypto/CMakeFiles/ilp_crypto.dir/safer_k64.cpp.o" "gcc" "src/crypto/CMakeFiles/ilp_crypto.dir/safer_k64.cpp.o.d"
  "/root/repo/src/crypto/safer_tables.cpp" "src/crypto/CMakeFiles/ilp_crypto.dir/safer_tables.cpp.o" "gcc" "src/crypto/CMakeFiles/ilp_crypto.dir/safer_tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ilp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ilp_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
