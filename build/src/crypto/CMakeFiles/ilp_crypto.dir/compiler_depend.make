# Empty compiler generated dependencies file for ilp_crypto.
# This may be replaced when dependencies are built.
