# Empty compiler generated dependencies file for ilp_util.
# This may be replaced when dependencies are built.
