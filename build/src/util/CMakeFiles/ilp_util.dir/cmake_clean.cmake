file(REMOVE_RECURSE
  "CMakeFiles/ilp_util.dir/hexdump.cpp.o"
  "CMakeFiles/ilp_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/ilp_util.dir/virtual_clock.cpp.o"
  "CMakeFiles/ilp_util.dir/virtual_clock.cpp.o.d"
  "libilp_util.a"
  "libilp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
