file(REMOVE_RECURSE
  "libilp_util.a"
)
