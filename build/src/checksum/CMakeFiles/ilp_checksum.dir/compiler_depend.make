# Empty compiler generated dependencies file for ilp_checksum.
# This may be replaced when dependencies are built.
