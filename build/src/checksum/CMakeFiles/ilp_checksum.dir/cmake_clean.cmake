file(REMOVE_RECURSE
  "CMakeFiles/ilp_checksum.dir/crc32.cpp.o"
  "CMakeFiles/ilp_checksum.dir/crc32.cpp.o.d"
  "libilp_checksum.a"
  "libilp_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
