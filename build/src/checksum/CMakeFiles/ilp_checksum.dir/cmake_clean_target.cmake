file(REMOVE_RECURSE
  "libilp_checksum.a"
)
