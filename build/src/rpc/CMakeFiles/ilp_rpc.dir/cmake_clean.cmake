file(REMOVE_RECURSE
  "CMakeFiles/ilp_rpc.dir/messages.cpp.o"
  "CMakeFiles/ilp_rpc.dir/messages.cpp.o.d"
  "CMakeFiles/ilp_rpc.dir/trailer.cpp.o"
  "CMakeFiles/ilp_rpc.dir/trailer.cpp.o.d"
  "libilp_rpc.a"
  "libilp_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
