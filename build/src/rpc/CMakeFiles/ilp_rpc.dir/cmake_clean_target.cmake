file(REMOVE_RECURSE
  "libilp_rpc.a"
)
