# Empty dependencies file for ilp_rpc.
# This may be replaced when dependencies are built.
