# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/checksum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/xdr_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_extra_test[1]_include.cmake")
include("/root/repo/build/tests/trailer_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_extra_test[1]_include.cmake")
include("/root/repo/build/tests/early_send_test[1]_include.cmake")
include("/root/repo/build/tests/demux_test[1]_include.cmake")
include("/root/repo/build/tests/receive_path_test[1]_include.cmake")
include("/root/repo/build/tests/xdr_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_rto_test[1]_include.cmake")
include("/root/repo/build/tests/word_filter_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_extra_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
