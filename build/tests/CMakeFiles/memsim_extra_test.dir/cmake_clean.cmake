file(REMOVE_RECURSE
  "CMakeFiles/memsim_extra_test.dir/memsim_extra_test.cpp.o"
  "CMakeFiles/memsim_extra_test.dir/memsim_extra_test.cpp.o.d"
  "memsim_extra_test"
  "memsim_extra_test.pdb"
  "memsim_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
