# Empty compiler generated dependencies file for memsim_extra_test.
# This may be replaced when dependencies are built.
