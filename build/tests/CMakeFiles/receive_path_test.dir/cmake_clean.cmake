file(REMOVE_RECURSE
  "CMakeFiles/receive_path_test.dir/receive_path_test.cpp.o"
  "CMakeFiles/receive_path_test.dir/receive_path_test.cpp.o.d"
  "receive_path_test"
  "receive_path_test.pdb"
  "receive_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receive_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
