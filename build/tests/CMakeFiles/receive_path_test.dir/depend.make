# Empty dependencies file for receive_path_test.
# This may be replaced when dependencies are built.
