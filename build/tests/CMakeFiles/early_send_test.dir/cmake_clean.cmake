file(REMOVE_RECURSE
  "CMakeFiles/early_send_test.dir/early_send_test.cpp.o"
  "CMakeFiles/early_send_test.dir/early_send_test.cpp.o.d"
  "early_send_test"
  "early_send_test.pdb"
  "early_send_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_send_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
