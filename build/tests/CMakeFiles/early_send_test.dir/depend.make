# Empty dependencies file for early_send_test.
# This may be replaced when dependencies are built.
