file(REMOVE_RECURSE
  "CMakeFiles/demux_test.dir/demux_test.cpp.o"
  "CMakeFiles/demux_test.dir/demux_test.cpp.o.d"
  "demux_test"
  "demux_test.pdb"
  "demux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
