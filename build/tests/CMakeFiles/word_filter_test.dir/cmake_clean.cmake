file(REMOVE_RECURSE
  "CMakeFiles/word_filter_test.dir/word_filter_test.cpp.o"
  "CMakeFiles/word_filter_test.dir/word_filter_test.cpp.o.d"
  "word_filter_test"
  "word_filter_test.pdb"
  "word_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
