# Empty dependencies file for word_filter_test.
# This may be replaced when dependencies are built.
