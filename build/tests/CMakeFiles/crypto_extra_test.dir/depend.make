# Empty dependencies file for crypto_extra_test.
# This may be replaced when dependencies are built.
