file(REMOVE_RECURSE
  "CMakeFiles/crypto_extra_test.dir/crypto_extra_test.cpp.o"
  "CMakeFiles/crypto_extra_test.dir/crypto_extra_test.cpp.o.d"
  "crypto_extra_test"
  "crypto_extra_test.pdb"
  "crypto_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
