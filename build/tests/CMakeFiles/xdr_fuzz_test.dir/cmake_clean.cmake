file(REMOVE_RECURSE
  "CMakeFiles/xdr_fuzz_test.dir/xdr_fuzz_test.cpp.o"
  "CMakeFiles/xdr_fuzz_test.dir/xdr_fuzz_test.cpp.o.d"
  "xdr_fuzz_test"
  "xdr_fuzz_test.pdb"
  "xdr_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdr_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
