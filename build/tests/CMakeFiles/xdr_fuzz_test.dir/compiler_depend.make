# Empty compiler generated dependencies file for xdr_fuzz_test.
# This may be replaced when dependencies are built.
