file(REMOVE_RECURSE
  "CMakeFiles/tcp_extra_test.dir/tcp_extra_test.cpp.o"
  "CMakeFiles/tcp_extra_test.dir/tcp_extra_test.cpp.o.d"
  "tcp_extra_test"
  "tcp_extra_test.pdb"
  "tcp_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
