# Empty compiler generated dependencies file for trailer_test.
# This may be replaced when dependencies are built.
