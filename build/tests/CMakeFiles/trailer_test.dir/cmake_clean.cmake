file(REMOVE_RECURSE
  "CMakeFiles/trailer_test.dir/trailer_test.cpp.o"
  "CMakeFiles/trailer_test.dir/trailer_test.cpp.o.d"
  "trailer_test"
  "trailer_test.pdb"
  "trailer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trailer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
