# Empty compiler generated dependencies file for bench_fig07_send_processing.
# This may be replaced when dependencies are built.
