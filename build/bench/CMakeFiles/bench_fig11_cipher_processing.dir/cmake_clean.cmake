file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cipher_processing.dir/bench_fig11_cipher_processing.cpp.o"
  "CMakeFiles/bench_fig11_cipher_processing.dir/bench_fig11_cipher_processing.cpp.o.d"
  "bench_fig11_cipher_processing"
  "bench_fig11_cipher_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cipher_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
