# Empty compiler generated dependencies file for bench_fig11_cipher_processing.
# This may be replaced when dependencies are built.
