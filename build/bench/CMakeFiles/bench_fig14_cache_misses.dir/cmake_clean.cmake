file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cache_misses.dir/bench_fig14_cache_misses.cpp.o"
  "CMakeFiles/bench_fig14_cache_misses.dir/bench_fig14_cache_misses.cpp.o.d"
  "bench_fig14_cache_misses"
  "bench_fig14_cache_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cache_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
