# Empty compiler generated dependencies file for bench_fig14_cache_misses.
# This may be replaced when dependencies are built.
