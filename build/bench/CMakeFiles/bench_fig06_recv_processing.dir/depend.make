# Empty dependencies file for bench_fig06_recv_processing.
# This may be replaced when dependencies are built.
