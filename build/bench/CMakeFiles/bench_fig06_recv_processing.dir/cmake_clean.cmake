file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_recv_processing.dir/bench_fig06_recv_processing.cpp.o"
  "CMakeFiles/bench_fig06_recv_processing.dir/bench_fig06_recv_processing.cpp.o.d"
  "bench_fig06_recv_processing"
  "bench_fig06_recv_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_recv_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
