file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_time_curves.dir/bench_fig10_time_curves.cpp.o"
  "CMakeFiles/bench_fig10_time_curves.dir/bench_fig10_time_curves.cpp.o.d"
  "bench_fig10_time_curves"
  "bench_fig10_time_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_time_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
