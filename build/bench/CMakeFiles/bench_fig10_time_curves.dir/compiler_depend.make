# Empty compiler generated dependencies file for bench_fig10_time_curves.
# This may be replaced when dependencies are built.
