# Empty compiler generated dependencies file for bench_intro_loop.
# This may be replaced when dependencies are built.
