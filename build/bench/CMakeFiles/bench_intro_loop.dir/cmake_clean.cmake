file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_loop.dir/bench_intro_loop.cpp.o"
  "CMakeFiles/bench_intro_loop.dir/bench_intro_loop.cpp.o.d"
  "bench_intro_loop"
  "bench_intro_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
