file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_memory_access.dir/bench_fig13_memory_access.cpp.o"
  "CMakeFiles/bench_fig13_memory_access.dir/bench_fig13_memory_access.cpp.o.d"
  "bench_fig13_memory_access"
  "bench_fig13_memory_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_memory_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
