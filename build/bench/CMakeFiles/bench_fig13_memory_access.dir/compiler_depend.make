# Empty compiler generated dependencies file for bench_fig13_memory_access.
# This may be replaced when dependencies are built.
