# Empty dependencies file for bench_ablation_early_send.
# This may be replaced when dependencies are built.
