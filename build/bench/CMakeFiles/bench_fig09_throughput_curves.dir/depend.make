# Empty dependencies file for bench_fig09_throughput_curves.
# This may be replaced when dependencies are built.
