# Empty compiler generated dependencies file for bench_table1_full_sweep.
# This may be replaced when dependencies are built.
