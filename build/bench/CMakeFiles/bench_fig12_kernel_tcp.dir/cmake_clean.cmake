file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_kernel_tcp.dir/bench_fig12_kernel_tcp.cpp.o"
  "CMakeFiles/bench_fig12_kernel_tcp.dir/bench_fig12_kernel_tcp.cpp.o.d"
  "bench_fig12_kernel_tcp"
  "bench_fig12_kernel_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_kernel_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
