# Empty compiler generated dependencies file for bench_ablation_icache.
# This may be replaced when dependencies are built.
