
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_zerocopy.cpp" "bench/CMakeFiles/bench_ablation_zerocopy.dir/bench_ablation_zerocopy.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_zerocopy.dir/bench_ablation_zerocopy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/ilp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ilp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ilp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/ilp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/ilp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ilp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ilp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/ilp_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/checksum/CMakeFiles/ilp_checksum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ilp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/ilp_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ilp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ilp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
