// E3 — Figure 8: ILP and non-ILP transfer throughput for 1 kbyte packets
// across the seven machine models.
//
// Throughput folds in the system-side per-packet overhead (IP, driver, task
// switches), which is why the relative throughput gain is always smaller
// than the packet-processing gain (paper §4.1).
//
// Observability hooks (the BENCH regression pipeline):
//   --smoke        first machine only (fast CI variant)
//   --json=PATH    write a versioned BENCH JSON report (schema v2) for
//                  `ilp-trace --diff` against a checked-in baseline
//   --trace=PATH   run one extra instrumented transfer with the span tracer
//                  installed and write a Chrome trace_event file
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/paper_data.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "obs/bench_json.h"
#include "obs/export_chrome.h"
#include "obs/export_text.h"
#include "obs/tracer.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main(int argc, char** argv) {
    using namespace ilp;
    using namespace ilp::platform;

    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else {
            std::fprintf(stderr,
                         "usage: bench_fig08_throughput [--smoke]"
                         " [--json=PATH] [--trace=PATH]\n");
            return 2;
        }
    }

    obs::bench_report report("fig08_throughput");
    report.meta("packet_wire_bytes", "1024");
    report.meta("cipher", "safer_simplified");
    report.meta("mode", smoke ? "smoke" : "full");

    std::printf("=== Figure 8: throughput, 1 KB packets (Mbps) ===\n");
    stats::table table({"machine", "non-ILP", "ILP", "gain %",
                        "paper non-ILP", "paper ILP", "paper gain %"});
    std::size_t machines_run = 0;
    for (const machine_model& m : paper_machines()) {
        if (smoke && machines_run == 1) break;
        const auto ilp_run = run_standard_experiment(
            m, impl_kind::ilp, cipher_kind::safer_simplified, 1024);
        const auto lay_run = run_standard_experiment(
            m, impl_kind::layered, cipher_kind::safer_simplified, 1024);
        const auto* paper = bench::find_table1(m.name, 1024);
        table.row()
            .cell(m.display)
            .cell(lay_run.throughput_mbps, 2)
            .cell(ilp_run.throughput_mbps, 2)
            .cell(stats::percent_gain(lay_run.throughput_mbps,
                                      ilp_run.throughput_mbps) *
                      -1.0,  // throughput: higher is better
                  1)
            .cell(paper->non_ilp_mbps, 2)
            .cell(paper->ilp_mbps, 2)
            .cell((paper->ilp_mbps - paper->non_ilp_mbps) /
                      paper->non_ilp_mbps * 100.0,
                  1);
        report.metric(m.name + std::string(".ilp_mbps"),
                      ilp_run.throughput_mbps, "mbps",
                      obs::direction::higher_is_better);
        report.metric(m.name + std::string(".layered_mbps"),
                      lay_run.throughput_mbps, "mbps",
                      obs::direction::higher_is_better);
        report.metric(m.name + std::string(".send_us_per_packet"),
                      ilp_run.send_us_per_packet, "us",
                      obs::direction::lower_is_better);
        report.metric(m.name + std::string(".recv_us_per_packet"),
                      ilp_run.recv_us_per_packet, "us",
                      obs::direction::lower_is_better);
        ++machines_run;
    }
    table.print();
    std::printf("\nShape: ILP throughput beats non-ILP everywhere, but the"
                " relative improvement is smaller than the packet-processing"
                " improvement because system operations consume time"
                " comparable to the data manipulations (paper §4.1).\n");

    if (!json_path.empty() && !report.write(json_path)) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
        return 1;
    }

    if (!trace_path.empty()) {
        // One extra instrumented transfer with the tracer installed: the
        // per-stage span structure and cache-miss attribution of a small
        // SuperSPARC run, exported as a Chrome trace.
        obs::tracer tracer(8192);
        obs::tracer* prev = obs::tracer::install(&tracer);
        app::transfer_config config;
        config.packet_wire_bytes = 1024;
        memsim::memory_system client(memsim::supersparc_with_l2());
        memsim::memory_system server(memsim::supersparc_with_l2());
        const auto result =
            app::run_transfer_simulated<crypto::safer_simplified>(
                config, client, server);
        obs::tracer::install(prev);
        if (!result.completed) {
            std::fprintf(stderr, "ERROR: traced transfer failed\n");
            return 1;
        }
        if (!obs::write_chrome_trace(tracer, trace_path,
                                     obs::trace_timebase::sim_us)) {
            std::fprintf(stderr, "ERROR: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("\nPer-stage breakdown of the traced transfer:\n%s",
                    obs::stage_summary(tracer).c_str());
    }
    return 0;
}
