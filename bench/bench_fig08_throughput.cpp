// E3 — Figure 8: ILP and non-ILP transfer throughput for 1 kbyte packets
// across the seven machine models.
//
// Throughput folds in the system-side per-packet overhead (IP, driver, task
// switches), which is why the relative throughput gain is always smaller
// than the packet-processing gain (paper §4.1).
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    std::printf("=== Figure 8: throughput, 1 KB packets (Mbps) ===\n");
    stats::table table({"machine", "non-ILP", "ILP", "gain %",
                        "paper non-ILP", "paper ILP", "paper gain %"});
    for (const machine_model& m : paper_machines()) {
        const auto ilp_run = run_standard_experiment(
            m, impl_kind::ilp, cipher_kind::safer_simplified, 1024);
        const auto lay_run = run_standard_experiment(
            m, impl_kind::layered, cipher_kind::safer_simplified, 1024);
        const auto* paper = bench::find_table1(m.name, 1024);
        table.row()
            .cell(m.display)
            .cell(lay_run.throughput_mbps, 2)
            .cell(ilp_run.throughput_mbps, 2)
            .cell(stats::percent_gain(lay_run.throughput_mbps,
                                      ilp_run.throughput_mbps) *
                      -1.0,  // throughput: higher is better
                  1)
            .cell(paper->non_ilp_mbps, 2)
            .cell(paper->ilp_mbps, 2)
            .cell((paper->ilp_mbps - paper->non_ilp_mbps) /
                      paper->non_ilp_mbps * 100.0,
                  1);
    }
    table.print();
    std::printf("\nShape: ILP throughput beats non-ILP everywhere, but the"
                " relative improvement is smaller than the packet-processing"
                " improvement because system operations consume time"
                " comparable to the data manipulations (paper §4.1).\n");
    return 0;
}
