// E4 — Figure 9: throughput vs packet size (256..1280 bytes) for the four
// machines the paper plots (SS10-30, SS10-41, SS20-60, AXP3000/800),
// ILP vs non-ILP.
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    const char* machines[] = {"ss10-30", "ss10-41", "ss20-60", "axp3000-800"};
    const std::size_t sizes[] = {256, 512, 768, 1024, 1280};

    std::printf("=== Figure 9: throughput vs packet size (Mbps) ===\n");
    for (const char* name : machines) {
        const machine_model m = machine(name);
        std::printf("\n--- %s ---\n", m.display.c_str());
        stats::table table({"packet B", "non-ILP", "ILP", "paper non-ILP",
                            "paper ILP"});
        for (const std::size_t size : sizes) {
            const auto ilp_run = run_standard_experiment(
                m, impl_kind::ilp, cipher_kind::safer_simplified, size);
            const auto lay_run = run_standard_experiment(
                m, impl_kind::layered, cipher_kind::safer_simplified, size);
            const auto* paper = bench::find_table1(m.name, size);
            table.row()
                .cell(static_cast<std::uint64_t>(size))
                .cell(lay_run.throughput_mbps, 2)
                .cell(ilp_run.throughput_mbps, 2)
                .cell(paper->non_ilp_mbps, 2)
                .cell(paper->ilp_mbps, 2);
        }
        table.print();
    }
    std::printf("\nShape: throughput grows with packet size on every machine"
                " (fewer messages per file), and the ILP curve sits above"
                " the non-ILP curve with a widening gap.\n");
    return 0;
}
