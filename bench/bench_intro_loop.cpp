// E0 — the paper's §1 introduction experiment.
//
// "The XDR marshalling routine ... for an array of 20 integer values has
// been combined with the TCP checksum routine.  The throughput is 70 Mbps
// for executing the two routines sequentially in contrast to 100 Mbps for
// integrating both functions into a single loop" — over 40 % gain.
//
// This bench measures the same two variants as native wall-clock code (the
// data manipulations run with direct_memory, i.e. raw loads/stores):
//   sequential: marshal pass (read ints, write XDR words), then checksum
//               pass (read the words again);
//   integrated: one fused loop — the checksum taps the words while they are
//               still in registers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/paper_data.h"
#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/stage.h"
#include "memsim/configs.h"
#include "stats/table.h"
#include "util/rng.h"

namespace {

using namespace ilp;

struct workload {
    std::vector<std::int32_t> values;
    byte_buffer wire;

    explicit workload(std::size_t count)
        : values(count), wire(count * 4) {
        rng r(1234);
        for (auto& v : values) v = static_cast<std::int32_t>(r.next_u32());
    }

    core::gather_source source() const {
        core::gather_source src;
        src.add({reinterpret_cast<const std::byte*>(values.data()),
                 values.size() * 4},
                core::segment_op::xdr_words);
        return src;
    }
};

std::uint16_t run_sequential(workload& w) {
    const memsim::direct_memory mem;
    core::marshal_to_buffer(mem, w.source(), w.wire.span());
    checksum::inet_accumulator acc;
    core::checksum_pass(mem, acc, w.wire.span(), 8);
    return acc.finish();
}

std::uint16_t run_integrated(workload& w) {
    const memsim::direct_memory mem;
    checksum::inet_accumulator acc;
    core::checksum_tap8 tap(acc);
    auto loop = core::make_pipeline(tap);
    loop.run(mem, w.source(), core::span_dest(w.wire.span()));
    return acc.finish();
}

void bm_sequential(benchmark::State& state) {
    workload w(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_sequential(w));
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0) * 4);
}

void bm_integrated(benchmark::State& state) {
    workload w(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_integrated(w));
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0) * 4);
}

BENCHMARK(bm_sequential)->Arg(20)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(bm_integrated)->Arg(20)->Arg(256)->Arg(4096)->Arg(65536);

// Quick self-timed comparison for the summary table (gbench reports the
// rigorous numbers above).
double measure_mbps(std::size_t ints, bool integrated) {
    workload w(ints);
    // Warm up and pick an iteration count that runs ~50 ms.
    const auto run = [&] {
        return integrated ? run_integrated(w) : run_sequential(w);
    };
    volatile std::uint16_t sink = run();
    const std::size_t iterations = std::max<std::size_t>(64, (1 << 22) / (ints * 4));
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iterations; ++i) sink = run();
    const auto end = std::chrono::steady_clock::now();
    (void)sink;
    const double seconds = std::chrono::duration<double>(end - start).count();
    return static_cast<double>(iterations * ints * 4) * 8.0 / seconds / 1e6;
}

// Simulated 1995 comparison: run both variants through the SuperSPARC
// memory model and convert cycles to Mbps at the SS10-30's 36 MHz.  On a
// memory-bound 1995 machine the integrated loop's saved pass (3 memory ops
// per word down to 2) is exactly the paper's >40 % gain.
void print_simulated_summary() {
    std::printf("\n--- simulated on the SS10-30 memory model (the paper's "
                "setting) ---\n");
    stats::table table({"ints", "variant", "mem ops", "mem cycles",
                        "model Mbps", "paper Mbps"});
    for (const std::size_t ints : {20u, 4096u}) {
        for (const bool integrated : {false, true}) {
            workload w(ints);
            memsim::memory_system sys(memsim::supersparc_with_l2());
            memsim::sim_memory mem(sys);
            checksum::inet_accumulator acc;
            if (integrated) {
                core::checksum_tap8 tap(acc);
                auto loop = core::make_pipeline(tap);
                loop.run(mem, w.source(), core::span_dest(w.wire.span()));
            } else {
                core::marshal_to_buffer(mem, w.source(), w.wire.span());
                core::checksum_pass(mem, acc, w.wire.span(), 8);
            }
            // ~1 ALU cycle per word of marshalling/checksum work on top of
            // the memory-system time.
            const double cycles =
                static_cast<double>(sys.cycles()) + static_cast<double>(ints);
            const double mbps =
                static_cast<double>(ints) * 32.0 / (cycles / 36.0) ;
            table.row()
                .cell(static_cast<std::uint64_t>(ints))
                .cell(integrated ? "integrated" : "sequential")
                .cell(sys.data_stats().total_accesses())
                .cell(sys.cycles())
                .cell(mbps, 0)
                .cell(ints == 20
                          ? std::to_string(static_cast<int>(
                                integrated
                                    ? ilp::bench::intro_integrated_mbps
                                    : ilp::bench::intro_sequential_mbps))
                          : std::string("-"));
        }
    }
    table.print();
    std::printf("Shape check (1995): the integrated loop does 2 memory ops"
                " per word instead of 3, worth the paper's >40%% throughput"
                " gain on memory-bound hardware.\n");
}

void print_summary() {
    std::printf("\n=== E0: intro experiment (paper §1) — XDR marshal of an "
                "int array + TCP checksum ===\n");
    stats::table table({"ints", "sequential Mbps", "integrated Mbps",
                        "gain %", "paper seq", "paper int", "paper gain %"});
    for (const std::size_t ints : {20u, 256u, 4096u, 65536u}) {
        const double seq = measure_mbps(ints, false);
        const double fused = measure_mbps(ints, true);
        table.row()
            .cell(static_cast<std::uint64_t>(ints))
            .cell(seq, 0)
            .cell(fused, 0)
            .cell((fused - seq) / seq * 100.0, 1)
            .cell(ints == 20 ? std::to_string(static_cast<int>(
                                   ilp::bench::intro_sequential_mbps))
                             : std::string("-"))
            .cell(ints == 20 ? std::to_string(static_cast<int>(
                                   ilp::bench::intro_integrated_mbps))
                             : std::string("-"))
            .cell(ints == 20 ? std::string(">40") : std::string("-"));
    }
    table.print();
    std::printf("Note: on a modern out-of-order core with a vectorising"
                " compiler the *sequential* variant can match or beat the"
                " fused loop (separate passes auto-vectorise; the fused loop"
                " does not) — the 1995 effect was about memory operations,"
                " which the simulated comparison below isolates.\n");
    print_simulated_summary();
}

}  // namespace

int main(int argc, char** argv) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    print_summary();
    return 0;
}
