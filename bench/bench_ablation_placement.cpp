// A3 — §3.2.3: where to run the receive-side data manipulations.
//
// "The data can be manipulated very close to the read system call, i.e.
// directly after the system copy, or it can be manipulated very close to
// the application operations. ... Experiments show that both approaches
// yield nearly identical performance" (~5 us difference on a SS10-30), and
// the paper chooses near-read placement because errors surface before TCP
// commits control state.
//
// The cache mechanism behind the small difference: near-read manipulation
// finds the packet still cache-hot from the system copy; near-application
// manipulation runs after other application work evicted it, but in turn
// leaves the *output* hot for the application.  We measure both placements
// under the cache simulator with an application working set in between.
#include <cstdio>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "stats/table.h"
#include "util/rng.h"

namespace {

using namespace ilp;

constexpr std::size_t packet_bytes = 1024;
constexpr std::size_t app_work_bytes = 12 * 1024;  // application working set
constexpr int packets = 256;

// Touches the application working set (summing it) through the simulator —
// the "application operations" between packet arrival and consumption.
void application_work(const memsim::sim_memory& mem,
                      std::span<const std::byte> work) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i + 8 <= work.size(); i += 8) {
        sum += mem.load_u64(work.data() + i);
    }
    volatile std::uint64_t sink = sum;
    (void)sink;
}

std::uint64_t run(bool near_read) {
    std::array<std::byte, 8> key;
    rng kr(5);
    kr.fill(key);
    const crypto::safer_simplified cipher(key);

    memsim::memory_system sys(memsim::supersparc_no_l2());
    memsim::sim_memory mem(sys);

    byte_buffer kernel(packet_bytes);
    byte_buffer recv(packet_bytes);
    byte_buffer app_out(packet_bytes);
    byte_buffer work(app_work_bytes);
    rng r(6);
    r.fill(kernel.span());
    r.fill(work.span());

    for (int p = 0; p < packets; ++p) {
        // System copy (kernel -> receive buffer).
        mem.copy(recv.data(), kernel.data(), packet_bytes);

        const auto manipulate = [&] {
            checksum::inet_accumulator acc;
            core::checksum_tap8 tap(acc);
            core::decrypt_stage<crypto::safer_simplified> dec(cipher);
            auto loop = core::make_pipeline(tap, dec);
            loop.run(mem, core::span_source(recv.span()),
                     core::span_dest(app_out.span()));
            volatile std::uint16_t sink = acc.finish();
            (void)sink;
        };

        if (near_read) {
            manipulate();          // data still hot from the system copy
            application_work(mem, work.span());
            application_work(mem, app_out.span());  // app consumes message
        } else {
            application_work(mem, work.span());  // evicts the packet
            manipulate();          // near the application...
            application_work(mem, app_out.span());  // ...which consumes hot
        }
    }
    return sys.cycles();
}

}  // namespace

int main() {
    std::printf("=== A3: receive-side manipulation placement (§3.2.3) "
                "===\n\n");
    const std::uint64_t near_read = run(true);
    const std::uint64_t near_app = run(false);

    stats::table table({"placement", "mem cycles/packet", "delta %"});
    table.row()
        .cell("near read syscall")
        .cell(near_read / packets)
        .cell(0.0, 1);
    table.row()
        .cell("near application")
        .cell(near_app / packets)
        .cell((static_cast<double>(near_app) - static_cast<double>(near_read)) /
                  static_cast<double>(near_read) * 100.0,
              1);
    table.print();
    std::printf("\nPaper's finding: \"both approaches yield nearly identical"
                " performance\" (a ~5 us / few-percent difference on the"
                " SS10-30); near-read placement was chosen because checksum"
                " and format errors are then known before TCP control"
                " processing, avoiding roll-backs.  The two cycle counts"
                " above should differ by only a few percent.\n");
    return 0;
}
