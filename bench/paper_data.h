// The paper's published numbers, transcribed for side-by-side comparison.
//
// Every figure bench prints the paper's value next to the reproduction's so
// the *shape* comparison (who wins, by roughly what factor, where crossovers
// fall) is visible directly in the bench output.  Absolute values are not
// expected to match: the substrate here is a calibrated simulator, not the
// authors' 1995 testbed.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace ilp::bench {

// Annex Table 1: packet processing and throughput of the ILP and non-ILP
// implementations.  One row per (platform, packet size).
struct table1_row {
    std::string_view machine;      // canonical id, matches platform::machine
    std::size_t packet_bytes;
    double ilp_mbps;
    double non_ilp_mbps;
    double ilp_send_us;
    double ilp_recv_us;
    double non_ilp_send_us;
    double non_ilp_recv_us;
};

inline constexpr std::array<table1_row, 35> table1{{
    {"ss10-30", 256, 1.74, 1.58, 128, 118, 124, 141},
    {"ss10-30", 512, 3.22, 2.58, 187, 176, 201, 228},
    {"ss10-30", 768, 4.35, 4.15, 260, 263, 289, 280},
    {"ss10-30", 1024, 5.43, 4.95, 311, 300, 369, 356},
    {"ss10-30", 1280, 6.02, 4.30, 374, 363, 468, 456},
    {"ss10-41", 256, 2.34, 2.19, 103, 90, 101, 123},
    {"ss10-41", 512, 4.35, 3.67, 149, 144, 169, 182},
    {"ss10-41", 768, 5.53, 5.27, 192, 194, 248, 241},
    {"ss10-41", 1024, 6.68, 5.95, 248, 249, 315, 312},
    {"ss10-41", 1280, 8.39, 6.88, 304, 300, 379, 379},
    {"ss10-51", 256, 3.02, 2.64, 77, 72, 91, 88},
    {"ss10-51", 512, 5.41, 4.69, 124, 116, 147, 147},
    {"ss10-51", 768, 7.78, 7.01, 158, 158, 202, 195},
    {"ss10-51", 1024, 9.23, 8.35, 194, 206, 241, 240},
    {"ss10-51", 1280, 9.48, 8.65, 239, 248, 301, 310},
    {"ss20-60", 256, 3.45, 3.26, 65, 61, 82, 79},
    {"ss20-60", 512, 7.17, 6.52, 98, 96, 112, 110},
    {"ss20-60", 768, 9.05, 8.09, 130, 141, 159, 155},
    {"ss20-60", 1024, 10.44, 8.86, 162, 163, 212, 204},
    {"ss20-60", 1280, 11.66, 9.61, 199, 199, 253, 256},
    {"axp3000-500", 256, 2.52, 2.53, 100, 73, 103, 73},
    {"axp3000-500", 512, 4.43, 4.30, 135, 109, 149, 120},
    {"axp3000-500", 768, 6.07, 5.72, 174, 156, 195, 163},
    {"axp3000-500", 1024, 7.40, 6.95, 214, 195, 252, 195},
    {"axp3000-500", 1280, 8.59, 8.07, 252, 227, 302, 237},
    {"axp3000-600", 256, 2.57, 2.59, 85, 74, 86, 73},
    {"axp3000-600", 512, 4.36, 4.39, 122, 93, 137, 109},
    {"axp3000-600", 768, 6.36, 6.12, 146, 127, 162, 140},
    {"axp3000-600", 1024, 7.83, 7.52, 187, 160, 214, 167},
    {"axp3000-600", 1280, 8.98, 8.56, 227, 191, 256, 201},
    {"axp3000-800", 256, 3.51, 3.46, 69, 55, 70, 54},
    {"axp3000-800", 512, 5.98, 5.90, 100, 85, 107, 80},
    {"axp3000-800", 768, 8.02, 7.46, 127, 110, 150, 114},
    {"axp3000-800", 1024, 9.78, 9.30, 164, 139, 189, 151},
    {"axp3000-800", 1280, 11.44, 10.72, 193, 165, 244, 183},
}};

// Returns the Table 1 row for (machine, packet size), or nullptr.
inline const table1_row* find_table1(std::string_view machine,
                                     std::size_t packet_bytes) {
    for (const auto& row : table1) {
        if (row.machine == machine && row.packet_bytes == packet_bytes) {
            return &row;
        }
    }
    return nullptr;
}

// Figure 11: packet processing times (us) on the SS10-30 with 1 KB packets
// for the two encryption functions.
struct fig11_row {
    std::string_view cipher;
    double non_ilp_send_us, ilp_send_us;
    double non_ilp_recv_us, ilp_recv_us;
};
inline constexpr std::array<fig11_row, 2> fig11{{
    {"simplified SAFER K-64", 366, 313, 355, 299},
    {"simple (constant-based)", 220, 150, 158, 94},
}};

// Figure 12: throughput (Mbps, 1 KB messages) of user-level non-ILP / user-
// level ILP / kernel-TCP paths, per cipher.
struct fig12_row {
    std::string_view cipher;
    double non_ilp_mbps, ilp_mbps, kernel_mbps;
};
inline constexpr std::array<fig12_row, 2> fig12{{
    {"simplified SAFER K-64", 5.1, 5.5, 6.8},
    {"simple (constant-based)", 6.7, 7.5, 9.7},
}};

// Figure 13 headline deltas (accesses, in millions, for 10.7 MB of data
// with the simplified SAFER K-64): ILP saves 13.7e6 4-byte reads and
// 12.0e6 4-byte writes on the send side (= 55 MB read + 48 MB written
// less), and 8.4e6 reads + 8.3e6 writes on the receive side (33 MB less).
inline constexpr double fig13_send_read_delta_m = 13.7;
inline constexpr double fig13_send_write_delta_m = 12.0;
inline constexpr double fig13_recv_read_delta_m = 8.4;
inline constexpr double fig13_recv_write_delta_m = 8.3;

// Figure 14 headline: the receive-side L1-D miss *ratio* rises from 4.7 %
// (non-ILP) to 18.7 % (ILP) with the simplified SAFER K-64; with the simple
// cipher ILP instead halves the send-side misses.
inline constexpr double fig14_recv_ratio_non_ilp = 4.7;
inline constexpr double fig14_recv_ratio_ilp = 18.7;

// §1 intro experiment: 20-int XDR marshalling + TCP checksum, sequential
// (70 Mbps) vs integrated (100 Mbps) — "over 40 % gain".
inline constexpr double intro_sequential_mbps = 70;
inline constexpr double intro_integrated_mbps = 100;

}  // namespace ilp::bench
