// E6 — Figure 11: packet processing of the ILP and non-ILP implementations
// with different encryption functions (SS10-30, 1 KB packets).
//
// Swapping the table-driven simplified SAFER K-64 for the constant-based
// simple cipher leaves the absolute ILP saving similar but raises the
// *relative* improvement sharply (paper: 16 % -> 32 % send, 16 % -> 40 %
// receive), because the cipher no longer dominates the per-byte cost.
// The full 6-round SAFER K-64 is included as the opposite extreme: an
// expensive cipher hides the ILP gain (the paper's §3.1 argument, citing
// Gunningberg et al. for DES).
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    const machine_model m = machine("ss10-30");
    std::printf("=== Figure 11: packet processing by cipher (SS10-30, 1 KB, "
                "us) ===\n");
    stats::table table({"cipher", "dir", "non-ILP", "ILP", "gain %",
                        "paper non-ILP", "paper ILP", "paper gain %"});

    const struct {
        cipher_kind kind;
        const bench::fig11_row* paper;  // null: not in the paper's figure
    } rows[] = {
        {cipher_kind::safer_simplified, &bench::fig11[0]},
        {cipher_kind::simple, &bench::fig11[1]},
        {cipher_kind::safer_full, nullptr},
        {cipher_kind::aead, nullptr},
    };

    for (const auto& r : rows) {
        const auto ilp_run =
            run_standard_experiment(m, impl_kind::ilp, r.kind, 1024);
        const auto lay_run =
            run_standard_experiment(m, impl_kind::layered, r.kind, 1024);
        const cipher_profile profile = profile_for(r.kind);
        table.row()
            .cell(profile.name)
            .cell("send")
            .cell(lay_run.send_us_per_packet, 0)
            .cell(ilp_run.send_us_per_packet, 0)
            .cell(stats::percent_gain(lay_run.send_us_per_packet,
                                      ilp_run.send_us_per_packet),
                  1)
            .cell(r.paper ? std::to_string(static_cast<int>(
                                r.paper->non_ilp_send_us))
                          : std::string("-"))
            .cell(r.paper
                      ? std::to_string(static_cast<int>(r.paper->ilp_send_us))
                      : std::string("-"))
            .cell(r.paper ? std::to_string(static_cast<int>(
                                stats::percent_gain(r.paper->non_ilp_send_us,
                                                    r.paper->ilp_send_us)))
                          : std::string("-"));
        table.row()
            .cell(profile.name)
            .cell("recv")
            .cell(lay_run.recv_us_per_packet, 0)
            .cell(ilp_run.recv_us_per_packet, 0)
            .cell(stats::percent_gain(lay_run.recv_us_per_packet,
                                      ilp_run.recv_us_per_packet),
                  1)
            .cell(r.paper ? std::to_string(static_cast<int>(
                                r.paper->non_ilp_recv_us))
                          : std::string("-"))
            .cell(r.paper
                      ? std::to_string(static_cast<int>(r.paper->ilp_recv_us))
                      : std::string("-"))
            .cell(r.paper ? std::to_string(static_cast<int>(
                                stats::percent_gain(r.paper->non_ilp_recv_us,
                                                    r.paper->ilp_recv_us)))
                          : std::string("-"));
    }
    table.print();
    std::printf("\nShape: the simple cipher roughly halves absolute packet"
                " processing and raises the relative ILP gain (paper: 32%%"
                " send / 40%% receive vs ~16%%); the full SAFER K-64 buries"
                " the gain under cipher ALU time.  The aead row is the"
                " transport-security extension's keystream+tag cipher: word-"
                "granular like the simple cipher, so the ILP gain stays"
                " large even though it also accumulates a tag.\n");
    return 0;
}
