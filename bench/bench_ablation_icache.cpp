// A4 — §4.2: the instruction-cache effect of loop fusion.
//
// On the Alpha 21064's 8 KB direct-mapped I-cache, the fused ILP loop —
// whose body spans several separately compiled subsystems — suffers far
// more instruction misses than the layered passes, eating 24-28 % of the
// memory-system time and explaining the smaller ILP benefit on the DEC
// machines.  On the SuperSPARC's 20 KB 5-way I-cache the effect vanishes.
//
// This bench replays the synthetic instruction streams on every machine
// model and reports fetch/miss/cycle counts per implementation.
#include <cstdio>

#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    constexpr std::uint64_t packets = 16;       // one 15 KB file at 1 KB
    constexpr std::size_t wire_per_packet = 1024;

    std::printf("=== A4: instruction-cache behaviour of fused vs layered "
                "loops ===\n\n");
    stats::table table({"machine", "impl", "ifetch lines", "ifetch misses",
                        "icache cycles", "misses/packet"});
    for (const machine_model& m : paper_machines()) {
        for (const impl_kind impl : {impl_kind::ilp, impl_kind::layered}) {
            const icache_replay_result r = replay_icache(
                m, impl, cipher_kind::safer_simplified, packets,
                wire_per_packet);
            table.row()
                .cell(m.display)
                .cell(impl == impl_kind::ilp ? "ILP" : "non-ILP")
                .cell(r.fetch_lines)
                .cell(r.misses)
                .cell(r.cycles)
                .cell(static_cast<double>(r.misses) /
                          static_cast<double>(packets),
                      1);
        }
    }
    table.print();
    std::printf("\nShape (paper §4.2): on the AXP machines the ILP case"
                " shows far more I-cache misses than non-ILP (their extra"
                " memory-system time is 24-28%% of the total); on the"
                " SPARCstations instruction misses are negligible and"
                " identical for both implementations.\n");
    return 0;
}
