// A2 — §2.2: word filters (4-byte handoff) vs Le = lcm(...) exchanged units.
//
// The paper's example: encryption works on 8-byte units, the checksum on
// 2-byte units; a word filter hands data out in 4-byte words, which costs
// two stores per cipher block at the next consumer where exchanging
// lcm(8,2) = 8-byte units costs one.  This bench measures both the
// simulated store counts (the paper's argument) and native wall-clock.
#include <chrono>
#include <cstdio>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "core/word_filter.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "stats/table.h"
#include "util/rng.h"

namespace {

using namespace ilp;

std::array<std::byte, 8> key() {
    std::array<std::byte, 8> k;
    rng r(3);
    r.fill(k);
    return k;
}

}  // namespace

int main() {
    constexpr std::size_t n = 64 * 1024;
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    byte_buffer src(n), dst_filter(n), dst_fused(n);
    rng r(4);
    r.fill(src.span());

    // --- simulated memory-operation counts
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory sim(sys);

    checksum::inet_accumulator acc_filter;
    core::cipher_word_filter<memsim::sim_memory, crypto::safer_simplified,
                             true>
        enc_filter(cipher);
    core::checksum_word_filter<memsim::sim_memory> sum_filter(acc_filter);
    core::sink_word_filter<memsim::sim_memory> sink(dst_filter.span());
    enc_filter.set_next(&sum_filter);
    sum_filter.set_next(&sink);
    core::feed_words(sim, enc_filter, src.span());
    const auto filter_reads = sys.data_stats().reads.total_accesses();
    const auto filter_writes = sys.data_stats().writes.total_accesses();

    sys.reset(true);
    checksum::inet_accumulator acc_fused;
    core::encrypt_stage<crypto::safer_simplified> enc(cipher);
    core::checksum_tap8 tap(acc_fused);
    auto pipe = core::make_pipeline(enc, tap);
    pipe.run(sim, core::span_source(src.span()),
             core::span_dest(dst_fused.span()));
    const auto fused_reads = sys.data_stats().reads.total_accesses();
    const auto fused_writes = sys.data_stats().writes.total_accesses();

    const bool identical =
        std::memcmp(dst_filter.data(), dst_fused.data(), n) == 0 &&
        acc_filter.finish() == acc_fused.finish();

    std::printf("=== A2: word-filter (4 B handoff) vs Le = lcm(8,2,Ls) = 8 B "
                "units, %zu KB message ===\n\n", n / 1024);
    stats::table table({"variant", "data reads", "data writes",
                        "writes per 8B block"});
    table.row()
        .cell("word filter (4 B)")
        .cell(filter_reads)
        .cell(filter_writes)
        .cell(static_cast<double>(filter_writes) / (n / 8.0), 2);
    table.row()
        .cell("fused Le = 8 B")
        .cell(fused_reads)
        .cell(fused_writes)
        .cell(static_cast<double>(fused_writes) / (n / 8.0), 2);
    table.print();
    std::printf("\noutputs identical: %s\n", identical ? "yes" : "NO (BUG)");
    std::printf("Paper's claim: the 4-byte handout \"requires 2 write"
                " operations\" per 8-byte cipher block where the lcm rule"
                " needs 1 — the ratio above should be 2.0 vs 1.0.\n");

    // --- native wall-clock
    const memsim::direct_memory mem;
    const auto time_it = [&](auto&& fn) {
        fn();  // warm-up
        const int iterations = 200;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iterations; ++i) fn();
        const auto end = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(end - start).count() /
               iterations * 1e6;
    };
    const double filter_us = time_it([&] {
        checksum::inet_accumulator acc;
        core::cipher_word_filter<memsim::direct_memory,
                                 crypto::safer_simplified, true>
            e(cipher);
        core::checksum_word_filter<memsim::direct_memory> s(acc);
        core::sink_word_filter<memsim::direct_memory> out(dst_filter.span());
        e.set_next(&s);
        s.set_next(&out);
        core::feed_words(mem, e, src.span());
    });
    const double fused_us = time_it([&] {
        checksum::inet_accumulator acc;
        core::encrypt_stage<crypto::safer_simplified> e(cipher);
        core::checksum_tap8 t(acc);
        auto p = core::make_pipeline(e, t);
        p.run(mem, core::span_source(src.span()),
              core::span_dest(dst_fused.span()));
    });
    std::printf("\nnative wall-clock for %zu KB: word-filter %.0f us,"
                " fused %.0f us (%.1fx)\n",
                n / 1024, filter_us, fused_us, filter_us / fused_us);
    return identical ? 0 : 1;
}
