// E2 — Figure 7: ILP and non-ILP *send* packet processing times for 1 kbyte
// packets across the seven machine models (same workload as Figure 6).
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    std::printf("=== Figure 7: send packet processing, 1 KB packets (us) "
                "===\n");
    stats::table table({"machine", "non-ILP", "ILP", "gain %",
                        "paper non-ILP", "paper ILP", "paper gain %"});
    for (const machine_model& m : paper_machines()) {
        const auto ilp_run = run_standard_experiment(
            m, impl_kind::ilp, cipher_kind::safer_simplified, 1024);
        const auto lay_run = run_standard_experiment(
            m, impl_kind::layered, cipher_kind::safer_simplified, 1024);
        const auto* paper = bench::find_table1(m.name, 1024);
        table.row()
            .cell(m.display)
            .cell(lay_run.send_us_per_packet, 0)
            .cell(ilp_run.send_us_per_packet, 0)
            .cell(stats::percent_gain(lay_run.send_us_per_packet,
                                      ilp_run.send_us_per_packet),
                  1)
            .cell(paper->non_ilp_send_us, 0)
            .cell(paper->ilp_send_us, 0)
            .cell(stats::percent_gain(paper->non_ilp_send_us,
                                      paper->ilp_send_us),
                  1);
    }
    table.print();
    std::printf("\nShape: integrating encryption and checksumming into"
                " marshalling cuts send processing on every machine (paper:"
                " 58 us / 16%% on the SS10-30, 50 us / 24%% on the"
                " SS20-60, 25 us / 13%% on the AXP3000/800).\n");
    return 0;
}
