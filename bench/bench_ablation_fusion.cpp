// A1 — §3.2.1: macros (compile-time fusion) vs function calls.
//
// "Experiments have shown that substituting macros by function calls
// results in the loss of all performance benefits gained by ILP."
//
// Three variants run the identical encrypt+checksum+copy work natively:
//   fused:      compile-time pipeline, stage calls force-inlined
//               (the modern equivalent of the paper's macro expansion);
//   fn-pointer: dynamic_pipeline — same loop, every per-unit stage call
//               through a never-inlined function pointer;
//   word-filter: Abbott & Peterson word filters — virtual call per 4-byte
//               word, the fully modular composition.
// The layered (non-ILP) path is included as the reference the gains are
// measured against.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/dynamic_pipeline.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/stage.h"
#include "core/word_filter.h"
#include "crypto/safer_simplified.h"
#include "util/rng.h"

namespace {

using namespace ilp;
using memsim::direct_memory;

struct fixture {
    crypto::safer_simplified cipher;
    byte_buffer src;
    byte_buffer dst;
    byte_buffer staging;

    explicit fixture(std::size_t n)
        : cipher(make_key()), src(n), dst(n), staging(n) {
        rng r(99);
        r.fill(src.span());
    }

    static std::span<const std::byte> make_key() {
        static const std::array<std::byte, 8> key = [] {
            std::array<std::byte, 8> k;
            rng r(1);
            r.fill(k);
            return k;
        }();
        return key;
    }
};

void bm_fused(benchmark::State& state) {
    fixture f(static_cast<std::size_t>(state.range(0)));
    const direct_memory mem;
    for (auto _ : state) {
        checksum::inet_accumulator acc;
        core::encrypt_stage<crypto::safer_simplified> enc(f.cipher);
        core::checksum_tap8 tap(acc);
        auto pipe = core::make_pipeline(enc, tap);
        pipe.run(mem, core::span_source(f.src.span()),
                 core::span_dest(f.dst.span()));
        benchmark::DoNotOptimize(acc.finish());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void bm_function_pointers(benchmark::State& state) {
    fixture f(static_cast<std::size_t>(state.range(0)));
    const direct_memory mem;
    for (auto _ : state) {
        checksum::inet_accumulator acc;
        core::encrypt_stage<crypto::safer_simplified> enc(f.cipher);
        core::checksum_tap8 tap(acc);
        core::dynamic_pipeline<direct_memory> pipe;
        pipe.add_stage(enc);
        pipe.add_stage(tap);
        pipe.run(mem, core::span_source(f.src.span()),
                 core::span_dest(f.dst.span()));
        benchmark::DoNotOptimize(acc.finish());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void bm_word_filters(benchmark::State& state) {
    fixture f(static_cast<std::size_t>(state.range(0)));
    const direct_memory mem;
    for (auto _ : state) {
        checksum::inet_accumulator acc;
        core::cipher_word_filter<direct_memory, crypto::safer_simplified, true>
            enc(f.cipher);
        core::checksum_word_filter<direct_memory> sum(acc);
        core::sink_word_filter<direct_memory> sink(f.dst.span());
        enc.set_next(&sum);
        sum.set_next(&sink);
        core::feed_words(mem, enc, f.src.span());
        benchmark::DoNotOptimize(acc.finish());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void bm_layered(benchmark::State& state) {
    fixture f(static_cast<std::size_t>(state.range(0)));
    const direct_memory mem;
    for (auto _ : state) {
        core::marshal_to_buffer(mem, core::span_source(f.src.span()),
                                f.staging.span());
        core::encrypt_stage<crypto::safer_simplified> enc(f.cipher);
        core::apply_stage_in_place(mem, enc, f.staging.span());
        core::copy_pass(mem, f.staging.span(), f.dst.span());
        checksum::inet_accumulator acc;
        core::checksum_pass(mem, acc, f.dst.span(), 8);
        benchmark::DoNotOptimize(acc.finish());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

BENCHMARK(bm_fused)->Arg(1024)->Arg(16384)->Arg(262144);
BENCHMARK(bm_function_pointers)->Arg(1024)->Arg(16384)->Arg(262144);
BENCHMARK(bm_word_filters)->Arg(1024)->Arg(16384)->Arg(262144);
BENCHMARK(bm_layered)->Arg(1024)->Arg(16384)->Arg(262144);

}  // namespace

int main(int argc, char** argv) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    std::printf("\nA1 shape check (§3.2.1): statically fused beats the"
                " function-pointer composition, which gives back the ILP"
                " gain over the layered baseline — the paper's reason for"
                " choosing macros over function pointers.  (On modern"
                " branch-predicted cores the penalty for indirect calls is"
                " far milder than in 1995, and the cipher dominates; the"
                " ordering fused > layered >= fn-pointer is the shape to"
                " check.)\n");
    return 0;
}
