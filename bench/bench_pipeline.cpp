// Pipelined-dataplane ablation: serial vs stage-pipelined reply path,
// swept over the scheduler batch size k.
//
// The tentpole contract is that intra-flow stage pipelining over SPSC rings
// — segmentize → fused marshal/encrypt/checksum → ack/window bookkeeping —
// is a *scheduling* transformation: every cell of the {serial, pipelined×k,
// worker-threaded pipelined} grid must produce the identical fleet digest.
// The bench enforces that (exit 1 on any mismatch), then reports what the
// pipeline actually did: segments and batches carried, ring stall counts
// (full/empty waits), and a per-stage memsim attribution of the server
// side's memory cycles from tracer spans — the Figure 13/14 breakdown for
// the three pipeline stages, showing the fused stage dominating.
//
// Observability hooks (the BENCH regression pipeline):
//   --smoke        smaller fleet (fast CI variant; the checked-in baseline
//                  bench/baselines/BENCH_pipeline.json records this run)
//   --json=PATH    write a versioned BENCH JSON report (schema v2) for
//                  `ilp-trace --diff` against the baseline.
//   --trace=PATH   Chrome trace of the k=4 simulated run, for
//                  `ilp-trace summarize --per-stage-worker`.
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/safer_simplified.h"
#include "engine/fleet.h"
#include "memsim/configs.h"
#include "obs/bench_json.h"
#include "obs/export_chrome.h"
#include "obs/tracer.h"
#include "stats/table.h"

namespace {

using namespace ilp;
using ilp::engine::fleet_config;
using ilp::engine::fleet_report;
using cipher = crypto::safer_simplified;

fleet_config pipe_fleet(std::uint32_t flows, std::size_t file_bytes,
                        std::size_t depth, std::size_t k,
                        bool workers = false) {
    fleet_config cfg;
    cfg.flows = flows;
    cfg.shards = 4;
    cfg.policy = engine::sched_policy::deficit_round_robin;
    cfg.pipeline_workers = workers;
    cfg.threaded = workers;  // the worker leg also threads the shards
    cfg.defaults.file_bytes = file_bytes;
    cfg.defaults.packet_wire_bytes = 1024;
    cfg.defaults.pipeline_depth = depth;
    cfg.defaults.pipeline_batch = k;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else {
            std::fprintf(stderr,
                         "usage: bench_pipeline [--smoke] [--json=PATH]"
                         " [--trace=PATH]\n");
            return 2;
        }
    }

    const std::uint32_t flows = smoke ? 8 : 32;
    const std::size_t file_bytes = smoke ? 4 * 1024 : 15 * 1024;
    const std::size_t depth = 4;
    const std::vector<std::size_t> batches = {1, 4, 16};

    obs::bench_report report("pipeline");
    report.meta("mode", smoke ? "smoke" : "full");
    report.meta("flows", std::to_string(flows));
    report.meta("file_bytes", std::to_string(file_bytes));
    report.meta("pipeline_depth", std::to_string(depth));
    report.meta("shards", "4");
    report.meta("cipher", "safer_simplified");

    std::printf("=== Pipelined dataplane ablation: serial vs SPSC-ring "
                "stage pipelining (depth %zu) ===\n\n",
                depth);

    // Digest gate #1: the serial reference.
    const fleet_report serial = engine::run_fleet_native<cipher>(
        pipe_fleet(flows, file_bytes, 0, 1));
    if (serial.completed != flows) {
        std::fprintf(stderr, "ERROR: serial fleet failed (%u/%u)\n",
                     serial.completed, flows);
        return 1;
    }

    stats::table table({"config", "digest", "segments", "batches",
                        "full waits", "empty waits"});
    table.row()
        .cell("serial")
        .cell("(reference)")
        .cell(0.0, 0)
        .cell(0.0, 0)
        .cell(0.0, 0)
        .cell(0.0, 0);

    // The k sweep: every batch size must reproduce the serial digest, and
    // the segment/batch counters expose the batching actually happening
    // (k segments per stage-A burst => segments/batches ≈ k while the
    // window allows it).
    for (const std::size_t k : batches) {
        const fleet_report piped = engine::run_fleet_native<cipher>(
            pipe_fleet(flows, file_bytes, depth, k));
        const bool match = piped.digest() == serial.digest();
        if (!match) {
            std::fprintf(stderr,
                         "ERROR: pipelined k=%zu diverged from serial "
                         "(digest %016llx vs %016llx)\n",
                         k, static_cast<unsigned long long>(piped.digest()),
                         static_cast<unsigned long long>(serial.digest()));
            return 1;
        }
        const double segments =
            static_cast<double>(piped.metrics.counter("pipeline.segments"));
        const double batch_count =
            static_cast<double>(piped.metrics.counter("pipeline.batches"));
        const double full_waits = static_cast<double>(
            piped.metrics.counter("pipeline.ring.full_waits"));
        const double empty_waits = static_cast<double>(
            piped.metrics.counter("pipeline.ring.empty_waits"));
        if (segments == 0.0) {
            std::fprintf(stderr,
                         "ERROR: pipelined k=%zu carried no segments\n", k);
            return 1;
        }
        table.row()
            .cell("pipelined k=" + std::to_string(k))
            .cell("match")
            .cell(segments, 0)
            .cell(batch_count, 0)
            .cell(full_waits, 0)
            .cell(empty_waits, 0);
        const std::string key = "k" + std::to_string(k);
        report.metric(key + ".segments", segments, "count",
                      obs::direction::info);
        report.metric(key + ".batches", batch_count, "count",
                      obs::direction::info);
        report.metric(key + ".segments_per_batch",
                      batch_count == 0.0 ? 0.0 : segments / batch_count,
                      "ratio", obs::direction::higher_is_better);
        report.metric(key + ".ring_full_waits", full_waits, "count",
                      obs::direction::info);
        report.metric(key + ".ring_empty_waits", empty_waits, "count",
                      obs::direction::info);
    }
    table.print();

    // Digest gate #2: the fused stage on a real worker thread per shard,
    // shards threaded too — still the serial digest.
    const fleet_report workers = engine::run_fleet_native<cipher>(
        pipe_fleet(flows, file_bytes, depth, 4, true));
    if (workers.digest() != serial.digest()) {
        std::fprintf(stderr,
                     "ERROR: worker-threaded pipeline diverged from serial "
                     "(digest %016llx vs %016llx)\n",
                     static_cast<unsigned long long>(workers.digest()),
                     static_cast<unsigned long long>(serial.digest()));
        return 1;
    }
    std::printf("\nworker-threaded pipeline (k=4): digest match\n");
    report.metric("determinism.digest_stable", 1.0, "bool",
                  obs::direction::higher_is_better);

    // Per-stage memsim attribution: a simulated-memory fleet (one serial
    // shard — the tracer is thread-local; simulated memory demotes the
    // fused stage to inline stepping) with spans on.  Each pipeline stage's
    // *self* cycles come straight from the tracer aggregates, per k, giving
    // the paper's Figure 13/14 cost breakdown for the pipelined path: the
    // fused marshal/encrypt/checksum loop carries the memory traffic,
    // segmentize and bookkeeping stay cheap.
    std::printf("\n--- per-stage server memory attribution (SuperSPARC, "
                "simulated) ---\n");
    // The three stage spans are disjoint siblings, so *inclusive* totals
    // give a double-count-free per-stage cost split (the fused stage's
    // nested fused_part spans fold into it, where they belong).
    stats::table stage_table(
        {"k", "stage", "spans", "cycles", "accesses"});
    for (const std::size_t k : batches) {
        obs::tracer tracer(1 << 16);
        obs::tracer* prev = obs::tracer::install(&tracer);
        fleet_config sim_cfg =
            pipe_fleet(smoke ? 4 : 8, file_bytes, depth, k);
        sim_cfg.shards = 1;
        const fleet_report sim = engine::run_fleet_simulated<cipher>(
            sim_cfg, memsim::supersparc_no_l2());
        obs::tracer::install(prev);
        if (sim.completed != sim_cfg.flows) {
            std::fprintf(stderr, "ERROR: simulated fleet k=%zu failed\n", k);
            return 1;
        }
        if (k == 4 && !trace_path.empty() &&
            !obs::write_chrome_trace(tracer, trace_path,
                                     obs::trace_timebase::sim_us)) {
            std::fprintf(stderr, "ERROR: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        // Access counts are address-independent, so they are bit-stable
        // across runs and machines — those are the gated metrics.  Cycles
        // and misses depend on where the allocator put the buffers (cache
        // set mapping), so they are reported as info only.
        std::uint64_t fused_accesses = 0;
        std::uint64_t other_accesses = 0;
        for (const auto& [stage, totals] : tracer.stages()) {
            if (stage.side != "server" || stage.category != "pipeline") {
                continue;
            }
            stage_table.row()
                .cell(static_cast<double>(k), 0)
                .cell(stage.name)
                .cell(static_cast<double>(totals.count), 0)
                .cell(static_cast<double>(totals.incl.cycles), 0)
                .cell(static_cast<double>(totals.incl.accesses()), 0);
            const std::string stage_key =
                "stage.k" + std::to_string(k) + "." + stage.name;
            report.metric(stage_key + ".accesses",
                          static_cast<double>(totals.incl.accesses()),
                          "accesses", obs::direction::lower_is_better);
            report.metric(stage_key + ".cycles",
                          static_cast<double>(totals.incl.cycles), "cycles",
                          obs::direction::info);
            if (stage.name == "fused_loop") {
                fused_accesses += totals.incl.accesses();
            } else {
                other_accesses += totals.incl.accesses();
            }
        }
        // The ILP thesis, restated per stage: the fused loop is where the
        // data manipulations (and so the memory traffic) live.
        if (fused_accesses == 0 || fused_accesses <= other_accesses) {
            std::fprintf(stderr,
                         "ERROR: k=%zu fused stage does not dominate "
                         "(fused %llu accesses vs other stages %llu)\n",
                         k, static_cast<unsigned long long>(fused_accesses),
                         static_cast<unsigned long long>(other_accesses));
            return 1;
        }
        report.metric("stage.k" + std::to_string(k) + ".fused_share_pct",
                      100.0 * static_cast<double>(fused_accesses) /
                          static_cast<double>(fused_accesses + other_accesses),
                      "percent", obs::direction::higher_is_better);
    }
    stage_table.print();

    std::printf("\nShape: every pipelined configuration reproduces the "
                "serial digest (the pipeline is a scheduling transformation,"
                " not a behavioural one); the fused stage carries the memory"
                " traffic, so deeper batching amortises scheduler visits"
                " without touching per-byte cost.\n");

    std::fputs(report.render().c_str(), stdout);
    if (!json_path.empty() && !report.write(json_path)) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
