// Throughput vs. concurrent flow count, ILP vs. layered, on the multi-flow
// engine (engine::run_fleet): the scaling companion to the single-flow
// figure benches.
//
// Sweeps fleet sizes on a 4-shard deficit-round-robin engine, re-runs the
// largest fleet to assert the determinism contract (same seed -> same
// fleet_report digest; a mismatch fails the bench), and reports per-shard
// cache contention from a simulated-memory fleet.  Emits the versioned
// BENCH JSON schema; the checked-in baseline (bench/baselines/
// BENCH_scale.json) records the `--smoke` sweep that CI diffs against.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "crypto/safer_simplified.h"
#include "engine/fleet.h"
#include "memsim/configs.h"
#include "obs/bench_json.h"
#include "obs/export_chrome.h"
#include "obs/tracer.h"

namespace {

using ilp::engine::fleet_config;
using ilp::engine::fleet_report;

fleet_config fleet_of(std::uint32_t flows, ilp::app::path_mode mode) {
    fleet_config cfg;
    cfg.flows = flows;
    cfg.shards = 4;
    cfg.policy = ilp::engine::sched_policy::deficit_round_robin;
    cfg.defaults.mode = mode;
    cfg.defaults.file_bytes = 15 * 1024;  // the paper's transfer unit
    cfg.defaults.packet_wire_bytes = 1024;
    return cfg;
}

void report_fleet(ilp::obs::bench_report& report, const std::string& key,
                  const fleet_report& r) {
    using ilp::obs::direction;
    report.metric(key + ".completed", static_cast<double>(r.completed),
                  "count", direction::higher_is_better);
    report.metric(key + ".verified", static_cast<double>(r.verified), "count",
                  direction::higher_is_better);
    report.metric(key + ".failed", static_cast<double>(r.failed), "count",
                  direction::lower_is_better);
    report.metric(key + ".aggregate_goodput_mbps",
                  r.aggregate_throughput_mbps(), "mbps",
                  direction::higher_is_better);
    report.metric(key + ".max_elapsed_ms",
                  static_cast<double>(r.max_elapsed_us) / 1000.0, "ms",
                  direction::lower_is_better);
    report.metric(key + ".rpc_retries",
                  static_cast<double>(r.metrics.counter("engine.rpc_retries")),
                  "count", direction::lower_is_better);
    report.metric(
        key + ".tcp_retransmissions",
        static_cast<double>(r.metrics.counter("engine.tcp_retransmissions")),
        "count", direction::lower_is_better);
    if (const ilp::obs::histogram* h =
            r.metrics.find_hist("engine.flow_elapsed_us")) {
        report.histogram_metric(key + ".flow_elapsed_us", *h, "us");
    }
}

// The 10k-flow smoke tier: small files so the fleet fits CI, a deterministic
// doomed minority so the flight-recorder black boxes have something to say,
// and a 1% trace-sampling policy whose selected set is a pure function of
// (seed, flow id).  499 is odd and coprime to the shard count, so each doom
// class (~21 flows) spreads across all four shards.
fleet_config fleet10k(std::uint32_t rate_permyriad) {
    fleet_config cfg = fleet_of(10'000, ilp::app::path_mode::ilp);
    cfg.defaults.file_bytes = 2048;
    cfg.trace_sampler.seed = 0x0b5eedull;
    cfg.trace_sampler.rate_permyriad = rate_permyriad;
    cfg.per_flow = [](std::uint32_t f, ilp::engine::flow_config& fc) {
        switch (f % 499) {
            case 3:  // total reply loss + tiny retry budget -> gave_up
                fc.forward_faults.drop_probability = 1.0;
                fc.retry.max_attempts = 2;
                fc.retry.response_timeout_us = 2'000;
                fc.retry.backoff_us = 1'000;
                fc.retry.max_backoff_us = 1'000;
                break;
            case 7:  // total reply loss + 10ms deadline -> deadline_exceeded
                fc.forward_faults.drop_probability = 1.0;
                fc.deadline_us = 10'000;
                break;
            case 11:  // illegal crc32 tap -> legality-gate demotion
                fc.tap = ilp::app::compose_tap::crc32;
                break;
            default:
                break;
        }
    };
    return cfg;
}

double run_seconds(const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ilp;
    using cipher = crypto::safer_simplified;

    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    std::string fleet_json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else if (arg.rfind("--fleet-json=", 0) == 0) {
            fleet_json_path = arg.substr(13);
        } else {
            std::fprintf(stderr,
                         "usage: bench_scale [--smoke] [--json=PATH] "
                         "[--trace=PATH] [--fleet-json=PATH]\n");
            return 2;
        }
    }

    // The smoke sweep is a strict prefix of the full one, so the checked-in
    // smoke baseline stays diffable against full runs.
    const std::vector<std::uint32_t> counts =
        smoke ? std::vector<std::uint32_t>{4, 16}
              : std::vector<std::uint32_t>{4, 16, 64, 256};

    obs::bench_report report("scale");
    report.meta("file_kb", "15");
    report.meta("packet_bytes", "1024");
    report.meta("shards", "4");
    report.meta("policy", "deficit_round_robin");
    report.meta("cipher", "safer_simplified");

    for (const std::uint32_t n : counts) {
        for (const app::path_mode mode :
             {app::path_mode::ilp, app::path_mode::layered}) {
            const fleet_report r =
                engine::run_fleet_native<cipher>(fleet_of(n, mode));
            const std::string key =
                "f" + std::to_string(n) +
                (mode == app::path_mode::ilp ? ".ilp" : ".layered");
            report_fleet(report, key, r);
        }
    }

    // Determinism gate: the largest fleet, twice, must produce identical
    // per-flow outcomes.
    const std::uint32_t largest = counts.back();
    const fleet_report once =
        engine::run_fleet_native<cipher>(fleet_of(largest, app::path_mode::ilp));
    const fleet_report again =
        engine::run_fleet_native<cipher>(fleet_of(largest, app::path_mode::ilp));
    if (once.digest() != again.digest()) {
        std::fprintf(stderr,
                     "ERROR: fleet of %u flows is not deterministic "
                     "(digest %016llx vs %016llx)\n",
                     largest, static_cast<unsigned long long>(once.digest()),
                     static_cast<unsigned long long>(again.digest()));
        return 1;
    }
    report.metric("determinism.digest_stable", 1.0, "bool",
                  obs::direction::higher_is_better);

    // Per-shard cache contention, ILP vs. layered: a small fleet over
    // simulated memory, one client/server memory-system pair per shard.
    // Virtual-clock goodput is path-agnostic by construction, so this is
    // where the ILP-vs-layered difference shows: memory cycles per
    // delivered byte under concurrent flows.
    for (const app::path_mode mode :
         {app::path_mode::ilp, app::path_mode::layered}) {
        fleet_config sim_cfg = fleet_of(8, mode);
        sim_cfg.shards = 2;
        const fleet_report sim = engine::run_fleet_simulated<cipher>(
            sim_cfg, memsim::supersparc_no_l2());
        const std::string mode_key =
            mode == app::path_mode::ilp ? "sim.ilp" : "sim.layered";
        std::uint64_t total_cycles = 0;
        for (const engine::shard_summary& s : sim.shards) {
            const std::string key = mode_key + ".shard" + std::to_string(s.shard);
            total_cycles += s.client_mem.cycles + s.server_mem.cycles;
            report.metric(key + ".mem_cycles",
                          static_cast<double>(s.client_mem.cycles +
                                              s.server_mem.cycles),
                          "cycles", obs::direction::info);
            report.metric(key + ".l1d_misses",
                          static_cast<double>(s.client_mem.l1d_misses +
                                              s.server_mem.l1d_misses),
                          "count", obs::direction::info);
        }
        report.metric(mode_key + ".cycles_per_byte",
                      sim.payload_bytes == 0
                          ? 0.0
                          : static_cast<double>(total_cycles) /
                                static_cast<double>(sim.payload_bytes),
                      "cycles", obs::direction::lower_is_better);
    }

    // 10k-flow smoke tier: the fleet-observability workout.  One untraced
    // run is the behavioural reference; a tracer-installed 1%-sampled run
    // must match its digest exactly (observability can see the fleet but
    // never steer it) and stay within a bounded wall-clock overhead; 0% and
    // 100% sampling runs pin down that the sampling *rate* cannot perturb
    // outcomes either.
    {
        fleet_report plain;
        const double untraced_s = run_seconds([&] {
            plain = engine::run_fleet_native<cipher>(fleet10k(100));
        });

        // 1% of 10k flows span-trace ~100k events; size the ring so the
        // canonical run keeps them all (dropped == 0 is part of the gate).
        obs::tracer tracer(1 << 18);
        obs::tracer* prev = obs::tracer::install(&tracer);
        fleet_report traced;
        const double traced_s = run_seconds([&] {
            traced = engine::run_fleet_native<cipher>(fleet10k(100));
        });
        obs::tracer::install(prev);
        traced.metrics.add("obs.trace.dropped", tracer.dropped());

        if (traced.digest() != plain.digest()) {
            std::fprintf(stderr,
                         "ERROR: tracing perturbed the 10k fleet "
                         "(digest %016llx untraced vs %016llx traced)\n",
                         static_cast<unsigned long long>(plain.digest()),
                         static_cast<unsigned long long>(traced.digest()));
            return 1;
        }
        bool sampling_stable = true;
        for (const std::uint32_t rate : {0u, 10'000u}) {
            obs::tracer t(1 << 16);
            obs::tracer* p = obs::tracer::install(&t);
            const fleet_report r =
                engine::run_fleet_native<cipher>(fleet10k(rate));
            obs::tracer::install(p);
            if (r.digest() != plain.digest()) {
                std::fprintf(
                    stderr,
                    "ERROR: sampling rate %u permyriad perturbed the 10k "
                    "fleet (digest %016llx vs %016llx)\n",
                    rate, static_cast<unsigned long long>(plain.digest()),
                    static_cast<unsigned long long>(r.digest()));
                sampling_stable = false;
            }
        }
        if (!sampling_stable) return 1;

        // Wall-clock overhead of always-on observability (flight recorders,
        // latency sketches, aggregates) plus 1% span sampling.  Wall time is
        // machine-dependent, so the ratio is an info metric — but a blow-up
        // is a bug, so the bench itself enforces the bound.
        const double overhead =
            untraced_s > 0.0 ? traced_s / untraced_s : 1.0;
        if (overhead > 2.0) {
            std::fprintf(stderr,
                         "ERROR: observability overhead ratio %.2f exceeds "
                         "2.0 (untraced %.2fs, traced %.2fs)\n",
                         overhead, untraced_s, traced_s);
            return 1;
        }

        report.meta("fleet10k_flows", "10000");
        report.meta("fleet10k_file_bytes", "2048");
        report.meta("fleet10k_sampling_permyriad", "100");
        report.metric("fleet.completed", static_cast<double>(traced.completed),
                      "count", obs::direction::higher_is_better);
        report.metric("fleet.verified", static_cast<double>(traced.verified),
                      "count", obs::direction::higher_is_better);
        report.metric("fleet.failed", static_cast<double>(traced.failed),
                      "count", obs::direction::lower_is_better);
        report.metric("fleet.deadline_exceeded",
                      static_cast<double>(traced.deadline_exceeded), "count",
                      obs::direction::lower_is_better);
        report.metric(
            "fleet.fallbacks",
            static_cast<double>(
                traced.metrics.counter("analysis.gate.fallbacks")),
            "count", obs::direction::lower_is_better);
        report.histogram_metric("fleet.flow_latency", traced.flow_latency,
                                "us");
        report.metric("obs.trace.sampled_flows",
                      static_cast<double>(traced.trace_sampled), "count",
                      obs::direction::info);
        report.metric("obs.trace.dropped",
                      static_cast<double>(tracer.dropped()), "count",
                      obs::direction::lower_is_better);
        report.metric("fleet.sampling_digest_stable", 1.0, "bool",
                      obs::direction::higher_is_better);
        report.metric("fleet.obs_overhead_ratio", overhead, "ratio",
                      obs::direction::info);

        if (!fleet_json_path.empty() &&
            !engine::write_fleet_report_json(traced, fleet_json_path)) {
            std::fprintf(stderr, "ERROR: cannot write %s\n",
                         fleet_json_path.c_str());
            return 1;
        }
    }

    if (!trace_path.empty()) {
        // One extra instrumented fleet on a single serial shard (the tracer
        // is thread-local): every span carries its flow id, so
        // `ilp-trace summarize --per-flow` attributes stage costs per flow.
        obs::tracer tracer(1 << 16);
        obs::tracer* prev = obs::tracer::install(&tracer);
        fleet_config traced = fleet_of(4, app::path_mode::ilp);
        traced.shards = 1;
        const fleet_report r = engine::run_fleet_native<cipher>(traced);
        obs::tracer::install(prev);
        if (r.completed != traced.flows) {
            std::fprintf(stderr, "ERROR: traced fleet failed\n");
            return 1;
        }
        if (!obs::write_chrome_trace(tracer, trace_path,
                                     obs::trace_timebase::sim_us)) {
            std::fprintf(stderr, "ERROR: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
    }

    std::fputs(report.render().c_str(), stdout);
    if (!json_path.empty() && !report.write(json_path)) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
