// Throughput vs. concurrent flow count, ILP vs. layered, on the multi-flow
// engine (engine::run_fleet): the scaling companion to the single-flow
// figure benches.
//
// Sweeps fleet sizes on a 4-shard deficit-round-robin engine, re-runs the
// largest fleet to assert the determinism contract (same seed -> same
// fleet_report digest; a mismatch fails the bench), and reports per-shard
// cache contention from a simulated-memory fleet.  Emits the versioned
// BENCH JSON schema; the checked-in baseline (bench/baselines/
// BENCH_scale.json) records the `--smoke` sweep that CI diffs against.
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/safer_simplified.h"
#include "engine/fleet.h"
#include "memsim/configs.h"
#include "obs/bench_json.h"
#include "obs/export_chrome.h"
#include "obs/tracer.h"

namespace {

using ilp::engine::fleet_config;
using ilp::engine::fleet_report;

fleet_config fleet_of(std::uint32_t flows, ilp::app::path_mode mode) {
    fleet_config cfg;
    cfg.flows = flows;
    cfg.shards = 4;
    cfg.policy = ilp::engine::sched_policy::deficit_round_robin;
    cfg.defaults.mode = mode;
    cfg.defaults.file_bytes = 15 * 1024;  // the paper's transfer unit
    cfg.defaults.packet_wire_bytes = 1024;
    return cfg;
}

void report_fleet(ilp::obs::bench_report& report, const std::string& key,
                  const fleet_report& r) {
    using ilp::obs::direction;
    report.metric(key + ".completed", static_cast<double>(r.completed),
                  "count", direction::higher_is_better);
    report.metric(key + ".verified", static_cast<double>(r.verified), "count",
                  direction::higher_is_better);
    report.metric(key + ".failed", static_cast<double>(r.failed), "count",
                  direction::lower_is_better);
    report.metric(key + ".aggregate_goodput_mbps",
                  r.aggregate_throughput_mbps(), "mbps",
                  direction::higher_is_better);
    report.metric(key + ".max_elapsed_ms",
                  static_cast<double>(r.max_elapsed_us) / 1000.0, "ms",
                  direction::lower_is_better);
    report.metric(key + ".rpc_retries",
                  static_cast<double>(r.metrics.counter("engine.rpc_retries")),
                  "count", direction::lower_is_better);
    report.metric(
        key + ".tcp_retransmissions",
        static_cast<double>(r.metrics.counter("engine.tcp_retransmissions")),
        "count", direction::lower_is_better);
    if (const ilp::obs::histogram* h =
            r.metrics.find_hist("engine.flow_elapsed_us")) {
        report.histogram_metric(key + ".flow_elapsed_us", *h, "us");
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ilp;
    using cipher = crypto::safer_simplified;

    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else {
            std::fprintf(stderr,
                         "usage: bench_scale [--smoke] [--json=PATH] "
                         "[--trace=PATH]\n");
            return 2;
        }
    }

    // The smoke sweep is a strict prefix of the full one, so the checked-in
    // smoke baseline stays diffable against full runs.
    const std::vector<std::uint32_t> counts =
        smoke ? std::vector<std::uint32_t>{4, 16}
              : std::vector<std::uint32_t>{4, 16, 64, 256};

    obs::bench_report report("scale");
    report.meta("file_kb", "15");
    report.meta("packet_bytes", "1024");
    report.meta("shards", "4");
    report.meta("policy", "deficit_round_robin");
    report.meta("cipher", "safer_simplified");

    for (const std::uint32_t n : counts) {
        for (const app::path_mode mode :
             {app::path_mode::ilp, app::path_mode::layered}) {
            const fleet_report r =
                engine::run_fleet_native<cipher>(fleet_of(n, mode));
            const std::string key =
                "f" + std::to_string(n) +
                (mode == app::path_mode::ilp ? ".ilp" : ".layered");
            report_fleet(report, key, r);
        }
    }

    // Determinism gate: the largest fleet, twice, must produce identical
    // per-flow outcomes.
    const std::uint32_t largest = counts.back();
    const fleet_report once =
        engine::run_fleet_native<cipher>(fleet_of(largest, app::path_mode::ilp));
    const fleet_report again =
        engine::run_fleet_native<cipher>(fleet_of(largest, app::path_mode::ilp));
    if (once.digest() != again.digest()) {
        std::fprintf(stderr,
                     "ERROR: fleet of %u flows is not deterministic "
                     "(digest %016llx vs %016llx)\n",
                     largest, static_cast<unsigned long long>(once.digest()),
                     static_cast<unsigned long long>(again.digest()));
        return 1;
    }
    report.metric("determinism.digest_stable", 1.0, "bool",
                  obs::direction::higher_is_better);

    // Per-shard cache contention, ILP vs. layered: a small fleet over
    // simulated memory, one client/server memory-system pair per shard.
    // Virtual-clock goodput is path-agnostic by construction, so this is
    // where the ILP-vs-layered difference shows: memory cycles per
    // delivered byte under concurrent flows.
    for (const app::path_mode mode :
         {app::path_mode::ilp, app::path_mode::layered}) {
        fleet_config sim_cfg = fleet_of(8, mode);
        sim_cfg.shards = 2;
        const fleet_report sim = engine::run_fleet_simulated<cipher>(
            sim_cfg, memsim::supersparc_no_l2());
        const std::string mode_key =
            mode == app::path_mode::ilp ? "sim.ilp" : "sim.layered";
        std::uint64_t total_cycles = 0;
        for (const engine::shard_summary& s : sim.shards) {
            const std::string key = mode_key + ".shard" + std::to_string(s.shard);
            total_cycles += s.client_mem.cycles + s.server_mem.cycles;
            report.metric(key + ".mem_cycles",
                          static_cast<double>(s.client_mem.cycles +
                                              s.server_mem.cycles),
                          "cycles", obs::direction::info);
            report.metric(key + ".l1d_misses",
                          static_cast<double>(s.client_mem.l1d_misses +
                                              s.server_mem.l1d_misses),
                          "count", obs::direction::info);
        }
        report.metric(mode_key + ".cycles_per_byte",
                      sim.payload_bytes == 0
                          ? 0.0
                          : static_cast<double>(total_cycles) /
                                static_cast<double>(sim.payload_bytes),
                      "cycles", obs::direction::lower_is_better);
    }

    if (!trace_path.empty()) {
        // One extra instrumented fleet on a single serial shard (the tracer
        // is thread-local): every span carries its flow id, so
        // `ilp-trace summarize --per-flow` attributes stage costs per flow.
        obs::tracer tracer(1 << 16);
        obs::tracer* prev = obs::tracer::install(&tracer);
        fleet_config traced = fleet_of(4, app::path_mode::ilp);
        traced.shards = 1;
        const fleet_report r = engine::run_fleet_native<cipher>(traced);
        obs::tracer::install(prev);
        if (r.completed != traced.flows) {
            std::fprintf(stderr, "ERROR: traced fleet failed\n");
            return 1;
        }
        if (!obs::write_chrome_trace(tracer, trace_path,
                                     obs::trace_timebase::sim_us)) {
            std::fprintf(stderr, "ERROR: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
    }

    std::fputs(report.render().c_str(), stdout);
    if (!json_path.empty() && !report.write(json_path)) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
