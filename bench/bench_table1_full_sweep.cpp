// E10 — Annex Table 1: the full sweep.  7 machines x 5 packet sizes x
// {ILP, non-ILP} x {send, receive} packet processing times plus throughput,
// printed next to every published value.
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    std::printf("=== Table 1 (annex): packet processing and throughput of "
                "ILP and non-ILP implementations ===\n");
    std::printf("(columns: measured | paper)\n\n");

    for (const machine_model& m : paper_machines()) {
        std::printf("--- %s (%.0f MHz) ---\n", m.display.c_str(), m.clock_mhz);
        stats::table table({"pkt B", "ILP Mbps", "non Mbps", "ILP send",
                            "ILP recv", "non send", "non recv", "| p.ILP Mbps",
                            "p.non Mbps", "p.ILP send", "p.ILP recv",
                            "p.non send", "p.non recv"});
        for (const std::size_t size : {256u, 512u, 768u, 1024u, 1280u}) {
            const auto ilp_run = run_standard_experiment(
                m, impl_kind::ilp, cipher_kind::safer_simplified, size);
            const auto lay_run = run_standard_experiment(
                m, impl_kind::layered, cipher_kind::safer_simplified, size);
            const auto* paper = bench::find_table1(m.name, size);
            table.row()
                .cell(static_cast<std::uint64_t>(size))
                .cell(ilp_run.throughput_mbps, 2)
                .cell(lay_run.throughput_mbps, 2)
                .cell(ilp_run.send_us_per_packet, 0)
                .cell(ilp_run.recv_us_per_packet, 0)
                .cell(lay_run.send_us_per_packet, 0)
                .cell(lay_run.recv_us_per_packet, 0)
                .cell(std::string("| ") +
                      std::to_string(paper->ilp_mbps).substr(0, 5))
                .cell(paper->non_ilp_mbps, 2)
                .cell(paper->ilp_send_us, 0)
                .cell(paper->ilp_recv_us, 0)
                .cell(paper->non_ilp_send_us, 0)
                .cell(paper->non_ilp_recv_us, 0);
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Shapes to check: ILP beats non-ILP in every row; times grow"
                " with packet size; throughput grows with packet size;"
                " SPARCstations show larger relative gains than Alphas.\n");
    return 0;
}
