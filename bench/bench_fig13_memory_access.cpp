// E8 — Figure 13: simulated memory accesses of the ILP and non-ILP
// implementations (read and write, send and receive side, both ciphers).
//
// The paper instruments the transfer of 10.7 MB of data under shade's
// cachesim; we transfer the same volume (the 15 KB file, 730 copies) under
// the memory-system simulator with the SuperSPARC cache configuration and
// report access counts in millions, plus the headline deltas the paper
// quotes: ILP saves 13.7e6 reads + 12.0e6 writes on the send side and
// 8.4e6 + 8.3e6 on the receive side with the simplified SAFER K-64.
#include <cstdio>

#include "app/harness.h"
#include "bench/paper_data.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"
#include "obs/export_text.h"
#include "obs/tracer.h"
#include "platform/estimator.h"
#include "stats/table.h"

namespace {

using namespace ilp;

struct run_stats {
    memsim::access_stats send;
    memsim::access_stats recv;
    bool ok = false;
};

template <typename Cipher>
run_stats run(app::path_mode mode, obs::tracer* tracer = nullptr) {
    app::transfer_config config;
    config.file_bytes = 15 * 1024;
    config.copies = 730;  // ~10.7 MB, as in the paper
    config.packet_wire_bytes = 1024;
    config.mode = mode;
    config.deadline_us = 3'600'000'000ull;
    memsim::memory_system client(memsim::supersparc_with_l2());
    memsim::memory_system server(memsim::supersparc_with_l2());
    obs::tracer* prev = obs::tracer::install(tracer);
    const auto result =
        app::run_transfer_simulated<Cipher>(config, client, server);
    obs::tracer::install(prev);
    return {server.data_stats(), client.data_stats(),
            result.completed && result.verified};
}

double millions(std::uint64_t v) { return static_cast<double>(v) / 1e6; }

}  // namespace

int main() {
    std::printf("=== Figure 13: memory accesses for 10.7 MB of data "
                "(millions) ===\n");
    std::printf("running 4 instrumented transfers of 10.7 MB each...\n\n");

    obs::tracer ilp_tracer;
    obs::tracer lay_tracer;
    const run_stats safer_ilp =
        run<crypto::safer_simplified>(app::path_mode::ilp, &ilp_tracer);
    const run_stats safer_lay =
        run<crypto::safer_simplified>(app::path_mode::layered, &lay_tracer);
    const run_stats simple_ilp = run<crypto::simple_cipher>(app::path_mode::ilp);
    const run_stats simple_lay =
        run<crypto::simple_cipher>(app::path_mode::layered);
    if (!(safer_ilp.ok && safer_lay.ok && simple_ilp.ok && simple_lay.ok)) {
        std::printf("ERROR: a transfer failed to complete\n");
        return 1;
    }

    stats::table table({"cipher", "side", "impl", "reads M", "writes M",
                        "total M"});
    const auto add = [&](const char* cipher, const char* side,
                         const char* impl, const memsim::access_stats& a) {
        table.row()
            .cell(cipher)
            .cell(side)
            .cell(impl)
            .cell(millions(a.reads.total_accesses()), 1)
            .cell(millions(a.writes.total_accesses()), 1)
            .cell(millions(a.total_accesses()), 1);
    };
    add("simplified SAFER", "send", "ILP", safer_ilp.send);
    add("simplified SAFER", "send", "non-ILP", safer_lay.send);
    add("simplified SAFER", "recv", "ILP", safer_ilp.recv);
    add("simplified SAFER", "recv", "non-ILP", safer_lay.recv);
    add("simple", "send", "ILP", simple_ilp.send);
    add("simple", "send", "non-ILP", simple_lay.send);
    add("simple", "recv", "ILP", simple_ilp.recv);
    add("simple", "recv", "non-ILP", simple_lay.recv);
    table.print();

    const double send_read_delta =
        millions(safer_lay.send.reads.total_accesses() -
                 safer_ilp.send.reads.total_accesses());
    const double send_write_delta =
        millions(safer_lay.send.writes.total_accesses() -
                 safer_ilp.send.writes.total_accesses());
    const double recv_read_delta =
        millions(safer_lay.recv.reads.total_accesses() -
                 safer_ilp.recv.reads.total_accesses());
    const double recv_write_delta =
        millions(safer_lay.recv.writes.total_accesses() -
                 safer_ilp.recv.writes.total_accesses());

    std::printf("\nILP savings with simplified SAFER (vs paper's shade "
                "measurements):\n");
    stats::table deltas({"quantity", "measured M", "paper M"});
    deltas.row().cell("send: fewer reads").cell(send_read_delta, 1).cell(
        ilp::bench::fig13_send_read_delta_m, 1);
    deltas.row().cell("send: fewer writes").cell(send_write_delta, 1).cell(
        ilp::bench::fig13_send_write_delta_m, 1);
    deltas.row().cell("recv: fewer reads").cell(recv_read_delta, 1).cell(
        ilp::bench::fig13_recv_read_delta_m, 1);
    deltas.row().cell("recv: fewer writes").cell(recv_write_delta, 1).cell(
        ilp::bench::fig13_recv_write_delta_m, 1);
    deltas.print();

    const double send_bytes_saved =
        static_cast<double>(safer_lay.send.reads.total_bytes() +
                            safer_lay.send.writes.total_bytes() -
                            safer_ilp.send.reads.total_bytes() -
                            safer_ilp.send.writes.total_bytes()) /
        (1024.0 * 1024.0);
    std::printf("\nPer-stage access attribution, simplified SAFER, ILP:\n%s",
                obs::stage_summary(ilp_tracer).c_str());
    std::printf("\nPer-stage access attribution, simplified SAFER, non-ILP:"
                "\n%s",
                obs::stage_summary(lay_tracer).c_str());

    std::printf("\nsend side moves %.0f MB less under ILP (paper: 55 MB read"
                " + 48 MB written less; our 64-bit-path model moves fewer,"
                " wider accesses, so the byte delta is the comparable"
                " quantity: %.0f MB here corresponds to the paper's 3 saved"
                " passes).\n",
                send_bytes_saved, send_bytes_saved);
    std::printf("Shape: ILP cuts send-side accesses by ~%0.f%% (paper: up to"
                " 30%%), reads and writes both drop, and the savings shrink"
                " with the simple cipher only because its table traffic is"
                " absent on both sides.\n",
                (1.0 - static_cast<double>(safer_ilp.send.total_accesses()) /
                           static_cast<double>(safer_lay.send.total_accesses())) *
                    100.0);
    return 0;
}
