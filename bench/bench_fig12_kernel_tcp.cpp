// E7 — Figure 12: throughput of the user-level ILP and non-ILP
// implementations against the non-ILP implementation over an in-kernel TCP
// path model (SS10-30, 1 KB messages), for both encryption functions.
//
// The kernel path wins on total throughput (optimised code path, no ACK
// crossings, far less task-switch overhead) even though its *data
// manipulations* are the layered ones — while the user-level ILP receive
// processing is faster than decryption + unmarshalling on top of the kernel
// TCP (the paper's closing §4.1 observation).
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    const machine_model m = machine("ss10-30");
    std::printf("=== Figure 12: throughput by implementation and cipher "
                "(SS10-30, 1 KB, Mbps) ===\n");
    stats::table table({"cipher", "non-ILP", "ILP", "kernel TCP",
                        "paper non-ILP", "paper ILP", "paper kernel"});

    const struct {
        cipher_kind kind;
        const bench::fig12_row* paper;
    } rows[] = {
        {cipher_kind::safer_simplified, &bench::fig12[0]},
        {cipher_kind::simple, &bench::fig12[1]},
    };

    for (const auto& r : rows) {
        const auto lay =
            run_standard_experiment(m, impl_kind::layered, r.kind, 1024);
        const auto ilp_run =
            run_standard_experiment(m, impl_kind::ilp, r.kind, 1024);
        const auto kernel =
            run_standard_experiment(m, impl_kind::kernel_tcp, r.kind, 1024);
        table.row()
            .cell(profile_for(r.kind).name)
            .cell(lay.throughput_mbps, 2)
            .cell(ilp_run.throughput_mbps, 2)
            .cell(kernel.throughput_mbps, 2)
            .cell(r.paper->non_ilp_mbps, 2)
            .cell(r.paper->ilp_mbps, 2)
            .cell(r.paper->kernel_mbps, 2);

        std::printf("  receive processing (us): user ILP %.0f vs kernel-path"
                    " layered %.0f  %s\n",
                    ilp_run.recv_us_per_packet, kernel.recv_us_per_packet,
                    ilp_run.recv_us_per_packet < kernel.recv_us_per_packet
                        ? "(ILP faster, as in the paper)"
                        : "(unexpected)");
    }
    table.print();
    std::printf("\nShape: kernel TCP > user ILP > user non-ILP in throughput"
                " for both ciphers, with a larger spread for the simple"
                " cipher (paper: 6.8/5.5/5.1 and 9.7/7.5/6.7 Mbps).\n");
    return 0;
}
