// E9 — Figure 14: simulated first-level data-cache misses (read and write,
// send and receive, both ciphers) for 10.7 MB of transferred data.
//
// The paper's surprise (§4.2): ILP does *not* improve the cache-miss ratio
// — it reduces accesses more than misses, so the ratio rises (receive:
// 4.7 % -> 18.7 % with the simplified SAFER K-64), while the constant-based
// simple cipher lets ILP halve the send-side misses.
#include <cstdio>

#include "app/harness.h"
#include "bench/paper_data.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"
#include "obs/export_text.h"
#include "obs/tracer.h"
#include "stats/table.h"

namespace {

using namespace ilp;

struct run_stats {
    memsim::access_stats send;
    memsim::access_stats recv;
    bool ok = false;
};

template <typename Cipher>
run_stats run(app::path_mode mode, obs::tracer* tracer = nullptr) {
    app::transfer_config config;
    config.file_bytes = 15 * 1024;
    config.copies = 730;  // ~10.7 MB
    config.packet_wire_bytes = 1024;
    config.mode = mode;
    config.deadline_us = 3'600'000'000ull;
    memsim::memory_system client(memsim::supersparc_with_l2());
    memsim::memory_system server(memsim::supersparc_with_l2());
    obs::tracer* prev = obs::tracer::install(tracer);
    const auto result =
        app::run_transfer_simulated<Cipher>(config, client, server);
    obs::tracer::install(prev);
    return {server.data_stats(), client.data_stats(),
            result.completed && result.verified};
}

double millions(std::uint64_t v) { return static_cast<double>(v) / 1e6; }

}  // namespace

int main() {
    std::printf("=== Figure 14: L1-D cache misses for 10.7 MB of data "
                "===\n");
    std::printf("running 4 instrumented transfers of 10.7 MB each...\n\n");

    obs::tracer ilp_tracer;
    obs::tracer lay_tracer;
    const run_stats safer_ilp =
        run<crypto::safer_simplified>(app::path_mode::ilp, &ilp_tracer);
    const run_stats safer_lay =
        run<crypto::safer_simplified>(app::path_mode::layered, &lay_tracer);
    const run_stats simple_ilp = run<crypto::simple_cipher>(app::path_mode::ilp);
    const run_stats simple_lay =
        run<crypto::simple_cipher>(app::path_mode::layered);
    if (!(safer_ilp.ok && safer_lay.ok && simple_ilp.ok && simple_lay.ok)) {
        std::printf("ERROR: a transfer failed to complete\n");
        return 1;
    }

    stats::table table({"cipher", "side", "impl", "read miss M",
                        "write miss M", "miss ratio %"});
    const auto add = [&](const char* cipher, const char* side,
                         const char* impl, const memsim::access_stats& a) {
        table.row()
            .cell(cipher)
            .cell(side)
            .cell(impl)
            .cell(millions(a.reads.total_misses()), 2)
            .cell(millions(a.writes.total_misses()), 2)
            .cell(a.miss_ratio() * 100.0, 1);
    };
    add("simplified SAFER", "send", "ILP", safer_ilp.send);
    add("simplified SAFER", "send", "non-ILP", safer_lay.send);
    add("simplified SAFER", "recv", "ILP", safer_ilp.recv);
    add("simplified SAFER", "recv", "non-ILP", safer_lay.recv);
    add("simple", "send", "ILP", simple_ilp.send);
    add("simple", "send", "non-ILP", simple_lay.send);
    add("simple", "recv", "ILP", simple_ilp.recv);
    add("simple", "recv", "non-ILP", simple_lay.recv);
    table.print();

    std::printf("\nPer-stage miss attribution, simplified SAFER, ILP:\n%s",
                obs::stage_summary(ilp_tracer).c_str());
    std::printf("\nPer-stage miss attribution, simplified SAFER, non-ILP:\n%s",
                obs::stage_summary(lay_tracer).c_str());

    std::printf("\nHeadline comparisons with the paper:\n");
    std::printf("  recv miss ratio, simplified SAFER: non-ILP %.1f%% -> ILP"
                " %.1f%%   (paper: %.1f%% -> %.1f%%)\n",
                safer_lay.recv.miss_ratio() * 100.0,
                safer_ilp.recv.miss_ratio() * 100.0,
                ilp::bench::fig14_recv_ratio_non_ilp,
                ilp::bench::fig14_recv_ratio_ilp);
    std::printf("  -> shape: ILP %s the miss ratio (the paper's surprising"
                " result: fewer accesses, not better caching)\n",
                safer_ilp.recv.miss_ratio() > safer_lay.recv.miss_ratio()
                    ? "raises"
                    : "does not raise");
    const double send_miss_reduction =
        1.0 - static_cast<double>(simple_ilp.send.total_misses()) /
                  static_cast<double>(simple_lay.send.total_misses());
    std::printf("  simple cipher, send-side misses: ILP reduces them by"
                " %.0f%%  (paper: ~50%%)\n",
                send_miss_reduction * 100.0);
    std::printf("  1-byte miss check: the table-driven cipher's per-byte"
                " reads stay cache-resident in both modes here (%.2fM vs"
                " %.2fM); the paper's extra 1-byte misses came from its"
                " decrypt writing single bytes straight to memory, which"
                " this implementation's register-staged stages avoid by"
                " design (see EXPERIMENTS.md).\n",
                millions(safer_ilp.recv.reads.misses[memsim::size_bucket(1)]),
                millions(safer_lay.recv.reads.misses[memsim::size_bucket(1)]));
    return 0;
}
