// E1 — Figure 6: ILP and non-ILP *receive* packet processing times for
// 1 kbyte packets across the seven machine models.
//
// Workload: the paper's standard experiment — a 15 KB file transferred over
// the full user-level stack (marshalling + simplified SAFER K-64 + TCP) in
// loop-back, instrumented by the memory-system simulator; times come from
// the per-machine cycle model (src/platform).
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    std::printf("=== Figure 6: receive packet processing, 1 KB packets "
                "(us) ===\n");
    stats::table table({"machine", "non-ILP", "ILP", "gain %",
                        "paper non-ILP", "paper ILP", "paper gain %"});
    for (const machine_model& m : paper_machines()) {
        const auto ilp_run = run_standard_experiment(
            m, impl_kind::ilp, cipher_kind::safer_simplified, 1024);
        const auto lay_run = run_standard_experiment(
            m, impl_kind::layered, cipher_kind::safer_simplified, 1024);
        const auto* paper = bench::find_table1(m.name, 1024);
        table.row()
            .cell(m.display)
            .cell(lay_run.recv_us_per_packet, 0)
            .cell(ilp_run.recv_us_per_packet, 0)
            .cell(stats::percent_gain(lay_run.recv_us_per_packet,
                                      ilp_run.recv_us_per_packet),
                  1)
            .cell(paper->non_ilp_recv_us, 0)
            .cell(paper->ilp_recv_us, 0)
            .cell(stats::percent_gain(paper->non_ilp_recv_us,
                                      paper->ilp_recv_us),
                  1);
    }
    table.print();
    std::printf("\nShape: ILP receive processing is faster on every machine;"
                " the relative gain is largest on the SPARCstations and"
                " small on the DEC Alphas (paper: 16%% on SS10-30, 8%% on"
                " AXP3000/800).\n");
    return 0;
}
