// A5 — §3.2.2: delay all manipulations vs manipulate early.
//
// The paper weighs two designs for a full TCP buffer: delay *all* data
// manipulations until space exists (chosen: simpler, fewest passes), or
// manipulate above-TCP data in advance and only checksum+copy later
// (rejected: saves ~100 us of latency on a SS10-30, "not significant
// compared to the total delay … usually in the millisecond range", and
// needs an extra staging pass).  This bench quantifies both sides of that
// trade with the simulator: memory traffic per message and the manipulation
// latency remaining once buffer space frees up.
#include <cstdio>

#include "app/early_send.h"
#include "app/send_path.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "net/datagram.h"
#include "platform/machines.h"
#include "rpc/messages.h"
#include "stats/table.h"
#include "util/rng.h"

namespace {

using namespace ilp;

struct measurement {
    std::uint64_t accesses = 0;
    std::uint64_t cycles = 0;
    std::uint64_t flush_cycles = 0;  // work left after space appears
};

measurement run(bool early) {
    std::array<std::byte, 8> key;
    rng kr(1);
    kr.fill(key);
    const crypto::safer_simplified cipher(key);

    memsim::memory_system sys(memsim::supersparc_no_l2());
    memsim::sim_memory mem(sys);

    virtual_clock clock;
    net::duplex_link link(clock, 100);
    tcp::connection_config cfg;
    tcp::tcp_sender<memsim::sim_memory> sender(mem, clock, link.forward(),
                                               cfg);

    std::vector<std::byte> payload(rpc::max_payload_for_wire(1024));
    rng pr(2);
    pr.fill(payload);
    app::path_counters counters;

    constexpr int messages = 64;
    measurement result;
    for (int i = 0; i < messages; ++i) {
        rpc::reply_header header;
        header.request_id = 1;
        header.offset = static_cast<std::uint32_t>(i) * 996;
        header.total_bytes = messages * 996;
        rpc::reply_staging staging;
        const auto src = rpc::make_reply_source(header, payload, staging);
        const auto layout = rpc::layout_reply(payload.size());

        if (early) {
            app::early_sender<memsim::sim_memory, crypto::safer_simplified>
                stage(mem, cipher, 2048);
            stage.prepare(src, layout.plan, counters);  // before space check
            const std::uint64_t before_flush = sys.cycles();
            const bool sent = stage.try_flush(sender, counters);
            result.flush_cycles += sys.cycles() - before_flush;
            if (!sent) break;  // buffer full: bench keeps the window open
        } else {
            const std::uint64_t before = sys.cycles();
            if (!app::send_message_ilp(sender, mem, cipher, src, layout.plan,
                                       counters)) {
                break;
            }
            result.flush_cycles += sys.cycles() - before;  // all of it
        }
        // Instant ACK so the window never closes (isolates the data path).
        tcp::header_fields ack;
        ack.src_port = cfg.remote_port;
        ack.dst_port = cfg.local_port;
        ack.ack = sender.next_seq();
        ack.control = tcp::flags::ack;
        ack.window = 0xffff;
        alignas(8) std::byte wire[tcp::header_bytes];
        tcp::serialize_header(ack, wire);
        store_be16(wire + 16,
                   tcp::finish_segment_checksum(cfg.remote_addr,
                                                cfg.local_addr, wire, 0, 0));
        sender.on_ack_packet({wire, tcp::header_bytes});
    }
    result.accesses = sys.data_stats().total_accesses() / messages;
    result.cycles = sys.cycles() / messages;
    result.flush_cycles /= messages;
    return result;
}

}  // namespace

int main() {
    std::printf("=== A5: delay-all vs early manipulation on the send path "
                "(SS10-30 model, 1 KB messages) ===\n\n");
    const measurement delay_all = run(false);
    const measurement early = run(true);

    const double mhz = ilp::platform::machine("ss10-30").clock_mhz;
    ilp::stats::table table({"variant", "mem accesses/msg", "mem cycles/msg",
                             "us after buffer frees"});
    table.row()
        .cell("delay all manipulations")
        .cell(delay_all.accesses)
        .cell(delay_all.cycles)
        .cell(static_cast<double>(delay_all.flush_cycles) / mhz, 1);
    table.row()
        .cell("manipulate early")
        .cell(early.accesses)
        .cell(early.cycles)
        .cell(static_cast<double>(early.flush_cycles) / mhz, 1);
    table.print();

    std::printf("\nShape (§3.2.2): early manipulation leaves only the"
                " checksum+copy (~%.0f us at 36 MHz instead of ~%.0f us)"
                " for the moment buffer space appears — the paper's ~100 us"
                " latency saving — but pays one extra staging pass per"
                " message (higher accesses/cycles above).  The paper chose"
                " to delay everything because the saving is dwarfed by"
                " millisecond network delays.\n",
                static_cast<double>(early.flush_cycles) / mhz,
                static_cast<double>(delay_all.flush_cycles) / mhz);
    return 0;
}
