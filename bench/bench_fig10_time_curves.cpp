// E5 — Figure 10: packet processing time vs packet size (256..1280 bytes)
// for the four plotted machines, send and receive, ILP vs non-ILP.
#include <cstdio>

#include "bench/paper_data.h"
#include "platform/estimator.h"
#include "stats/table.h"

int main() {
    using namespace ilp;
    using namespace ilp::platform;

    const char* machines[] = {"ss10-30", "ss10-41", "ss20-60", "axp3000-800"};
    const std::size_t sizes[] = {256, 512, 768, 1024, 1280};

    std::printf("=== Figure 10: packet processing time vs packet size (us) "
                "===\n");
    for (const char* name : machines) {
        const machine_model m = machine(name);
        std::printf("\n--- %s ---\n", m.display.c_str());
        stats::table table({"packet B", "ILP send", "ILP recv", "non send",
                            "non recv", "paper ILP send", "paper ILP recv",
                            "paper non send", "paper non recv"});
        for (const std::size_t size : sizes) {
            const auto ilp_run = run_standard_experiment(
                m, impl_kind::ilp, cipher_kind::safer_simplified, size);
            const auto lay_run = run_standard_experiment(
                m, impl_kind::layered, cipher_kind::safer_simplified, size);
            const auto* paper = bench::find_table1(m.name, size);
            table.row()
                .cell(static_cast<std::uint64_t>(size))
                .cell(ilp_run.send_us_per_packet, 0)
                .cell(ilp_run.recv_us_per_packet, 0)
                .cell(lay_run.send_us_per_packet, 0)
                .cell(lay_run.recv_us_per_packet, 0)
                .cell(paper->ilp_send_us, 0)
                .cell(paper->ilp_recv_us, 0)
                .cell(paper->non_ilp_send_us, 0)
                .cell(paper->non_ilp_recv_us, 0);
        }
        table.print();
    }
    std::printf("\nShape: processing time grows roughly linearly with packet"
                " size; the ILP/non-ILP gap widens nearly proportionally to"
                " the packet size (paper §4.1).\n");
    return 0;
}
