// Goodput and recovery-cost baseline across loss regimes, ILP vs layered.
//
// Three reply-link regimes with fixed seeds — clean, 1 % Bernoulli loss and
// Gilbert–Elliott bursty loss — each run on both data paths.  Emits the
// versioned BENCH JSON schema (recorded as BENCH_recovery.json at the repo
// root) so `ilp-trace --diff` can gate later changes to the retry and
// retransmission machinery.  `--json=PATH` additionally writes the report
// to a file.
#include <cstdio>
#include <string>
#include <vector>

#include "app/harness.h"
#include "crypto/aead.h"
#include "crypto/safer_simplified.h"
#include "obs/bench_json.h"

int main(int argc, char** argv) {
    using namespace ilp;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            std::fprintf(stderr, "usage: bench_recovery [--json=PATH]\n");
            return 2;
        }
    }

    struct regime {
        const char* name;
        void (*apply)(app::transfer_config&);
    };
    const std::vector<regime> regimes = {
        {"clean", [](app::transfer_config&) {}},
        {"bernoulli_1pct",
         [](app::transfer_config& c) {
             c.forward_faults.drop_probability = 0.01;
             c.forward_faults.seed = 11;
         }},
        {"gilbert_elliott_burst",
         [](app::transfer_config& c) {
             c.forward_faults.burst.enabled = true;
             c.forward_faults.burst.p_good_to_bad = 0.05;
             c.forward_faults.burst.p_bad_to_good = 0.25;
             c.forward_faults.burst.bad_loss = 0.95;
             c.forward_faults.seed = 11;
         }},
    };

    obs::bench_report report("recovery");
    report.meta("file_kb", "128");
    report.meta("packet_bytes", "1024");
    report.meta("cipher", "safer_simplified");

    for (const regime& r : regimes) {
        for (const app::path_mode mode :
             {app::path_mode::ilp, app::path_mode::layered}) {
            app::transfer_config config;
            config.mode = mode;
            config.file_bytes = 128 * 1024;
            config.packet_wire_bytes = 1024;
            r.apply(config);

            const app::transfer_result result =
                app::run_transfer_native<crypto::safer_simplified>(config);

            const std::string key =
                std::string(r.name) + "." +
                (mode == app::path_mode::ilp ? "ilp" : "layered");
            const auto count = [&](const char* name, std::uint64_t v,
                                   obs::direction dir) {
                report.metric(key + "." + name, static_cast<double>(v),
                              "count", dir);
            };
            report.metric(key + ".completed",
                          result.completed && result.verified ? 1.0 : 0.0,
                          "bool", obs::direction::higher_is_better);
            report.metric(key + ".goodput_mbps", result.throughput_mbps(),
                          "mbps", obs::direction::higher_is_better);
            report.metric(key + ".elapsed_ms",
                          static_cast<double>(result.elapsed_us) / 1000.0,
                          "ms", obs::direction::lower_is_better);
            count("segments", result.reply_tcp_sender.segments_transmitted,
                  obs::direction::info);
            count("retransmissions", result.reply_tcp_sender.retransmissions,
                  obs::direction::lower_is_better);
            count("packets_dropped", result.reply_pipe.packets_dropped,
                  obs::direction::info);
            count("burst_dropped", result.reply_pipe.packets_burst_dropped,
                  obs::direction::info);
            count("rpc_retries", result.recovery.rpc_retries,
                  obs::direction::lower_is_better);
            count("connection_resets", result.recovery.connection_resets,
                  obs::direction::lower_is_better);
            count("rsts_sent", result.recovery.rsts_sent,
                  obs::direction::info);
            count("refetched_bytes", result.recovery.refetched_bytes,
                  obs::direction::lower_is_better);
            if (const obs::histogram* gap =
                    result.metrics.find_hist("client.reply_gap_us")) {
                report.histogram_metric(key + ".reply_gap_us", *gap, "us");
            }
            if (const obs::histogram* retry =
                    result.metrics.find_hist("client.retry_latency_us")) {
                report.histogram_metric(key + ".retry_latency_us", *retry,
                                        "us");
            }
        }
    }

    // Rekey-under-load regime: the secure (AEAD) framing with an epoch
    // rekey every 16 KB of reply wire, under the same bursty loss as the
    // gilbert_elliott regime.  Gates that key rollover under loss neither
    // stalls the transfer (reply-gap p99) nor produces spurious explicit
    // failures (tag_failures / epoch_skews must stay 0: retransmits land in
    // the two-epoch window).
    for (const app::path_mode mode :
         {app::path_mode::ilp, app::path_mode::layered}) {
        app::transfer_config config;
        config.mode = mode;
        config.file_bytes = 128 * 1024;
        config.packet_wire_bytes = 1024;
        config.secure = true;
        config.rekey_interval_bytes = 16 * 1024;
        config.forward_faults.burst.enabled = true;
        config.forward_faults.burst.p_good_to_bad = 0.05;
        config.forward_faults.burst.p_bad_to_good = 0.25;
        config.forward_faults.burst.bad_loss = 0.95;
        config.forward_faults.seed = 11;

        const app::transfer_result result =
            app::run_transfer_native<crypto::aead_cipher>(config);

        const std::string key =
            std::string("rekey_under_load.") +
            (mode == app::path_mode::ilp ? "ilp" : "layered");
        report.metric(key + ".completed",
                      result.completed && result.verified ? 1.0 : 0.0, "bool",
                      obs::direction::higher_is_better);
        report.metric(key + ".goodput_mbps", result.throughput_mbps(), "mbps",
                      obs::direction::higher_is_better);
        report.metric(key + ".rekeys",
                      static_cast<double>(result.metrics.counter(
                          "crypto.rekeys")),
                      "count", obs::direction::info);
        report.metric(key + ".epoch_window_hits",
                      static_cast<double>(result.metrics.counter(
                          "crypto.epoch_window_hits")),
                      "count", obs::direction::info);
        report.metric(key + ".tag_failures",
                      static_cast<double>(result.metrics.counter(
                          "crypto.tag_failures")),
                      "count", obs::direction::lower_is_better);
        report.metric(key + ".epoch_skews",
                      static_cast<double>(result.metrics.counter(
                          "crypto.epoch_skews")),
                      "count", obs::direction::lower_is_better);
        if (const obs::histogram* gap =
                result.metrics.find_hist("client.reply_gap_us")) {
            report.histogram_metric(key + ".reply_gap_us", *gap, "us");
        }
    }

    std::fputs(report.render().c_str(), stdout);
    if (!json_path.empty() && !report.write(json_path)) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
