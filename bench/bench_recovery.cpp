// Goodput and recovery-cost baseline across loss regimes, ILP vs layered.
//
// Three reply-link regimes with fixed seeds — clean, 1 % Bernoulli loss and
// Gilbert–Elliott bursty loss — each run on both data paths.  Prints one
// JSON document (recorded as BENCH_recovery.json at the repo root) so later
// changes to the retry/retransmission machinery can be diffed against it.
#include <cstdio>
#include <vector>

#include "app/harness.h"
#include "crypto/safer_simplified.h"

int main() {
    using namespace ilp;

    struct regime {
        const char* name;
        void (*apply)(app::transfer_config&);
    };
    const std::vector<regime> regimes = {
        {"clean", [](app::transfer_config&) {}},
        {"bernoulli_1pct",
         [](app::transfer_config& c) {
             c.forward_faults.drop_probability = 0.01;
             c.forward_faults.seed = 11;
         }},
        {"gilbert_elliott_burst",
         [](app::transfer_config& c) {
             c.forward_faults.burst.enabled = true;
             c.forward_faults.burst.p_good_to_bad = 0.05;
             c.forward_faults.burst.p_bad_to_good = 0.25;
             c.forward_faults.burst.bad_loss = 0.95;
             c.forward_faults.seed = 11;
         }},
    };

    std::printf("{\n  \"benchmark\": \"recovery\",\n");
    std::printf("  \"file_kb\": 128, \"packet_bytes\": 1024,\n");
    std::printf("  \"results\": [\n");
    bool first = true;
    for (const regime& r : regimes) {
        for (const app::path_mode mode :
             {app::path_mode::ilp, app::path_mode::layered}) {
            app::transfer_config config;
            config.mode = mode;
            config.file_bytes = 128 * 1024;
            config.packet_wire_bytes = 1024;
            r.apply(config);

            const app::transfer_result result =
                app::run_transfer_native<crypto::safer_simplified>(config);

            if (!first) std::printf(",\n");
            first = false;
            std::printf(
                "    {\"regime\": \"%s\", \"path\": \"%s\", "
                "\"completed\": %s, \"verified\": %s, "
                "\"goodput_mbps\": %.2f, \"elapsed_ms\": %.2f, "
                "\"segments\": %llu, \"retransmissions\": %llu, "
                "\"packets_dropped\": %llu, \"burst_dropped\": %llu, "
                "\"rpc_retries\": %llu, \"connection_resets\": %llu, "
                "\"rsts_sent\": %llu, \"refetched_bytes\": %llu}",
                r.name, mode == app::path_mode::ilp ? "ilp" : "layered",
                result.completed ? "true" : "false",
                result.verified ? "true" : "false", result.throughput_mbps(),
                static_cast<double>(result.elapsed_us) / 1000.0,
                static_cast<unsigned long long>(
                    result.reply_tcp_sender.segments_transmitted),
                static_cast<unsigned long long>(
                    result.reply_tcp_sender.retransmissions),
                static_cast<unsigned long long>(
                    result.reply_pipe.packets_dropped),
                static_cast<unsigned long long>(
                    result.reply_pipe.packets_burst_dropped),
                static_cast<unsigned long long>(result.recovery.rpc_retries),
                static_cast<unsigned long long>(
                    result.recovery.connection_resets),
                static_cast<unsigned long long>(result.recovery.rsts_sent),
                static_cast<unsigned long long>(
                    result.recovery.refetched_bytes));
        }
    }
    std::printf("\n  ]\n}\n");
    return 0;
}
