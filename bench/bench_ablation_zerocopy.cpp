// A6 — §4.1's outlook: zero-copy network adapters raise the ILP benefit.
//
// "Using more advanced systems, e.g. zero-copy network adapters [13][14][15]
// and dedicated operating system support with less system overhead, could
// raise the benefits from ILP further."
//
// With an fbufs-style adapter the system copy at each domain crossing
// disappears for *both* implementations; what remains is dominated by the
// data manipulations, where ILP's advantage lives — so the relative gain
// grows.  This bench runs the standard experiment on the SS10-30 model with
// the conventional copying adapter and with the zero-copy adapter and
// compares the gains.
#include <cstdio>

#include "platform/estimator.h"
#include "stats/table.h"

namespace {

using namespace ilp;
using namespace ilp::platform;

struct pair_result {
    double ilp_us = 0;
    double layered_us = 0;

    double gain_percent() const {
        return (layered_us - ilp_us) / layered_us * 100.0;
    }
};

pair_result run(bool zero_copy) {
    app::transfer_config config;
    config.file_bytes = 15 * 1024;
    config.packet_wire_bytes = 1024;
    config.zero_copy = zero_copy;
    const machine_model m = machine("ss10-30");
    const auto ilp_run =
        run_experiment(m, impl_kind::ilp, cipher_kind::safer_simplified,
                       config);
    const auto lay_run =
        run_experiment(m, impl_kind::layered, cipher_kind::safer_simplified,
                       config);
    return {ilp_run.send_us_per_packet, lay_run.send_us_per_packet};
}

}  // namespace

int main() {
    std::printf("=== A6: ILP benefit with a conventional vs zero-copy "
                "adapter (SS10-30, 1 KB, send) ===\n\n");
    const pair_result copying = run(false);
    const pair_result zero_copy = run(true);

    stats::table table({"adapter", "non-ILP us", "ILP us", "gain %"});
    table.row()
        .cell("copying (system copy)")
        .cell(copying.layered_us, 0)
        .cell(copying.ilp_us, 0)
        .cell(copying.gain_percent(), 1);
    table.row()
        .cell("zero-copy (fbufs)")
        .cell(zero_copy.layered_us, 0)
        .cell(zero_copy.ilp_us, 0)
        .cell(zero_copy.gain_percent(), 1);
    table.print();

    std::printf("\nShape (§4.1): removing the system copy shrinks both"
                " absolute times by the same amount, so the *relative* ILP"
                " gain rises (%.1f%% -> %.1f%%) — the paper's argument that"
                " ILP matters more on advanced communication subsystems.\n",
                copying.gain_percent(), zero_copy.gain_percent());
    return zero_copy.gain_percent() > copying.gain_percent() ? 0 : 1;
}
