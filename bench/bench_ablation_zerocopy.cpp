// A6 — §4.1's outlook: zero-copy network adapters raise the ILP benefit.
//
// "Using more advanced systems, e.g. zero-copy network adapters [13][14][15]
// and dedicated operating system support with less system overhead, could
// raise the benefits from ILP further."
//
// With an fbufs-style adapter the system copy at each domain crossing
// disappears for *both* implementations; what remains is dominated by the
// data manipulations, where ILP's advantage lives — so the relative gain
// grows.  This bench runs the standard experiment on the SS10-30 model with
// the conventional copying adapter and with the zero-copy adapter and
// compares the gains.
//
// Observability hooks (the BENCH regression pipeline):
//   --smoke        smaller simulated transfer (fast CI variant)
//   --json=PATH    write a versioned BENCH JSON report (schema v2) for
//                  `ilp-trace --diff` against a checked-in baseline.  The
//                  report measures real simulated-memory accesses for the
//                  {mode x adapter} grid instead of the estimator, so the
//                  receive-side access drop from in-place segment
//                  processing is regression-gated.
#include <cstdio>
#include <string>

#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "obs/bench_json.h"
#include "platform/estimator.h"
#include "stats/table.h"

namespace {

using namespace ilp;
using namespace ilp::platform;

struct pair_result {
    double ilp_us = 0;
    double layered_us = 0;

    double gain_percent() const {
        return (layered_us - ilp_us) / layered_us * 100.0;
    }
};

pair_result run(bool zero_copy) {
    app::transfer_config config;
    config.file_bytes = 15 * 1024;
    config.packet_wire_bytes = 1024;
    config.zero_copy = zero_copy;
    const machine_model m = machine("ss10-30");
    const auto ilp_run =
        run_experiment(m, impl_kind::ilp, cipher_kind::safer_simplified,
                       config);
    const auto lay_run =
        run_experiment(m, impl_kind::layered, cipher_kind::safer_simplified,
                       config);
    return {ilp_run.send_us_per_packet, lay_run.send_us_per_packet};
}

// One simulated transfer on SuperSPARC memory pairs; returns the client's
// modelled data accesses (the client is the reply *receiver*, so this is
// the receive-side cost the zero-copy loan path is meant to cut).
std::uint64_t measured_client_accesses(app::path_mode mode, bool zero_copy,
                                       std::size_t file_bytes) {
    app::transfer_config config;
    config.mode = mode;
    config.file_bytes = file_bytes;
    config.zero_copy = zero_copy;
    memsim::memory_system client(memsim::supersparc_with_l2());
    memsim::memory_system server(memsim::supersparc_with_l2());
    const auto result = app::run_transfer_simulated<crypto::safer_simplified>(
        config, client, server);
    if (!result.completed || !result.verified) return 0;
    return client.data_stats().total_accesses();
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            std::fprintf(stderr,
                         "usage: bench_ablation_zerocopy [--smoke]"
                         " [--json=PATH]\n");
            return 2;
        }
    }

    std::printf("=== A6: ILP benefit with a conventional vs zero-copy "
                "adapter (SS10-30, 1 KB, send) ===\n\n");
    const pair_result copying = run(false);
    const pair_result zero_copy = run(true);

    stats::table table({"adapter", "non-ILP us", "ILP us", "gain %"});
    table.row()
        .cell("copying (system copy)")
        .cell(copying.layered_us, 0)
        .cell(copying.ilp_us, 0)
        .cell(copying.gain_percent(), 1);
    table.row()
        .cell("zero-copy (fbufs)")
        .cell(zero_copy.layered_us, 0)
        .cell(zero_copy.ilp_us, 0)
        .cell(zero_copy.gain_percent(), 1);
    table.print();

    std::printf("\nShape (§4.1): removing the system copy shrinks both"
                " absolute times by the same amount, so the *relative* ILP"
                " gain rises (%.1f%% -> %.1f%%) — the paper's argument that"
                " ILP matters more on advanced communication subsystems.\n",
                copying.gain_percent(), zero_copy.gain_percent());

    if (!json_path.empty()) {
        // Measured leg: real simulated-memory access counts for the
        // {mode x adapter} grid.  The loan-delivery receive path must keep
        // a visible access reduction over the counted staging copy.
        const std::size_t file_bytes = smoke ? 8 * 1024 : 32 * 1024;
        obs::bench_report report("ablation_zerocopy");
        report.meta("machine", "supersparc_with_l2");
        report.meta("cipher", "safer_simplified");
        report.meta("mode", smoke ? "smoke" : "full");
        struct cell {
            const char* name;
            app::path_mode mode;
            bool zero_copy;
        };
        const cell cells[] = {
            {"ilp.copying", app::path_mode::ilp, false},
            {"ilp.zero_copy", app::path_mode::ilp, true},
            {"layered.copying", app::path_mode::layered, false},
            {"layered.zero_copy", app::path_mode::layered, true},
        };
        std::uint64_t ilp_copying = 0;
        std::uint64_t ilp_zc = 0;
        for (const cell& c : cells) {
            const std::uint64_t accesses =
                measured_client_accesses(c.mode, c.zero_copy, file_bytes);
            if (accesses == 0) {
                std::fprintf(stderr, "ERROR: %s transfer failed\n", c.name);
                return 1;
            }
            report.metric(std::string(c.name) + ".client_accesses",
                          static_cast<double>(accesses), "accesses",
                          obs::direction::lower_is_better);
            if (c.mode == app::path_mode::ilp) {
                (c.zero_copy ? ilp_zc : ilp_copying) = accesses;
            }
        }
        const double reduction_pct =
            (static_cast<double>(ilp_copying) - static_cast<double>(ilp_zc)) /
            static_cast<double>(ilp_copying) * 100.0;
        report.metric("ilp.zero_copy_reduction_pct", reduction_pct, "percent",
                      obs::direction::higher_is_better);
        std::printf("\nMeasured (SuperSPARC, %zu KB): ILP client accesses"
                    " %llu copying -> %llu zero-copy (%.1f%% fewer).\n",
                    file_bytes / 1024,
                    static_cast<unsigned long long>(ilp_copying),
                    static_cast<unsigned long long>(ilp_zc), reduction_pct);
        if (ilp_zc >= ilp_copying) {
            std::fprintf(stderr, "ERROR: zero-copy did not reduce"
                                 " receive-side accesses\n");
            return 1;
        }
        if (!report.write(json_path)) {
            std::fprintf(stderr, "ERROR: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
    }

    return zero_copy.gain_percent() > copying.gain_percent() ? 0 : 1;
}
