// Quickstart: compose an ILP pipeline and push a message through it.
//
// Builds the paper's canonical fused loop — XDR marshalling + SAFER-K64
// encryption + Internet checksum, integrated into a single copy — runs it
// over a small message, then undoes everything with the receive-side loop
// and verifies the round trip.  Run it; it prints each step.
#include <array>
#include <cstdio>
#include <cstring>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/safer_simplified.h"
#include "util/hexdump.h"
#include "util/rng.h"

int main() {
    using namespace ilp;

    // --- a key and a cipher -------------------------------------------------
    std::array<std::byte, 8> key{};
    rng key_rng(42);
    key_rng.fill(key);
    const crypto::safer_simplified cipher(key);

    // --- an application message ---------------------------------------------
    // Two host integers (they need XDR conversion) followed by opaque
    // payload bytes and cipher alignment — a miniature of the paper's
    // message format (Fig. 2).
    const std::uint32_t header_fields[2] = {0xdecafbadu, 48};
    byte_buffer payload(48);
    rng payload_rng(7);
    payload_rng.fill(payload.span());

    core::gather_source message;
    message.add({reinterpret_cast<const std::byte*>(header_fields), 8},
                core::segment_op::xdr_words);
    message.add(payload.span());
    message.add_zeros(8);  // alignment
    const std::size_t wire_len = message.total_size();
    std::printf("message: 8 B header (xdr) + %zu B payload + 8 B padding = "
                "%zu B wire\n\n",
                payload.size(), wire_len);

    // --- the ILP send loop ---------------------------------------------------
    // One pass: marshal (in the gather), encrypt, checksum, copy.
    const memsim::direct_memory mem;
    byte_buffer wire(wire_len);
    checksum::inet_accumulator send_sum;
    core::encrypt_stage<crypto::safer_simplified> encrypt(cipher);
    core::checksum_tap8 send_tap(send_sum);
    auto send_loop = core::make_pipeline(encrypt, send_tap);
    std::printf("fused send loop: Le = lcm(4, 8, 2, Ls) = %zu bytes/unit\n",
                decltype(send_loop)::unit_bytes);

    send_loop.run(mem, message, core::span_dest(wire.span()));
    std::printf("payload checksum (folded): 0x%04x\n", send_sum.folded());
    std::printf("\nencrypted wire image:\n%s\n",
                hexdump(wire.subspan(0, 32)).c_str());

    // --- the ILP receive loop ------------------------------------------------
    // One pass: checksum the ciphertext, decrypt, unmarshal into
    // application memory.
    std::uint32_t header_out[2] = {};
    byte_buffer payload_out(48);
    core::scatter_dest destination;
    destination.add({reinterpret_cast<std::byte*>(header_out), 8},
                    core::segment_op::xdr_words);
    destination.add(payload_out.span());
    destination.add_discard(8);  // padding

    checksum::inet_accumulator recv_sum;
    core::checksum_tap8 recv_tap(recv_sum);
    core::decrypt_stage<crypto::safer_simplified> decrypt(cipher);
    auto recv_loop = core::make_pipeline(recv_tap, decrypt);
    recv_loop.run(mem, core::span_source(wire.span()), destination);

    // --- verify ---------------------------------------------------------------
    const bool checksum_ok = recv_sum.folded() == send_sum.folded();
    const bool header_ok = std::memcmp(header_out, header_fields, 8) == 0;
    const bool payload_ok =
        std::memcmp(payload_out.data(), payload.data(), payload.size()) == 0;
    std::printf("checksums match: %s\n", checksum_ok ? "yes" : "NO");
    std::printf("header round-trip: %s (0x%08x, %u)\n",
                header_ok ? "yes" : "NO", header_out[0], header_out[1]);
    std::printf("payload round-trip: %s\n", payload_ok ? "yes" : "NO");
    return checksum_ok && header_ok && payload_ok ? 0 : 1;
}
