// File transfer over the full stack — the paper's application, runnable.
//
// Usage: file_transfer [ilp|layered] [file_kb] [packet_bytes] [copies]
//
// Runs the RPC file-transfer client and server over the user-level TCP in
// loop-back (all in this process, on the virtual clock), with the chosen
// data-path implementation, and prints transfer statistics.  Add loss with
// the environment-free fifth argument drop percentage, e.g.:
//
//     ./file_transfer ilp 64 1024 1 10     # 10 % packet loss
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "app/harness.h"
#include "crypto/safer_simplified.h"
#include "stats/table.h"

int main(int argc, char** argv) {
    using namespace ilp;

    app::transfer_config config;
    config.mode = app::path_mode::ilp;
    if (argc > 1 && std::strcmp(argv[1], "layered") == 0) {
        config.mode = app::path_mode::layered;
    }
    config.file_bytes =
        (argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64) * 1024;
    config.packet_wire_bytes =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 1024;
    config.copies =
        argc > 4 ? static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10))
                 : 1;
    if (argc > 5) {
        config.forward_faults.drop_probability =
            std::strtod(argv[5], nullptr) / 100.0;
        config.forward_faults.seed = 1234;
    }

    std::printf("transferring %zu KB x%u copies, %zu B packets, %s path%s\n",
                config.file_bytes / 1024, config.copies,
                config.packet_wire_bytes,
                config.mode == app::path_mode::ilp ? "ILP" : "layered",
                config.forward_faults.drop_probability > 0
                    ? " (lossy link)"
                    : "");

    const app::transfer_result result =
        app::run_transfer_native<crypto::safer_simplified>(config);

    if (!result.completed) {
        std::printf("transfer FAILED (did not complete)\n");
        return 1;
    }
    std::printf("transfer complete: %llu bytes, %s\n\n",
                static_cast<unsigned long long>(result.payload_bytes_delivered),
                result.verified ? "verified byte-identical"
                                : "VERIFICATION FAILED");

    stats::table table({"metric", "value"});
    table.row().cell("reply messages").cell(result.reply_messages);
    table.row().cell("virtual time (ms)").cell(
        static_cast<double>(result.elapsed_us) / 1000.0, 1);
    table.row().cell("segments transmitted").cell(
        result.reply_tcp_sender.segments_transmitted);
    table.row().cell("retransmissions").cell(
        result.reply_tcp_sender.retransmissions);
    table.row().cell("checksum failures").cell(
        result.reply_tcp_receiver.checksum_failures);
    table.row().cell("duplicate drops").cell(
        result.reply_tcp_receiver.duplicate_drops);
    table.row().cell("send: fused loop bytes").cell(
        result.server_send.fused_loop_bytes);
    table.row().cell("send: standalone pass bytes").cell(
        result.server_send.marshal_pass_bytes +
        result.server_send.cipher_pass_bytes +
        result.server_send.checksum_pass_bytes +
        result.server_send.copy_pass_bytes);
    table.row().cell("recv: fused loop bytes").cell(
        result.client_receive.fused_loop_bytes);
    table.row().cell("recv: standalone pass bytes").cell(
        result.client_receive.marshal_pass_bytes +
        result.client_receive.cipher_pass_bytes +
        result.client_receive.checksum_pass_bytes +
        result.client_receive.copy_pass_bytes);
    table.print();
    return result.verified ? 0 : 1;
}
