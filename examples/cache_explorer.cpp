// Cache explorer: run the same transfer on different machine models and see
// how the memory system experiences it.
//
// Usage: cache_explorer [ilp|layered] [machine]
//   machine: ss10-30 ss10-41 ss10-51 ss20-60 axp3000-500 axp3000-600
//            axp3000-800 (default: all)
//
// For each machine, transfers a 15 KB file with 1 KB packets under the
// memory-system simulator and prints per-side access counts, miss counts,
// miss ratios and memory-system cycles — the raw material behind the
// paper's §4.2 analysis.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "app/harness.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "platform/machines.h"
#include "stats/table.h"

int main(int argc, char** argv) {
    using namespace ilp;

    app::transfer_config config;
    config.mode = app::path_mode::ilp;
    if (argc > 1 && std::strcmp(argv[1], "layered") == 0) {
        config.mode = app::path_mode::layered;
    }
    const std::string only = argc > 2 ? argv[2] : "";

    std::printf("=== cache behaviour of one 15 KB transfer (1 KB packets, "
                "%s path) ===\n\n",
                config.mode == app::path_mode::ilp ? "ILP" : "layered");

    stats::table table({"machine", "side", "accesses", "L1D misses",
                        "miss %", "L2 hits", "mem cycles"});
    for (const platform::machine_model& m : platform::paper_machines()) {
        if (!only.empty() && m.name != only) continue;
        memsim::memory_system client(m.memory);
        memsim::memory_system server(m.memory);
        const auto result =
            app::run_transfer_simulated<crypto::safer_simplified>(
                config, client, server);
        if (!result.completed) {
            std::printf("%s: transfer failed!\n", m.display.c_str());
            continue;
        }
        const auto add = [&](const char* side, memsim::memory_system& sys) {
            table.row()
                .cell(m.display)
                .cell(side)
                .cell(sys.data_stats().total_accesses())
                .cell(sys.data_stats().total_misses())
                .cell(sys.data_stats().miss_ratio() * 100.0, 1)
                .cell(sys.l2() != nullptr ? sys.l2()->hits() : 0)
                .cell(sys.cycles());
        };
        add("send", server);
        add("recv", client);
    }
    table.print();
    std::printf("\nThings to look for (paper §4.2):\n"
                "  * the SS10-30 (no L2) pays main memory for every miss;\n"
                "  * the Alphas' 8 KB direct-mapped L1 misses more than the\n"
                "    SuperSPARC's 16 KB 4-way cache;\n"
                "  * re-run with `layered` — accesses rise by the extra\n"
                "    passes while misses barely move, which is exactly why\n"
                "    ILP's win is access elimination, not hit-rate.\n");
    return 0;
}
