// Cipher tour: the three ciphers of the evaluation, side by side.
//
// Shows what each cipher does to a block, its per-block memory behaviour
// under the simulator (the paper's "number and size of required memory
// tables" point), and a quick native speed measurement — the reason the
// paper had to simplify SAFER K-64 in the first place.
#include <array>
#include <chrono>
#include <cstdio>

#include "buffer/byte_buffer.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"
#include "stats/table.h"
#include "util/hexdump.h"
#include "util/rng.h"

namespace {

using namespace ilp;

template <typename Cipher>
void tour(const char* name, const Cipher& cipher, stats::table& table) {
    // What one block looks like.
    alignas(8) std::byte block[8] = {std::byte{'i'}, std::byte{'l'},
                                     std::byte{'p'}, std::byte{'-'},
                                     std::byte{'d'}, std::byte{'e'},
                                     std::byte{'m'}, std::byte{'o'}};
    const memsim::direct_memory mem;
    cipher.encrypt_block(mem, block);
    const std::string ciphertext = to_hex({block, 8});
    cipher.decrypt_block(mem, block);
    const bool round_trip = std::memcmp(block, "ilp-demo", 8) == 0;

    // Per-block memory behaviour.
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory sim(sys);
    cipher.encrypt_block(sim, block);
    const auto table_reads = sys.data_stats().reads.total_accesses();

    // Native throughput over 4 MB.
    byte_buffer data(4 * 1024 * 1024);
    rng r(1);
    r.fill(data.span());
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t off = 0; off < data.size(); off += 8) {
        cipher.encrypt_block(mem, data.data() + off);
    }
    const auto end = std::chrono::steady_clock::now();
    const double mbps = static_cast<double>(data.size()) * 8.0 /
                        std::chrono::duration<double>(end - start).count() /
                        1e6;

    table.row()
        .cell(name)
        .cell(ciphertext)
        .cell(round_trip ? "yes" : "NO")
        .cell(table_reads)
        .cell(mbps, 0);
}

}  // namespace

int main() {
    std::array<std::byte, 8> key{};
    rng key_rng(0xc0ffee);
    key_rng.fill(key);

    const crypto::safer_k64 full(key);
    const crypto::safer_simplified simplified(key);
    const crypto::simple_cipher simple(key);

    std::printf("=== the evaluation's ciphers ('ilp-demo' encrypted under "
                "the same key) ===\n\n");
    stats::table table({"cipher", "ciphertext of 'ilp-demo'", "round-trip",
                        "mem reads/block", "native Mbps"});
    tour("SAFER K-64 (6 rounds)", full, table);
    tour("SAFER K-64 simplified", simplified, table);
    tour("simple (constants)", simple, table);
    table.print();

    std::printf("\nWhy it matters (paper §3.1/§4.1): the full cipher's %u"
                " table+key reads per block drown the ILP gain in cipher"
                " time; the simplified version keeps one key read and one"
                " table read per byte — the cache-relevant behaviour — at"
                " ~100x DES speed; the constant-based cipher touches no"
                " memory at all, which is what lets ILP halve its miss"
                " count.\n",
                6u * 24 + 8);
    return 0;
}
