// Example: run a fleet of concurrent ILP transfers on the multi-flow
// engine and print the per-flow and per-shard accounting.
//
//   many_flows [flows] [shards] [--threaded] [--drr] [--lossy]
//
// Every flow is an independent client/server file transfer multiplexed
// over its shard's shared links; --lossy puts every fourth flow behind a
// bursty (Gilbert–Elliott) reply link, --drr switches the service policy
// from round-robin to deficit round-robin, --threaded runs one OS thread
// per shard.  The fleet digest printed at the end is reproducible: same
// arguments, same digest, whatever the shard count or threading.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "crypto/safer_simplified.h"
#include "engine/fleet.h"
#include "stats/table.h"

int main(int argc, char** argv) {
    using namespace ilp;

    engine::fleet_config cfg;
    cfg.flows = 12;
    cfg.shards = 3;
    cfg.defaults.file_bytes = 15 * 1024;
    cfg.defaults.packet_wire_bytes = 1024;
    bool lossy = false;
    std::vector<std::uint32_t> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threaded") {
            cfg.threaded = true;
        } else if (arg == "--drr") {
            cfg.policy = engine::sched_policy::deficit_round_robin;
        } else if (arg == "--lossy") {
            lossy = true;
        } else if (!arg.empty() && arg[0] != '-') {
            positional.push_back(
                static_cast<std::uint32_t>(std::strtoul(arg.c_str(), nullptr, 10)));
        } else {
            std::fprintf(stderr,
                         "usage: many_flows [flows] [shards] [--threaded] "
                         "[--drr] [--lossy]\n");
            return 2;
        }
    }
    if (positional.size() > 0 && positional[0] > 0) cfg.flows = positional[0];
    if (positional.size() > 1 && positional[1] > 0) cfg.shards = positional[1];
    if (lossy) {
        cfg.per_flow = [](std::uint32_t f, engine::flow_config& fc) {
            if (f % 4 == 0) {
                fc.forward_faults.burst.enabled = true;
                fc.forward_faults.burst.p_good_to_bad = 0.05;
                fc.forward_faults.burst.p_bad_to_good = 0.3;
                fc.forward_faults.burst.bad_loss = 1.0;
            }
        };
    }

    std::printf("running %u flows on %u shard(s)%s, policy=%s%s\n\n",
                cfg.flows, cfg.shards, cfg.threaded ? " (threaded)" : "",
                cfg.policy == engine::sched_policy::deficit_round_robin
                    ? "deficit-round-robin"
                    : "round-robin",
                lossy ? ", every 4th flow bursty-lossy" : "");

    const engine::fleet_report report =
        engine::run_fleet_native<crypto::safer_simplified>(cfg);

    stats::table flows({"flow", "shard", "outcome", "payload B", "elapsed us",
                        "retries", "rexmits", "dropped"});
    for (const engine::flow_outcome& o : report.flows) {
        const char* outcome = o.completed
                                  ? (o.verified ? "ok" : "CORRUPT")
                                  : (o.gave_up ? "gave up"
                                     : o.deadline_exceeded
                                         ? "deadline"
                                         : o.request_rejected ? "rejected"
                                                              : "no ports");
        flows.row()
            .cell(static_cast<std::uint64_t>(o.flow_id))
            .cell(static_cast<std::uint64_t>(o.shard))
            .cell(std::string(outcome))
            .cell(o.payload_bytes)
            .cell(o.elapsed_us)
            .cell(o.rpc_retries)
            .cell(o.tcp_retransmissions)
            .cell(o.reply_packets_dropped);
    }
    std::printf("%s\n", flows.render().c_str());

    stats::table shards({"shard", "flows", "done", "clock us", "pkts sent",
                         "pkts dropped"});
    for (const engine::shard_summary& s : report.shards) {
        shards.row()
            .cell(static_cast<std::uint64_t>(s.shard))
            .cell(static_cast<std::uint64_t>(s.flows))
            .cell(static_cast<std::uint64_t>(s.completed))
            .cell(s.elapsed_us)
            .cell(s.reply_data.packets_sent)
            .cell(s.reply_data.packets_dropped);
    }
    std::printf("%s\n", shards.render().c_str());

    std::printf("fleet: %u/%u completed (%u verified), %.1f Mbps aggregate\n",
                report.completed, static_cast<unsigned>(report.flows.size()),
                report.verified, report.aggregate_throughput_mbps());
    std::printf("digest: %016llx\n",
                static_cast<unsigned long long>(report.digest()));
    return report.completed == report.flows.size() ? 0 : 1;
}
