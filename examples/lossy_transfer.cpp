// Failure recovery walkthrough: one transfer across a hostile link, showing
// the fault plan, TCP give-up/reset signalling and the RPC layer's
// resumable retry in action.
//
// Usage: lossy_transfer [scenario]
//
// Scenarios:
//   burst     Gilbert–Elliott bursty loss on the reply link (default)
//   outage    the reply link goes dark mid-transfer, then comes back
//   blackout  the reply link never comes back — the client gives up
//
// Everything runs in-process on the virtual clock, so results are exact
// and reproducible: rerunning a scenario replays the same losses.
#include <cstdio>
#include <cstring>

#include "app/harness.h"
#include "crypto/safer_simplified.h"
#include "stats/table.h"

int main(int argc, char** argv) {
    using namespace ilp;

    const char* scenario = argc > 1 ? argv[1] : "burst";

    app::transfer_config config;
    config.file_bytes = 128 * 1024;
    config.packet_wire_bytes = 1024;
    config.retry.max_attempts = 5;
    config.retry.response_timeout_us = 2'000'000;

    if (std::strcmp(scenario, "burst") == 0) {
        // Correlated loss: the link alternates between a good state and a
        // bad state that eats almost every packet for a few packets in a
        // row — TCP's go-back-N absorbs this without RPC involvement.
        config.forward_faults.burst.enabled = true;
        config.forward_faults.burst.p_good_to_bad = 0.05;
        config.forward_faults.burst.p_bad_to_good = 0.25;
        config.forward_faults.burst.bad_loss = 0.95;
    } else if (std::strcmp(scenario, "outage") == 0) {
        // The reply link dies 1 ms in and stays dead past TCP's give-up
        // point, so the server's sender RSTs.  The client times out,
        // resets both connections and re-requests the file *from the
        // byte offset it already holds*.
        config.forward_faults.outages.push_back({1'000, 3'000'000});
    } else if (std::strcmp(scenario, "blackout") == 0) {
        // The link never recovers: the retry budget runs out and the
        // transfer terminates with an explicit failure — it never hangs.
        config.forward_faults.outages.push_back({0, 1'000'000'000'000ull});
    } else {
        std::fprintf(stderr, "unknown scenario '%s'\n", scenario);
        return 2;
    }

    std::printf("scenario: %s — transferring %zu KB over the faulty link\n\n",
                scenario, config.file_bytes / 1024);

    const app::transfer_result result =
        app::run_transfer_native<crypto::safer_simplified>(config);

    if (result.completed) {
        std::printf("transfer complete in %.1f ms of virtual time, %s\n\n",
                    static_cast<double>(result.elapsed_us) / 1000.0,
                    result.verified ? "verified byte-identical"
                                    : "VERIFICATION FAILED");
    } else {
        std::printf("transfer FAILED explicitly after %.1f ms: %s\n\n",
                    static_cast<double>(result.elapsed_us) / 1000.0,
                    result.recovery.gave_up ? "retry budget exhausted"
                                            : "deadline reached");
    }

    const app::recovery_report& r = result.recovery;
    stats::table table({"recovery metric", "value"});
    table.row().cell("RPC retries").cell(r.rpc_retries);
    table.row().cell("connection resets").cell(r.connection_resets);
    table.row().cell("TCP RSTs sent").cell(r.rsts_sent);
    table.row().cell("TCP RSTs received").cell(r.rsts_received);
    table.row().cell("requests deduplicated").cell(r.requests_deduplicated);
    table.row().cell("server jobs abandoned").cell(r.jobs_abandoned);
    table.row().cell("bytes re-served (resume overlap)").cell(
        r.refetched_bytes);
    table.row().cell("link drops: burst").cell(
        result.reply_pipe.packets_burst_dropped);
    table.row().cell("link drops: outage").cell(
        result.reply_pipe.packets_outage_dropped);
    table.row().cell("TCP retransmissions").cell(
        result.reply_tcp_sender.retransmissions);
    table.print();

    return result.completed && result.verified ? 0 : 1;
}
