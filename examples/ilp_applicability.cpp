// ILP applicability tour — the paper's §2.2/§5 decision rules, executable.
//
// Walks through the questions an implementor must answer before applying
// ILP, demonstrating each with live code:
//
//   1. Are all fused functions non-ordering-constrained?
//      (TCP checksum / block ciphers: yes.  CRC-32 / RC4: no.)
//   2. Is the header size known before the loop runs?
//      (Fixed-size headers: yes.  Otherwise ILP cannot start.)
//   3. Do unit sizes mismatch?  Exchange Le = lcm(...) units.
//   4. Can the header go after the data?  Trailer framing restores
//      linear-order fusion even for constrained stages.
#include <cstdio>
#include <cstring>

#include "buffer/byte_buffer.h"
#include "checksum/crc32.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/rc4.h"
#include "crypto/safer_simplified.h"
#include "rpc/trailer.h"
#include "util/alignment.h"
#include "util/rng.h"

int main() {
    using namespace ilp;

    std::printf("=== Can my protocol stack use ILP?  (paper §2.2/§5) ===\n\n");

    // ------------------------------------------------------------------
    std::printf("1. ordering constraints\n");
    using block_stack = core::fused_pipeline<
        core::encrypt_stage<crypto::safer_simplified>, core::checksum_tap8>;
    using crc_stack = core::fused_pipeline<
        core::encrypt_stage<crypto::safer_simplified>, core::crc32_tap>;
    using stream_stack = core::fused_pipeline<crypto::rc4_stage>;
    std::printf("   checksum+block cipher:  ordering_constrained = %s -> "
                "parts B,C,A allowed\n",
                block_stack::ordering_constrained ? "true" : "false");
    std::printf("   CRC-32 in the loop:     ordering_constrained = %s -> "
                "linear order only\n",
                crc_stack::ordering_constrained ? "true" : "false");
    std::printf("   stream cipher (RC4):    ordering_constrained = %s -> "
                "linear order only\n\n",
                stream_stack::ordering_constrained ? "true" : "false");

    // ------------------------------------------------------------------
    std::printf("2. header size must be known before the loop\n");
    const core::message_plan plan = core::plan_parts(100);
    std::printf("   a 100-byte marshalled message (4 B enc header) plans as\n"
                "   B[%zu,%zu) -> C[%zu,%zu) -> A[%zu,%zu), padding %zu B\n\n",
                plan.part_b.offset, plan.part_b.offset + plan.part_b.len,
                plan.part_c.offset, plan.part_c.offset + plan.part_c.len,
                plan.part_a.offset, plan.part_a.offset + plan.part_a.len,
                plan.padding_bytes);

    // ------------------------------------------------------------------
    std::printf("3. unit-size mismatch -> exchange Le units\n");
    std::printf("   marshalling 4 B, encryption 8 B, checksum 2 B, bus 8 B\n"
                "   Le = lcm(4, 8, 2, 8) = %zu bytes per loop iteration\n",
                exchange_unit_of(4u, 8u, 2u, 8u));
    std::printf("   (word filters hand out 4 B words instead: 2 stores per"
                " cipher block, the §2.2 inefficiency)\n\n");

    // ------------------------------------------------------------------
    std::printf("4. future work the paper suggests: trailers\n");
    const char* key_text = "demo-key";
    crypto::rc4 rc4_enc({reinterpret_cast<const std::byte*>(key_text), 8});
    byte_buffer body(48);
    rng r(7);
    r.fill(body.span());

    core::gather_source body_src;
    body_src.add(body.span());
    rpc::trailer_staging staging;
    const core::gather_source wire_src =
        rpc::make_trailer_source(body_src, staging);

    crypto::rc4_stage enc_stage(rc4_enc);
    auto loop = core::make_pipeline(enc_stage);
    byte_buffer wire(wire_src.total_size());
    loop.run(memsim::direct_memory{}, wire_src,
             core::span_dest(wire.span()));
    std::printf("   with the length in a trailer, even the RC4 stack fused"
                " linearly:\n   %zu body bytes -> %zu wire bytes, single"
                " front-to-back loop, no reordering.\n\n",
                body.size(), wire.size());

    std::printf("Verdict matrix (paper §5): ILP applies when functions are"
                " non-ordering-constrained\nand header sizes are fixed or"
                " computable; trailers, fixed headers, separate control\n"
                "packets and uniform unit sizes all widen its"
                " applicability.\n");
    return 0;
}
