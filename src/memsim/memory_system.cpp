#include "memsim/memory_system.h"

#include "util/contracts.h"

namespace ilp::memsim {

memory_system::memory_system(const memory_system_config& config)
    : l1d_(config.l1d), l1i_(config.l1i), timing_(config.timing) {
    if (config.l2.has_value()) l2_.emplace(*config.l2);
}

std::uint64_t memory_system::charge_miss(std::uint64_t addr, access_kind kind) {
    if (!l2_.has_value()) return timing_.memory_cycles;
    const cache_access_result r = l2_->access(addr, kind);
    std::uint64_t cost = timing_.l2_hit_cycles;
    if (!r.hit) cost += timing_.memory_cycles;
    if (r.writeback) cost += timing_.memory_cycles;
    return cost;
}

void memory_system::data_access(std::uint64_t addr, std::size_t bytes,
                                access_kind kind) {
    ILP_EXPECT(bytes > 0);
    if (touch_map_ != nullptr) touch_map_->on_access(addr, bytes, kind);
    access_histogram& hist =
        kind == access_kind::read ? data_stats_.reads : data_stats_.writes;
    const std::size_t bucket = size_bucket(bytes);
    ++hist.accesses[bucket];

    // Split the access at line boundaries; the whole access counts once in
    // the histogram, and it counts as missing if any piece misses in L1-D.
    const std::size_t line = l1d_.config().line_bytes;
    bool missed = false;
    std::uint64_t cost = 0;
    std::uint64_t piece_addr = addr;
    std::size_t remaining = bytes;
    while (remaining > 0) {
        const std::size_t in_line =
            std::min<std::size_t>(remaining, line - (piece_addr % line));
        const cache_access_result r = l1d_.access(piece_addr, kind);
        cost += timing_.l1_hit_cycles;
        if (!r.hit) {
            missed = true;
            if (kind == access_kind::write &&
                l1d_.config().writes == write_policy::write_through &&
                l1d_.config().write_misses == write_miss_policy::no_allocate) {
                // Write-around miss: no line fill — the store just posts to
                // the write buffer like a write-through hit.
                cost += timing_.write_through_cycles;
            } else {
                // Read misses and allocating write misses fetch the line
                // from below.
                cost += charge_miss(piece_addr, kind);
            }
        } else if (kind == access_kind::write &&
                   l1d_.config().writes == write_policy::write_through) {
            // Write-through hit: the write also propagates downwards, but a
            // write buffer hides most of the latency.
            cost += timing_.write_through_cycles;
        }
        if (r.writeback) cost += charge_miss(piece_addr, access_kind::write);
        piece_addr += in_line;
        remaining -= in_line;
    }
    if (missed) ++hist.misses[bucket];
    cycles_ += cost;
    data_cycles_ += cost;
}

void memory_system::instruction_fetch(std::uint64_t addr, std::size_t bytes) {
    ILP_EXPECT(bytes > 0);
    const std::size_t line = l1i_.config().line_bytes;
    std::uint64_t piece_addr = addr;
    std::size_t remaining = bytes;
    while (remaining > 0) {
        const std::size_t in_line =
            std::min<std::size_t>(remaining, line - (piece_addr % line));
        ++ifetches_;
        const cache_access_result r = l1i_.access(piece_addr, access_kind::read);
        std::uint64_t cost = 0;
        if (!r.hit) {
            ++ifetch_misses_;
            cost += charge_miss(piece_addr, access_kind::read);
        }
        cycles_ += cost;
        piece_addr += in_line;
        remaining -= in_line;
    }
}

void memory_system::reset(bool cold_caches) {
    data_stats_ = access_stats{};
    ifetches_ = 0;
    ifetch_misses_ = 0;
    cycles_ = 0;
    data_cycles_ = 0;
    l1d_.reset_counters();
    l1i_.reset_counters();
    if (l2_) l2_->reset_counters();
    if (cold_caches) {
        l1d_.flush();
        l1i_.flush();
        if (l2_) l2_->flush();
    }
}

}  // namespace ilp::memsim
