// Memory-access policies.
//
// Every data manipulation kernel in the stack (marshalling, encryption,
// checksum, copy) is a template over a memory-access policy `Mem`:
//
//  * `direct_memory`  — raw loads/stores, fully inlined; used for native
//    wall-clock benchmarking.  This is the deployed configuration.
//  * `sim_memory`     — the same loads/stores, but each one is first
//    streamed through a `memsim::memory_system` in program order.  This is
//    the reproduction of running the binary under shade/cachesim or atom.
//
// Kernels keep intermediate values in local variables; locals model CPU
// registers and are intentionally *not* routed through the policy — exactly
// the paper's model of the ILP loop ("all the other operations should work
// on registers").  Only accesses to packet buffers, cipher tables, key
// schedules and protocol buffers go through `Mem`.
//
// The multi-byte accessors use unaligned host-endian semantics (memcpy), and
// kernels apply explicit byte-order conversion where the wire format
// requires it.
#pragma once

#include <cstdint>
#include <cstring>

#include "memsim/memory_system.h"
#include "util/contracts.h"

namespace ilp::memsim {

// Raw memory access; compiles to plain loads and stores.
struct direct_memory {
    ILP_ALWAYS_INLINE std::uint8_t load_u8(const std::byte* p) const {
        return std::to_integer<std::uint8_t>(*p);
    }
    ILP_ALWAYS_INLINE std::uint16_t load_u16(const std::byte* p) const {
        std::uint16_t v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }
    ILP_ALWAYS_INLINE std::uint32_t load_u32(const std::byte* p) const {
        std::uint32_t v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }
    ILP_ALWAYS_INLINE std::uint64_t load_u64(const std::byte* p) const {
        std::uint64_t v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }

    ILP_ALWAYS_INLINE void store_u8(std::byte* p, std::uint8_t v) const {
        *p = static_cast<std::byte>(v);
    }
    ILP_ALWAYS_INLINE void store_u16(std::byte* p, std::uint16_t v) const {
        std::memcpy(p, &v, sizeof v);
    }
    ILP_ALWAYS_INLINE void store_u32(std::byte* p, std::uint32_t v) const {
        std::memcpy(p, &v, sizeof v);
    }
    ILP_ALWAYS_INLINE void store_u64(std::byte* p, std::uint64_t v) const {
        std::memcpy(p, &v, sizeof v);
    }

    // Widest-unit block copy, the building block of the non-ILP data paths
    // (the bcopy of the paper's hosts, on a 64-bit memory path).  ILP and
    // non-ILP paths use the same widths so their comparison isolates the
    // number of passes, not the op width.
    ILP_ALWAYS_INLINE void copy(std::byte* dst, const std::byte* src,
                                std::size_t n) const {
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) store_u64(dst + i, load_u64(src + i));
        for (; i + 4 <= n; i += 4) store_u32(dst + i, load_u32(src + i));
        for (; i < n; ++i) store_u8(dst + i, load_u8(src + i));
    }
};

// Instrumented memory access: every operation is recorded by a
// memory_system before the real load/store happens, using the actual
// virtual address, so the cache model sees the program's true locality.
class sim_memory {
public:
    explicit sim_memory(memory_system& sys) : sys_(&sys) {}

    std::uint8_t load_u8(const std::byte* p) const {
        sys_->read(addr(p), 1);
        return raw_.load_u8(p);
    }
    std::uint16_t load_u16(const std::byte* p) const {
        sys_->read(addr(p), 2);
        return raw_.load_u16(p);
    }
    std::uint32_t load_u32(const std::byte* p) const {
        sys_->read(addr(p), 4);
        return raw_.load_u32(p);
    }
    std::uint64_t load_u64(const std::byte* p) const {
        sys_->read(addr(p), 8);
        return raw_.load_u64(p);
    }

    void store_u8(std::byte* p, std::uint8_t v) const {
        sys_->write(addr(p), 1);
        raw_.store_u8(p, v);
    }
    void store_u16(std::byte* p, std::uint16_t v) const {
        sys_->write(addr(p), 2);
        raw_.store_u16(p, v);
    }
    void store_u32(std::byte* p, std::uint32_t v) const {
        sys_->write(addr(p), 4);
        raw_.store_u32(p, v);
    }
    void store_u64(std::byte* p, std::uint64_t v) const {
        sys_->write(addr(p), 8);
        raw_.store_u64(p, v);
    }

    void copy(std::byte* dst, const std::byte* src, std::size_t n) const {
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) store_u64(dst + i, load_u64(src + i));
        for (; i + 4 <= n; i += 4) store_u32(dst + i, load_u32(src + i));
        for (; i < n; ++i) store_u8(dst + i, load_u8(src + i));
    }

    memory_system& system() const noexcept { return *sys_; }

private:
    static std::uint64_t addr(const std::byte* p) noexcept {
        return reinterpret_cast<std::uintptr_t>(p);
    }

    memory_system* sys_;
    direct_memory raw_;
};

// Concept satisfied by both policies; kernels constrain on it.
template <typename M>
concept memory_policy = requires(const M& m, const std::byte* cp, std::byte* p) {
    { m.load_u8(cp) } -> std::same_as<std::uint8_t>;
    { m.load_u16(cp) } -> std::same_as<std::uint16_t>;
    { m.load_u32(cp) } -> std::same_as<std::uint32_t>;
    { m.load_u64(cp) } -> std::same_as<std::uint64_t>;
    m.store_u8(p, std::uint8_t{});
    m.store_u16(p, std::uint16_t{});
    m.store_u32(p, std::uint32_t{});
    m.store_u64(p, std::uint64_t{});
    m.copy(p, cp, std::size_t{});
};

static_assert(memory_policy<direct_memory>);
static_assert(memory_policy<sim_memory>);

}  // namespace ilp::memsim
