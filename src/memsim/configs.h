// Cache-hierarchy configurations of the paper's evaluation machines.
//
// Geometry follows the published specifications of the SuperSPARC and Alpha
// 21064 processors and the board-level caches of the workstation models
// (paper §1 and §4.2):
//
//   * SuperSPARC (SPARCstation 10/20): 16 KB 4-way data cache
//     (write-through), 20 KB 5-way instruction cache; SS10-30 has *no*
//     second-level cache, the other SPARCstations have a 1 MB SuperCache.
//   * Alpha 21064 (DEC 3000 AXP): 8 KB direct-mapped write-through data
//     cache, 8 KB instruction cache, 512 KB - 2 MB external B-cache.
#pragma once

#include <string_view>
#include <vector>

#include "memsim/memory_system.h"

namespace ilp::memsim {

// SuperSPARC on-chip caches, no second-level cache (SPARCstation 10-30).
memory_system_config supersparc_no_l2();

// SuperSPARC with 1 MB SuperCache (SS10-41, SS10-51, SS20-60).
memory_system_config supersparc_with_l2();

// Alpha 21064 with the given external-cache size (512 KB / 2 MB).
memory_system_config alpha21064(std::size_t l2_bytes);

// A tiny configuration for unit tests (64-byte direct-mapped L1, no L2):
// small enough that tests can reason about every line.
memory_system_config test_tiny();

// Look up by machine name ("ss10-30", "axp3000-800", ...); returns the
// matching config.  Aborts on unknown names (programmer error).
memory_system_config config_for_machine(std::string_view machine);

// All machine names with a defined configuration, in the paper's order.
std::vector<std::string_view> known_machines();

}  // namespace ilp::memsim
