#include "memsim/configs.h"

#include "util/contracts.h"

namespace ilp::memsim {

namespace {

// 20 KB / 5 ways / 32-byte lines = 128 sets (a power of two, as the model
// requires; the odd way count is what makes the odd total size work).
cache_config supersparc_l1i() {
    return {.name = "l1i",
            .size_bytes = 20 * 1024,
            .line_bytes = 32,
            .associativity = 5,
            .writes = write_policy::write_through,
            .write_misses = write_miss_policy::no_allocate};
}

cache_config supersparc_l1d() {
    return {.name = "l1d",
            .size_bytes = 16 * 1024,
            .line_bytes = 32,
            .associativity = 4,
            .writes = write_policy::write_through,
            .write_misses = write_miss_policy::no_allocate};
}

cache_config board_l2(std::size_t bytes) {
    return {.name = "l2",
            .size_bytes = bytes,
            .line_bytes = 32,
            .associativity = 1,
            .writes = write_policy::write_back,
            .write_misses = write_miss_policy::allocate};
}

}  // namespace

memory_system_config supersparc_no_l2() {
    return {.l1d = supersparc_l1d(),
            .l1i = supersparc_l1i(),
            .l2 = std::nullopt,
            // Without a second-level cache every L1 miss pays main memory.
            .timing = {.l1_hit_cycles = 1,
                       .l2_hit_cycles = 0,
                       .memory_cycles = 25,
                       .write_through_cycles = 2}};
}

memory_system_config supersparc_with_l2() {
    return {.l1d = supersparc_l1d(),
            .l1i = supersparc_l1i(),
            .l2 = board_l2(1024 * 1024),
            .timing = {.l1_hit_cycles = 1,
                       .l2_hit_cycles = 5,
                       .memory_cycles = 25,
                       .write_through_cycles = 2}};
}

memory_system_config alpha21064(std::size_t l2_bytes) {
    const cache_config l1d{.name = "l1d",
                           .size_bytes = 8 * 1024,
                           .line_bytes = 32,
                           .associativity = 1,
                           .writes = write_policy::write_through,
                           .write_misses = write_miss_policy::no_allocate};
    const cache_config l1i{.name = "l1i",
                           .size_bytes = 8 * 1024,
                           .line_bytes = 32,
                           .associativity = 1,
                           .writes = write_policy::write_through,
                           .write_misses = write_miss_policy::no_allocate};
    return {.l1d = l1d,
            .l1i = l1i,
            .l2 = board_l2(l2_bytes),
            .timing = {.l1_hit_cycles = 1,
                       .l2_hit_cycles = 6,
                       .memory_cycles = 40,
                       .write_through_cycles = 2}};
}

memory_system_config test_tiny() {
    const cache_config l1{.name = "l1",
                          .size_bytes = 64,
                          .line_bytes = 16,
                          .associativity = 1,
                          .writes = write_policy::write_through,
                          .write_misses = write_miss_policy::no_allocate};
    cache_config l1i = l1;
    l1i.name = "l1i";
    return {.l1d = l1,
            .l1i = l1i,
            .l2 = std::nullopt,
            .timing = {.l1_hit_cycles = 1,
                       .l2_hit_cycles = 0,
                       .memory_cycles = 10,
                       .write_through_cycles = 1}};
}

memory_system_config config_for_machine(std::string_view machine) {
    if (machine == "ss10-30") return supersparc_no_l2();
    if (machine == "ss10-41" || machine == "ss10-51" || machine == "ss20-60")
        return supersparc_with_l2();
    if (machine == "axp3000-500") return alpha21064(512 * 1024);
    if (machine == "axp3000-600" || machine == "axp3000-800")
        return alpha21064(2 * 1024 * 1024);
    if (machine == "test-tiny") return test_tiny();
    ILP_EXPECT(false && "unknown machine name");
    return test_tiny();  // unreachable
}

std::vector<std::string_view> known_machines() {
    return {"ss10-30",     "ss10-41",     "ss10-51",    "ss20-60",
            "axp3000-500", "axp3000-600", "axp3000-800"};
}

}  // namespace ilp::memsim
