// Access-trace capture and replay — the shade workflow.
//
// SunOS shade traced a binary once and fed the trace to cachesim-style
// analysers.  The equivalent here: run any data path with `trace_memory`
// (records every counted access, in order, while still performing it), then
// replay the trace against any number of `memory_system` configurations —
// one execution, many cache studies, and bit-identical inputs for each, so
// cross-configuration comparisons are free of address-layout noise.
//
// Traces can also be rebased to a canonical address origin per memory
// region, which makes them reproducible across process runs.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/mem_policy.h"
#include "memsim/memory_system.h"
#include "util/contracts.h"

namespace ilp::memsim {

struct trace_record {
    std::uint64_t addr;
    std::uint32_t bytes;
    access_kind kind;
};

class access_trace {
public:
    void append(std::uint64_t addr, std::uint32_t bytes, access_kind kind) {
        records_.push_back({addr, bytes, kind});
    }

    std::size_t size() const noexcept { return records_.size(); }
    bool empty() const noexcept { return records_.empty(); }
    const trace_record& operator[](std::size_t i) const { return records_[i]; }
    const std::vector<trace_record>& records() const noexcept {
        return records_;
    }

    void clear() noexcept { records_.clear(); }

    std::uint64_t read_count() const noexcept {
        std::uint64_t n = 0;
        for (const auto& r : records_) n += r.kind == access_kind::read;
        return n;
    }
    std::uint64_t write_count() const noexcept {
        return size() - read_count();
    }
    std::uint64_t total_bytes() const noexcept {
        std::uint64_t n = 0;
        for (const auto& r : records_) n += r.bytes;
        return n;
    }

    // Rewrites all addresses relative to the trace's minimum address, so
    // two captures of the same logical run (at different heap addresses)
    // replay identically — as long as the run used a single contiguous
    // arena.  For multi-buffer runs, rebase() still canonicalises the
    // origin; relative buffer spacing is preserved.
    void rebase(std::uint64_t new_origin = 0x10000) {
        if (records_.empty()) return;
        std::uint64_t min_addr = records_.front().addr;
        for (const auto& r : records_) min_addr = std::min(min_addr, r.addr);
        for (auto& r : records_) r.addr = r.addr - min_addr + new_origin;
    }

private:
    std::vector<trace_record> records_;
};

// Memory policy that performs accesses directly *and* records them.
class trace_memory {
public:
    explicit trace_memory(access_trace& trace) : trace_(&trace) {}

    std::uint8_t load_u8(const std::byte* p) const {
        trace_->append(addr(p), 1, access_kind::read);
        return raw_.load_u8(p);
    }
    std::uint16_t load_u16(const std::byte* p) const {
        trace_->append(addr(p), 2, access_kind::read);
        return raw_.load_u16(p);
    }
    std::uint32_t load_u32(const std::byte* p) const {
        trace_->append(addr(p), 4, access_kind::read);
        return raw_.load_u32(p);
    }
    std::uint64_t load_u64(const std::byte* p) const {
        trace_->append(addr(p), 8, access_kind::read);
        return raw_.load_u64(p);
    }

    void store_u8(std::byte* p, std::uint8_t v) const {
        trace_->append(addr(p), 1, access_kind::write);
        raw_.store_u8(p, v);
    }
    void store_u16(std::byte* p, std::uint16_t v) const {
        trace_->append(addr(p), 2, access_kind::write);
        raw_.store_u16(p, v);
    }
    void store_u32(std::byte* p, std::uint32_t v) const {
        trace_->append(addr(p), 4, access_kind::write);
        raw_.store_u32(p, v);
    }
    void store_u64(std::byte* p, std::uint64_t v) const {
        trace_->append(addr(p), 8, access_kind::write);
        raw_.store_u64(p, v);
    }

    void copy(std::byte* dst, const std::byte* src, std::size_t n) const {
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) store_u64(dst + i, load_u64(src + i));
        for (; i + 4 <= n; i += 4) store_u32(dst + i, load_u32(src + i));
        for (; i < n; ++i) store_u8(dst + i, load_u8(src + i));
    }

private:
    static std::uint64_t addr(const std::byte* p) noexcept {
        return reinterpret_cast<std::uintptr_t>(p);
    }

    access_trace* trace_;
    direct_memory raw_;
};

static_assert(memory_policy<trace_memory>);

// Feeds a captured trace through a memory system in order.
inline void replay(const access_trace& trace, memory_system& sys) {
    for (const trace_record& r : trace.records()) {
        sys.data_access(r.addr, r.bytes, r.kind);
    }
}

}  // namespace ilp::memsim
