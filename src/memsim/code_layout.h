// Synthetic instruction-footprint model.
//
// The paper's Alpha results hinge on instruction-cache behaviour: the fused
// ILP loop's code is larger than each individual layer loop, and on the
// 8 KB I-cache of the 21064 the extra instruction misses eat 24-28 % of the
// memory-system time (§4.2).  We cannot replay 1995 binaries, so we model
// code as named regions in a synthetic address space:
//
//   * each function has an *entry* region, fetched once per invocation
//     (prologue, control logic), and
//   * a *loop* region, fetched once per processing-unit iteration.
//
// A data path declares which functions run per message and per unit; the
// instruction fetches stream through the same memory_system as the data
// accesses.  This substitution is documented in DESIGN.md (§2).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "memsim/memory_system.h"

namespace ilp::memsim {

struct code_region {
    std::string name;
    std::uint64_t entry_base = 0;
    std::size_t entry_bytes = 0;
    std::uint64_t loop_base = 0;
    std::size_t loop_bytes = 0;
};

// Assigns non-overlapping addresses in a synthetic code segment, mimicking a
// linker laying functions out consecutively.
class code_layout {
public:
    // Code segments start high so they never collide with heap data
    // addresses fed to the same memory_system.
    explicit code_layout(std::uint64_t segment_base = 0x7000'0000'0000ull)
        : next_(segment_base) {}

    // The returned reference stays valid for the layout's lifetime (a
    // deque never relocates existing elements on growth) — callers hold
    // regions across later add() calls.
    const code_region& add(std::string_view name, std::size_t entry_bytes,
                           std::size_t loop_bytes);

    const code_region* find(std::string_view name) const noexcept;

    // Total code bytes laid out so far.
    std::size_t footprint() const noexcept;

private:
    std::uint64_t next_;
    std::deque<code_region> regions_;
};

// Fetch helpers used by the instrumented data paths.
inline void fetch_entry(memory_system& sys, const code_region& fn) {
    if (fn.entry_bytes > 0) sys.instruction_fetch(fn.entry_base, fn.entry_bytes);
}

inline void fetch_loop_iteration(memory_system& sys, const code_region& fn) {
    if (fn.loop_bytes > 0) sys.instruction_fetch(fn.loop_base, fn.loop_bytes);
}

}  // namespace ilp::memsim
