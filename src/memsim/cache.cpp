#include "memsim/cache.h"

#include "util/contracts.h"

namespace ilp::memsim {

namespace {

constexpr bool is_power_of_two(std::size_t v) noexcept {
    return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

cache::cache(cache_config config) : config_(std::move(config)) {
    ILP_EXPECT(config_.size_bytes > 0);
    ILP_EXPECT(is_power_of_two(config_.line_bytes));
    ILP_EXPECT(config_.associativity >= 1);
    ILP_EXPECT(config_.size_bytes % (config_.line_bytes * config_.associativity) == 0);
    set_count_ = config_.set_count();
    ILP_EXPECT(is_power_of_two(set_count_));
    lines_.resize(set_count_ * config_.associativity);
}

cache_access_result cache::access(std::uint64_t addr, access_kind kind) {
    const std::uint64_t line_addr = addr / config_.line_bytes;
    const std::size_t set = static_cast<std::size_t>(line_addr) & (set_count_ - 1);
    const std::uint64_t tag = line_addr / set_count_;
    line* const base = &lines_[set * config_.associativity];

    // Hit path.
    for (std::size_t way = 0; way < config_.associativity; ++way) {
        line& l = base[way];
        if (l.valid && l.tag == tag) {
            l.lru_stamp = ++lru_counter_;
            if (kind == access_kind::write &&
                config_.writes == write_policy::write_back) {
                l.dirty = true;
            }
            ++hits_;
            return {.hit = true, .writeback = false};
        }
    }

    // Miss.
    ++misses_;
    if (kind == access_kind::read) {
        ++read_misses_;
    } else {
        ++write_misses_;
    }

    const bool fill =
        kind == access_kind::read ||
        config_.write_misses == write_miss_policy::allocate;
    if (!fill) {
        // Write-around: data goes straight to the next level, no line fill.
        return {.hit = false, .writeback = false};
    }

    // Choose victim: first invalid way, else LRU.
    line* victim = base;
    for (std::size_t way = 0; way < config_.associativity; ++way) {
        line& l = base[way];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lru_stamp < victim->lru_stamp) victim = &l;
    }

    const bool writeback = victim->valid && victim->dirty;
    if (victim->valid) ++evictions_;
    victim->valid = true;
    victim->tag = tag;
    victim->lru_stamp = ++lru_counter_;
    victim->dirty = kind == access_kind::write &&
                    config_.writes == write_policy::write_back;
    return {.hit = false, .writeback = writeback};
}

void cache::flush() {
    for (auto& l : lines_) l = line{};
    lru_counter_ = 0;
}

void cache::reset_counters() {
    hits_ = 0;
    misses_ = 0;
    read_misses_ = 0;
    write_misses_ = 0;
    evictions_ = 0;
}

}  // namespace ilp::memsim
