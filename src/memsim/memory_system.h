// Multi-level memory-system simulator.
//
// Plays the role of SunOS `shade/cachesim` and DEC `atom` in the paper
// (§4.2): the instrumented protocol code streams every counted memory access
// through this model in program order, and the model reports access counts,
// per-size miss counts, per-level hit/miss statistics and an accumulated
// memory-system cycle count.
#pragma once

#include <cstdint>
#include <optional>

#include "memsim/access.h"
#include "memsim/cache.h"
#include "memsim/touch_map.h"

namespace ilp::memsim {

// Cycle costs of the hierarchy.  A hit in L1 costs l1_hit_cycles; an L1 miss
// that hits in L2 additionally costs l2_hit_cycles; a miss that goes to main
// memory costs memory_cycles.  Write-through traffic to the next level is
// charged at write_through_cycles per propagated write (models a write
// buffer absorbing most of the latency).
struct timing_model {
    std::uint32_t l1_hit_cycles = 1;
    std::uint32_t l2_hit_cycles = 8;
    std::uint32_t memory_cycles = 30;
    std::uint32_t write_through_cycles = 2;
};

struct memory_system_config {
    cache_config l1d;
    cache_config l1i;
    std::optional<cache_config> l2;  // unified second-level cache
    timing_model timing;
};

class memory_system {
public:
    explicit memory_system(const memory_system_config& config);

    // One data access of `bytes` bytes at `addr`.  Accesses spanning a cache
    // line boundary are split (each piece looked up separately) but counted
    // as a single access of the original size, matching how cachesim counts
    // load/store instructions.
    void data_access(std::uint64_t addr, std::size_t bytes, access_kind kind);

    void read(std::uint64_t addr, std::size_t bytes) {
        data_access(addr, bytes, access_kind::read);
    }
    void write(std::uint64_t addr, std::size_t bytes) {
        data_access(addr, bytes, access_kind::write);
    }

    // One instruction fetch of `bytes` code bytes starting at `addr`.
    void instruction_fetch(std::uint64_t addr, std::size_t bytes);

    // Per-size data access/miss histograms (misses are L1-D misses, the
    // quantity Figure 14 reports).
    const access_stats& data_stats() const noexcept { return data_stats_; }

    const cache& l1d() const noexcept { return l1d_; }
    const cache& l1i() const noexcept { return l1i_; }
    const cache* l2() const noexcept { return l2_ ? &*l2_ : nullptr; }

    std::uint64_t instruction_fetches() const noexcept { return ifetches_; }
    std::uint64_t instruction_fetch_misses() const noexcept {
        return ifetch_misses_;
    }

    // Accumulated memory-system time in cycles (data + instruction side).
    std::uint64_t cycles() const noexcept { return cycles_; }
    std::uint64_t data_cycles() const noexcept { return data_cycles_; }
    std::uint64_t instruction_cycles() const noexcept {
        return cycles_ - data_cycles_;
    }

    // Clears statistics but keeps cache contents (for phase-local
    // measurement), or flushes everything with cold_caches = true.
    void reset(bool cold_caches);

    // Attaches a shadow touch map (touch_map.h); every subsequent data
    // access is also reported there, at its original (unsplit) address and
    // size.  Pass nullptr to detach.  The map is the word-touch auditor's
    // data source and is not owned by the memory system.
    void set_touch_map(touch_map* map) noexcept { touch_map_ = map; }
    touch_map* attached_touch_map() const noexcept { return touch_map_; }

private:
    // Charges the levels below L1 for one missing line; returns cycles.
    std::uint64_t charge_miss(std::uint64_t addr, access_kind kind);

    cache l1d_;
    cache l1i_;
    std::optional<cache> l2_;
    timing_model timing_;

    touch_map* touch_map_ = nullptr;
    access_stats data_stats_;
    std::uint64_t ifetches_ = 0;
    std::uint64_t ifetch_misses_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t data_cycles_ = 0;
};

}  // namespace ilp::memsim
