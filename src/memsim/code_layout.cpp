#include "memsim/code_layout.h"

#include "util/contracts.h"

namespace ilp::memsim {

const code_region& code_layout::add(std::string_view name,
                                    std::size_t entry_bytes,
                                    std::size_t loop_bytes) {
    ILP_EXPECT(find(name) == nullptr);
    code_region region;
    region.name = std::string(name);
    region.entry_base = next_;
    region.entry_bytes = entry_bytes;
    next_ += entry_bytes;
    region.loop_base = next_;
    region.loop_bytes = loop_bytes;
    next_ += loop_bytes;
    // Round the next function up to a 32-byte boundary like a linker would.
    next_ = (next_ + 31) & ~std::uint64_t{31};
    regions_.push_back(std::move(region));
    return regions_.back();
}

const code_region* code_layout::find(std::string_view name) const noexcept {
    for (const auto& r : regions_) {
        if (r.name == name) return &r;
    }
    return nullptr;
}

std::size_t code_layout::footprint() const noexcept {
    std::size_t total = 0;
    for (const auto& r : regions_) total += r.entry_bytes + r.loop_bytes;
    return total;
}

}  // namespace ilp::memsim
