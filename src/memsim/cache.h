// Set-associative cache model with LRU replacement.
//
// Models the first-level data/instruction caches and optional second-level
// caches of the paper's machines (e.g. SuperSPARC: 16 KB 4-way D + 20 KB
// 5-way I, write-through; Alpha 21064: 8 KB direct-mapped D + 8 KB I,
// write-through, plus 512 KB external cache).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/access.h"

namespace ilp::memsim {

enum class write_policy : std::uint8_t { write_through, write_back };
enum class write_miss_policy : std::uint8_t { allocate, no_allocate };

struct cache_config {
    std::string name;
    std::size_t size_bytes = 0;
    std::size_t line_bytes = 32;
    std::size_t associativity = 1;  // 1 = direct-mapped
    write_policy writes = write_policy::write_through;
    write_miss_policy write_misses = write_miss_policy::no_allocate;

    std::size_t set_count() const noexcept {
        return size_bytes / (line_bytes * associativity);
    }
};

// Result of one cache lookup.
struct cache_access_result {
    bool hit = false;
    // A dirty line was evicted (write-back caches only); the caller charges a
    // write-back to the next level.
    bool writeback = false;
};

class cache {
public:
    explicit cache(cache_config config);

    // Looks up the line containing `addr`; on miss, fills the line (subject
    // to the write-miss policy).  The caller is responsible for splitting
    // accesses that span multiple lines.
    cache_access_result access(std::uint64_t addr, access_kind kind);

    // Invalidate all lines (e.g. between measurement phases).
    void flush();

    const cache_config& config() const noexcept { return config_; }

    std::uint64_t hits() const noexcept { return hits_; }
    std::uint64_t misses() const noexcept { return misses_; }
    std::uint64_t read_misses() const noexcept { return read_misses_; }
    std::uint64_t write_misses() const noexcept { return write_misses_; }
    std::uint64_t evictions() const noexcept { return evictions_; }
    void reset_counters();

private:
    struct line {
        std::uint64_t tag = 0;
        std::uint64_t lru_stamp = 0;
        bool valid = false;
        bool dirty = false;
    };

    cache_config config_;
    std::size_t set_count_;
    std::vector<line> lines_;  // set-major layout: lines_[set * assoc + way]
    std::uint64_t lru_counter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t read_misses_ = 0;
    std::uint64_t write_misses_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace ilp::memsim
