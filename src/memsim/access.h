// Memory-access vocabulary shared by the cache model and the access policies.
//
// The paper analyses memory behaviour in terms of the *number and size* of
// accesses (e.g. "13.7e6 4-byte reads less", "1-byte cache misses increase
// from 0.03e6 to 2e6"), so the simulator keeps a per-size histogram of both
// accesses and misses.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ilp::memsim {

enum class access_kind : std::uint8_t { read, write };

// Buckets for access sizes 1, 2, 4, 8 bytes (larger accesses are accounted
// in the 8-byte bucket; the protocol stack never issues wider ones).
inline constexpr std::size_t size_bucket_count = 4;

constexpr std::size_t size_bucket(std::size_t bytes) noexcept {
    if (bytes <= 1) return 0;
    if (bytes <= 2) return 1;
    if (bytes <= 4) return 2;
    return 3;
}

constexpr std::size_t bucket_bytes(std::size_t bucket) noexcept {
    constexpr std::array<std::size_t, size_bucket_count> widths{1, 2, 4, 8};
    return widths[bucket];
}

// Per-size access/miss counters for one direction (read or write).
struct access_histogram {
    std::array<std::uint64_t, size_bucket_count> accesses{};
    std::array<std::uint64_t, size_bucket_count> misses{};

    std::uint64_t total_accesses() const noexcept {
        std::uint64_t sum = 0;
        for (const auto v : accesses) sum += v;
        return sum;
    }
    std::uint64_t total_misses() const noexcept {
        std::uint64_t sum = 0;
        for (const auto v : misses) sum += v;
        return sum;
    }
    // Total bytes moved by the recorded accesses.
    std::uint64_t total_bytes() const noexcept {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < size_bucket_count; ++i)
            sum += accesses[i] * bucket_bytes(i);
        return sum;
    }

    access_histogram& operator+=(const access_histogram& other) noexcept {
        for (std::size_t i = 0; i < size_bucket_count; ++i) {
            accesses[i] += other.accesses[i];
            misses[i] += other.misses[i];
        }
        return *this;
    }
};

// Full memory-access statistics for one simulation run.
struct access_stats {
    access_histogram reads;
    access_histogram writes;

    std::uint64_t total_accesses() const noexcept {
        return reads.total_accesses() + writes.total_accesses();
    }
    std::uint64_t total_misses() const noexcept {
        return reads.total_misses() + writes.total_misses();
    }
    double miss_ratio() const noexcept {
        const std::uint64_t acc = total_accesses();
        return acc == 0 ? 0.0
                        : static_cast<double>(total_misses()) /
                              static_cast<double>(acc);
    }

    access_stats& operator+=(const access_stats& other) noexcept {
        reads += other.reads;
        writes += other.writes;
        return *this;
    }
};

}  // namespace ilp::memsim
