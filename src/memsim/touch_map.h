// Shadow word-touch counters for the runtime fusion auditor.
//
// Figure 13's memory-access counts rest on the ILP loop's core property:
// each payload word is read from source memory exactly once and written to
// destination memory exactly once.  A `touch_map` verifies it directly — it
// shadows declared byte ranges (the application buffer, the wire image, the
// TCP ring span) with per-byte read/write counters, and `memory_system`
// reports every counted data access into it.  The analyzer
// (src/analysis/touch_audit.h) then turns count mismatches into findings:
// a stage that re-reads payload memory shows up as reads==2, a loop that
// bounces data through a staging pass shows up as extra writes.
//
// The map is debug tooling: it piggybacks on `sim_memory` runs and costs
// nothing when no map is attached (one null check per access).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "memsim/access.h"
#include "util/contracts.h"

namespace ilp::memsim {

class touch_map {
public:
    struct counts {
        std::uint32_t reads = 0;
        std::uint32_t writes = 0;
    };

    // Registers [base, base+len) for auditing under `label`.  Ranges must
    // not overlap (each byte has one owner).
    void watch(std::string label, const std::byte* base, std::size_t len) {
        const std::uint64_t lo = reinterpret_cast<std::uintptr_t>(base);
        for (const range& r : ranges_) {
            ILP_EXPECT(lo + len <= r.base || r.base + r.counters.size() <= lo);
        }
        ranges_.push_back({std::move(label), lo, {}});
        ranges_.back().counters.resize(len);
    }

    // Called by memory_system for every counted data access; clips the
    // access to each watched range it intersects.
    void on_access(std::uint64_t addr, std::size_t bytes,
                   access_kind kind) noexcept {
        for (range& r : ranges_) {
            const std::uint64_t end = r.base + r.counters.size();
            if (addr >= end || addr + bytes <= r.base) continue;
            const std::uint64_t lo = addr > r.base ? addr : r.base;
            const std::uint64_t hi = addr + bytes < end ? addr + bytes : end;
            for (std::uint64_t a = lo; a < hi; ++a) {
                counts& c = r.counters[static_cast<std::size_t>(a - r.base)];
                if (kind == access_kind::read) {
                    ++c.reads;
                } else {
                    ++c.writes;
                }
            }
        }
    }

    std::size_t range_count() const noexcept { return ranges_.size(); }
    std::string_view label(std::size_t i) const { return ranges_[i].label; }
    std::size_t size(std::size_t i) const { return ranges_[i].counters.size(); }
    const counts& at(std::size_t i, std::size_t offset) const {
        return ranges_[i].counters[offset];
    }

    // Index of the range registered under `label`, or npos.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t find(std::string_view label_text) const noexcept {
        for (std::size_t i = 0; i < ranges_.size(); ++i) {
            if (ranges_[i].label == label_text) return i;
        }
        return npos;
    }

    void reset_counts() noexcept {
        for (range& r : ranges_) {
            for (counts& c : r.counters) c = counts{};
        }
    }

private:
    struct range {
        std::string label;
        std::uint64_t base = 0;
        std::vector<counts> counters;
    };

    std::vector<range> ranges_;
};

}  // namespace ilp::memsim
