// The conventional (non-ILP) executors: one pass over memory per layer.
//
// These helpers implement the left-hand side of the paper's Figure 1/3:
// every protocol function reads the complete packet from memory, transforms
// it, and writes the complete intermediate packet back, so each layer adds a
// full read+write of the data to the memory traffic.  The ILP/non-ILP
// comparison in the benchmarks is precisely fused_pipeline vs. these.
#pragma once

#include <span>

#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/gather.h"
#include "core/stage.h"
#include "memsim/mem_policy.h"

namespace ilp::core {

// Applies one stage across `buf` in place: per stage unit, read from memory,
// transform in registers, write back to memory (both counted).
template <memsim::memory_policy Mem, data_stage S>
void apply_stage_in_place(const Mem& mem, S& stage, std::span<std::byte> buf) {
    constexpr std::size_t u = S::unit_bytes;
    ILP_EXPECT(buf.size() % u == 0);
    alignas(8) std::byte scratch[u];
    for (std::size_t off = 0; off < buf.size(); off += u) {
        // Load the unit through the policy...
        std::size_t i = 0;
        if constexpr (u % 8 == 0) {
            for (; i < u; i += 8) {
                const std::uint64_t v = mem.load_u64(buf.data() + off + i);
                std::memcpy(scratch + i, &v, 8);
            }
        } else if constexpr (u % 4 == 0) {
            for (; i < u; i += 4) {
                const std::uint32_t v = mem.load_u32(buf.data() + off + i);
                std::memcpy(scratch + i, &v, 4);
            }
        } else {
            for (; i < u; ++i) {
                scratch[i] = static_cast<std::byte>(mem.load_u8(buf.data() + off + i));
            }
        }
        // ...transform in registers...
        stage.process_unit(mem, scratch);
        // ...and write it back.
        i = 0;
        if constexpr (u % 8 == 0) {
            for (; i < u; i += 8) {
                std::uint64_t v;
                std::memcpy(&v, scratch + i, 8);
                mem.store_u64(buf.data() + off + i, v);
            }
        } else if constexpr (u % 4 == 0) {
            for (; i < u; i += 4) {
                std::uint32_t v;
                std::memcpy(&v, scratch + i, 4);
                mem.store_u32(buf.data() + off + i, v);
            }
        } else {
            for (; i < u; ++i) {
                mem.store_u8(buf.data() + off + i,
                             std::to_integer<std::uint8_t>(scratch[i]));
            }
        }
    }
}

// Marshalling pass: assembles the gather segments into a contiguous buffer
// (reads application memory, writes the wire image) without any fused
// manipulation — layer 1 of the non-ILP send path.
template <memsim::memory_policy Mem>
void marshal_to_buffer(const Mem& mem, const gather_source& src,
                       std::span<std::byte> dst) {
    ILP_EXPECT(src.total_size() == dst.size());
    fused_pipeline<> copy_loop;
    copy_loop.run(mem, src, span_dest(dst));
}

// Unmarshalling pass: distributes a contiguous wire image to the scatter
// segments (reads the packet, writes application memory) — the final layer
// of the non-ILP receive path.
template <memsim::memory_policy Mem>
void unmarshal_from_buffer(const Mem& mem, std::span<const std::byte> src,
                           const scatter_dest& dst) {
    ILP_EXPECT(src.size() == dst.total_size());
    fused_pipeline<> copy_loop;
    copy_loop.run(mem, span_source(src), dst);
}

// Plain counted copy (the tcp_send / system-copy passes).
template <memsim::memory_policy Mem>
void copy_pass(const Mem& mem, std::span<const std::byte> src,
               std::span<std::byte> dst) {
    ILP_EXPECT(src.size() == dst.size());
    mem.copy(dst.data(), src.data(), src.size());
}

// Standalone checksum pass (read-only, layer 4 of the non-ILP send path).
template <memsim::memory_policy Mem>
void checksum_pass(const Mem& mem, checksum::inet_accumulator& acc,
                   std::span<const std::byte> data,
                   std::size_t unit_width = 2) {
    acc.add_bytes(mem, data, unit_width);
}

}  // namespace ilp::core
