// Function-call composition of stages — the flexibility/performance ablation.
//
// §3.2.1 of the paper: "Using function calls and function pointers instead
// supports a dynamically adaptable implementation, but experiments have
// shown that substituting macros by function calls results in the loss of
// all performance benefits gained by ILP."
//
// dynamic_pipeline is the function-pointer variant: stages are added at run
// time (the adaptability the paper wanted for congestion-dependent stacks),
// the loop structure and memory behaviour are identical to fused_pipeline,
// but every per-unit stage call goes through a type-erased, never-inlined
// function pointer.  bench_ablation_fusion measures the difference.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "core/gather.h"
#include "core/stage.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"

namespace ilp::core {

template <memsim::memory_policy Mem>
class dynamic_pipeline {
public:
    // Maximum supported exchanged-unit size.
    static constexpr std::size_t max_unit_bytes = 64;

    template <data_stage S>
    void add_stage(S& stage) {
        entries_.push_back({&stage, &trampoline<S>, S::unit_bytes});
        unit_bytes_ = std::lcm(unit_bytes_, S::unit_bytes);
        ILP_EXPECT(unit_bytes_ <= max_unit_bytes);
        ordering_constrained_ =
            ordering_constrained_ || S::ordering_constrained;
    }

    std::size_t unit_bytes() const noexcept { return unit_bytes_; }
    bool ordering_constrained() const noexcept { return ordering_constrained_; }

    void run(const Mem& mem, gather_cursor& src, scatter_cursor& dst,
             std::size_t n) const {
        ILP_EXPECT(n % unit_bytes_ == 0);
        alignas(8) std::byte scratch[max_unit_bytes];
        for (std::size_t off = 0; off < n; off += unit_bytes_) {
            src.fill(mem, scratch, unit_bytes_);
            for (const entry& e : entries_) {
                for (std::size_t i = 0; i < unit_bytes_; i += e.unit_bytes) {
                    e.fn(e.stage, mem, scratch + i);
                }
            }
            dst.drain(mem, scratch, unit_bytes_);
        }
    }

    void run(const Mem& mem, const gather_source& src,
             const scatter_dest& dst) const {
        ILP_EXPECT(src.total_size() == dst.total_size());
        gather_cursor in(src);
        scatter_cursor out(dst);
        run(mem, in, out, src.total_size());
    }

private:
    using unit_fn = void (*)(void*, const Mem&, std::byte*);

    struct entry {
        void* stage;
        unit_fn fn;
        std::size_t unit_bytes;
    };

    template <typename S>
    static ILP_NEVER_INLINE void trampoline(void* stage, const Mem& mem,
                                            std::byte* unit) {
        static_cast<S*>(stage)->process_unit(mem, unit);
    }

    std::vector<entry> entries_;
    std::size_t unit_bytes_ = 8;  // Ls, as in fused_pipeline
    bool ordering_constrained_ = false;
};

}  // namespace ilp::core
