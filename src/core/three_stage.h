// The three-stage processing model (Abbott & Peterson, paper §2.1).
//
// Ordering constraints between control and data functions are managed by
// dividing protocol processing into
//
//   1. *initial operations*  — demultiplexing and packet parsing; small,
//      decides whether and how to run the loop,
//   2. the *ILP loop*        — all fused data manipulations, and
//   3. the *final stage*     — message acceptance or rejection plus the
//      control actions that depend on the loop's results (checksum verdict,
//      ack generation, connection-state update).
//
// The user-level TCP receive path is written in exactly this shape; this
// header gives the shape a name and a tiny generic runner so the
// decomposition is visible (and testable) rather than implicit.
#pragma once

#include <optional>
#include <utility>

namespace ilp::core {

// Outcome of the final stage.
enum class final_verdict {
    accept,   // message delivered; control state committed
    reject,   // message dropped; control state untouched (no roll-back
              // needed because manipulation ran before commitment)
};

// Runs the decomposition:
//   * `initial()` returns std::optional<Plan>: nullopt = packet discarded
//     before any data manipulation (bad header, no matching connection).
//   * `loop(plan)` performs the integrated data manipulations and returns
//     their result (checksum verdicts, delivered byte count, ...).
//   * `final_stage(plan, loop_result)` accepts/rejects and commits control
//     state; its verdict is returned.
//
// Returns nullopt if the initial stage discarded the packet.
template <typename Initial, typename Loop, typename Final>
auto run_three_stage(Initial&& initial, Loop&& loop, Final&& final_stage)
    -> std::optional<final_verdict> {
    auto plan = initial();
    if (!plan.has_value()) return std::nullopt;
    auto result = loop(*plan);
    return final_stage(*plan, std::move(result));
}

}  // namespace ilp::core
