#include "core/message_plan.h"

#include "util/alignment.h"
#include "util/contracts.h"

namespace ilp::core {

bool message_plan::well_formed() const noexcept {
    if (part_a.offset != 0) return false;
    std::size_t cursor = part_a.len;
    if (part_b.offset != cursor) return false;
    cursor += part_b.len;
    if (part_c.offset != cursor) return false;
    cursor += part_c.len;
    return cursor == total_bytes && marshalled_bytes <= total_bytes &&
           total_bytes - marshalled_bytes == padding_bytes;
}

bool message_plan::aligned_for(std::size_t unit) const noexcept {
    if (unit == 0) return false;
    for (const message_part& part : linear_order()) {
        if (part.offset % unit != 0 || part.len % unit != 0) return false;
    }
    return true;
}

message_plan plan_parts(std::size_t marshalled_bytes) {
    ILP_EXPECT(marshalled_bytes >= encryption_header_bytes);

    message_plan plan;
    plan.marshalled_bytes = marshalled_bytes;
    plan.total_bytes = align_up(marshalled_bytes, encryption_unit_bytes);
    plan.padding_bytes = plan.total_bytes - marshalled_bytes;

    // Part A always covers the first cipher block: the encryption header and
    // the first marshalled word.
    plan.part_a = {0, encryption_unit_bytes};

    if (plan.total_bytes == encryption_unit_bytes) {
        // Degenerate message: the whole thing is part A.
        plan.part_b = {encryption_unit_bytes, 0};
        plan.part_c = {encryption_unit_bytes, 0};
        return plan;
    }

    // Part C is the final block (position gamma), which contains the
    // alignment bytes; part B is everything between beta and gamma.
    plan.part_c = {plan.total_bytes - encryption_unit_bytes,
                   encryption_unit_bytes};
    plan.part_b = {encryption_unit_bytes,
                   plan.total_bytes - 2 * encryption_unit_bytes};
    return plan;
}

}  // namespace ilp::core
