#include "core/message_plan.h"

#include "util/alignment.h"
#include "util/contracts.h"

namespace ilp::core {

message_plan plan_parts(std::size_t marshalled_bytes) {
    ILP_EXPECT(marshalled_bytes >= encryption_header_bytes);

    message_plan plan;
    plan.marshalled_bytes = marshalled_bytes;
    plan.total_bytes = align_up(marshalled_bytes, encryption_unit_bytes);
    plan.padding_bytes = plan.total_bytes - marshalled_bytes;

    // Part A always covers the first cipher block: the encryption header and
    // the first marshalled word.
    plan.part_a = {0, encryption_unit_bytes};

    if (plan.total_bytes == encryption_unit_bytes) {
        // Degenerate message: the whole thing is part A.
        plan.part_b = {encryption_unit_bytes, 0};
        plan.part_c = {encryption_unit_bytes, 0};
        return plan;
    }

    // Part C is the final block (position gamma), which contains the
    // alignment bytes; part B is everything between beta and gamma.
    plan.part_c = {plan.total_bytes - encryption_unit_bytes,
                   encryption_unit_bytes};
    plan.part_b = {encryption_unit_bytes,
                   plan.total_bytes - 2 * encryption_unit_bytes};
    return plan;
}

}  // namespace ilp::core
