// Word filters (Abbott & Peterson) — the unit-size-mismatch baseline.
//
// A word filter "operates on words (commonly 4 bytes).  It outputs a word
// each time a word is input and indicates, in case of larger data units, the
// position of the output word in this data unit using a flag" (paper §2.1).
// Filters chain into a pipeline: each filter transforms words and pushes
// them to its successor.
//
// The paper's critique (§2.2) is that word filters hand data out as soon as
// it is ready, regardless of whether the next function would rather receive
// larger units: a checksum fed 4-byte words from an 8-byte cipher issues two
// stores per block where one would do.  The LCM-unit fused pipeline is the
// proposed fix; bench_ablation_unit_size measures both under the simulator.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "analysis/footprint.h"
#include "checksum/internet_checksum.h"
#include "crypto/block_cipher.h"
#include "memsim/mem_policy.h"
#include "obs/tracer.h"
#include "util/contracts.h"
#include "util/endian.h"

namespace ilp::core {

// One 4-byte word travelling through a filter chain, tagged with its
// position inside the producing function's larger data unit.
struct filter_word {
    std::uint32_t value = 0;   // register image of the 4 memory bytes
    std::uint8_t index = 0;    // word index within the producer's unit
    std::uint8_t unit_words = 1;  // producer unit size in words
};

template <memsim::memory_policy Mem>
class word_filter {
public:
    virtual ~word_filter() = default;

    void set_next(word_filter* next) noexcept { next_ = next; }
    const word_filter* next() const noexcept { return next_; }

    // The filter's declared footprint for the fusion analyzer; concrete
    // filters override to report their real granularity and constraints.
    virtual analysis::footprint footprint() const {
        return {.name = "word_filter",
                .unit_bytes = 4,
                .reads_per_unit = 4,
                .writes_per_unit = 4,
                .ordering_constrained = false,
                .length_known_before_loop = true,
                .alignment = 4,
                .aux_table_bytes = 0};
    }

    // Pushes one word into this filter.
    virtual void put(const Mem& mem, filter_word w) = 0;

    // Signals end of message; filters with buffered state must have none
    // left (message sizes are pre-aligned to every unit size).
    virtual void finish(const Mem& mem) {
        if (next_ != nullptr) next_->finish(mem);
    }

protected:
    void emit(const Mem& mem, filter_word w) {
        ILP_EXPECT(next_ != nullptr);
        next_->put(mem, w);
    }

private:
    word_filter* next_ = nullptr;
};

// Head of a chain: reads a buffer word-by-word through the memory policy.
template <memsim::memory_policy Mem>
void feed_words(const Mem& mem, word_filter<Mem>& first,
                std::span<const std::byte> data) {
    ILP_EXPECT(data.size() % 4 == 0);
    ILP_OBS_SPAN("core", "word_loop");
    for (std::size_t i = 0; i < data.size(); i += 4) {
        first.put(mem, {mem.load_u32(data.data() + i), 0, 1});
        }
    first.finish(mem);
}

// Block-cipher filter: buffers words until a cipher block is complete,
// transforms it, then emits the block's words one at a time (position
// flagged) — exactly the granularity mismatch the paper analyses.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher, bool Encrypt>
class cipher_word_filter final : public word_filter<Mem> {
public:
    static constexpr std::size_t block_words = Cipher::block_bytes / 4;

    explicit cipher_word_filter(const Cipher& cipher) : cipher_(&cipher) {}

    analysis::footprint footprint() const override {
        return {.name = Encrypt ? "cipher_filter(encrypt)"
                                : "cipher_filter(decrypt)",
                .unit_bytes = Cipher::block_bytes,
                .reads_per_unit = Cipher::block_bytes,
                .writes_per_unit = Cipher::block_bytes,
                .ordering_constrained = false,
                .length_known_before_loop = true,
                .alignment = Cipher::block_bytes,
                .aux_table_bytes = crypto::cipher_table_bytes<Cipher>()};
    }

    void put(const Mem& mem, filter_word w) override {
        std::memcpy(block_ + 4 * filled_, &w.value, 4);
        if (++filled_ < block_words) return;
        filled_ = 0;
        if constexpr (Encrypt) {
            cipher_->encrypt_block(mem, block_);
        } else {
            cipher_->decrypt_block(mem, block_);
        }
        for (std::size_t i = 0; i < block_words; ++i) {
            filter_word out;
            std::memcpy(&out.value, block_ + 4 * i, 4);
            out.index = static_cast<std::uint8_t>(i);
            out.unit_words = block_words;
            this->emit(mem, out);
        }
    }

    void finish(const Mem& mem) override {
        ILP_EXPECT(filled_ == 0);  // caller aligned the message
        word_filter<Mem>::finish(mem);
    }

private:
    const Cipher* cipher_;
    alignas(8) std::byte block_[Cipher::block_bytes] = {};
    std::size_t filled_ = 0;
};

// Checksum filter: folds each word into the Internet checksum, passes it on.
template <memsim::memory_policy Mem>
class checksum_word_filter final : public word_filter<Mem> {
public:
    explicit checksum_word_filter(checksum::inet_accumulator& acc)
        : acc_(&acc) {}

    analysis::footprint footprint() const override {
        return {.name = "checksum_filter",
                .unit_bytes = 4,
                .reads_per_unit = 4,
                .writes_per_unit = 0,  // tap: passes words through untouched
                .ordering_constrained = false,
                .length_known_before_loop = true,
                .alignment = 2,
                .aux_table_bytes = 0};
    }

    void put(const Mem& mem, filter_word w) override {
        acc_->add_register_u32(w.value);
        this->emit(mem, w);
    }

private:
    checksum::inet_accumulator* acc_;
};

// Marshalling filter: converts each word between host and XDR (big-endian)
// form — the word-filter rendition of the stub compiler's integer
// conversion.  Encode and decode are the same transform; the direction is
// fixed by where the chain sits (send vs receive).
template <memsim::memory_policy Mem>
class xdr_word_filter final : public word_filter<Mem> {
public:
    analysis::footprint footprint() const override {
        return {.name = "xdr_filter",
                .unit_bytes = 4,
                .reads_per_unit = 4,
                .writes_per_unit = 4,
                .ordering_constrained = false,
                .length_known_before_loop = true,
                .alignment = 4,
                .aux_table_bytes = 0};
    }

    void put(const Mem& mem, filter_word w) override {
        w.value = host_to_be32(w.value);
        this->emit(mem, w);
    }
};

// Sink: stores each arriving word to consecutive destination memory — one
// 4-byte store per word, i.e. two stores per cipher block, the cost the
// LCM rule removes.
template <memsim::memory_policy Mem>
class sink_word_filter final : public word_filter<Mem> {
public:
    explicit sink_word_filter(std::span<std::byte> dst) : dst_(dst) {}

    analysis::footprint footprint() const override {
        return {.name = "sink_filter",
                .unit_bytes = 4,
                .reads_per_unit = 0,
                .writes_per_unit = 4,  // one 4-byte store per word
                .ordering_constrained = false,
                .length_known_before_loop = true,
                .alignment = 4,
                .aux_table_bytes = 0};
    }

    void put(const Mem& mem, filter_word w) override {
        ILP_EXPECT(pos_ + 4 <= dst_.size());
        mem.store_u32(dst_.data() + pos_, w.value);
        pos_ += 4;
    }

    std::size_t bytes_written() const noexcept { return pos_; }

private:
    std::span<std::byte> dst_;
    std::size_t pos_ = 0;
};

// Walks a chain head-to-sink and collects each filter's declared footprint,
// in push order — the word-chain analogue of fused_pipeline::footprints().
// The analyzer checks the result like any fused composition, plus the
// word-handoff warning that is the chain's §2.2 signature cost.
template <memsim::memory_policy Mem>
std::vector<analysis::footprint> chain_footprints(
    const word_filter<Mem>& first) {
    std::vector<analysis::footprint> out;
    for (const word_filter<Mem>* f = &first; f != nullptr; f = f->next()) {
        out.push_back(f->footprint());
    }
    return out;
}

}  // namespace ilp::core
