// Gather sources and scatter destinations for the fused ILP loop.
//
// Marshalling in a stub-compiler stack is not a uniform transform: an
// outgoing message is assembled from segments — already-encoded header
// words, integer fields that need host->XDR conversion, opaque payload that
// is copied verbatim, and alignment bytes that are generated, not read
// (paper Fig. 2).  A `gather_source` describes exactly that, and its cursor
// *is* the marshalling stage of the fused loop: it reads each application
// word once (through the memory policy, so the simulator sees it) and
// deposits the XDR wire form directly into loop scratch.
//
// The receive side mirrors it: a `scatter_dest` routes decrypted wire words
// to application fields (converting XDR ints back to host form), drops
// padding, and writes each destination byte exactly once.
#pragma once

#include <cstdint>
#include <cstring>

#include "buffer/ring_buffer.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"
#include "util/endian.h"
#include "util/fixed_vector.h"

namespace ilp::core {

// How a segment's bytes are transformed between application form and wire
// form as they stream through the loop.
enum class segment_op : std::uint8_t {
    copy,       // opaque data / already-encoded bytes
    xdr_words,  // 32-bit host integers <-> XDR big-endian words
    zeros,      // generated alignment/padding bytes (no memory on this side)
};

struct gather_segment {
    const std::byte* data = nullptr;  // null for zeros
    std::size_t len = 0;
    segment_op op = segment_op::copy;
};

struct scatter_segment {
    std::byte* data = nullptr;  // null for discard (zeros on receive = drop)
    std::size_t len = 0;
    segment_op op = segment_op::copy;
};

inline constexpr std::size_t max_segments = 8;

class gather_source {
public:
    gather_source() = default;

    gather_source& add(std::span<const std::byte> data,
                       segment_op op = segment_op::copy) {
        ILP_EXPECT(op != segment_op::zeros);
        ILP_EXPECT(op != segment_op::xdr_words || data.size() % 4 == 0);
        segments_.push_back({data.data(), data.size(), op});
        return *this;
    }

    gather_source& add_zeros(std::size_t len) {
        segments_.push_back({nullptr, len, segment_op::zeros});
        return *this;
    }

    std::size_t total_size() const noexcept {
        std::size_t n = 0;
        for (const auto& s : segments_) n += s.len;
        return n;
    }

    // Sub-range [offset, offset+len).  Cuts inside xdr_words segments must
    // fall on word boundaries or the word transform would tear.
    gather_source slice(std::size_t offset, std::size_t len) const;

    std::span<const gather_segment> segments() const noexcept {
        return {segments_.data(), segments_.size()};
    }

    // Internal: append a pre-validated segment (slice() uses it).
    void append_raw(const gather_segment& s) { segments_.push_back(s); }

private:
    fixed_vector<gather_segment, max_segments> segments_;
};

class scatter_dest {
public:
    scatter_dest() = default;

    scatter_dest& add(std::span<std::byte> data,
                      segment_op op = segment_op::copy) {
        ILP_EXPECT(op != segment_op::zeros);
        ILP_EXPECT(op != segment_op::xdr_words || data.size() % 4 == 0);
        segments_.push_back({data.data(), data.size(), op});
        return *this;
    }

    // Bytes to drop (padding, already-consumed header space).
    scatter_dest& add_discard(std::size_t len) {
        segments_.push_back({nullptr, len, segment_op::zeros});
        return *this;
    }

    std::size_t total_size() const noexcept {
        std::size_t n = 0;
        for (const auto& s : segments_) n += s.len;
        return n;
    }

    scatter_dest slice(std::size_t offset, std::size_t len) const;

    std::span<const scatter_segment> segments() const noexcept {
        return {segments_.data(), segments_.size()};
    }

    // Internal: append a pre-validated segment (slice() uses it).
    void append_raw(const scatter_segment& s) { segments_.push_back(s); }

private:
    fixed_vector<scatter_segment, max_segments> segments_;
};

// ---------------------------------------------------------------------------
// Cursors: sequential fill/drain used by the pipeline inner loop.

class gather_cursor {
public:
    explicit gather_cursor(const gather_source& src) : src_(&src) {}

    std::size_t remaining() const noexcept {
        std::size_t n = 0;
        const auto segs = src_->segments();
        for (std::size_t i = seg_; i < segs.size(); ++i) n += segs[i].len;
        return n - seg_pos_;
    }

    // Reads the next n bytes into `scratch` (direct stores: scratch is the
    // loop's register set), applying each segment's transform.  Reads from
    // segment memory go through `mem`.
    template <memsim::memory_policy Mem>
    void fill(const Mem& mem, std::byte* scratch, std::size_t n) {
        const auto segs = src_->segments();
        std::size_t out = 0;
        while (out < n) {
            ILP_EXPECT(seg_ < segs.size());
            const gather_segment& s = segs[seg_];
            const std::size_t take = std::min(n - out, s.len - seg_pos_);
            switch (s.op) {
                case segment_op::zeros:
                    std::memset(scratch + out, 0, take);
                    break;
                case segment_op::copy: {
                    // Read in the widest units available — the loop's single
                    // read of each datum should use the full memory path.
                    const std::byte* p = s.data + seg_pos_;
                    std::size_t i = 0;
                    for (; i + 8 <= take; i += 8) {
                        const std::uint64_t v = mem.load_u64(p + i);
                        std::memcpy(scratch + out + i, &v, 8);
                    }
                    for (; i + 4 <= take; i += 4) {
                        const std::uint32_t v = mem.load_u32(p + i);
                        std::memcpy(scratch + out + i, &v, 4);
                    }
                    for (; i < take; ++i) {
                        scratch[out + i] =
                            static_cast<std::byte>(mem.load_u8(p + i));
                    }
                    break;
                }
                case segment_op::xdr_words: {
                    ILP_EXPECT(seg_pos_ % 4 == 0 && take % 4 == 0);
                    const std::byte* p = s.data + seg_pos_;
                    for (std::size_t i = 0; i < take; i += 4) {
                        const std::uint32_t v = host_to_be32(mem.load_u32(p + i));
                        std::memcpy(scratch + out + i, &v, 4);
                    }
                    break;
                }
            }
            out += take;
            seg_pos_ += take;
            if (seg_pos_ == s.len) {
                ++seg_;
                seg_pos_ = 0;
            }
        }
    }

private:
    const gather_source* src_;
    std::size_t seg_ = 0;
    std::size_t seg_pos_ = 0;
};

class scatter_cursor {
public:
    explicit scatter_cursor(const scatter_dest& dst) : dst_(&dst) {}

    // Writes the next n bytes from `scratch` out to the destination
    // segments (stores through `mem`), applying each segment's transform.
    template <memsim::memory_policy Mem>
    void drain(const Mem& mem, const std::byte* scratch, std::size_t n) {
        const auto segs = dst_->segments();
        std::size_t in = 0;
        while (in < n) {
            ILP_EXPECT(seg_ < segs.size());
            const scatter_segment& s = segs[seg_];
            const std::size_t take = std::min(n - in, s.len - seg_pos_);
            switch (s.op) {
                case segment_op::zeros:
                    break;  // discarded (receive-side padding)
                case segment_op::copy: {
                    // Write in the widest units available (paper §2.2: one
                    // 8-byte store per cipher block instead of two 4-byte
                    // ones is the point of exchanging LCM-sized units).
                    std::byte* p = s.data + seg_pos_;
                    std::size_t i = 0;
                    for (; i + 8 <= take; i += 8) {
                        std::uint64_t v;
                        std::memcpy(&v, scratch + in + i, 8);
                        mem.store_u64(p + i, v);
                    }
                    for (; i + 4 <= take; i += 4) {
                        std::uint32_t v;
                        std::memcpy(&v, scratch + in + i, 4);
                        mem.store_u32(p + i, v);
                    }
                    for (; i < take; ++i) {
                        mem.store_u8(
                            p + i, std::to_integer<std::uint8_t>(scratch[in + i]));
                    }
                    break;
                }
                case segment_op::xdr_words: {
                    ILP_EXPECT(seg_pos_ % 4 == 0 && take % 4 == 0);
                    std::byte* p = s.data + seg_pos_;
                    for (std::size_t i = 0; i < take; i += 4) {
                        std::uint32_t v;
                        std::memcpy(&v, scratch + in + i, 4);
                        mem.store_u32(p + i, be32_to_host(v));
                    }
                    break;
                }
            }
            in += take;
            seg_pos_ += take;
            if (seg_pos_ == s.len) {
                ++seg_;
                seg_pos_ = 0;
            }
        }
    }

private:
    const scatter_dest* dst_;
    std::size_t seg_ = 0;
    std::size_t seg_pos_ = 0;
};

}  // namespace ilp::core
