// Message-part segmentation for header/data dependencies (paper §3.2.2).
//
// The encryption header (a 4-byte length field) is itself encrypted, the
// cipher is aligned to 8 bytes, and the length is traditionally only known
// once marshalling finishes.  The paper therefore splits the message (all
// offsets relative to the start of the encryption header, Fig. 4):
//
//        0        4        8                total-8       total
//        | enc hdr | 1st w. |   ...body...   | tail + pad |
//        '----- part A -----'---- part B ----'-- part C --'
//
//   position alpha = 4  (marshalling starts right after the enc header)
//   position beta  = 8  (first byte the cipher can process immediately)
//   position gamma = total - 8 (last block, containing the alignment bytes)
//
// and processes parts in the order B, C, A: the body as it is produced, the
// tail once padding is known, and finally part A when the length field can
// be filled in.  This only works because every fused stage is
// non-ordering-constrained; plan_parts() callers must check the pipeline's
// flag (fused_pipeline::ordering_constrained) and fall back to linear order.
#pragma once

#include <array>
#include <cstddef>

namespace ilp::core {

// Size of the encryption header (length field) in bytes.
inline constexpr std::size_t encryption_header_bytes = 4;

// Cipher alignment all parts respect.
inline constexpr std::size_t encryption_unit_bytes = 8;

struct message_part {
    std::size_t offset = 0;
    std::size_t len = 0;

    bool empty() const noexcept { return len == 0; }
};

struct message_plan {
    // Marshalled length including the encryption header, before padding.
    std::size_t marshalled_bytes = 0;
    // Total wire length after padding to the cipher unit.
    std::size_t total_bytes = 0;
    std::size_t padding_bytes = 0;

    message_part part_a;  // enc header + first marshalled word
    message_part part_b;  // aligned body
    message_part part_c;  // final block incl. padding

    // The ILP processing order: B, C, A (empty parts skipped by callers).
    std::array<message_part, 3> ilp_order() const noexcept {
        return {part_b, part_c, part_a};
    }

    // Strictly serial order for ordering-constrained pipelines.
    std::array<message_part, 3> linear_order() const noexcept {
        return {part_a, part_b, part_c};
    }

    // Structural sanity: parts tile [0, total_bytes) exactly, in stream
    // order A, B, C, with no gaps or overlaps.
    bool well_formed() const noexcept;

    // True when every part starts and ends on a multiple of `unit` — the
    // cheap construction-time granularity guard the data paths apply before
    // streaming parts through a fused loop whose exchanged unit (or
    // strictest stage alignment) is `unit`.  A failing plan would make a
    // cipher block straddle a part cut (analyzer rule R3-granularity).
    bool aligned_for(std::size_t unit) const noexcept;
};

// Plans the parts for a message whose marshalled size (including the
// 4-byte encryption header) is `marshalled_bytes` (>= 4).
message_plan plan_parts(std::size_t marshalled_bytes);

}  // namespace ilp::core
