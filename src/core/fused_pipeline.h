// The ILP loop: compile-time fusion of data-manipulation stages.
//
// `fused_pipeline<Stages...>` is the paper's integrated processing loop
// (Fig. 1): each iteration reads one exchanged unit of Le bytes from the
// source into scratch (registers), runs every stage on it sub-unit by
// sub-unit, and writes it once to the destination.  Le is computed at
// compile time as lcm(Ls, L1, ..., Ln) from the stage unit sizes, with
// Ls = 8 modelling a 64-bit memory path (§2.2: "Le should also be chosen
// large enough to utilize the hardware architecture efficiently").
//
// Stage calls are statically dispatched and force-inlined — the modern form
// of the paper's macro expansion (§3.2.1: replacing macros with function
// calls "results in the loss of all performance benefits gained by ILP");
// dynamic_pipeline.h keeps the function-call variant for that ablation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/footprint.h"
#include "core/gather.h"
#include "core/stage.h"
#include "memsim/mem_policy.h"
#include "util/alignment.h"
#include "util/contracts.h"

namespace ilp::core {

template <data_stage... Stages>
class fused_pipeline {
public:
    // The exchanged processing-unit length Le (paper §2.2), folding in the
    // system parameter Ls = 8 (64-bit memory path).
    static constexpr std::size_t unit_bytes =
        exchange_unit_of(std::size_t{8}, Stages::unit_bytes...);

    // True if any fused stage requires strictly serial processing; the
    // message planner consults this before scheduling parts out of order.
    static constexpr bool ordering_constrained =
        (false || ... || Stages::ordering_constrained);

    // Strictest stream-offset alignment any fused stage demands; slicing a
    // message at an offset that violates this makes a stage's block
    // straddle the cut (the analyzer's R3-granularity rule).
    static constexpr std::size_t required_alignment = std::max(
        {std::size_t{1}, analysis::footprint_of<Stages>().alignment...});

    // The composition's footprints in fusion order, for the analyzer and
    // the per-layer pipeline registrations.
    static std::vector<analysis::footprint> footprints() {
        return {analysis::footprint_of<Stages>()...};
    }

    explicit fused_pipeline(Stages&... stages) : stages_(&stages...) {}

    // Streams n bytes (a multiple of unit_bytes) from src to dst through all
    // stages; cursors advance so consecutive calls continue where the
    // previous one stopped (how message parts share one wire stream).
    template <memsim::memory_policy Mem>
    void run(const Mem& mem, gather_cursor& src, scatter_cursor& dst,
             std::size_t n) {
        ILP_EXPECT(n % unit_bytes == 0);
        alignas(8) std::byte scratch[unit_bytes];
        for (std::size_t off = 0; off < n; off += unit_bytes) {
            src.fill(mem, scratch, unit_bytes);
            apply_stages(mem, scratch, std::index_sequence_for<Stages...>{});
            dst.drain(mem, scratch, unit_bytes);
        }
    }

    // Whole-message convenience: source and destination must describe the
    // same number of bytes.
    template <memsim::memory_policy Mem>
    void run(const Mem& mem, const gather_source& src,
             const scatter_dest& dst) {
        ILP_EXPECT(src.total_size() == dst.total_size());
        gather_cursor in(src);
        scatter_cursor out(dst);
        run(mem, in, out, src.total_size());
    }

private:
    template <memsim::memory_policy Mem, std::size_t... I>
    ILP_ALWAYS_INLINE void apply_stages([[maybe_unused]] const Mem& mem,
                                        [[maybe_unused]] std::byte* scratch,
                                        std::index_sequence<I...>) {
        (apply_one<I>(mem, scratch), ...);
    }

    template <std::size_t I, memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void apply_one(const Mem& mem, std::byte* scratch) {
        using stage_type = std::tuple_element_t<I, std::tuple<Stages...>>;
        auto* stage = std::get<I>(stages_);
        for (std::size_t i = 0; i < unit_bytes; i += stage_type::unit_bytes) {
            stage->process_unit(mem, scratch + i);
        }
    }

    std::tuple<Stages*...> stages_;
};

// Deduction-friendly factory.
template <data_stage... Stages>
fused_pipeline<Stages...> make_pipeline(Stages&... stages) {
    return fused_pipeline<Stages...>(stages...);
}

// ---------------------------------------------------------------------------
// Common source/destination constructors

inline gather_source span_source(std::span<const std::byte> data) {
    gather_source src;
    src.add(data);
    return src;
}

inline scatter_dest span_dest(std::span<std::byte> data) {
    scatter_dest dst;
    dst.add(data);
    return dst;
}

// Destination writing into (up to two) ring-buffer spans — the ILP send
// loop's "align the data to the ring buffer structure" duty (§3.2.2).
inline scatter_dest ring_dest(const ring_span& dst) {
    scatter_dest out;
    if (!dst.first.empty()) out.add(dst.first);
    if (!dst.second.empty()) out.add(dst.second);
    return out;
}

// Source reading straight out of a loaned kernel-segment chain (up to two
// spans when the packet straddles the receive-ring wrap) — the zero-copy
// receive handoff: the fused loop consumes the wire bytes in place, with no
// reassembly copy ahead of it.
inline gather_source chain_source(const const_ring_span& chain) {
    gather_source src;
    if (!chain.first.empty()) src.add(chain.first);
    if (!chain.second.empty()) src.add(chain.second);
    return src;
}

// Read-only sink (e.g. a verification pass that only feeds checksum taps).
inline scatter_dest null_dest(std::size_t n) {
    scatter_dest out;
    out.add_discard(n);
    return out;
}

}  // namespace ilp::core
