// Data-manipulation stages — the unit of composition of the ILP framework.
//
// A *stage* is one protocol layer's per-unit data manipulation, stripped of
// its control processing (the paper's three-stage decomposition puts control
// before/after the loop; see three_stage.h).  A stage declares:
//
//   * unit_bytes             — its natural processing-unit size (XDR: 4,
//                              block ciphers: 8, Internet checksum: 2),
//   * ordering_constrained   — whether its result depends on processing
//                              order (CRC, stream ciphers: yes; checksum,
//                              block ciphers, byteswap marshalling: no), and
//   * process_unit(mem, p)   — transform/observe exactly unit_bytes bytes at
//                              p, which live in loop scratch ("registers")
//                              and are accessed directly; any table, key or
//                              buffer access goes through `mem` and is
//                              counted by the simulator.
//
// The fused pipeline (fused_pipeline.h) composes stages at compile time and
// feeds each one sub-units of the exchanged unit Le = lcm of all stage unit
// sizes (paper §2.2).
//
// Each stage additionally declares a `footprint_decl` (analysis/footprint.h)
// — granularity, bytes read/written per unit, ordering and header-size
// constraints, alignment, table working set — which the fusion-legality
// analyzer and `ilp-lint` check compositions against.  footprint_of<>
// statically cross-checks the declaration against unit_bytes /
// ordering_constrained, so the two views cannot drift apart.
#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>

#include "analysis/footprint.h"
#include "checksum/crc32.h"
#include "checksum/internet_checksum.h"
#include "crypto/aead.h"
#include "crypto/block_cipher.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"
#include "util/endian.h"

namespace ilp::core {

template <typename S>
concept data_stage =
    requires(S& s, const memsim::direct_memory& mem, std::byte* unit) {
        { S::unit_bytes } -> std::convertible_to<std::size_t>;
        { S::ordering_constrained } -> std::convertible_to<bool>;
        s.process_unit(mem, unit);
    };

// ---------------------------------------------------------------------------
// Marshalling stages (the XDR data manipulation, 4-byte units)

// XDR-marshals 32-bit integers in place: converts each 4-byte word from host
// representation to big-endian wire form.  On a big-endian host this is the
// identity, exactly like real XDR.
struct xdr_encode_stage {
    static constexpr std::size_t unit_bytes = 4;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "xdr_encode",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,  // fixed 4-byte integers
        .alignment = 4,
        .aux_table_bytes = 0};

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& /*mem*/,
                                        std::byte* unit) const {
        std::uint32_t v;
        std::memcpy(&v, unit, 4);
        v = host_to_be32(v);
        std::memcpy(unit, &v, 4);
    }
};

// The inverse (wire big-endian -> host) used on the receive path.  Identical
// transform, distinct type so paths read correctly.
struct xdr_decode_stage {
    static constexpr std::size_t unit_bytes = 4;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "xdr_decode",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = 4,
        .aux_table_bytes = 0};

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& /*mem*/,
                                        std::byte* unit) const {
        std::uint32_t v;
        std::memcpy(&v, unit, 4);
        v = be32_to_host(v);
        std::memcpy(unit, &v, 4);
    }
};

// Identity marshalling for opaque payloads (XDR opaque is a plain copy).
struct opaque_stage {
    static constexpr std::size_t unit_bytes = 4;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "opaque",
        .unit_bytes = unit_bytes,
        .reads_per_unit = 0,  // identity: touches nothing
        .writes_per_unit = 0,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = 1,
        .aux_table_bytes = 0};

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& /*mem*/,
                                        std::byte* /*unit*/) const {}
};

// ---------------------------------------------------------------------------
// Cipher stages (8-byte units)

template <crypto::block_cipher Cipher>
class encrypt_stage {
public:
    static constexpr std::size_t unit_bytes = Cipher::block_bytes;
    static constexpr bool ordering_constrained = false;  // ECB block mode
    static constexpr analysis::footprint footprint_decl{
        .name = "encrypt",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,  // block extent fixed by padding
        .alignment = unit_bytes,  // a block must not straddle a part cut
        .aux_table_bytes = crypto::cipher_table_bytes<Cipher>()};

    explicit encrypt_stage(const Cipher& cipher) : cipher_(&cipher) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& mem, std::byte* unit) const {
        cipher_->encrypt_block(mem, unit);
    }

private:
    const Cipher* cipher_;
};

template <crypto::block_cipher Cipher>
class decrypt_stage {
public:
    static constexpr std::size_t unit_bytes = Cipher::block_bytes;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "decrypt",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = unit_bytes,
        .aux_table_bytes = crypto::cipher_table_bytes<Cipher>()};

    explicit decrypt_stage(const Cipher& cipher) : cipher_(&cipher) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& mem, std::byte* unit) const {
        cipher_->decrypt_block(mem, unit);
    }

private:
    const Cipher* cipher_;
};

// AEAD-shaped stages: keystream-style block transform *plus* the running
// authentication tag in the same process_unit.  The tag is accumulated over
// plaintext words (encrypt mixes before transforming, decrypt after
// inverting), and the accumulation is commutative, so neither stage is
// ordering-constrained — the out-of-order B,C,A part traversal stays legal
// with authentication in the loop.  Cost model: same memory footprint as a
// plain cipher stage (the tag lives in a register), which is exactly the
// claim bench_fig11's AEAD rows test.

template <crypto::aead_capable Cipher>
class aead_encrypt_stage {
public:
    static constexpr std::size_t unit_bytes = Cipher::block_bytes;
    static constexpr bool ordering_constrained = false;  // commutative tag
    static constexpr analysis::footprint footprint_decl{
        .name = "aead_encrypt",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = unit_bytes,
        .aux_table_bytes = crypto::cipher_table_bytes<Cipher>(),
        // The accumulated tag lands in a clear 8-byte [epoch|tag] trailer
        // the framing must reserve (== rpc::secure_trailer_bytes; the
        // equality is static_asserted where both are visible,
        // app/secure_path.h).
        .trailer_bytes = 8};

    aead_encrypt_stage(const Cipher& cipher, crypto::aead_tag_accumulator& tag)
        : cipher_(&cipher), tag_(&tag) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& mem, std::byte* unit) const {
        std::uint64_t plain;
        std::memcpy(&plain, unit, 8);
        tag_->add(cipher_->tag_mix(plain));
        cipher_->encrypt_block(mem, unit);
    }

private:
    const Cipher* cipher_;
    crypto::aead_tag_accumulator* tag_;
};

template <crypto::aead_capable Cipher>
class aead_decrypt_stage {
public:
    static constexpr std::size_t unit_bytes = Cipher::block_bytes;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "aead_decrypt",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = unit_bytes,
        .aux_table_bytes = crypto::cipher_table_bytes<Cipher>(),
        // Receive side verifies the same clear trailer; the obligation is
        // symmetric so composed receive graphs must reserve it too.
        .trailer_bytes = 8};

    aead_decrypt_stage(const Cipher& cipher, crypto::aead_tag_accumulator& tag)
        : cipher_(&cipher), tag_(&tag) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& mem, std::byte* unit) const {
        cipher_->decrypt_block(mem, unit);
        std::uint64_t plain;
        std::memcpy(&plain, unit, 8);
        tag_->add(cipher_->tag_mix(plain));
    }

private:
    const Cipher* cipher_;
    crypto::aead_tag_accumulator* tag_;
};

// ---------------------------------------------------------------------------
// Checksum taps (observe, don't modify)

// Accumulates the Internet checksum over the units flowing through the loop,
// 8 bytes at a time from the loop scratch — no memory re-read, the gain the
// paper's Le = lcm(...) rule is after (§2.2: handing 4-byte words from
// encryption to checksum doubles the write operations).
class checksum_tap8 {
public:
    static constexpr std::size_t unit_bytes = 8;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "checksum_tap8",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = 0,  // observe-only tap
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = 2,  // 16-bit one's-complement columns
        .aux_table_bytes = 0};

    explicit checksum_tap8(checksum::inet_accumulator& acc) : acc_(&acc) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& /*mem*/,
                                        std::byte* unit) const {
        std::uint64_t v;
        std::memcpy(&v, unit, 8);
        acc_->add_register_u64(v);
    }

private:
    checksum::inet_accumulator* acc_;
};

// 2-byte-unit variant: semantically identical, but forces the loop down to
// the checksum's natural unit.  Exists for the unit-size ablation (A2).
class checksum_tap2 {
public:
    static constexpr std::size_t unit_bytes = 2;
    static constexpr bool ordering_constrained = false;
    static constexpr analysis::footprint footprint_decl{
        .name = "checksum_tap2",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = 0,
        .ordering_constrained = ordering_constrained,
        .length_known_before_loop = true,
        .alignment = 2,
        .aux_table_bytes = 0};

    explicit checksum_tap2(checksum::inet_accumulator& acc) : acc_(&acc) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& /*mem*/,
                                        std::byte* unit) const {
        std::uint16_t v;
        std::memcpy(&v, unit, 2);
        acc_->add_be16(host_is_little_endian() ? byteswap16(v) : v);
    }

private:
    checksum::inet_accumulator* acc_;
};

// CRC-32 tap: *ordering-constrained* (paper §2.2).  The fused pipeline still
// accepts it for strictly in-order runs, but message_plan refuses to process
// parts out of order when any stage is ordering-constrained, and the
// static ordering_constrained flag is how it knows.
class crc32_tap {
public:
    static constexpr std::size_t unit_bytes = 4;
    static constexpr bool ordering_constrained = true;
    static constexpr analysis::footprint footprint_decl{
        .name = "crc32_tap",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = 0,
        .ordering_constrained = ordering_constrained,  // serial remainder
        .length_known_before_loop = true,
        .alignment = 1,
        .aux_table_bytes = checksum::crc32::table_size_bytes};

    explicit crc32_tap(checksum::crc32& crc) : crc_(&crc) {}

    template <memsim::memory_policy Mem>
    ILP_ALWAYS_INLINE void process_unit(const Mem& mem, std::byte* unit) const {
        crc_->update_scratch(mem, unit, unit_bytes);
    }

private:
    checksum::crc32* crc_;
};

}  // namespace ilp::core
