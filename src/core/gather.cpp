#include "core/gather.h"

namespace ilp::core {

namespace {

// Shared slicing logic: walk segments, emit the sub-range.
template <typename SourceOrDest, typename Segment>
SourceOrDest slice_impl(std::span<const Segment> segments, std::size_t offset,
                        std::size_t len) {
    SourceOrDest out;
    std::size_t pos = 0;
    for (const Segment& s : segments) {
        const std::size_t seg_begin = pos;
        const std::size_t seg_end = pos + s.len;
        pos = seg_end;
        if (seg_end <= offset) continue;
        if (seg_begin >= offset + len) break;
        const std::size_t from = std::max(seg_begin, offset) - seg_begin;
        const std::size_t to = std::min(seg_end, offset + len) - seg_begin;
        ILP_EXPECT(s.op != segment_op::xdr_words ||
                   (from % 4 == 0 && (to - from) % 4 == 0));
        Segment cut = s;
        if (cut.data != nullptr) cut.data += from;
        cut.len = to - from;
        out.append_raw(cut);
    }
    ILP_ENSURE(out.total_size() == len);
    return out;
}

}  // namespace

gather_source gather_source::slice(std::size_t offset, std::size_t len) const {
    ILP_EXPECT(offset + len <= total_size());
    return slice_impl<gather_source, gather_segment>(segments(), offset, len);
}

scatter_dest scatter_dest::slice(std::size_t offset, std::size_t len) const {
    ILP_EXPECT(offset + len <= total_size());
    return slice_impl<scatter_dest, scatter_segment>(segments(), offset, len);
}

}  // namespace ilp::core
