// Byte ring buffer backing the TCP retransmission queue.
//
// The paper's ILP send loop writes manipulated data directly into this ring
// ("TCP uses a ring buffer, to which the data is transferred during the ILP
// loop"; §3.2.2), so the ring exposes *wrap-aware reservations*: a writer
// asks for n bytes and receives at most two contiguous spans it may fill
// before committing.  Readers (segment transmission, retransmission) peek at
// arbitrary offsets from the unacknowledged front the same way.
#pragma once

#include <cstddef>
#include <span>

#include "buffer/byte_buffer.h"

namespace ilp {

// Up to two contiguous pieces of ring storage (second is empty unless the
// range wraps around the end of the backing buffer).
struct ring_span {
    std::span<std::byte> first;
    std::span<std::byte> second;

    std::size_t size() const noexcept { return first.size() + second.size(); }
};

struct const_ring_span {
    std::span<const std::byte> first;
    std::span<const std::byte> second;

    std::size_t size() const noexcept { return first.size() + second.size(); }

    // Sub-range [offset, offset+len) of the chained bytes, re-expressed as
    // a (possibly still two-piece) chain.  Pure span arithmetic — no memory
    // accesses — so a receiver can peel a header or trailer off a loaned
    // kernel segment without copying any of it.
    const_ring_span subspan(std::size_t offset, std::size_t len) const {
        const_ring_span out;
        if (offset < first.size()) {
            const std::size_t take = len < first.size() - offset
                                         ? len
                                         : first.size() - offset;
            out.first = first.subspan(offset, take);
            if (take < len) out.second = second.subspan(0, len - take);
        } else {
            out.first = second.subspan(offset - first.size(), len);
        }
        return out;
    }
};

class ring_buffer {
public:
    explicit ring_buffer(std::size_t capacity);

    std::size_t capacity() const noexcept { return storage_.size(); }
    std::size_t size() const noexcept { return size_; }
    std::size_t free_space() const noexcept {
        return capacity() - size_ - tail_reserved_;
    }
    bool empty() const noexcept { return size_ == 0; }

    // Reserves n bytes of writable space after the current content; the
    // reservation is only made permanent by commit().  n must fit in
    // free_space().  Calling reserve again before commit re-issues the same
    // space.
    ring_span reserve(std::size_t n);

    // Publishes the first n bytes of the most recent reservation.
    void commit(std::size_t n);

    // Stacked tail reservations (the pipelined dataplane's form): each call
    // claims the next n bytes after all previously reserved-but-uncommitted
    // tail space, so several segments can be reserved — and filled by a
    // later pipeline stage — before any of them is published.  Reserved
    // space is excluded from free_space(); commit_tail() publishes the
    // oldest n reserved bytes (commits are strictly FIFO, matching the
    // in-order completion stage).  Must not be mixed with an outstanding
    // legacy reserve()/commit() pair.
    ring_span reserve_tail(std::size_t n);
    void commit_tail(std::size_t n);
    std::size_t tail_reserved() const noexcept { return tail_reserved_; }

    // Copies `data` into the ring (reserve + memcpy + commit).
    void push(std::span<const std::byte> data);

    // Read-only view of n bytes starting `offset` bytes after the front.
    const_ring_span peek(std::size_t offset, std::size_t n) const;

    // Copies n bytes starting at `offset` into `out` (out.size() >= n).
    void copy_out(std::size_t offset, std::span<std::byte> out) const;

    // Drops n bytes from the front (acknowledged data).
    void release(std::size_t n);

    void clear();

    // Offset inside the backing storage where the next reserved byte lands;
    // the ILP loop uses it to know where its destination pointer wraps.
    std::size_t write_index() const noexcept {
        return (front_ + size_) % capacity();
    }

private:
    byte_buffer storage_;
    std::size_t front_ = 0;  // index of oldest byte
    std::size_t size_ = 0;   // bytes currently stored
    std::size_t tail_reserved_ = 0;  // stacked, uncommitted tail reservations
};

}  // namespace ilp
