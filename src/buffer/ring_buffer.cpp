#include "buffer/ring_buffer.h"

#include <cstring>

namespace ilp {

ring_buffer::ring_buffer(std::size_t capacity) : storage_(capacity) {
    ILP_EXPECT(capacity > 0);
}

ring_span ring_buffer::reserve(std::size_t n) {
    ILP_EXPECT(tail_reserved_ == 0);  // no mixing with stacked reservations
    ILP_EXPECT(n <= free_space());
    const std::size_t start = write_index();
    const std::size_t until_end = capacity() - start;
    if (n <= until_end) {
        return {storage_.subspan(start, n), {}};
    }
    return {storage_.subspan(start, until_end),
            storage_.subspan(0, n - until_end)};
}

void ring_buffer::commit(std::size_t n) {
    ILP_EXPECT(tail_reserved_ == 0);
    ILP_EXPECT(n <= free_space());
    size_ += n;
}

ring_span ring_buffer::reserve_tail(std::size_t n) {
    ILP_EXPECT(n <= free_space());
    const std::size_t start = (front_ + size_ + tail_reserved_) % capacity();
    tail_reserved_ += n;
    const std::size_t until_end = capacity() - start;
    if (n <= until_end) {
        return {storage_.subspan(start, n), {}};
    }
    return {storage_.subspan(start, until_end),
            storage_.subspan(0, n - until_end)};
}

void ring_buffer::commit_tail(std::size_t n) {
    ILP_EXPECT(n <= tail_reserved_);
    tail_reserved_ -= n;
    size_ += n;
}

void ring_buffer::push(std::span<const std::byte> data) {
    const ring_span dst = reserve(data.size());
    std::memcpy(dst.first.data(), data.data(), dst.first.size());
    if (!dst.second.empty()) {
        std::memcpy(dst.second.data(), data.data() + dst.first.size(),
                    dst.second.size());
    }
    commit(data.size());
}

const_ring_span ring_buffer::peek(std::size_t offset, std::size_t n) const {
    ILP_EXPECT(offset + n <= size_);
    const std::size_t start = (front_ + offset) % capacity();
    const std::size_t until_end = capacity() - start;
    if (n <= until_end) {
        return {storage_.subspan(start, n), {}};
    }
    return {storage_.subspan(start, until_end),
            storage_.subspan(0, n - until_end)};
}

void ring_buffer::copy_out(std::size_t offset, std::span<std::byte> out) const {
    const const_ring_span src = peek(offset, out.size());
    std::memcpy(out.data(), src.first.data(), src.first.size());
    if (!src.second.empty()) {
        std::memcpy(out.data() + src.first.size(), src.second.data(),
                    src.second.size());
    }
}

void ring_buffer::release(std::size_t n) {
    ILP_EXPECT(n <= size_);
    front_ = (front_ + n) % capacity();
    size_ -= n;
}

void ring_buffer::clear() {
    front_ = 0;
    size_ = 0;
    tail_reserved_ = 0;
}

}  // namespace ilp
