// Owning, 8-byte-aligned byte buffer.
//
// All packet staging areas in the stack use byte_buffer so that encryption
// units (8 bytes), marshalling units (4 bytes) and checksum units (2 bytes)
// start on their natural alignment, and so the simulated cache model sees
// stable, realistic heap addresses.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "util/contracts.h"

namespace ilp {

class byte_buffer {
public:
    byte_buffer() = default;

    explicit byte_buffer(std::size_t size) : size_(size) {
        if (size_ > 0) {
            data_.reset(new (std::align_val_t{alignment}) std::byte[size_]());
        }
    }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    std::byte* data() noexcept { return data_.get(); }
    const std::byte* data() const noexcept { return data_.get(); }

    std::span<std::byte> span() noexcept { return {data_.get(), size_}; }
    std::span<const std::byte> span() const noexcept {
        return {data_.get(), size_};
    }

    std::span<std::byte> subspan(std::size_t offset, std::size_t count) {
        ILP_EXPECT(offset + count <= size_);
        return {data_.get() + offset, count};
    }
    std::span<const std::byte> subspan(std::size_t offset,
                                       std::size_t count) const {
        ILP_EXPECT(offset + count <= size_);
        return {data_.get() + offset, count};
    }

    static constexpr std::size_t alignment = 8;

private:
    struct aligned_delete {
        void operator()(std::byte* p) const noexcept {
            ::operator delete[](p, std::align_val_t{alignment});
        }
    };

    std::unique_ptr<std::byte[], aligned_delete> data_;
    std::size_t size_ = 0;
};

}  // namespace ilp
