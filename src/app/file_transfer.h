// The paper's application: RPC-style bulk file transfer (§3.1).
//
// "A client sends a request describing the file to receive, the number of
// copies of this file to be received, and the maximum length of bytes to
// receive within a single reply message.  After receiving a file
// transmission request, the server segments the file into smaller units and
// sends these units as a set of reply messages back to the client."
//
// Topology (all in-process, loop-back, like the paper's measurements):
//
//     client ── request link (tcp data ->, acks <-) ──> server
//     client <── reply link  (tcp data <-, acks ->) ── server
//
// Client and server each carry their own memory-access policy so the
// simulator can attribute send-side and receive-side traffic separately
// (the paper instruments sending and receiving independently, §4.2).
#pragma once

#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "app/path_counters.h"
#include "app/receive_path.h"
#include "app/send_path.h"
#include "net/datagram.h"
#include "rpc/messages.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace ilp::app {

// ---------------------------------------------------------------------------
// Server-side file storage

class file_store {
public:
    void add(std::string name, std::vector<std::byte> contents);

    // Adds a deterministic pseudo-random file (workload generator).
    void add_random(std::string name, std::size_t bytes, std::uint64_t seed);

    const std::vector<std::byte>* find(const std::string& name) const;

private:
    std::map<std::string, std::vector<std::byte>> files_;
};

// ---------------------------------------------------------------------------
// Server

template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
class file_server {
public:
    file_server(const Mem& mem, const Cipher& cipher, virtual_clock& clock,
                net::duplex_link& request_link, net::duplex_link& reply_link,
                const tcp::connection_config& request_cfg,
                const tcp::connection_config& reply_cfg, path_mode mode,
                const file_store& store)
        : mem_(mem),
          cipher_(&cipher),
          mode_(mode),
          store_(&store),
          request_rx_(mem, clock, request_link.reverse(), request_cfg),
          reply_tx_(mem, clock, reply_link.forward(), reply_cfg),
          workspace_(net::datagram_pipe::max_packet_bytes),
          request_staging_(net::datagram_pipe::max_packet_bytes) {
        request_link.forward().set_receiver(
            [this](std::span<const std::byte> p) { request_rx_.on_packet(p); });
        reply_link.reverse().set_receiver(
            [this](std::span<const std::byte> p) {
                reply_tx_.on_ack_packet(p);
                pump();  // freed window: continue segmenting
            });
        request_rx_.set_processor([this](std::span<std::byte> payload) {
            return receive_request(mode_, mem_, *cipher_, payload,
                                   request_staging_.span(), rx_counters_);
        });
        request_rx_.set_accept_handler(
            [this](std::size_t wire_len) { on_request(wire_len); });
    }

    // Makes forward progress on pending reply streams; idempotent, called
    // from the run loop and from the ACK handler.
    void pump() {
        while (!jobs_.empty()) {
            if (!send_next_reply(jobs_.front())) return;  // blocked or done
            if (jobs_.front().finished) jobs_.pop_front();
        }
    }

    bool idle() const {
        return jobs_.empty() && reply_tx_.idle() && !reply_tx_.failed();
    }
    bool failed() const { return reply_tx_.failed(); }

    const path_counters& send_counters() const noexcept { return tx_counters_; }
    const path_counters& request_counters() const noexcept {
        return rx_counters_;
    }
    const tcp::sender_stats& reply_tcp_stats() const {
        return reply_tx_.stats();
    }
    const tcp::receiver_stats& request_tcp_stats() const {
        return request_rx_.stats();
    }
    std::uint64_t requests_served() const noexcept { return requests_served_; }
    std::uint64_t requests_rejected() const noexcept {
        return requests_rejected_;
    }

private:
    struct reply_job {
        rpc::file_request request;
        const std::vector<std::byte>* file = nullptr;
        std::uint32_t copy = 0;
        std::size_t offset = 0;
        bool finished = false;
    };

    void on_request(std::size_t wire_len) {
        const auto request =
            rpc::unmarshal_request(request_staging_.subspan(0, wire_len));
        if (!request.has_value() || request->copy_count == 0 ||
            request->max_reply_payload == 0) {
            ++requests_rejected_;
            return;
        }
        const std::vector<std::byte>* file = store_->find(request->filename);
        if (file == nullptr) {
            ++requests_rejected_;
            return;
        }
        ++requests_served_;
        jobs_.push_back(reply_job{*request, file, 0, 0, false});
        pump();
    }

    // Sends the next segment of `job`; returns false when TCP is out of
    // buffer/window space (retry later) or the job just finished.
    bool send_next_reply(reply_job& job) {
        const std::size_t remaining = job.file->size() - job.offset;
        const std::size_t payload_len = std::min<std::size_t>(
            remaining, job.request.max_reply_payload);

        rpc::reply_header header;
        header.request_id = job.request.request_id;
        header.copy_index = job.copy;
        header.offset = static_cast<std::uint32_t>(job.offset);
        header.total_bytes = static_cast<std::uint32_t>(job.file->size());

        rpc::reply_staging staging;
        const core::gather_source src = rpc::make_reply_source(
            header, {job.file->data() + job.offset, payload_len}, staging);
        const rpc::reply_layout layout = rpc::layout_reply(payload_len);

        if (!send_message(mode_, reply_tx_, mem_, *cipher_, src, layout.plan,
                          workspace_, tx_counters_)) {
            return false;  // delayed until buffer space is available (§3.2.2)
        }
        tx_counters_.payload_bytes += payload_len;

        job.offset += payload_len;
        if (job.offset >= job.file->size()) {
            job.offset = 0;
            if (++job.copy >= job.request.copy_count) job.finished = true;
        }
        return true;
    }

    Mem mem_;
    const Cipher* cipher_;
    path_mode mode_;
    const file_store* store_;
    tcp::tcp_receiver<Mem> request_rx_;
    tcp::tcp_sender<Mem> reply_tx_;
    send_workspace workspace_;
    byte_buffer request_staging_;
    std::deque<reply_job> jobs_;
    path_counters tx_counters_;
    path_counters rx_counters_;
    std::uint64_t requests_served_ = 0;
    std::uint64_t requests_rejected_ = 0;
};

// ---------------------------------------------------------------------------
// Client

template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
class file_client {
public:
    file_client(const Mem& mem, const Cipher& cipher, virtual_clock& clock,
                net::duplex_link& request_link, net::duplex_link& reply_link,
                const tcp::connection_config& request_cfg,
                const tcp::connection_config& reply_cfg, path_mode mode)
        : mem_(mem),
          cipher_(&cipher),
          mode_(mode),
          request_tx_(mem, clock, request_link.forward(), request_cfg),
          reply_rx_(mem, clock, reply_link.reverse(), reply_cfg),
          workspace_(net::datagram_pipe::max_packet_bytes) {
        request_link.reverse().set_receiver(
            [this](std::span<const std::byte> p) {
                request_tx_.on_ack_packet(p);
            });
        reply_link.forward().set_receiver(
            [this](std::span<const std::byte> p) { reply_rx_.on_packet(p); });
        reply_rx_.set_processor([this](std::span<std::byte> payload) {
            return process_reply(payload);
        });
        reply_rx_.set_accept_handler([this](std::size_t) { commit_reply(); });
    }

    // Sends the file request; returns false if it could not be queued.
    bool request_file(const rpc::file_request& request) {
        alignas(8) std::byte wire[1024];
        const auto wire_len = rpc::marshal_request(request, wire);
        if (!wire_len.has_value()) return false;

        // The request's wire image is already marshalled (control-plane);
        // the data path encrypts and checksums it.
        core::gather_source src;
        src.add({wire, *wire_len});
        const core::message_plan plan = core::plan_parts(
            rpc::validate_enc_header(load_be32(wire), *wire_len).value());
        if (!send_message(mode_, request_tx_, mem_, *cipher_, src, plan,
                          workspace_, tx_counters_)) {
            return false;
        }
        state_.request = request;
        state_.active = true;
        state_.total_known = false;
        state_.buffers.clear();
        state_.received.assign(request.copy_count, 0);
        state_.completed_replies.assign(request.copy_count, 0);
        return true;
    }

    bool done() const {
        if (!state_.active || !state_.total_known) return false;
        for (std::uint32_t c = 0; c < state_.request.copy_count; ++c) {
            if (state_.received[c] < state_.total) return false;
            if (state_.completed_replies[c] == 0) return false;
        }
        return true;
    }

    bool failed() const { return request_tx_.failed(); }

    // The reassembled file contents of one received copy.
    std::span<const std::byte> copy_data(std::uint32_t copy) const {
        ILP_EXPECT(copy < state_.buffers.size());
        return {state_.buffers[copy].data(), state_.total};
    }

    std::uint64_t bytes_received() const noexcept {
        std::uint64_t sum = 0;
        for (const auto b : state_.received) sum += b;
        return sum;
    }

    const path_counters& receive_counters() const noexcept {
        return rx_counters_;
    }
    const path_counters& request_send_counters() const noexcept {
        return tx_counters_;
    }
    const tcp::receiver_stats& reply_tcp_stats() const {
        return reply_rx_.stats();
    }
    const tcp::sender_stats& request_tcp_stats() const {
        return request_tx_.stats();
    }

private:
    struct transfer_state {
        rpc::file_request request;
        bool active = false;
        bool total_known = false;
        std::size_t total = 0;
        std::vector<std::vector<std::byte>> buffers;
        std::vector<std::size_t> received;
        std::vector<std::uint32_t> completed_replies;  // replies reaching EOF
    };

    tcp::rx_process_result process_reply(std::span<std::byte> payload) {
        const auto resolve = [this](const rpc::reply_header& h,
                                    std::size_t payload_bytes)
            -> std::span<std::byte> {
            if (!state_.active || h.request_id != state_.request.request_id ||
                h.copy_index >= state_.request.copy_count) {
                return {};
            }
            if (!state_.total_known) {
                state_.total = h.total_bytes;
                state_.total_known = true;
                state_.buffers.assign(state_.request.copy_count,
                                      std::vector<std::byte>(state_.total));
            }
            if (h.total_bytes != state_.total ||
                h.offset + payload_bytes > state_.total) {
                return {};
            }
            if (payload_bytes == 0) {
                // Empty file: a zero-length reply still signals completion.
                return {};
            }
            return {state_.buffers[h.copy_index].data() + h.offset,
                    payload_bytes};
        };

        rpc::reply_header header;
        tcp::rx_process_result result;
        const std::uint64_t payload_before = rx_counters_.payload_bytes;
        if (mode_ == path_mode::ilp) {
            result = receive_reply_ilp(mem_, *cipher_, payload, resolve,
                                       &header, rx_counters_);
        } else {
            result = receive_reply_layered(mem_, *cipher_, payload, resolve,
                                           &header, rx_counters_);
        }
        // Remember what this reply would contribute; it is committed only if
        // TCP's final stage accepts the segment.
        if (result.ok) {
            pending_header_ = header;
            pending_payload_bytes_ = static_cast<std::size_t>(
                rx_counters_.payload_bytes - payload_before);
            pending_valid_ = true;
        } else {
            pending_valid_ = false;
        }
        return result;
    }

    // Final-stage commit: TCP accepted the segment carrying the pending
    // reply.
    void commit_reply() {
        if (!pending_valid_) return;
        const rpc::reply_header& h = pending_header_;
        state_.received[h.copy_index] += pending_payload_bytes_;
        if (h.offset + pending_payload_bytes_ >= state_.total) {
            ++state_.completed_replies[h.copy_index];
        }
        pending_valid_ = false;
    }
    Mem mem_;
    const Cipher* cipher_;
    path_mode mode_;
    tcp::tcp_sender<Mem> request_tx_;
    tcp::tcp_receiver<Mem> reply_rx_;
    send_workspace workspace_;
    transfer_state state_;
    rpc::reply_header pending_header_;
    std::size_t pending_payload_bytes_ = 0;
    bool pending_valid_ = false;
    path_counters tx_counters_;
    path_counters rx_counters_;
};

}  // namespace ilp::app
