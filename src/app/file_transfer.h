// The paper's application: RPC-style bulk file transfer (§3.1).
//
// "A client sends a request describing the file to receive, the number of
// copies of this file to be received, and the maximum length of bytes to
// receive within a single reply message.  After receiving a file
// transmission request, the server segments the file into smaller units and
// sends these units as a set of reply messages back to the client."
//
// Topology (all in-process, loop-back, like the paper's measurements):
//
//     client ── request link (tcp data ->, acks <-) ──> server
//     client <── reply link  (tcp data <-, acks ->) ── server
//
// Client and server each carry their own memory-access policy so the
// simulator can attribute send-side and receive-side traffic separately
// (the paper instruments sending and receiving independently, §4.2).
#pragma once

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "app/path_mode.h"
#include "app/receive_path.h"
#include "app/secure_path.h"
#include "app/send_path.h"
#include "net/datagram.h"
#include "obs/tracer.h"
#include "rpc/messages.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace ilp::app {

// ---------------------------------------------------------------------------
// RPC-level failure recovery

// Retry policy the client applies on top of TCP, on the virtual clock.  A
// retry fires when the request connection fails, the reply connection is
// reset by the server (RST), or no reply progress is made for
// `response_timeout_us`.  Each retry re-issues the request from the highest
// contiguously received offset and re-establishes the reply connection on a
// fresh ISN carried in the request, so recovery resumes instead of
// restarting.
struct retry_policy {
    unsigned max_attempts = 5;  // total request issues (first try + retries)
    sim_time response_timeout_us = 3'000'000;  // no-progress watchdog; 0 = off
    sim_time backoff_us = 50'000;  // delay before the first retry, doubled
    sim_time max_backoff_us = 1'600'000;  // per retry up to this cap
};

struct client_recovery_stats {
    std::uint64_t retries = 0;            // re-issued requests
    std::uint64_t connection_resets = 0;  // endpoint reset() calls
    std::uint64_t refetched_bytes = 0;    // reply payload delivered twice
    bool gave_up = false;                 // max_attempts exhausted
};

// ---------------------------------------------------------------------------
// Server-side file storage

class file_store {
public:
    void add(std::string name, std::vector<std::byte> contents);

    // Adds a deterministic pseudo-random file (workload generator).
    void add_random(std::string name, std::size_t bytes, std::uint64_t seed);

    const std::vector<std::byte>* find(const std::string& name) const;

private:
    std::map<std::string, std::vector<std::byte>> files_;
};

// ---------------------------------------------------------------------------
// Server

template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
class file_server {
public:
    // Unwired form: the caller owns packet routing (the multi-flow engine's
    // port demux feeds on_request_packet / on_reply_ack_packet); only the
    // two outbound pipes are attached here.
    file_server(const Mem& mem, const Cipher& cipher, virtual_clock& clock,
                net::datagram_pipe& request_ack_out,
                net::datagram_pipe& reply_data_out,
                const tcp::connection_config& request_cfg,
                const tcp::connection_config& reply_cfg, path_mode mode,
                const file_store& store, const secure_params& secure = {})
        : mem_(mem),
          cipher_(&cipher),
          mode_(mode),
          store_(&store),
          secure_(secure),
          request_isn_(request_cfg.initial_seq),
          request_rx_(mem, clock, request_ack_out, request_cfg),
          reply_tx_(mem, clock, reply_data_out, reply_cfg),
          workspace_(net::datagram_pipe::max_packet_bytes),
          request_staging_(net::datagram_pipe::max_packet_bytes) {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_.enabled) {
                chain_.emplace(secure_.flow_secret);
                control_cipher_.emplace(
                    crypto::derive_control_cipher<Cipher>(
                        secure_.flow_secret));
            }
        } else {
            // Secure mode needs a KDF-derivable, tag-capable cipher.
            ILP_EXPECT(!secure_.enabled);
        }
        reply_tx_.set_attribution("server", obs_src_);
        // The client's request sender RSTs when it gives up; rewind to the
        // agreed initial sequence so its re-established sender lines up.
        request_rx_.set_failure_handler(
            [this] { request_rx_.reset(request_isn_); });
        request_rx_.set_processor([this](std::span<std::byte> payload) {
            return process_request(payload);
        });
        if (mode_ == path_mode::ilp) {
            // Zero-copy deliveries (on_segment) run the fused request path
            // in place over the loaned chain; the layered path has no chain
            // processor, so TCP stages a counted copy for it instead.
            request_rx_.set_chain_processor(
                [this](const const_ring_span& payload) {
                    return process_request(payload);
                });
        }
        request_rx_.set_accept_handler(
            [this](std::size_t wire_len) { on_request(wire_len); });
    }

    // Single-flow wiring: this server is the only listener on both links, so
    // it installs itself as the raw pipe receiver.
    file_server(const Mem& mem, const Cipher& cipher, virtual_clock& clock,
                net::duplex_link& request_link, net::duplex_link& reply_link,
                const tcp::connection_config& request_cfg,
                const tcp::connection_config& reply_cfg, path_mode mode,
                const file_store& store, const secure_params& secure = {})
        : file_server(mem, cipher, clock, request_link.reverse(),
                      reply_link.forward(), request_cfg, reply_cfg, mode,
                      store, secure) {
        // Packet handlers fire from inside clock.advance() (delivery timers),
        // outside pump()/poll() — the attribution scope must travel with
        // them, or their memory traffic would be charged to no side.
        if (request_cfg.zero_copy) {
            // Zero-copy receive: the pipe loans each delivered segment as a
            // (possibly two-span) chain over its receive ring instead of
            // staging a user-space copy.  The loan is valid only for the
            // duration of the handler call.
            request_link.forward().set_segment_receiver(
                [this](const const_ring_span& s) { on_request_segment(s); });
        } else {
            request_link.forward().set_receiver(
                [this](std::span<const std::byte> p) { on_request_packet(p); });
        }
        reply_link.reverse().set_receiver(
            [this](std::span<const std::byte> p) { on_reply_ack_packet(p); });
    }

    // Packet entry points; the attribution scope travels with them because
    // they also fire from inside clock.advance() (delivery timers).
    void on_request_packet(std::span<const std::byte> p) {
        ILP_OBS_ATTR("server", obs_src_);
        request_rx_.on_packet(p);
    }
    void on_request_segment(const const_ring_span& s) {
        ILP_OBS_ATTR("server", obs_src_);
        request_rx_.on_segment(s);
    }
    void on_reply_ack_packet(std::span<const std::byte> p) {
        ILP_OBS_ATTR("server", obs_src_);
        reply_tx_.on_ack_packet(p);
        if (auto_pump_) pump();  // freed window: continue segmenting
    }

    // When off, ACK arrival and request acceptance only record state and the
    // caller meters every segment out through pump_one() — how the engine's
    // deficit-round-robin policy charges bytes per grant.
    void set_auto_pump(bool on) noexcept { auto_pump_ = on; }

    // Disarms pending TCP timers.  Required before destroying a server whose
    // clock lives on (engine flow teardown): armed timers capture `this`.
    void quiesce() { reply_tx_.quiesce(); }

    // Makes forward progress on pending reply streams; idempotent, called
    // from the run loop and from the ACK handler.
    void pump() {
        ILP_OBS_ATTR("server", obs_src_);
        if (reply_tx_.failed()) {
            // The reply stream is dead (RST already went out).  Park: the
            // client re-requests what it is missing, which resets the
            // stream and replaces these jobs.
            if (!jobs_.empty()) {
                jobs_abandoned_ += jobs_.size();
                jobs_.clear();
            }
            return;
        }
        while (!jobs_.empty()) {
            if (!send_next_reply(jobs_.front())) return;  // blocked or done
            if (jobs_.front().finished) jobs_.pop_front();
        }
    }

    // Sends at most one reply segment; returns its wire size in bytes, 0
    // when nothing was sent (no pending jobs, reply stream failed, or TCP
    // out of buffer/window space).  A zero-payload completion reply still
    // reports its header wire bytes, so 0 unambiguously means "blocked".
    std::size_t pump_one() {
        ILP_OBS_ATTR("server", obs_src_);
        if (reply_tx_.failed()) {
            if (!jobs_.empty()) {
                jobs_abandoned_ += jobs_.size();
                jobs_.clear();
            }
            return 0;
        }
        while (!jobs_.empty() && jobs_.front().finished) jobs_.pop_front();
        if (jobs_.empty()) return 0;
        reply_job& job = jobs_.front();
        const std::size_t wire =
            rpc::layout_reply(next_payload_len(job)).wire_bytes +
            trailer_bytes();
        if (!send_next_reply(job)) return 0;
        if (job.finished) jobs_.pop_front();
        return wire;
    }

    // -----------------------------------------------------------------------
    // Pipelined dataplane (ILP mode only): pump_one() split into its three
    // stages so a stage_runner can overlap the fused loop of segment n with
    // the segmentation of segment n+1.  Serial equivalence contract: for any
    // job queue, segmentize → fuse → complete performs exactly the sends,
    // counter updates and rekeys that the same number of pump_one() calls
    // would — stage A charges nothing, stage C mirrors the serial counter
    // block verbatim, and the rekey barrier (pipeline_flush_pending) makes
    // the caller drain before a key-window advance, so every segment is
    // encrypted under the same epoch it would be serially.

    // One in-flight reply segment.  The staging block lives here because
    // `src` holds gather segments pointing into it; slots therefore need
    // stable addresses for their lifetime (the stage_runner's pool provides
    // that).
    struct pipeline_slot {
        rpc::reply_staging staging;
        core::gather_source src;
        core::message_plan plan;
        typename tcp::tcp_sender<Mem>::pending_segment pending;
        std::size_t wire = 0;         // full wire size incl. trailer
        std::size_t payload_len = 0;  // file bytes carried
        const Cipher* cipher = nullptr;
        crypto::key_epoch epoch = 0;
        bool secure = false;
        std::uint16_t payload_sum = 0;
        std::optional<Mem> mem;
    };

    // Stage A: claim the next segment of the front job — build its source
    // and plan, reserve (but do not fill or publish) its ring space, and
    // snapshot the cipher/epoch it must be encrypted under.  Returns false
    // exactly when pump_one() would return 0: no runnable job, failed reply
    // stream, or no buffer/window space for the reservation.
    bool segmentize_segment(pipeline_slot& slot) {
        ILP_OBS_ATTR("server", obs_src_);
        if (reply_tx_.failed()) {
            if (!jobs_.empty()) {
                jobs_abandoned_ += jobs_.size();
                jobs_.clear();
            }
            return false;
        }
        while (!jobs_.empty() && jobs_.front().finished) jobs_.pop_front();
        if (jobs_.empty()) return false;
        reply_job& job = jobs_.front();
        ILP_OBS_SPAN("app", "reply_segment");

        const std::size_t remaining = job.file->size() - job.offset;
        const std::size_t payload_len = std::min<std::size_t>(
            remaining, job.request.max_reply_payload);

        rpc::reply_header header;
        header.request_id = job.request.request_id;
        header.copy_index = job.copy;
        header.offset = static_cast<std::uint32_t>(job.offset);
        header.total_bytes = static_cast<std::uint32_t>(job.file->size());

        const rpc::reply_layout layout = rpc::layout_reply(payload_len);
        const std::size_t wire = layout.wire_bytes + trailer_bytes();
        const auto pending = reply_tx_.reserve_segment(wire);
        if (!pending.has_value()) {
            return false;  // delayed until buffer space is available (§3.2.2)
        }
        slot.src = rpc::make_reply_source(
            header, {job.file->data() + job.offset, payload_len},
            slot.staging);
        slot.plan = layout.plan;
        slot.pending = *pending;
        slot.wire = wire;
        slot.payload_len = payload_len;
        slot.mem = mem_;
        slot.secure = false;
        slot.cipher = &data_cipher();
        slot.epoch = 0;
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_framing(secure_)) {
                slot.secure = true;
                slot.cipher = &chain_->current();
                slot.epoch = chain_->current_epoch();
                // Predict the rekey maybe_rekey() will perform when this
                // segment completes: everything already segmentized was (or
                // will be) encrypted under the current epoch, so the caller
                // must drain the pipeline before any further segmentation.
                if (secure_.rekey_interval_bytes != 0) {
                    predicted_bytes_since_rekey_ += wire;
                    if (predicted_bytes_since_rekey_ >=
                        secure_.rekey_interval_bytes) {
                        predicted_bytes_since_rekey_ = 0;
                        flush_pending_ = true;
                    }
                }
            }
        }

        job.offset += payload_len;
        if (job.offset >= job.file->size()) {
            job.offset = 0;
            if (++job.copy >= job.request.copy_count) job.finished = true;
        }
        if (job.finished) jobs_.pop_front();
        return true;
    }

    // Stage B: the fused marshal+encrypt+checksum loop, writing straight
    // into the reserved ring span.  Static and self-contained (everything it
    // reads lives in the slot) so it can run on a pipeline worker thread.
    static void fuse_slot(pipeline_slot& slot) {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (slot.secure) {
                slot.payload_sum = fill_message_secure_ilp(
                    *slot.mem, *slot.cipher, slot.epoch, slot.src, slot.plan,
                    slot.pending.dst);
                return;
            }
        }
        slot.payload_sum =
            fill_message_ilp(*slot.mem, *slot.cipher, slot.src, slot.plan,
                             slot.pending.dst);
    }

    // Stage C: publish the filled segment (transmit + retransmit arming) and
    // perform the serial path's bookkeeping — the counter block here must
    // stay line-for-line equivalent to send_message_[secure_]ilp +
    // send_next_reply, or pipelined flows would diverge from serial digests.
    void complete_segment(pipeline_slot& slot) {
        ILP_OBS_ATTR("server", obs_src_);
        reply_tx_.commit_segment(slot.pending, slot.payload_sum);
        ++tx_counters_.messages;
        tx_counters_.wire_bytes += slot.wire;
        tx_counters_.fused_loop_bytes += slot.wire;
        tx_counters_.cipher_bytes +=
            slot.secure ? slot.wire - rpc::secure_trailer_bytes : slot.wire;
        tx_counters_.payload_bytes += slot.payload_len;
        maybe_rekey(slot.wire);
    }

    // True when a segmentized segment will advance the key window at
    // completion: the caller must drain in-flight segments (through stage C)
    // before segmentizing more, so post-rekey segments snapshot the new key.
    bool pipeline_flush_pending() const noexcept { return flush_pending_; }

    // Wire size of the segment the next pump_one() would send (what a
    // byte-metered scheduler charges before granting), 0 when idle/failed.
    std::size_t next_wire_bytes() const {
        if (reply_tx_.failed()) return 0;
        for (const reply_job& job : jobs_) {
            if (!job.finished) {
                return rpc::layout_reply(next_payload_len(job)).wire_bytes +
                       trailer_bytes();
            }
        }
        return 0;
    }

    bool idle() const {
        return jobs_.empty() && reply_tx_.idle() && !reply_tx_.failed();
    }
    bool failed() const { return reply_tx_.failed(); }

    const path_counters& send_counters() const noexcept { return tx_counters_; }
    const path_counters& request_counters() const noexcept {
        return rx_counters_;
    }
    const tcp::sender_stats& reply_tcp_stats() const {
        return reply_tx_.stats();
    }
    const tcp::receiver_stats& request_tcp_stats() const {
        return request_rx_.stats();
    }
    std::uint64_t requests_served() const noexcept { return requests_served_; }
    std::uint64_t requests_rejected() const noexcept {
        return requests_rejected_;
    }
    std::uint64_t requests_deduplicated() const noexcept {
        return requests_deduplicated_;
    }
    std::uint64_t jobs_abandoned() const noexcept { return jobs_abandoned_; }

    const secure_flow_stats& secure_stats() const noexcept {
        return sec_stats_;
    }
    crypto::key_epoch current_epoch() const noexcept {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (chain_.has_value()) return chain_->current_epoch();
        }
        return 0;
    }

private:
    struct reply_job {
        rpc::file_request request;
        const std::vector<std::byte>* file = nullptr;
        std::uint32_t copy = 0;
        std::size_t offset = 0;
        bool finished = false;
    };

    // Trailer overhead of the flow's framing (0 for plain / downgraded v2).
    std::size_t trailer_bytes() const noexcept {
        return secure_framing(secure_) ? rpc::secure_trailer_bytes : 0;
    }

    // Request-direction processor: secure framing decrypts under the
    // epoch-free control key and verifies the tag; otherwise the classic
    // path (with the KDF epoch-0 key when the flow is secure-but-v2).
    // Wire is either a contiguous span (staged copy) or a const_ring_span
    // chain (zero-copy loan); the receive-path overloads resolve by type.
    template <typename Wire>
    tcp::rx_process_result process_request(const Wire& payload) {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_framing(secure_)) {
                secure_rx_status status;
                const auto result = receive_request_secure(
                    mode_, mem_, *control_cipher_, payload,
                    request_staging_.span(), &status, rx_counters_);
                if (status.cause == secure_rx_cause::tag_mismatch) {
                    ++sec_stats_.tag_failures;
                    ILP_OBS_INSTANT("crypto", "request_tag_mismatch");
                }
                return result;
            }
        }
        return receive_request(mode_, mem_, request_cipher(), payload,
                               request_staging_.span(), rx_counters_);
    }

    // The cipher the reply stream runs under: the keychain's current epoch
    // key for secure flows, else the caller-provided static cipher.
    const Cipher& data_cipher() const {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (chain_.has_value()) return chain_->current();
        }
        return *cipher_;
    }

    // The cipher the request direction runs under.
    const Cipher& request_cipher() const {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (control_cipher_.has_value()) return *control_cipher_;
        }
        return *cipher_;
    }

    void on_request(std::size_t wire_len) {
        ILP_OBS_SPAN("app", "serve_request");
        ILP_EXPECT(wire_len >= trailer_bytes());
        const auto request = rpc::unmarshal_request(
            request_staging_.subspan(0, wire_len - trailer_bytes()));
        if (!request.has_value() || request->copy_count == 0 ||
            request->max_reply_payload == 0) {
            ++requests_rejected_;
            return;
        }
        // Version pinning: the flow's negotiated framing decides which wire
        // version is acceptable; anything else is rejected explicitly.
        const std::uint32_t expected_version = secure_framing(secure_)
                                                   ? rpc::wire_version_secure
                                                   : rpc::wire_version;
        if (request->version != expected_version) {
            ++requests_rejected_;
            return;
        }
        if constexpr (crypto::aead_capable<Cipher>) {
            // A v3 request carries the client's epoch: re-centre the key
            // window before replying (a server picking up a flow resumed
            // after an outage must not answer under a retired epoch).
            if (secure_framing(secure_) && chain_->adopt(request->key_epoch)) {
                ++sec_stats_.epoch_adoptions;
                ILP_OBS_INSTANT("crypto", "epoch_adopted");
            }
        }
        const std::vector<std::byte>* file = store_->find(request->filename);
        if (file == nullptr) {
            ++requests_rejected_;
            return;
        }

        // Idempotence: an attempt already being served on a healthy reply
        // stream (duplicated request packet, or an impatient client retry
        // that crossed its own answer) is dropped, not double-served.
        for (const reply_job& job : jobs_) {
            if (job.request.request_id == request->request_id &&
                job.request.start_offset == request->start_offset &&
                job.request.reply_isn == request->reply_isn &&
                !reply_tx_.failed()) {
                ++requests_deduplicated_;
                return;
            }
        }

        // A new attempt: if the reply stream failed, or the client asks for
        // an ISN other than our current stream position, it abandoned the
        // old stream — rewind to the requested ISN and drop stale jobs.
        if (reply_tx_.failed() || request->reply_isn != reply_tx_.next_seq()) {
            reply_tx_.reset(request->reply_isn);
            jobs_abandoned_ += jobs_.size();
            jobs_.clear();
        } else {
            // Same request re-issued at a new offset on a healthy stream:
            // the superseded job must not keep serving stale data.
            for (auto it = jobs_.begin(); it != jobs_.end();) {
                if (it->request.request_id == request->request_id) {
                    ++jobs_abandoned_;
                    it = jobs_.erase(it);
                } else {
                    ++it;
                }
            }
        }

        ++requests_served_;
        reply_job job;
        job.request = *request;
        job.file = file;
        // start_offset indexes the reply stream (copies concatenated);
        // map it back to (copy, offset-within-copy).
        const std::uint64_t total = file->size();
        const std::uint64_t stream_total = total * request->copy_count;
        const std::uint64_t start =
            std::min<std::uint64_t>(request->start_offset, stream_total);
        if (total > 0) {
            job.copy = static_cast<std::uint32_t>(start / total);
            job.offset = static_cast<std::size_t>(start % total);
        }
        if (job.copy >= request->copy_count) job.finished = true;
        jobs_.push_back(std::move(job));
        if (auto_pump_) pump();
    }

    static std::size_t next_payload_len(const reply_job& job) {
        return std::min<std::size_t>(job.file->size() - job.offset,
                                     job.request.max_reply_payload);
    }

    // Sends the next segment of `job`; returns false when TCP is out of
    // buffer/window space (retry later) or the job just finished.
    bool send_next_reply(reply_job& job) {
        if (job.finished) return true;
        ILP_OBS_SPAN("app", "reply_segment");
        const std::size_t remaining = job.file->size() - job.offset;
        const std::size_t payload_len = std::min<std::size_t>(
            remaining, job.request.max_reply_payload);

        rpc::reply_header header;
        header.request_id = job.request.request_id;
        header.copy_index = job.copy;
        header.offset = static_cast<std::uint32_t>(job.offset);
        header.total_bytes = static_cast<std::uint32_t>(job.file->size());

        rpc::reply_staging staging;
        const core::gather_source src = rpc::make_reply_source(
            header, {job.file->data() + job.offset, payload_len}, staging);
        const rpc::reply_layout layout = rpc::layout_reply(payload_len);

        bool sent = false;
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_framing(secure_)) {
                sent = send_message_secure(
                    mode_, reply_tx_, mem_, chain_->current(),
                    chain_->current_epoch(), src, layout.plan, workspace_,
                    tx_counters_);
            } else {
                sent = send_message(mode_, reply_tx_, mem_, data_cipher(), src,
                                    layout.plan, workspace_, tx_counters_);
            }
        } else {
            sent = send_message(mode_, reply_tx_, mem_, *cipher_, src,
                                layout.plan, workspace_, tx_counters_);
        }
        if (!sent) {
            return false;  // delayed until buffer space is available (§3.2.2)
        }
        tx_counters_.payload_bytes += payload_len;
        maybe_rekey(layout.wire_bytes + trailer_bytes());

        job.offset += payload_len;
        if (job.offset >= job.file->size()) {
            job.offset = 0;
            if (++job.copy >= job.request.copy_count) job.finished = true;
        }
        return true;
    }

    // rekey_interval_bytes policy: after enough reply-stream bytes, advance
    // the key window.  Segments already in the TCP ring (and any
    // retransmissions of them) keep their old-epoch ciphertext — that is
    // precisely what the receiver's two-epoch window absorbs.
    void maybe_rekey(std::size_t sent_wire_bytes) {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (!secure_framing(secure_) || secure_.rekey_interval_bytes == 0) {
                return;
            }
            bytes_since_rekey_ += sent_wire_bytes;
            if (bytes_since_rekey_ < secure_.rekey_interval_bytes) return;
            bytes_since_rekey_ = 0;
            chain_->advance();
            ++sec_stats_.rekeys;
            flush_pending_ = false;  // the predicted advance happened
            ILP_OBS_INSTANT("crypto", "rekey");
        }
    }

    Mem mem_;
    const memsim::memory_system* obs_src_ = obs::attribution_source(mem_);
    const Cipher* cipher_;
    path_mode mode_;
    const file_store* store_;
    secure_params secure_;
    std::optional<crypto::keychain<Cipher>> chain_;
    std::optional<Cipher> control_cipher_;
    secure_flow_stats sec_stats_;
    std::uint64_t bytes_since_rekey_ = 0;
    // Stage-A mirror of bytes_since_rekey_ (counts reserved-but-uncompleted
    // segments too) and the drain flag it raises at each predicted advance.
    std::uint64_t predicted_bytes_since_rekey_ = 0;
    bool flush_pending_ = false;
    std::uint32_t request_isn_;
    tcp::tcp_receiver<Mem> request_rx_;
    tcp::tcp_sender<Mem> reply_tx_;
    send_workspace workspace_;
    byte_buffer request_staging_;
    std::deque<reply_job> jobs_;
    bool auto_pump_ = true;
    path_counters tx_counters_;
    path_counters rx_counters_;
    std::uint64_t requests_served_ = 0;
    std::uint64_t requests_rejected_ = 0;
    std::uint64_t requests_deduplicated_ = 0;
    std::uint64_t jobs_abandoned_ = 0;
};

// ---------------------------------------------------------------------------
// Client

template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
class file_client {
public:
    // Unwired form: the caller routes packets to on_request_ack_packet /
    // on_reply_packet; only the outbound pipes are attached here.
    file_client(const Mem& mem, const Cipher& cipher, virtual_clock& clock,
                net::datagram_pipe& request_data_out,
                net::datagram_pipe& reply_ack_out,
                const tcp::connection_config& request_cfg,
                const tcp::connection_config& reply_cfg, path_mode mode,
                const retry_policy& retry = {},
                const secure_params& secure = {})
        : mem_(mem),
          cipher_(&cipher),
          mode_(mode),
          clock_(&clock),
          policy_(retry),
          secure_(secure),
          request_isn_(request_cfg.initial_seq),
          request_tx_(mem, clock, request_data_out, request_cfg),
          reply_rx_(mem, clock, reply_ack_out, reply_cfg),
          workspace_(net::datagram_pipe::max_packet_bytes) {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_.enabled) {
                chain_.emplace(secure_.flow_secret);
                control_cipher_.emplace(
                    crypto::derive_control_cipher<Cipher>(
                        secure_.flow_secret));
            }
        } else {
            ILP_EXPECT(!secure_.enabled);
        }
        request_tx_.set_attribution("client", obs_src_);
        reply_rx_.set_processor([this](std::span<std::byte> payload) {
            return process_reply(payload);
        });
        if (mode_ == path_mode::ilp) {
            // Zero-copy deliveries run the fused reply path in place over
            // the loaned chain; the layered path has no chain processor, so
            // TCP stages a counted copy for it instead.
            reply_rx_.set_chain_processor(
                [this](const const_ring_span& payload) {
                    return process_reply(payload);
                });
        }
        reply_rx_.set_accept_handler([this](std::size_t) { commit_reply(); });
    }

    // Single-flow wiring: sole listener on both links.
    file_client(const Mem& mem, const Cipher& cipher, virtual_clock& clock,
                net::duplex_link& request_link, net::duplex_link& reply_link,
                const tcp::connection_config& request_cfg,
                const tcp::connection_config& reply_cfg, path_mode mode,
                const retry_policy& retry = {},
                const secure_params& secure = {})
        : file_client(mem, cipher, clock, request_link.forward(),
                      reply_link.reverse(), request_cfg, reply_cfg, mode,
                      retry, secure) {
        request_link.reverse().set_receiver(
            [this](std::span<const std::byte> p) {
                on_request_ack_packet(p);
            });
        if (reply_cfg.zero_copy) {
            // Zero-copy receive: the pipe loans each delivered segment as a
            // chain over its receive ring (valid only for the duration of
            // the handler call) instead of staging a user-space copy.
            reply_link.forward().set_segment_receiver(
                [this](const const_ring_span& s) { on_reply_segment(s); });
        } else {
            reply_link.forward().set_receiver(
                [this](std::span<const std::byte> p) { on_reply_packet(p); });
        }
    }

    // Packet entry points; attribution travels with them (they fire from
    // delivery timers inside clock.advance()).
    void on_request_ack_packet(std::span<const std::byte> p) {
        ILP_OBS_ATTR("client", obs_src_);
        request_tx_.on_ack_packet(p);
    }
    void on_reply_packet(std::span<const std::byte> p) {
        ILP_OBS_ATTR("client", obs_src_);
        reply_rx_.on_packet(p);
    }
    void on_reply_segment(const const_ring_span& s) {
        ILP_OBS_ATTR("client", obs_src_);
        reply_rx_.on_segment(s);
    }

    // Disarms pending TCP timers.  Required before destroying a client whose
    // clock lives on (engine flow teardown): armed timers capture `this`.
    void quiesce() { request_tx_.quiesce(); }

    // Sends the file request; returns false if it could not be queued.
    // The reply_isn field is overwritten: the first attempt always runs on
    // the reply connection's configured sequence state.
    bool request_file(const rpc::file_request& request) {
        ILP_OBS_ATTR("client", obs_src_);
        ILP_OBS_SPAN("rpc", "request");
        rpc::file_request r = request;
        r.reply_isn = reply_rx_.expected_seq();
        r.version = secure_framing(secure_) ? rpc::wire_version_secure
                                            : rpc::wire_version;
        r.key_epoch = current_epoch();
        if (!issue_request(r)) return false;
        state_.request = r;
        state_.active = true;
        state_.total_known = false;
        state_.buffers.clear();
        state_.received.assign(request.copy_count, 0);
        state_.completed_replies.assign(request.copy_count, 0);
        attempt_ = 1;
        retry_at_ = 0;
        recovery_ = {};
        last_progress_us_ = clock_->now();
        return true;
    }

    // Drives failure detection and the retry state machine; call regularly
    // from the event loop.  Retries fire on transport failure (request
    // sender gave up, or the server RST the reply stream) and on the
    // response timeout, after an exponential backoff, until max_attempts.
    void poll() {
        if (!state_.active || recovery_.gave_up || done()) return;
        ILP_OBS_ATTR("client", obs_src_);
        const sim_time now = clock_->now();
        if (retry_at_ != 0) {  // backoff in progress
            if (now < retry_at_) return;
            retry_at_ = 0;
            perform_retry();
            return;
        }
        const bool transport_failed =
            request_tx_.failed() || reply_rx_.peer_failed();
        const bool timed_out =
            policy_.response_timeout_us != 0 &&
            now - last_progress_us_ >= policy_.response_timeout_us;
        if (!transport_failed && !timed_out) return;
        if (attempt_ >= policy_.max_attempts) {
            recovery_.gave_up = true;
            return;
        }
        sim_time delay = policy_.backoff_us;
        for (unsigned i = 1; i < attempt_ && delay < policy_.max_backoff_us;
             ++i) {
            delay *= 2;
        }
        if (delay > policy_.max_backoff_us) delay = policy_.max_backoff_us;
        if (delay == 0) {
            perform_retry();
        } else {
            retry_at_ = now + delay;
        }
    }

    bool done() const {
        if (!state_.active || !state_.total_known) return false;
        for (std::uint32_t c = 0; c < state_.request.copy_count; ++c) {
            if (state_.received[c] < state_.total) return false;
            if (state_.completed_replies[c] == 0) return false;
        }
        return true;
    }

    // Terminal failure: every attempt the retry policy allows has been
    // spent.  (Individual TCP failures are recovered internally by poll().)
    bool failed() const { return recovery_.gave_up; }

    const client_recovery_stats& recovery() const noexcept {
        return recovery_;
    }

    // The reassembled file contents of one received copy.
    std::span<const std::byte> copy_data(std::uint32_t copy) const {
        ILP_EXPECT(copy < state_.buffers.size());
        return {state_.buffers[copy].data(), state_.total};
    }

    std::uint64_t bytes_received() const noexcept {
        std::uint64_t sum = 0;
        for (const auto b : state_.received) sum += b;
        return sum;
    }

    const path_counters& receive_counters() const noexcept {
        return rx_counters_;
    }
    const path_counters& request_send_counters() const noexcept {
        return tx_counters_;
    }
    const tcp::receiver_stats& reply_tcp_stats() const {
        return reply_rx_.stats();
    }
    const tcp::sender_stats& request_tcp_stats() const {
        return request_tx_.stats();
    }

    // Client-local metrics: reply inter-arrival gaps and retry latencies
    // (virtual us), plus commit/retry counters.  The harness merges this
    // into the transfer-wide registry.
    const obs::registry& metrics() const noexcept { return metrics_; }

    const secure_flow_stats& secure_stats() const noexcept {
        return sec_stats_;
    }
    crypto::key_epoch current_epoch() const noexcept {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (chain_.has_value()) return chain_->current_epoch();
        }
        return 0;
    }

private:
    struct transfer_state {
        rpc::file_request request;
        bool active = false;
        bool total_known = false;
        std::size_t total = 0;
        std::vector<std::vector<std::byte>> buffers;
        std::vector<std::size_t> received;
        std::vector<std::uint32_t> completed_replies;  // replies reaching EOF
    };

    // Wire is either a contiguous span (staged copy) or a const_ring_span
    // chain (zero-copy loan); the receive-path overloads resolve by type.
    template <typename Wire>
    tcp::rx_process_result process_reply(const Wire& payload) {
        const auto resolve = [this](const rpc::reply_header& h,
                                    std::size_t payload_bytes)
            -> std::span<std::byte> {
            if (!state_.active || h.request_id != state_.request.request_id ||
                h.copy_index >= state_.request.copy_count) {
                return {};
            }
            if (!state_.total_known) {
                state_.total = h.total_bytes;
                state_.total_known = true;
                state_.buffers.assign(state_.request.copy_count,
                                      std::vector<std::byte>(state_.total));
            }
            if (h.total_bytes != state_.total ||
                h.offset + payload_bytes > state_.total) {
                return {};
            }
            if (payload_bytes == 0) {
                // Empty file: a zero-length reply still signals completion.
                return {};
            }
            return {state_.buffers[h.copy_index].data() + h.offset,
                    payload_bytes};
        };

        rpc::reply_header header;
        tcp::rx_process_result result;
        const std::uint64_t payload_before = rx_counters_.payload_bytes;
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_framing(secure_)) {
                secure_rx_status status;
                result = receive_reply_secure(mode_, mem_, *chain_, payload,
                                              resolve, &header, &status,
                                              rx_counters_);
                note_secure_status(status);
            } else {
                result = plain_receive_reply(payload, resolve, &header);
            }
        } else {
            result = plain_receive_reply(payload, resolve, &header);
        }
        // Remember what this reply would contribute; it is committed only if
        // TCP's final stage accepts the segment.
        if (result.ok) {
            pending_header_ = header;
            pending_payload_bytes_ = static_cast<std::size_t>(
                rx_counters_.payload_bytes - payload_before);
            pending_valid_ = true;
        } else {
            pending_valid_ = false;
        }
        return result;
    }

    // Final-stage commit: TCP accepted the segment carrying the pending
    // reply.  Commits are strictly contiguous per copy — a reply opening a
    // gap is ignored, and overlap with already-committed data (a server
    // resuming slightly behind the client) only counts the fresh suffix.
    void commit_reply() {
        if (!pending_valid_) return;
        pending_valid_ = false;
        const rpc::reply_header& h = pending_header_;
        std::size_t& got = state_.received[h.copy_index];
        if (h.offset > got) {
            // Gap: not contiguous, cannot commit.
            metrics_.add("client.replies_gapped");
            return;
        }
        const std::size_t end = h.offset + pending_payload_bytes_;
        if (end > got) {
            recovery_.refetched_bytes += got - h.offset;
            got = end;
        } else {
            recovery_.refetched_bytes += pending_payload_bytes_;
        }
        if (end >= state_.total) ++state_.completed_replies[h.copy_index];
        metrics_.add("client.replies_committed");
        metrics_.hist("client.reply_gap_us")
            .record(clock_->now() - last_progress_us_);
        last_progress_us_ = clock_->now();
    }

    // The classic (trailer-less) reply receive, under the keychain's key for
    // secure-but-v2 flows and the static cipher otherwise.  A chain wire can
    // only reach the data path in ILP mode (the chain processor is installed
    // only then; layered deliveries get a staged copy from the TCP layer).
    template <typename Wire, typename Resolver>
    tcp::rx_process_result plain_receive_reply(const Wire& payload,
                                               Resolver&& resolve,
                                               rpc::reply_header* header) {
        if constexpr (std::is_same_v<std::decay_t<Wire>, const_ring_span>) {
            ILP_EXPECT(mode_ == path_mode::ilp);
            return receive_reply_ilp(mem_, data_cipher(), payload, resolve,
                                     header, rx_counters_);
        } else {
            if (mode_ == path_mode::ilp) {
                return receive_reply_ilp(mem_, data_cipher(), payload,
                                         resolve, header, rx_counters_);
            }
            return receive_reply_layered(mem_, data_cipher(), payload,
                                         resolve, header, rx_counters_);
        }
    }

    const Cipher& data_cipher() const {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (chain_.has_value()) return chain_->current();
        }
        return *cipher_;
    }

    // Request-direction key; must mirror the server's request_cipher().
    const Cipher& request_cipher() const {
        if constexpr (crypto::aead_capable<Cipher>) {
            if (control_cipher_.has_value()) return *control_cipher_;
        }
        return *cipher_;
    }

    // Folds one secure receive verdict into the counters/metrics; every
    // explicit failure cause leaves a distinct trace.
    void note_secure_status(const secure_rx_status& status) {
        switch (status.cause) {
            case secure_rx_cause::tag_mismatch:
                ++sec_stats_.tag_failures;
                metrics_.add("crypto.tag_failures");
                ILP_OBS_INSTANT("crypto", "tag_mismatch");
                break;
            case secure_rx_cause::epoch_skew:
                ++sec_stats_.epoch_skews;
                metrics_.add("crypto.epoch_skews");
                ILP_OBS_INSTANT("crypto", "epoch_skew");
                break;
            case secure_rx_cause::ok:
                if (status.window_hit) ++sec_stats_.window_hits;
                if (status.adopted) {
                    ++sec_stats_.epoch_adoptions;
                    metrics_.add("crypto.epoch_adoptions");
                    ILP_OBS_INSTANT("crypto", "epoch_adopted");
                }
                break;
            case secure_rx_cause::malformed:
                break;
        }
    }

    // Marshals and sends one request message over the request connection.
    bool issue_request(const rpc::file_request& request) {
        alignas(8) std::byte wire[1024];
        const auto wire_len = rpc::marshal_request(request, wire);
        if (!wire_len.has_value()) return false;

        // The request's wire image is already marshalled (control-plane);
        // the data path encrypts and checksums it.
        core::gather_source src;
        src.add({wire, *wire_len});
        const core::message_plan plan = core::plan_parts(
            rpc::validate_enc_header(load_be32(wire), *wire_len).value());
        if constexpr (crypto::aead_capable<Cipher>) {
            if (secure_framing(secure_)) {
                // Requests run under the epoch-free control key; the trailer
                // carries the client's data epoch for the server's window.
                return send_message_secure(mode_, request_tx_, mem_,
                                           *control_cipher_, current_epoch(),
                                           src, plan, workspace_,
                                           tx_counters_);
            }
        }
        return send_message(mode_, request_tx_, mem_, request_cipher(), src,
                            plan, workspace_, tx_counters_);
    }

    // Highest contiguously committed offset in the reply stream (copies
    // concatenated) — the resume point for the next attempt.
    std::uint32_t resume_offset() const {
        if (!state_.total_known) return 0;
        std::uint64_t off = 0;
        for (std::uint32_t c = 0; c < state_.request.copy_count; ++c) {
            if (state_.received[c] >= state_.total) {
                off += state_.total;
            } else {
                off += state_.received[c];
                break;
            }
        }
        return static_cast<std::uint32_t>(off);
    }

    // Distinct per attempt so segments of an abandoned reply stream can
    // never be mistaken for the re-established one.
    std::uint32_t derive_reply_isn() const {
        return (state_.request.request_id * 0x9e3779b9u) + attempt_ * 0x101u;
    }

    void perform_retry() {
        ILP_OBS_SPAN("rpc", "retry");
        ILP_OBS_INSTANT("rpc", "retry_fired");
        ++attempt_;
        ++recovery_.retries;
        metrics_.add("client.retries");
        // Latency of the failure detection itself: virtual time from the
        // last committed progress to this retry firing.
        metrics_.hist("client.retry_latency_us")
            .record(clock_->now() - last_progress_us_);
        if (request_tx_.failed()) {
            // The sender already emitted its RST; the server rewinds its
            // request receiver to the same agreed initial sequence.
            request_tx_.reset(request_isn_);
            ++recovery_.connection_resets;
        }
        // Always re-establish the reply stream on a fresh ISN carried in
        // the request; the server rewinds its reply sender to match.
        const std::uint32_t isn = derive_reply_isn();
        reply_rx_.reset(isn);
        ++recovery_.connection_resets;
        pending_valid_ = false;
        state_.request.start_offset = resume_offset();
        state_.request.reply_isn = isn;
        // Carry the freshest epoch: the server re-centres its key window on
        // it, so a rekey hidden by an outage resumes cleanly.
        state_.request.key_epoch = current_epoch();
        last_progress_us_ = clock_->now();
        if (!issue_request(state_.request)) {
            // No space on the request connection right now; retry the
            // re-issue after another backoff tick.
            retry_at_ = clock_->now() + std::max<sim_time>(policy_.backoff_us,
                                                           1000);
        }
    }

    Mem mem_;
    const memsim::memory_system* obs_src_ = obs::attribution_source(mem_);
    const Cipher* cipher_;
    path_mode mode_;
    virtual_clock* clock_;
    retry_policy policy_;
    secure_params secure_;
    std::optional<crypto::keychain<Cipher>> chain_;
    std::optional<Cipher> control_cipher_;
    secure_flow_stats sec_stats_;
    std::uint32_t request_isn_;
    tcp::tcp_sender<Mem> request_tx_;
    tcp::tcp_receiver<Mem> reply_rx_;
    send_workspace workspace_;
    transfer_state state_;
    unsigned attempt_ = 0;
    sim_time last_progress_us_ = 0;
    sim_time retry_at_ = 0;  // nonzero while a retry backoff is pending
    client_recovery_stats recovery_;
    rpc::reply_header pending_header_;
    std::size_t pending_payload_bytes_ = 0;
    bool pending_valid_ = false;
    path_counters tx_counters_;
    path_counters rx_counters_;
    obs::registry metrics_;
};

}  // namespace ilp::app
