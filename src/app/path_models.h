// Application-layer pipeline registrations for the fusion analyzer.
//
// These models mirror, stage for stage, the compositions the send/receive
// data paths actually instantiate (send_path.h, receive_path.h,
// early_send.h) plus the word-filter baseline the ablation benches run.
// The stage footprints come from the same types the paths fuse —
// fused_pipeline<...>::footprints() — so a refactor that changes a path's
// composition changes its registered model with it; only the schedule
// (out-of-order vs linear, part geometry) is restated here, because it
// lives in runtime control flow the analyzer cannot see.
#pragma once

#include "analysis/registry.h"

namespace ilp::app {

std::vector<analysis::finding> register_app_pipelines(
    analysis::pipeline_registry& registry);

}  // namespace ilp::app
