// Path selection plus per-side accounting of what the data paths did.
//
// The counters themselves live in obs::path_counters so the observability
// layer (obs::registry, the recovery/bench reports) can publish them without
// depending on the app layer; the alias below keeps the historical
// `app::path_counters` spelling used throughout the data paths.  The
// platform timing models (src/platform) convert these counters plus the
// simulated memory-system cycles into per-packet processing times, and the
// figure benches report them directly (e.g. Fig. 13's access counts come
// from the memory simulator, while the pass structure recorded here explains
// them).
#pragma once

#include "obs/path_counters.h"

namespace ilp::app {

enum class path_mode {
    ilp,      // fused loop (marshal+encrypt+checksum in the copy)
    layered,  // one pass per protocol function (conventional implementation)
};

using path_counters = obs::path_counters;

}  // namespace ilp::app
