// Early-manipulation send variant (paper §3.2.2).
//
// When the retransmission buffer is full, the chosen implementation delays
// *all* manipulations until space is available.  The paper considers the
// alternative: "Data manipulations can be performed as early as possible to
// minimize delays.  Data above the TCP level is manipulated in advance; the
// checksum calculation and the copy to the TCP buffer are done when there
// is enough buffer space available again" — worth ~100 us of latency on a
// SS10-30, at the price of a more complex implementation and one extra
// read+write pass (the advance manipulation must land in a staging area).
//
// This class implements that alternative as two fused sub-loops:
//
//   prepare():    marshal + encrypt fused into a staging buffer
//                 (runs immediately, regardless of TCP buffer state);
//   try_flush():  checksum + copy fused from staging into the TCP ring
//                 (runs as soon as the window/buffer allows).
//
// bench_ablation_early_send quantifies the trade: one extra pass of memory
// traffic versus zero manipulation latency once buffer space frees up.
#pragma once

#include <optional>

#include "app/path_mode.h"
#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/block_cipher.h"
#include "tcp/connection.h"

namespace ilp::app {

template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
class early_sender {
public:
    early_sender(const Mem& mem, const Cipher& cipher,
                 std::size_t max_wire_bytes)
        : mem_(mem), cipher_(&cipher), staging_(max_wire_bytes) {}

    bool has_pending() const noexcept { return pending_bytes_ > 0; }

    // Phase 1: manipulate the message *now* into the staging area (fused
    // marshal+encrypt, parts B, C, A).  Only one message may be pending.
    void prepare(const core::gather_source& src,
                 const core::message_plan& plan, path_counters& counters) {
        ILP_EXPECT(!has_pending());
        const std::size_t wire_bytes = plan.total_bytes;
        ILP_EXPECT(wire_bytes <= staging_.size());
        core::encrypt_stage<Cipher> encrypt(*cipher_);
        auto loop = core::make_pipeline(encrypt);
        static_assert(!decltype(loop)::ordering_constrained);
        ILP_EXPECT(plan.well_formed() &&
                   plan.aligned_for(decltype(loop)::required_alignment));
        const core::scatter_dest dst =
            core::span_dest(staging_.subspan(0, wire_bytes));
        for (const core::message_part& part : plan.ilp_order()) {
            if (part.empty()) continue;
            loop.run(mem_, src.slice(part.offset, part.len),
                     dst.slice(part.offset, part.len));
        }
        pending_bytes_ = wire_bytes;
        counters.fused_loop_bytes += wire_bytes;
        counters.cipher_bytes += wire_bytes;
    }

    // Phase 2: fused checksum+copy of the staged wire image into the TCP
    // ring.  Returns false while TCP still has no room (call again later).
    bool try_flush(tcp::tcp_sender<Mem>& sender, path_counters& counters) {
        ILP_EXPECT(has_pending());
        const std::size_t wire_bytes = pending_bytes_;
        const bool sent = sender.send_message(
            wire_bytes,
            [&](const ring_span& dst) -> std::optional<std::uint16_t> {
                checksum::inet_accumulator acc;
                core::checksum_tap8 tap(acc);
                auto loop = core::make_pipeline(tap);
                loop.run(mem_,
                         core::span_source(staging_.subspan(0, wire_bytes)),
                         core::ring_dest(dst));
                return acc.folded();
            });
        if (!sent) return false;
        pending_bytes_ = 0;
        ++counters.messages;
        counters.wire_bytes += wire_bytes;
        counters.copy_pass_bytes += wire_bytes;  // the staging->ring pass
        return true;
    }

private:
    Mem mem_;
    const Cipher* cipher_;
    byte_buffer staging_;
    std::size_t pending_bytes_ = 0;
};

}  // namespace ilp::app
