// Sending-side data paths (paper Fig. 3).
//
// Both paths take a `gather_source` describing the complete unencrypted wire
// image of one message (headers already staged in XDR form, payload,
// generated padding) and hand the encrypted bytes to a tcp_sender.
//
//   ILP:      marshal + encrypt + checksum fused into the single copy from
//             application memory to the TCP ring, processing message parts
//             in the order B, C, A (§3.2.2).  One read of the application
//             data, one write into the ring; the payload checksum falls out
//             of the loop's tap.
//
//   layered:  1. marshalling pass   app -> staging        (r/w)
//             2. encryption pass    staging, in place     (r/w)
//             3. tcp_send copy      staging -> ring       (r/w)
//             4. checksum pass      ring                  (r)   [tcp_output]
//             5. system copy        ring -> kernel        (r/w) [pipe]
#pragma once

#include <optional>

#include "app/path_mode.h"
#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/block_cipher.h"
#include "obs/tracer.h"
#include "tcp/connection.h"

namespace ilp::app {

// Reusable per-connection scratch for the layered path's intermediate
// packet (kept allocated so repeated sends have stable addresses, like the
// static buffers of a real 1995 implementation).
class send_workspace {
public:
    explicit send_workspace(std::size_t max_wire_bytes)
        : staging_(max_wire_bytes) {}

    std::span<std::byte> staging(std::size_t n) {
        ILP_EXPECT(n <= staging_.size());
        return staging_.subspan(0, n);
    }

private:
    byte_buffer staging_;
};

// The fused marshal+encrypt+checksum loop over one message, writing
// directly into a (reserved) TCP ring span in B,C,A part order; returns the
// folded payload checksum.  Shared verbatim by the serial send path below
// and the pipelined dataplane's fused stage (pipeline/stage_runner.h), so
// both produce bit-identical ring contents.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
std::uint16_t fill_message_ilp(const Mem& mem, const Cipher& cipher,
                               const core::gather_source& src,
                               const core::message_plan& plan,
                               const ring_span& dst) {
    checksum::inet_accumulator acc;
    core::encrypt_stage<Cipher> encrypt(cipher);
    core::checksum_tap8 tap(acc);
    auto loop = core::make_pipeline(encrypt, tap);
    static_assert(!decltype(loop)::ordering_constrained,
                  "out-of-order parts require unconstrained stages");
    // Construction-time fusion-legality guard (analyzer rule R3): every
    // part cut must respect the strictest stage alignment or a cipher
    // block would straddle the cut.
    ILP_EXPECT(plan.well_formed() &&
               plan.aligned_for(decltype(loop)::required_alignment));
    const core::scatter_dest ring = core::ring_dest(dst);
    for (const core::message_part& part : plan.ilp_order()) {
        if (part.empty()) continue;
        ILP_OBS_SPAN("core", "fused_part");
        loop.run(mem, src.slice(part.offset, part.len),
                 ring.slice(part.offset, part.len));
    }
    return acc.folded();
}

// ILP send path.  Returns false when TCP has no buffer/window space — the
// caller retries later; per §3.2.2 *all* manipulations are delayed until
// the whole message fits ("we decided to perform all data manipulations
// within a single loop and to delay all manipulations until they are all
// possible").
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
bool send_message_ilp(tcp::tcp_sender<Mem>& sender, const Mem& mem,
                      const Cipher& cipher, const core::gather_source& src,
                      const core::message_plan& plan,
                      path_counters& counters) {
    const std::size_t wire_bytes = plan.total_bytes;
    ILP_EXPECT(src.total_size() == wire_bytes);
    ILP_OBS_SPAN("app", "send_ilp");
    const bool sent = sender.send_message(
        wire_bytes, [&](const ring_span& dst) -> std::optional<std::uint16_t> {
            return fill_message_ilp(mem, cipher, src, plan, dst);
        });
    if (!sent) return false;
    ++counters.messages;
    counters.wire_bytes += wire_bytes;
    counters.fused_loop_bytes += wire_bytes;
    counters.cipher_bytes += wire_bytes;
    return true;
}

// Conventional layered send path.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
bool send_message_layered(tcp::tcp_sender<Mem>& sender, const Mem& mem,
                          const Cipher& cipher, const core::gather_source& src,
                          const core::message_plan& plan,
                          send_workspace& workspace,
                          path_counters& counters) {
    const std::size_t wire_bytes = plan.total_bytes;
    ILP_EXPECT(src.total_size() == wire_bytes);
    if (wire_bytes > sender.sendable_bytes()) {
        // Check before manipulating: a full buffer must not waste the
        // marshalling/encryption work.
        return false;
    }
    const std::span<std::byte> staging = workspace.staging(wire_bytes);
    ILP_OBS_SPAN("app", "send_layered");

    // Pass 1: marshalling (application data -> intermediate packet).
    {
        ILP_OBS_SPAN("app", "marshal_pass");
        core::marshal_to_buffer(mem, src, staging);
    }
    counters.marshal_pass_bytes += wire_bytes;

    // Pass 2: encryption, in place.
    {
        ILP_OBS_SPAN("app", "cipher_pass");
        core::encrypt_stage<Cipher> encrypt(cipher);
        core::apply_stage_in_place(mem, encrypt, staging);
    }
    counters.cipher_pass_bytes += wire_bytes;
    counters.cipher_bytes += wire_bytes;

    // Pass 3: tcp_send's copy into the ring; pass 4 (checksum) happens in
    // tcp_output because the filler returns nullopt.
    const bool sent = sender.send_message(
        wire_bytes, [&](const ring_span& dst) -> std::optional<std::uint16_t> {
            ILP_OBS_SPAN("app", "tcp_send_copy");
            mem.copy(dst.first.data(), staging.data(), dst.first.size());
            if (!dst.second.empty()) {
                mem.copy(dst.second.data(), staging.data() + dst.first.size(),
                         dst.second.size());
            }
            return std::nullopt;
        });
    ILP_ENSURE(sent);  // sendable_bytes was checked above
    counters.copy_pass_bytes += wire_bytes;
    counters.checksum_pass_bytes += wire_bytes;
    ++counters.messages;
    counters.wire_bytes += wire_bytes;
    return true;
}

// Mode dispatcher used by the application.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
bool send_message(path_mode mode, tcp::tcp_sender<Mem>& sender, const Mem& mem,
                  const Cipher& cipher, const core::gather_source& src,
                  const core::message_plan& plan, send_workspace& workspace,
                  path_counters& counters) {
    if (mode == path_mode::ilp) {
        return send_message_ilp(sender, mem, cipher, src, plan, counters);
    }
    return send_message_layered(sender, mem, cipher, src, plan, workspace,
                                counters);
}

}  // namespace ilp::app
