// Experiment harness: wires a client and a server together over loop-back
// links and drives one complete file transfer on the virtual clock.
//
// This is the unit every benchmark runs: the paper's measurements transmit
// "a 15 kbyte file with varying message sizes ... several times from a
// server (sender) to a client (receiver) on the same machine using UDP in
// loop back mode" (§4.1).
#pragma once

#include <array>
#include <string>

#include "app/file_transfer.h"
#include "engine/fleet.h"
#include "engine/shard.h"
#include "memsim/memory_system.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace ilp::app {

struct transfer_config {
    path_mode mode = path_mode::ilp;
    std::size_t file_bytes = 15 * 1024;
    std::uint32_t copies = 1;
    // Target TPDU payload size (the experiments' "packet size" axis); the
    // reply payload is chosen as the largest that fits.
    std::size_t packet_wire_bytes = 1024;
    sim_time link_latency_us = 100;
    net::fault_config forward_faults{};
    net::fault_config reverse_faults{};
    // Faults on the request link (client -> server direction and its ACK
    // path); clean by default, matching the paper's setup.
    net::fault_config request_forward_faults{};
    net::fault_config request_reverse_faults{};
    // RPC-level retry policy driven by the client.
    retry_policy retry{};
    std::uint64_t file_seed = 0x11aa;
    std::uint64_t key_seed = 0x22bb;
    sim_time deadline_us = 120'000'000;
    sim_time poll_step_us = 200;
    // Zero-copy adapter model (fbufs); see tcp::connection_config.
    bool zero_copy = false;
    // Transport security (requires an aead_capable cipher); see
    // engine::flow_config for the per-field semantics.  flow_secret 0
    // derives one from key_seed.
    bool secure = false;
    std::uint32_t secure_wire_version = rpc::wire_version_secure;
    std::uint64_t rekey_interval_bytes = 0;
    std::uint64_t flow_secret = 0;
    std::uint64_t client_secret_override = 0;
};

// End-to-end recovery accounting for one transfer, aggregated across both
// endpoints and both connections.  This is a *view* over the metrics
// registry (see recovery_from): the registry is the source of truth, the
// struct keeps the established field spellings for tests and benches.
struct recovery_report {
    std::uint64_t rpc_retries = 0;         // request re-issues by the client
    std::uint64_t connection_resets = 0;   // endpoint reset() calls, all four
    std::uint64_t rsts_sent = 0;           // TCP give-up notifications
    std::uint64_t rsts_received = 0;
    std::uint64_t requests_deduplicated = 0;
    std::uint64_t jobs_abandoned = 0;      // server jobs dropped on reset
    std::uint64_t refetched_bytes = 0;     // reply payload served > once
    bool gave_up = false;  // explicit failure: retry budget exhausted
};

inline recovery_report recovery_from(const obs::registry& m) {
    recovery_report r;
    r.rpc_retries = m.counter("recovery.rpc_retries");
    r.connection_resets = m.counter("recovery.connection_resets");
    r.rsts_sent = m.counter("recovery.rsts_sent");
    r.rsts_received = m.counter("recovery.rsts_received");
    r.requests_deduplicated = m.counter("recovery.requests_deduplicated");
    r.jobs_abandoned = m.counter("recovery.jobs_abandoned");
    r.refetched_bytes = m.counter("recovery.refetched_bytes");
    r.gave_up = m.counter("recovery.gave_up") != 0;
    return r;
}

struct transfer_result {
    bool completed = false;
    bool verified = false;  // received copies byte-identical to the file
    recovery_report recovery;
    // Every quantity the harness measures, under dotted names (recovery.*,
    // server.send.*, client.receive.*, client.* histograms, transfer.*).
    obs::registry metrics;
    sim_time elapsed_us = 0;
    std::uint64_t payload_bytes_delivered = 0;
    std::uint64_t reply_messages = 0;
    path_counters server_send;    // the paper's "send" side
    path_counters client_receive;  // the paper's "receive" side
    tcp::sender_stats reply_tcp_sender;
    tcp::receiver_stats reply_tcp_receiver;
    net::pipe_stats reply_pipe;
    net::pipe_stats reply_ack_pipe;

    // Application-level throughput in Mbps (payload bits over virtual time),
    // the quantity Figures 8/9/12 report.
    double throughput_mbps() const {
        if (elapsed_us == 0) return 0.0;
        return static_cast<double>(payload_bytes_delivered) * 8.0 /
               static_cast<double>(elapsed_us);
    }
};

// Runs one transfer with the given memory policies (one per side — e.g. two
// sim_memory instances over distinct memory systems, or two direct_memory).
//
// The transfer itself is a one-flow engine shard in legacy mode (see
// engine/shard.h): the shard reproduces the historical wiring — fixed ports,
// untagged fault streams, pump/poll/advance cadence — so this wrapper's
// results are bit-identical to the pre-engine harness, while multi-flow
// callers use engine::run_fleet over the same machinery.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
transfer_result run_transfer(const transfer_config& config,
                             const Mem& client_mem, const Mem& server_mem,
                             const Cipher& client_cipher,
                             const Cipher& server_cipher) {
    engine::shard_options opts;
    opts.legacy_single_flow = true;
    opts.link_latency_us = config.link_latency_us;
    opts.poll_step_us = config.poll_step_us;
    opts.request_forward_faults = config.request_forward_faults;
    opts.request_reverse_faults = config.request_reverse_faults;
    opts.reply_forward_faults = config.forward_faults;
    opts.reply_reverse_faults = config.reverse_faults;
    engine::shard<Mem, Cipher> shard(0, opts, client_mem, server_mem);

    engine::flow_config fc;
    fc.mode = config.mode;
    fc.file_bytes = config.file_bytes;
    fc.copies = config.copies;
    fc.packet_wire_bytes = config.packet_wire_bytes;
    fc.retry = config.retry;
    fc.file_seed = config.file_seed;
    fc.deadline_us = config.deadline_us;
    fc.zero_copy = config.zero_copy;
    fc.secure = config.secure;
    fc.secure_wire_version = config.secure_wire_version;
    fc.rekey_interval_bytes = config.rekey_interval_bytes;
    fc.flow_secret = config.flow_secret;
    fc.client_secret_override = config.client_secret_override;
    if (fc.secure && fc.flow_secret == 0) {
        fc.flow_secret = derive_seed(config.key_seed, 0x5ec00000ull);
    }

    transfer_result result;
    if (!shard.open_flow(0, fc, client_cipher, server_cipher)) return result;
    shard.run();

    file_client<Mem, Cipher>& client = shard.client(0);
    file_server<Mem, Cipher>& server = shard.server(0);
    net::duplex_link& reply_link = shard.reply_link();
    const engine::flow_outcome& outcome = shard.outcome(0);
    result.completed = outcome.completed;
    result.elapsed_us = outcome.elapsed_us;

    // Aggregation across endpoints and connections is repeated add() into
    // one registry; the recovery_report below is just a view over it.
    obs::registry& m = result.metrics;
    const client_recovery_stats& cr = client.recovery();
    m.add("recovery.rpc_retries", cr.retries);
    if (cr.gave_up) m.add("recovery.gave_up");
    m.add("recovery.connection_resets", cr.connection_resets);
    m.add("recovery.connection_resets", server.reply_tcp_stats().resets);
    m.add("recovery.connection_resets", server.request_tcp_stats().resets);
    m.add("recovery.rsts_sent", server.reply_tcp_stats().rsts_sent);
    m.add("recovery.rsts_sent", client.request_tcp_stats().rsts_sent);
    m.add("recovery.rsts_received", client.reply_tcp_stats().rsts_received);
    m.add("recovery.rsts_received", server.request_tcp_stats().rsts_received);
    m.add("recovery.requests_deduplicated", server.requests_deduplicated());
    m.add("recovery.jobs_abandoned", server.jobs_abandoned());
    const std::uint64_t served = server.send_counters().payload_bytes;
    m.add("recovery.refetched_bytes", cr.refetched_bytes);
    if (served > client.bytes_received()) {
        m.add("recovery.refetched_bytes", served - client.bytes_received());
    }
    m.add("crypto.rekeys", server.secure_stats().rekeys);
    m.add("crypto.epoch_adoptions", server.secure_stats().epoch_adoptions);
    m.add("crypto.request_tag_failures", server.secure_stats().tag_failures);
    m.add("crypto.epoch_window_hits", client.secure_stats().window_hits);
    obs::publish(m, "server.send", server.send_counters());
    obs::publish(m, "client.receive", client.receive_counters());
    m.merge(client.metrics());
    m.add("transfer.payload_bytes", client.bytes_received());
    m.add("transfer.elapsed_us", result.elapsed_us);
    if (result.completed) m.add("transfer.completed");
    result.recovery = recovery_from(m);
    result.payload_bytes_delivered = client.bytes_received();
    result.server_send = server.send_counters();
    result.client_receive = client.receive_counters();
    result.reply_tcp_sender = server.reply_tcp_stats();
    result.reply_tcp_receiver = client.reply_tcp_stats();
    result.reply_pipe = reply_link.forward().stats();
    result.reply_ack_pipe = reply_link.reverse().stats();
    result.reply_messages = result.client_receive.messages;

    // The shard already verified each received copy against the served file.
    result.verified = outcome.verified;
    return result;
}

// Convenience for native runs: both sides use raw memory.
template <crypto::block_cipher Cipher>
transfer_result run_transfer_native(const transfer_config& config) {
    std::array<std::byte, engine::cipher_key_bytes<Cipher>()> key;
    rng key_rng(config.key_seed);
    key_rng.fill(key);
    const Cipher cipher{std::span<const std::byte>(key)};
    return run_transfer(config, memsim::direct_memory{},
                        memsim::direct_memory{}, cipher, cipher);
}

// Convenience for simulator runs: client and server each stream their
// accesses into their own memory system (send side vs. receive side, as the
// paper's §4.2 analysis separates them).
template <crypto::block_cipher Cipher>
transfer_result run_transfer_simulated(const transfer_config& config,
                                       memsim::memory_system& client_sys,
                                       memsim::memory_system& server_sys) {
    std::array<std::byte, engine::cipher_key_bytes<Cipher>()> key;
    rng key_rng(config.key_seed);
    key_rng.fill(key);
    const Cipher cipher{std::span<const std::byte>(key)};
    return run_transfer(config, memsim::sim_memory(client_sys),
                        memsim::sim_memory(server_sys), cipher, cipher);
}

}  // namespace ilp::app
