// Receiving-side data paths (paper Fig. 5).
//
// Both paths run as the tcp_receiver's processor: after the system copy and
// header parse (initial stage) and before TCP commits anything (final
// stage).  They must *always* return the folded checksum of the complete
// ciphertext payload — even when the message is malformed — because the
// final stage needs it for the accept/reject verdict.
//
//   ILP:      checksum + decrypt + unmarshal fused into the copy out of the
//             receive buffer.  The first cipher blocks are decrypted first
//             to learn the encryption header's length field and the RPC
//             header ("as soon as enough data is decrypted for
//             unmarshalling, it performs the appropriate unmarshalling
//             operations", §3.2.3), then the rest streams straight into the
//             application's destination buffer.
//
//   layered:  1. checksum pass        receive buffer        (r)
//             2. decryption pass      in place              (r/w)
//             3. unmarshal + copy     buffer -> application (r/w)
#pragma once

#include <cstdint>
#include <span>

#include "app/path_mode.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/stage.h"
#include "crypto/block_cipher.h"
#include "obs/tracer.h"
#include "rpc/messages.h"
#include "tcp/connection.h"

namespace ilp::app {

// Gives the receive path the destination for a reply's payload once the RPC
// header is known; returns an empty span to reject (unknown request id, bad
// offset, ...).  The span must be exactly `payload_bytes` long.
template <typename F>
concept reply_dest_resolver =
    requires(F f, const rpc::reply_header& h, std::size_t n) {
        { f(h, n) } -> std::convertible_to<std::span<std::byte>>;
    };

namespace detail {

// Region of the wire holding the encryption header + the five RPC header
// words: exactly the first three cipher blocks.
inline constexpr std::size_t reply_header_region = 24;

// Host-order staging for the unmarshalled length field and RPC header.
struct reply_header_staging {
    std::uint32_t words[6] = {};  // length, msg_type, request_id, copy_index,
                                  // offset, total_bytes

    std::span<std::byte> bytes() {
        return {reinterpret_cast<std::byte*>(words), sizeof words};
    }
    rpc::reply_header to_header() const {
        rpc::reply_header h;
        h.msg_type = words[1];
        h.request_id = words[2];
        h.copy_index = words[3];
        h.offset = words[4];
        h.total_bytes = words[5];
        return h;
    }
};

// Folds the untouched remainder of the wire into the accumulator so TCP can
// still verdict a malformed message, and reports failure.
template <memsim::memory_policy Mem>
tcp::rx_process_result fail_with_remainder(const Mem& mem,
                                           checksum::inet_accumulator& acc,
                                           std::span<std::byte> wire,
                                           std::size_t from,
                                           path_counters& counters) {
    core::checksum_pass(mem, acc, wire.subspan(from), 8);
    counters.checksum_pass_bytes += wire.size() - from;
    return {acc.folded(), false};
}

// Gather-source form, for the zero-copy chain paths: checksums the
// remainder segment by segment (the accumulator's odd-parity tracking makes
// that correct for any chain split).  On a single-segment source this runs
// the exact same accesses as the span form above.
template <memsim::memory_policy Mem>
tcp::rx_process_result fail_with_remainder(const Mem& mem,
                                           checksum::inet_accumulator& acc,
                                           const core::gather_source& wire,
                                           std::size_t from,
                                           path_counters& counters) {
    const std::size_t n = wire.total_size();
    for (const core::gather_segment& s :
         wire.slice(from, n - from).segments()) {
        acc.add_bytes(mem, std::span<const std::byte>{s.data, s.len}, 8);
    }
    counters.checksum_pass_bytes += n - from;
    return {acc.folded(), false};
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Reply receive paths

// Primary (zero-copy) form: the wire arrives as a loaned kernel-segment
// chain — up to two spans around the receive-ring wrap — and the fused loop
// reads it in place, exactly once, with no reassembly copy.  The contiguous
// overload below delegates here with a single-piece chain, so the copying
// mode runs the identical access sequence it always has.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_ilp(const Mem& mem, const Cipher& cipher,
                                         const const_ring_span& wire,
                                         Resolver&& resolve,
                                         rpc::reply_header* out_header,
                                         path_counters& counters) {
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_ilp");
    checksum::inet_accumulator acc;
    const core::gather_source src = core::chain_source(wire);
    if (n < rpc::reply_payload_offset + 4 ||
        n % core::encryption_unit_bytes != 0) {
        return detail::fail_with_remainder(mem, acc, src, 0, counters);
    }

    core::checksum_tap8 tap(acc);            // over the ciphertext...
    core::decrypt_stage<Cipher> dec(cipher);  // ...then decrypt
    auto loop = core::make_pipeline(tap, dec);
    // The two-phase split at reply_header_region is itself a part cut; it
    // must land on a cipher-block boundary (analyzer rule R3).
    static_assert(detail::reply_header_region %
                          decltype(loop)::required_alignment ==
                      0,
                  "header phase must end on a fused-unit boundary");

    // Phase 1: decrypt the header region to learn the message geometry.
    detail::reply_header_staging staging;
    {
        ILP_OBS_SPAN("app", "receive_header_phase");
        core::scatter_dest dst;
        dst.add(staging.bytes(), core::segment_op::xdr_words);
        loop.run(mem, src.slice(0, detail::reply_header_region), dst);
    }
    counters.fused_loop_bytes += detail::reply_header_region;
    counters.cipher_bytes += detail::reply_header_region;

    const auto marshalled = rpc::validate_enc_header(staging.words[0], n);
    const rpc::reply_header header = staging.to_header();
    if (!marshalled.has_value() ||
        *marshalled < rpc::reply_payload_offset ||
        header.msg_type != rpc::msg_type_reply) {
        return detail::fail_with_remainder(
            mem, acc, src, detail::reply_header_region, counters);
    }
    const std::size_t payload_bytes =
        *marshalled - rpc::reply_payload_offset;
    const std::span<std::byte> dest = resolve(header, payload_bytes);
    if (dest.size() != payload_bytes) {
        return detail::fail_with_remainder(
            mem, acc, src, detail::reply_header_region, counters);
    }

    // Phase 2: the opaque length word, the payload (straight into the
    // application's buffer) and the discarded padding.
    std::uint32_t opaque_len = 0;
    {
        ILP_OBS_SPAN("app", "receive_body_phase");
        core::scatter_dest dst;
        dst.add({reinterpret_cast<std::byte*>(&opaque_len), 4},
                core::segment_op::xdr_words);
        if (payload_bytes > 0) dst.add(dest);
        const std::size_t pad = n - rpc::reply_payload_offset - payload_bytes;
        if (pad > 0) dst.add_discard(pad);
        loop.run(mem,
                 src.slice(detail::reply_header_region,
                           n - detail::reply_header_region),
                 dst);
    }
    const std::size_t body = n - detail::reply_header_region;
    counters.fused_loop_bytes += body;
    counters.cipher_bytes += body;
    ++counters.messages;
    counters.payload_bytes += payload_bytes;

    if (out_header != nullptr) *out_header = header;
    return {acc.folded(), opaque_len == payload_bytes};
}

// Contiguous overload (the staged-copy mode and all unit fixtures).
template <memsim::memory_policy Mem, crypto::block_cipher Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_ilp(const Mem& mem, const Cipher& cipher,
                                         std::span<std::byte> wire,
                                         Resolver&& resolve,
                                         rpc::reply_header* out_header,
                                         path_counters& counters) {
    return receive_reply_ilp(mem, cipher, const_ring_span{wire, {}},
                             std::forward<Resolver>(resolve), out_header,
                             counters);
}

template <memsim::memory_policy Mem, crypto::block_cipher Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_layered(const Mem& mem,
                                             const Cipher& cipher,
                                             std::span<std::byte> wire,
                                             Resolver&& resolve,
                                             rpc::reply_header* out_header,
                                             path_counters& counters) {
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_layered");
    checksum::inet_accumulator acc;

    // Pass 1: checksum over the ciphertext.
    {
        ILP_OBS_SPAN("app", "checksum_pass");
        core::checksum_pass(mem, acc, wire, 8);
    }
    counters.checksum_pass_bytes += n;
    if (n < rpc::reply_payload_offset + 4 ||
        n % core::encryption_unit_bytes != 0) {
        return {acc.folded(), false};
    }

    // Pass 2: decrypt in place.
    {
        ILP_OBS_SPAN("app", "cipher_pass");
        core::decrypt_stage<Cipher> dec(cipher);
        core::apply_stage_in_place(mem, dec, wire);
    }
    counters.cipher_pass_bytes += n;
    counters.cipher_bytes += n;

    // Pass 3: unmarshal + copy.  Headers first...
    detail::reply_header_staging staging;
    {
        ILP_OBS_SPAN("app", "unmarshal_pass");
        core::scatter_dest dst;
        dst.add(staging.bytes(), core::segment_op::xdr_words);
        core::unmarshal_from_buffer(
            mem, wire.first(detail::reply_header_region), dst);
    }
    counters.marshal_pass_bytes += detail::reply_header_region;

    const auto marshalled = rpc::validate_enc_header(staging.words[0], n);
    const rpc::reply_header header = staging.to_header();
    if (!marshalled.has_value() ||
        *marshalled < rpc::reply_payload_offset ||
        header.msg_type != rpc::msg_type_reply) {
        return {acc.folded(), false};
    }
    const std::size_t payload_bytes =
        *marshalled - rpc::reply_payload_offset;
    const std::span<std::byte> dest = resolve(header, payload_bytes);
    if (dest.size() != payload_bytes) return {acc.folded(), false};

    // ...then the body.
    std::uint32_t opaque_len = 0;
    {
        ILP_OBS_SPAN("app", "unmarshal_pass");
        core::scatter_dest dst;
        dst.add({reinterpret_cast<std::byte*>(&opaque_len), 4},
                core::segment_op::xdr_words);
        if (payload_bytes > 0) dst.add(dest);
        const std::size_t pad = n - rpc::reply_payload_offset - payload_bytes;
        if (pad > 0) dst.add_discard(pad);
        core::unmarshal_from_buffer(
            mem, wire.subspan(detail::reply_header_region), dst);
    }
    counters.marshal_pass_bytes += n - detail::reply_header_region;
    ++counters.messages;
    counters.payload_bytes += payload_bytes;

    if (out_header != nullptr) *out_header = header;
    return {acc.folded(), opaque_len == payload_bytes};
}

// ---------------------------------------------------------------------------
// Request receive paths (server side; requests are small but still flow
// through the full data-manipulation machinery)

// Decrypts a request into `staging` and checksums it; the caller parses the
// plaintext staging with rpc::unmarshal_request afterwards.  Returns the
// checksum result; `*plain_len` receives the wire size.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
tcp::rx_process_result receive_request(path_mode mode, const Mem& mem,
                                       const Cipher& cipher,
                                       std::span<std::byte> wire,
                                       std::span<std::byte> staging,
                                       path_counters& counters) {
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_request");
    checksum::inet_accumulator acc;
    if (n % core::encryption_unit_bytes != 0 || n > staging.size()) {
        return detail::fail_with_remainder(mem, acc, wire, 0, counters);
    }

    if (mode == path_mode::ilp) {
        core::checksum_tap8 tap(acc);
        core::decrypt_stage<Cipher> dec(cipher);
        auto loop = core::make_pipeline(tap, dec);
        loop.run(mem, core::span_source(wire),
                 core::span_dest(staging.first(n)));
        counters.fused_loop_bytes += n;
    } else {
        core::checksum_pass(mem, acc, wire, 8);
        counters.checksum_pass_bytes += n;
        core::decrypt_stage<Cipher> dec(cipher);
        core::apply_stage_in_place(mem, dec, wire);
        counters.cipher_pass_bytes += n;
        core::copy_pass(mem, wire, staging.first(n));
        counters.copy_pass_bytes += n;
    }
    counters.cipher_bytes += n;
    ++counters.messages;
    return {acc.folded(), true};
}

// Zero-copy (chain) form of the request receive.  ILP mode only: the
// layered path decrypts the wire in place, which a read-only loan cannot
// support, so the TCP layer stages a counted copy for it and calls the
// span overload instead.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
tcp::rx_process_result receive_request(path_mode mode, const Mem& mem,
                                       const Cipher& cipher,
                                       const const_ring_span& wire,
                                       std::span<std::byte> staging,
                                       path_counters& counters) {
    ILP_EXPECT(mode == path_mode::ilp);
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_request");
    checksum::inet_accumulator acc;
    const core::gather_source src = core::chain_source(wire);
    if (n % core::encryption_unit_bytes != 0 || n > staging.size()) {
        return detail::fail_with_remainder(mem, acc, src, 0, counters);
    }
    core::checksum_tap8 tap(acc);
    core::decrypt_stage<Cipher> dec(cipher);
    auto loop = core::make_pipeline(tap, dec);
    loop.run(mem, src, core::span_dest(staging.first(n)));
    counters.fused_loop_bytes += n;
    counters.cipher_bytes += n;
    ++counters.messages;
    return {acc.folded(), true};
}

}  // namespace ilp::app
