#include "app/path_models.h"

#include <array>

#include "analysis/compose.h"
#include "app/compose_models.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "core/word_filter.h"
#include "crypto/aead.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "memsim/mem_policy.h"
#include "rpc/messages.h"

namespace ilp::app {

namespace {

using enc = core::encrypt_stage<crypto::safer_k64>;
using dec = core::decrypt_stage<crypto::safer_k64>;
using aead_enc = core::aead_encrypt_stage<crypto::aead_cipher>;
using aead_dec = core::aead_decrypt_stage<crypto::aead_cipher>;

// Representative message geometry: a 1 KiB payload behind the RPC reply
// header.  The analyzer's geometry rules are invariant in the payload size
// as long as marshalling pads to the cipher unit, so one exemplar plan
// stands in for the whole family the harness sends.
constexpr std::size_t representative_payload = 1024;
constexpr std::size_t representative_marshalled =
    rpc::reply_payload_offset + representative_payload;

std::vector<analysis::part_info> ilp_parts() {
    const core::message_plan plan =
        core::plan_parts(representative_marshalled);
    std::vector<analysis::part_info> parts;
    for (const core::message_part& p : plan.ilp_order()) {
        if (!p.empty()) parts.push_back({p.offset, p.len});
    }
    return parts;
}

analysis::pipeline_model model(const char* name, const char* site,
                               analysis::pipeline_kind kind,
                               std::vector<analysis::footprint> stages,
                               std::size_t exchange_unit) {
    analysis::pipeline_model m;
    m.name = name;
    m.site = site;
    m.kind = kind;
    m.stages = std::move(stages);
    m.exchange_unit_bytes = exchange_unit;
    return m;
}

}  // namespace

std::vector<analysis::finding> register_app_pipelines(
    analysis::pipeline_registry& registry) {
    using namespace analysis;
    std::vector<finding> all;
    const auto take = [&all](std::vector<finding> f) {
        all.insert(all.end(), f.begin(), f.end());
    };

    // The ILP send path: marshal+encrypt+checksum in one loop, parts
    // processed B, C, A (send_path.h, §3.2.2).
    using send_loop = core::fused_pipeline<enc, core::checksum_tap8>;
    {
        pipeline_model m =
            model("app-send-ilp", "src/app/send_path.h:send_message_ilp",
                  pipeline_kind::fused, send_loop::footprints(),
                  send_loop::unit_bytes);
        m.out_of_order_parts = true;
        m.parts = ilp_parts();
        take(registry.add(std::move(m)));
    }

    // Early send: same composition, but part B streams into the ring while
    // the application is still producing; flush() finishes C then A.
    {
        pipeline_model m = model(
            "app-send-early", "src/app/early_send.h:early_send_state::prepare",
            pipeline_kind::fused, send_loop::footprints(),
            send_loop::unit_bytes);
        m.out_of_order_parts = true;
        m.parts = ilp_parts();
        take(registry.add(std::move(m)));
    }

    // The ILP reply receive path: checksum+decrypt+unmarshal fused, run in
    // two linear phases split at the 24-byte header region.  The split is a
    // part cut and must clear the same geometry rules as the send plan.
    using recv_loop = core::fused_pipeline<core::checksum_tap8, dec>;
    {
        const std::size_t total =
            core::plan_parts(representative_marshalled).total_bytes;
        pipeline_model m = model(
            "app-recv-reply-ilp", "src/app/receive_path.h:receive_reply_ilp",
            pipeline_kind::fused, recv_loop::footprints(),
            recv_loop::unit_bytes);
        m.parts = {{0, 24}, {24, total - 24}};
        take(registry.add(std::move(m)));
    }

    // Request receive: one linear fused pass over the whole wire image.
    {
        pipeline_model m = model(
            "app-recv-request-ilp", "src/app/receive_path.h:receive_request",
            pipeline_kind::fused, recv_loop::footprints(),
            recv_loop::unit_bytes);
        m.parts = {
            {0, core::plan_parts(representative_marshalled).total_bytes}};
        take(registry.add(std::move(m)));
    }

    // The word-filter baseline (bench_ablation_unit_size): an actual chain
    // is built and walked so the registered stages are exactly what the
    // bench runs, footprint virtuals included.  Expect the W1 word-handoff
    // warning on the 8-byte cipher filter — that warning *is* the paper's
    // §2.2 critique of the scheme.
    {
        const std::array<std::byte, crypto::safer_simplified::key_bytes>
            key{};
        const crypto::safer_simplified cipher(key);
        checksum::inet_accumulator acc;
        std::array<std::byte, 4> sink_buf{};
        core::cipher_word_filter<memsim::direct_memory,
                                 crypto::safer_simplified, true>
            enc_filter(cipher);
        core::checksum_word_filter<memsim::direct_memory> sum_filter(acc);
        core::sink_word_filter<memsim::direct_memory> sink(sink_buf);
        enc_filter.set_next(&sum_filter);
        sum_filter.set_next(&sink);
        pipeline_model m = model(
            "app-wordchain-baseline",
            "bench/bench_ablation_unit_size.cpp:run_word_filter_chain",
            pipeline_kind::word_chain, core::chain_footprints(enc_filter), 4);
        take(registry.add(std::move(m)));
    }

    // Secure (AEAD) paths: the keystream+tag cipher replaces the block
    // cipher inside the same fused compositions, so the B,C,A send order
    // and the two-phase receive split must clear the same geometry rules.
    // The 8-byte clear trailer is outside these loops (a separate mini-pass
    // in secure_path.h), so the body geometry is unchanged.
    using aead_send_loop = core::fused_pipeline<aead_enc, core::checksum_tap8>;
    {
        pipeline_model m = model(
            "app-send-secure-ilp",
            "src/app/secure_path.h:send_message_secure_ilp",
            pipeline_kind::fused, aead_send_loop::footprints(),
            aead_send_loop::unit_bytes);
        m.out_of_order_parts = true;
        m.parts = ilp_parts();
        take(registry.add(std::move(m)));
    }
    using aead_recv_loop = core::fused_pipeline<core::checksum_tap8, aead_dec>;
    {
        const std::size_t total =
            core::plan_parts(representative_marshalled).total_bytes;
        pipeline_model m = model(
            "app-recv-secure-ilp",
            "src/app/secure_path.h:receive_reply_secure_ilp",
            pipeline_kind::fused, aead_recv_loop::footprints(),
            aead_recv_loop::unit_bytes);
        m.parts = {{0, 24}, {24, total - 24}};
        take(registry.add(std::move(m)));
    }
    {
        pipeline_model m = model(
            "app-send-secure-layered",
            "src/app/secure_path.h:send_message_secure_layered",
            pipeline_kind::layered,
            {analysis::footprint_of<core::xdr_encode_stage>(),
             analysis::footprint_of<aead_enc>(),
             analysis::footprint_of<core::opaque_stage>(),
             analysis::footprint_of<core::checksum_tap8>()},
            8);
        take(registry.add(std::move(m)));
    }
    {
        pipeline_model m = model(
            "app-recv-secure-layered",
            "src/app/secure_path.h:receive_reply_secure_layered",
            pipeline_kind::layered,
            {analysis::footprint_of<core::checksum_tap8>(),
             analysis::footprint_of<aead_dec>(),
             analysis::footprint_of<core::xdr_decode_stage>()},
            8);
        take(registry.add(std::move(m)));
    }

    // Runtime-assembled flow graphs, folded through the composition engine
    // and registered under their graph names.  These are the exact graphs
    // the engine's legality gate admits at flow setup (compose_models.h
    // builds both), so the lint inventory covers the runtime composition
    // space's legal exemplars, not just the hand-audited static paths.
    {
        const secure_params classic{};
        secure_params secure;
        secure.enabled = true;
        secure.flow_secret = 1;
        const auto composed = [&take, &registry](analysis::stage_graph g) {
            take(registry.add(analysis::compose_and_check(g).composed));
        };
        composed(flow_send_graph<crypto::safer_k64>(classic,
                                                    compose_tap::none, 0));
        composed(flow_receive_graph<crypto::safer_k64>(classic,
                                                       compose_tap::none, 0));
        composed(flow_send_graph<crypto::aead_cipher>(secure,
                                                      compose_tap::none, 0));
        composed(flow_receive_graph<crypto::aead_cipher>(secure,
                                                         compose_tap::none,
                                                         0));
        composed(flow_send_graph<crypto::safer_k64>(classic,
                                                    compose_tap::inet2, 0));
    }

    // Layered baselines: each pass touches the full message once; the
    // analyzer records them for inventory and table-pressure accounting but
    // the fused-only rules (R1/R3 geometry, W3) do not apply.
    {
        pipeline_model m = model(
            "app-send-layered", "src/app/send_path.h:send_message_layered",
            pipeline_kind::layered,
            {analysis::footprint_of<core::xdr_encode_stage>(),
             analysis::footprint_of<enc>(),
             analysis::footprint_of<core::opaque_stage>(),
             analysis::footprint_of<core::checksum_tap8>()},
            8);
        take(registry.add(std::move(m)));
    }
    {
        pipeline_model m = model(
            "app-recv-reply-layered",
            "src/app/receive_path.h:receive_reply_layered",
            pipeline_kind::layered,
            {analysis::footprint_of<core::checksum_tap8>(),
             analysis::footprint_of<dec>(),
             analysis::footprint_of<core::xdr_decode_stage>()},
            8);
        take(registry.add(std::move(m)));
    }

    return all;
}

}  // namespace ilp::app
