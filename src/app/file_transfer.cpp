#include "app/file_transfer.h"

namespace ilp::app {

void file_store::add(std::string name, std::vector<std::byte> contents) {
    files_[std::move(name)] = std::move(contents);
}

void file_store::add_random(std::string name, std::size_t bytes,
                            std::uint64_t seed) {
    std::vector<std::byte> contents(bytes);
    rng r(seed);
    r.fill(contents);
    add(std::move(name), std::move(contents));
}

const std::vector<std::byte>* file_store::find(const std::string& name) const {
    const auto it = files_.find(name);
    return it == files_.end() ? nullptr : &it->second;
}

}  // namespace ilp::app
