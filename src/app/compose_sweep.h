// ilp-lint --compose: the composition-space sweep.
//
// Enumerates the cross-product of runtime-assemblable flow graphs — every
// cipher × wire framing (v2/v3) × optional tap (inet2/crc32) × schedule
// (send B,C,A / send linear / receive), plus the word-filter chains — and
// holds each composer verdict to the executable truth:
//
//   * every ACCEPTED graph is run both ways (fused out-of-order vs layered
//     linear passes) and must be bit-identical, tap values included;
//   * every REJECTED graph must name its rule, and R1 rejections are run
//     anyway to confirm the predicted divergence actually happens.
//
// A verdict the differential contradicts is a *miscomputation*; a rejection
// the model can't justify (or whose divergence fails to appear) is an
// *unexplained rejection*.  CI fails on either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ilp::app {

struct compose_case {
    std::string name;           // graph name (cipher/framing/tap/schedule)
    std::uint64_t hash = 0;     // graph_hash — the gate's cache key
    bool legal = false;         // composer verdict
    std::string rule;           // first violated rule ("" when legal)
    std::string offender;       // offending stage (pair)
    bool executed = false;      // differential run performed
    bool outputs_match = false; // fused buffer == layered buffer
    bool taps_match = false;    // checksums / CRC / AEAD tag agree
    bool mismatch_expected = false;  // R1 rejection: divergence is the proof
    bool ok = false;            // verdict consistent with the differential
    std::string status;         // human-readable outcome
};

struct compose_sweep_report {
    std::vector<compose_case> cases;
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t executed = 0;
    std::size_t miscomputations = 0;
    std::size_t unexplained_rejections = 0;

    bool ok() const noexcept {
        return cases.size() >= 100 && miscomputations == 0 &&
               unexplained_rejections == 0;
    }
};

compose_sweep_report run_compose_sweep();

}  // namespace ilp::app
