// Secure (wire v3) data paths: AEAD framing over the ILP and layered paths.
//
// A secure message is the v2 wire image encrypted under the flow's current
// epoch key, followed by an 8-byte clear trailer [epoch | tag]
// (rpc::secure_trailer).  The tag is accumulated *inside* the same fused
// loop that marshals, encrypts and checksums — authentication costs no
// extra pass and no extra memory traffic, which is the modern re-run of the
// paper's ILP claim.  The layered baselines pay the conventional
// pass-per-layer price, tag included in the cipher pass.
//
// Receive side owns the failure taxonomy the robustness contract demands:
//
//   epoch_skew    — trailer epoch is *behind* the two-epoch key window
//                   (stale beyond any legal retransmit); nothing decrypted.
//   tag_mismatch  — key window (or forward derivation) produced a key, but
//                   the accumulated tag disagrees with the trailer: wrong
//                   key or tampered ciphertext.  A malformed-looking header
//                   whose tag also disagrees is classified here, so a key
//                   mismatch is *always* explicit, never "malformed".
//   malformed     — tag verified but the plaintext is structurally invalid.
//   ok            — decrypted, parsed and tag-verified; the keychain has
//                   adopted the epoch if it was ahead of the window.
//
// All failure paths still fold the complete TCP checksum (including the
// clear trailer) so the transport can deliver its verdict, exactly like the
// plain receive paths.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "app/path_mode.h"
#include "app/receive_path.h"
#include "app/send_path.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/stage.h"
#include "crypto/aead.h"
#include "crypto/kdf.h"
#include "obs/tracer.h"
#include "rpc/messages.h"
#include "tcp/connection.h"

namespace ilp::app {

// Per-flow security configuration, set identically on both endpoints (the
// deterministic KDF plays the role of the key exchange).  wire_version 2
// negotiates the flow down to the classic format: no trailers, a pinned
// epoch-0 key, no rekeying — the compatibility mode for old peers.
struct secure_params {
    bool enabled = false;
    std::uint64_t flow_secret = 0;
    std::uint32_t wire_version = rpc::wire_version_secure;
    // Server-side policy: rekey after this many reply-stream bytes
    // (0 = never).  Only meaningful with wire v3 framing.
    std::uint64_t rekey_interval_bytes = 0;
};

// Trailer framing is active only for secure wire-v3 flows.
inline bool secure_framing(const secure_params& params) noexcept {
    return params.enabled && params.wire_version == rpc::wire_version_secure;
}

// Bytes the v3 framing reserves after the body for the clear [epoch | tag]
// trailer — the reservation the composition-legality engine matches against
// the trailer obligation the AEAD stages declare in their footprints.
inline constexpr std::size_t secure_trailer_reserved_bytes =
    rpc::secure_trailer_bytes;
static_assert(core::aead_encrypt_stage<crypto::aead_cipher>::footprint_decl
                      .trailer_bytes == rpc::secure_trailer_bytes,
              "AEAD footprint trailer obligation must match the wire-v3 "
              "trailer reservation");
static_assert(core::aead_decrypt_stage<crypto::aead_cipher>::footprint_decl
                      .trailer_bytes == rpc::secure_trailer_bytes,
              "AEAD footprint trailer obligation must match the wire-v3 "
              "trailer reservation");

enum class secure_rx_cause : std::uint8_t {
    ok,
    malformed,
    epoch_skew,
    tag_mismatch,
};

inline const char* to_string(secure_rx_cause cause) noexcept {
    switch (cause) {
        case secure_rx_cause::ok: return "ok";
        case secure_rx_cause::malformed: return "malformed";
        case secure_rx_cause::epoch_skew: return "epoch_skew";
        case secure_rx_cause::tag_mismatch: return "tag_mismatch";
    }
    return "?";
}

struct secure_rx_status {
    secure_rx_cause cause = secure_rx_cause::malformed;
    crypto::key_epoch epoch = 0;  // trailer epoch as received
    bool window_hit = false;      // accepted under the *previous* epoch
    bool adopted = false;         // keychain jumped forward to this epoch
};

// Per-endpoint security counters, merged into flow outcomes and metrics.
struct secure_flow_stats {
    std::uint64_t rekeys = 0;           // key-window advances initiated
    std::uint64_t tag_failures = 0;     // explicit tag_mismatch rejections
    std::uint64_t epoch_skews = 0;      // epochs behind the key window
    std::uint64_t window_hits = 0;      // previous-epoch acceptances
    std::uint64_t epoch_adoptions = 0;  // forward jumps committed
};

// ---------------------------------------------------------------------------
// Secure send paths

// The fused aead-encrypt+tag+checksum loop over one secure message plus its
// clear [epoch | tag] trailer, writing directly into a (reserved) TCP ring
// span; returns the folded checksum over body and trailer.  Shared verbatim
// by the serial secure send path below and the pipelined dataplane's fused
// stage, so both produce bit-identical ring contents.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher>
std::uint16_t fill_message_secure_ilp(const Mem& mem, const Cipher& cipher,
                                      crypto::key_epoch epoch,
                                      const core::gather_source& src,
                                      const core::message_plan& plan,
                                      const ring_span& dst) {
    const std::size_t body_bytes = plan.total_bytes;
    checksum::inet_accumulator acc;
    crypto::aead_tag_accumulator tag;
    core::aead_encrypt_stage<Cipher> encrypt(cipher, tag);
    core::checksum_tap8 tap(acc);
    auto loop = core::make_pipeline(encrypt, tap);
    static_assert(!decltype(loop)::ordering_constrained,
                  "out-of-order parts require unconstrained stages");
    ILP_EXPECT(plan.well_formed() &&
               plan.aligned_for(decltype(loop)::required_alignment));
    const core::scatter_dest ring = core::ring_dest(dst);
    for (const core::message_part& part : plan.ilp_order()) {
        if (part.empty()) continue;
        ILP_OBS_SPAN("core", "fused_part");
        loop.run(mem, src.slice(part.offset, part.len),
                 ring.slice(part.offset, part.len));
    }
    // Clear trailer: epoch + folded tag, still covered by the TCP
    // checksum via the copy mini-loop's tap.
    alignas(8) std::byte trailer[rpc::secure_trailer_bytes];
    rpc::encode_secure_trailer({.key_epoch = epoch, .tag = tag.fold()},
                               trailer);
    core::opaque_stage copy;
    core::checksum_tap8 trailer_tap(acc);
    auto trailer_loop = core::make_pipeline(copy, trailer_tap);
    trailer_loop.run(mem, core::span_source({trailer, sizeof trailer}),
                     ring.slice(body_bytes, rpc::secure_trailer_bytes));
    return acc.folded();
}

// ILP: one fused pass (aead encrypt+tag, checksum tap) over the message
// parts in B,C,A order, then the 8-byte trailer staged locally and pushed
// through a 2-stage mini-loop so the checksum tap covers it too.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher>
bool send_message_secure_ilp(tcp::tcp_sender<Mem>& sender, const Mem& mem,
                             const Cipher& cipher, crypto::key_epoch epoch,
                             const core::gather_source& src,
                             const core::message_plan& plan,
                             path_counters& counters) {
    const std::size_t body_bytes = plan.total_bytes;
    const std::size_t wire_bytes = body_bytes + rpc::secure_trailer_bytes;
    ILP_EXPECT(src.total_size() == body_bytes);
    ILP_OBS_SPAN("app", "send_secure_ilp");
    const bool sent = sender.send_message(
        wire_bytes, [&](const ring_span& dst) -> std::optional<std::uint16_t> {
            return fill_message_secure_ilp(mem, cipher, epoch, src, plan, dst);
        });
    if (!sent) return false;
    ++counters.messages;
    counters.wire_bytes += wire_bytes;
    counters.fused_loop_bytes += wire_bytes;
    counters.cipher_bytes += body_bytes;
    return true;
}

// Layered baseline: marshal pass, aead pass (in place, tag accumulated),
// trailer encode, then tcp_send's copy with the checksum left to tcp_output.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher>
bool send_message_secure_layered(tcp::tcp_sender<Mem>& sender, const Mem& mem,
                                 const Cipher& cipher, crypto::key_epoch epoch,
                                 const core::gather_source& src,
                                 const core::message_plan& plan,
                                 send_workspace& workspace,
                                 path_counters& counters) {
    const std::size_t body_bytes = plan.total_bytes;
    const std::size_t wire_bytes = body_bytes + rpc::secure_trailer_bytes;
    ILP_EXPECT(src.total_size() == body_bytes);
    if (wire_bytes > sender.sendable_bytes()) return false;
    const std::span<std::byte> staging = workspace.staging(wire_bytes);
    ILP_OBS_SPAN("app", "send_secure_layered");

    {
        ILP_OBS_SPAN("app", "marshal_pass");
        core::marshal_to_buffer(mem, src, staging.first(body_bytes));
    }
    counters.marshal_pass_bytes += body_bytes;

    crypto::aead_tag_accumulator tag;
    {
        ILP_OBS_SPAN("app", "cipher_pass");
        core::aead_encrypt_stage<Cipher> encrypt(cipher, tag);
        core::apply_stage_in_place(mem, encrypt, staging.first(body_bytes));
    }
    counters.cipher_pass_bytes += body_bytes;
    counters.cipher_bytes += body_bytes;
    rpc::encode_secure_trailer({.key_epoch = epoch, .tag = tag.fold()},
                               staging.subspan(body_bytes));

    const bool sent = sender.send_message(
        wire_bytes, [&](const ring_span& dst) -> std::optional<std::uint16_t> {
            ILP_OBS_SPAN("app", "tcp_send_copy");
            mem.copy(dst.first.data(), staging.data(), dst.first.size());
            if (!dst.second.empty()) {
                mem.copy(dst.second.data(), staging.data() + dst.first.size(),
                         dst.second.size());
            }
            return std::nullopt;
        });
    ILP_ENSURE(sent);  // sendable_bytes was checked above
    counters.copy_pass_bytes += wire_bytes;
    counters.checksum_pass_bytes += wire_bytes;
    ++counters.messages;
    counters.wire_bytes += wire_bytes;
    return true;
}

template <memsim::memory_policy Mem, crypto::aead_capable Cipher>
bool send_message_secure(path_mode mode, tcp::tcp_sender<Mem>& sender,
                         const Mem& mem, const Cipher& cipher,
                         crypto::key_epoch epoch,
                         const core::gather_source& src,
                         const core::message_plan& plan,
                         send_workspace& workspace, path_counters& counters) {
    if (mode == path_mode::ilp) {
        return send_message_secure_ilp(sender, mem, cipher, epoch, src, plan,
                                       counters);
    }
    return send_message_secure_layered(sender, mem, cipher, epoch, src, plan,
                                       workspace, counters);
}

// ---------------------------------------------------------------------------
// Secure receive paths

namespace detail {

// Decodes the clear trailer from a (possibly two-piece) chain.  The flatten
// is raw and uncounted, mirroring the contiguous path where
// decode_secure_trailer reads the wire without going through the memory
// policy; the *counted* trailer touches are the checksum ones below.
inline rpc::secure_trailer decode_trailer_chain(const const_ring_span& t) {
    alignas(8) std::byte tmp[rpc::secure_trailer_bytes];
    ILP_EXPECT(t.size() == rpc::secure_trailer_bytes);
    std::memcpy(tmp, t.first.data(), t.first.size());
    if (!t.second.empty()) {
        std::memcpy(tmp + t.first.size(), t.second.data(), t.second.size());
    }
    return rpc::decode_secure_trailer({tmp, rpc::secure_trailer_bytes});
}

// Counted checksum over a chain, segment by segment (parity-tracked, so any
// split offset folds to the same sum as the contiguous pass).
template <memsim::memory_policy Mem>
void checksum_chain(const Mem& mem, checksum::inet_accumulator& acc,
                    const const_ring_span& data) {
    acc.add_bytes(mem, data.first, 8);
    if (!data.second.empty()) acc.add_bytes(mem, data.second, 8);
}

// A failure discovered after decryption started: finish decrypting the rest
// of the body into a discard destination so the tag accumulator is complete,
// checksum the clear trailer, and classify — a disagreeing tag means wrong
// key / tampering (tag_mismatch) and outranks the structural complaint.
template <memsim::memory_policy Mem, typename Loop>
tcp::rx_process_result fail_secure_body(
    const Mem& mem, Loop& loop, checksum::inet_accumulator& acc,
    const crypto::aead_tag_accumulator& tag,
    const rpc::secure_trailer& trailer, std::span<std::byte> wire,
    std::size_t from, secure_rx_status* status, path_counters& counters) {
    const std::size_t body = wire.size() - rpc::secure_trailer_bytes;
    if (from < body) {
        core::scatter_dest discard;
        discard.add_discard(body - from);
        loop.run(mem, core::span_source(wire.subspan(from, body - from)),
                 discard);
        counters.fused_loop_bytes += body - from;
        counters.cipher_bytes += body - from;
    }
    core::checksum_pass(mem, acc, wire.subspan(body), 8);
    counters.checksum_pass_bytes += rpc::secure_trailer_bytes;
    if (status != nullptr) {
        status->cause = tag.fold() == trailer.tag
                            ? secure_rx_cause::malformed
                            : secure_rx_cause::tag_mismatch;
    }
    return {acc.folded(), false};
}

// Gather-source form for the zero-copy chain path; single-segment sources
// run the exact same accesses as the span form above.
template <memsim::memory_policy Mem, typename Loop>
tcp::rx_process_result fail_secure_body(
    const Mem& mem, Loop& loop, checksum::inet_accumulator& acc,
    const crypto::aead_tag_accumulator& tag,
    const rpc::secure_trailer& trailer, const core::gather_source& wire,
    std::size_t from, secure_rx_status* status, path_counters& counters) {
    const std::size_t body = wire.total_size() - rpc::secure_trailer_bytes;
    if (from < body) {
        core::scatter_dest discard;
        discard.add_discard(body - from);
        loop.run(mem, wire.slice(from, body - from), discard);
        counters.fused_loop_bytes += body - from;
        counters.cipher_bytes += body - from;
    }
    for (const core::gather_segment& s :
         wire.slice(body, rpc::secure_trailer_bytes).segments()) {
        acc.add_bytes(mem, std::span<const std::byte>{s.data, s.len}, 8);
    }
    counters.checksum_pass_bytes += rpc::secure_trailer_bytes;
    if (status != nullptr) {
        status->cause = tag.fold() == trailer.tag
                            ? secure_rx_cause::malformed
                            : secure_rx_cause::tag_mismatch;
    }
    return {acc.folded(), false};
}

}  // namespace detail

// Selects the decryption key for `epoch` from the keychain: a window hit
// uses the held cipher; an epoch *ahead* of the window is trial-derived into
// `derived` (committed to the chain only after the tag verifies); an epoch
// behind the window is an explicit epoch_skew.  Returns nullptr on skew.
template <crypto::aead_capable Cipher>
const Cipher* select_rx_cipher(crypto::keychain<Cipher>& chain,
                               crypto::key_epoch epoch,
                               std::optional<Cipher>& derived,
                               secure_rx_status* status) {
    if (status != nullptr) status->epoch = epoch;
    if (const Cipher* held = chain.cipher_for(epoch)) {
        if (status != nullptr && epoch != chain.current_epoch()) {
            status->window_hit = true;
        }
        return held;
    }
    if (epoch > chain.current_epoch()) {
        derived.emplace(
            crypto::derive_epoch_cipher<Cipher>(chain.secret(), epoch));
        return &*derived;
    }
    if (status != nullptr) status->cause = secure_rx_cause::epoch_skew;
    return nullptr;
}

// ILP secure reply receive: trailer decoded first (clear), body streamed
// through the fused tap+aead-decrypt loop in the same two-phase shape as
// receive_reply_ilp, tag compared at the end.  Adopts forward epochs into
// the keychain only after the tag verifies.
//
// Primary (zero-copy) form over a loaned kernel-segment chain.  The clear
// trailer is what makes this possible under rule R2: every header and
// trailer size is known *before* the fused loop starts, straight off the
// loan, so the loop can stream the ciphertext in place with no reassembly.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_secure_ilp(
    const Mem& mem, crypto::keychain<Cipher>& chain,
    const const_ring_span& wire, Resolver&& resolve,
    rpc::reply_header* out_header, secure_rx_status* status,
    path_counters& counters) {
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_secure_ilp");
    checksum::inet_accumulator acc;
    if (status != nullptr) *status = {};
    const core::gather_source src = core::chain_source(wire);
    if (n < rpc::reply_payload_offset + 4 + rpc::secure_trailer_bytes ||
        n % core::encryption_unit_bytes != 0) {
        return detail::fail_with_remainder(mem, acc, src, 0, counters);
    }
    const std::size_t body = n - rpc::secure_trailer_bytes;
    const rpc::secure_trailer trailer = detail::decode_trailer_chain(
        wire.subspan(body, rpc::secure_trailer_bytes));

    std::optional<Cipher> derived;
    const Cipher* cipher =
        select_rx_cipher(chain, trailer.key_epoch, derived, status);
    if (cipher == nullptr) {
        // Stale epoch: nothing we can decrypt; checksum everything so TCP
        // can verdict, and report the skew explicitly.
        return detail::fail_with_remainder(mem, acc, src, 0, counters);
    }

    crypto::aead_tag_accumulator tag;
    core::checksum_tap8 tap(acc);
    core::aead_decrypt_stage<Cipher> dec(*cipher, tag);
    auto loop = core::make_pipeline(tap, dec);
    static_assert(detail::reply_header_region %
                          decltype(loop)::required_alignment ==
                      0,
                  "header phase must end on a fused-unit boundary");

    detail::reply_header_staging staging;
    {
        ILP_OBS_SPAN("app", "receive_header_phase");
        core::scatter_dest dst;
        dst.add(staging.bytes(), core::segment_op::xdr_words);
        loop.run(mem, src.slice(0, detail::reply_header_region), dst);
    }
    counters.fused_loop_bytes += detail::reply_header_region;
    counters.cipher_bytes += detail::reply_header_region;

    const auto marshalled = rpc::validate_enc_header(staging.words[0], body);
    const rpc::reply_header header = staging.to_header();
    if (!marshalled.has_value() || *marshalled < rpc::reply_payload_offset ||
        header.msg_type != rpc::msg_type_reply) {
        return detail::fail_secure_body(mem, loop, acc, tag, trailer, src,
                                        detail::reply_header_region, status,
                                        counters);
    }
    const std::size_t payload_bytes = *marshalled - rpc::reply_payload_offset;
    const std::span<std::byte> dest = resolve(header, payload_bytes);
    if (dest.size() != payload_bytes) {
        return detail::fail_secure_body(mem, loop, acc, tag, trailer, src,
                                        detail::reply_header_region, status,
                                        counters);
    }

    std::uint32_t opaque_len = 0;
    {
        ILP_OBS_SPAN("app", "receive_body_phase");
        core::scatter_dest dst;
        dst.add({reinterpret_cast<std::byte*>(&opaque_len), 4},
                core::segment_op::xdr_words);
        if (payload_bytes > 0) dst.add(dest);
        const std::size_t pad =
            body - rpc::reply_payload_offset - payload_bytes;
        if (pad > 0) dst.add_discard(pad);
        loop.run(mem,
                 src.slice(detail::reply_header_region,
                           body - detail::reply_header_region),
                 dst);
    }
    counters.fused_loop_bytes += body - detail::reply_header_region;
    counters.cipher_bytes += body - detail::reply_header_region;
    detail::checksum_chain(mem, acc,
                           wire.subspan(body, rpc::secure_trailer_bytes));
    counters.checksum_pass_bytes += rpc::secure_trailer_bytes;

    if (tag.fold() != trailer.tag) {
        if (status != nullptr) status->cause = secure_rx_cause::tag_mismatch;
        return {acc.folded(), false};
    }
    if (opaque_len != payload_bytes) {
        return {acc.folded(), false};  // malformed (tag ok, structure bad)
    }
    if (status != nullptr) {
        status->cause = secure_rx_cause::ok;
        status->adopted = chain.adopt(trailer.key_epoch);
    } else {
        chain.adopt(trailer.key_epoch);
    }
    ++counters.messages;
    counters.payload_bytes += payload_bytes;
    if (out_header != nullptr) *out_header = header;
    return {acc.folded(), true};
}

// Contiguous overload (the staged-copy mode and all unit fixtures):
// delegates with a single-piece chain, so it runs the identical access
// sequence it always has.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_secure_ilp(
    const Mem& mem, crypto::keychain<Cipher>& chain,
    std::span<std::byte> wire, Resolver&& resolve,
    rpc::reply_header* out_header, secure_rx_status* status,
    path_counters& counters) {
    return receive_reply_secure_ilp(mem, chain, const_ring_span{wire, {}},
                                    std::forward<Resolver>(resolve),
                                    out_header, status, counters);
}

// Layered secure reply receive: checksum pass (body + trailer), aead pass in
// place, unmarshal passes — the conventional stack with authentication
// folded into the cipher pass.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_secure_layered(
    const Mem& mem, crypto::keychain<Cipher>& chain,
    std::span<std::byte> wire, Resolver&& resolve,
    rpc::reply_header* out_header, secure_rx_status* status,
    path_counters& counters) {
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_secure_layered");
    checksum::inet_accumulator acc;
    if (status != nullptr) *status = {};

    {
        ILP_OBS_SPAN("app", "checksum_pass");
        core::checksum_pass(mem, acc, wire, 8);
    }
    counters.checksum_pass_bytes += n;
    if (n < rpc::reply_payload_offset + 4 + rpc::secure_trailer_bytes ||
        n % core::encryption_unit_bytes != 0) {
        return {acc.folded(), false};
    }
    const std::size_t body = n - rpc::secure_trailer_bytes;
    const rpc::secure_trailer trailer =
        rpc::decode_secure_trailer(wire.subspan(body));

    std::optional<Cipher> derived;
    const Cipher* cipher =
        select_rx_cipher(chain, trailer.key_epoch, derived, status);
    if (cipher == nullptr) return {acc.folded(), false};

    crypto::aead_tag_accumulator tag;
    {
        ILP_OBS_SPAN("app", "cipher_pass");
        core::aead_decrypt_stage<Cipher> dec(*cipher, tag);
        core::apply_stage_in_place(mem, dec, wire.first(body));
    }
    counters.cipher_pass_bytes += body;
    counters.cipher_bytes += body;

    if (tag.fold() != trailer.tag) {
        if (status != nullptr) status->cause = secure_rx_cause::tag_mismatch;
        return {acc.folded(), false};
    }

    detail::reply_header_staging staging;
    {
        ILP_OBS_SPAN("app", "unmarshal_pass");
        core::scatter_dest dst;
        dst.add(staging.bytes(), core::segment_op::xdr_words);
        core::unmarshal_from_buffer(
            mem, wire.first(detail::reply_header_region), dst);
    }
    counters.marshal_pass_bytes += detail::reply_header_region;

    const auto marshalled = rpc::validate_enc_header(staging.words[0], body);
    const rpc::reply_header header = staging.to_header();
    if (!marshalled.has_value() || *marshalled < rpc::reply_payload_offset ||
        header.msg_type != rpc::msg_type_reply) {
        return {acc.folded(), false};
    }
    const std::size_t payload_bytes = *marshalled - rpc::reply_payload_offset;
    const std::span<std::byte> dest = resolve(header, payload_bytes);
    if (dest.size() != payload_bytes) return {acc.folded(), false};

    std::uint32_t opaque_len = 0;
    {
        ILP_OBS_SPAN("app", "unmarshal_pass");
        core::scatter_dest dst;
        dst.add({reinterpret_cast<std::byte*>(&opaque_len), 4},
                core::segment_op::xdr_words);
        if (payload_bytes > 0) dst.add(dest);
        const std::size_t pad =
            body - rpc::reply_payload_offset - payload_bytes;
        if (pad > 0) dst.add_discard(pad);
        core::unmarshal_from_buffer(
            mem,
            wire.subspan(detail::reply_header_region,
                         body - detail::reply_header_region),
            dst);
    }
    counters.marshal_pass_bytes += body - detail::reply_header_region;
    if (opaque_len != payload_bytes) return {acc.folded(), false};

    if (status != nullptr) {
        status->cause = secure_rx_cause::ok;
        status->adopted = chain.adopt(trailer.key_epoch);
    } else {
        chain.adopt(trailer.key_epoch);
    }
    ++counters.messages;
    counters.payload_bytes += payload_bytes;
    if (out_header != nullptr) *out_header = header;
    return {acc.folded(), true};
}

template <memsim::memory_policy Mem, crypto::aead_capable Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_secure(
    path_mode mode, const Mem& mem, crypto::keychain<Cipher>& chain,
    std::span<std::byte> wire, Resolver&& resolve,
    rpc::reply_header* out_header, secure_rx_status* status,
    path_counters& counters) {
    if (mode == path_mode::ilp) {
        return receive_reply_secure_ilp(mem, chain, wire,
                                        std::forward<Resolver>(resolve),
                                        out_header, status, counters);
    }
    return receive_reply_secure_layered(mem, chain, wire,
                                        std::forward<Resolver>(resolve),
                                        out_header, status, counters);
}

// Chain dispatcher: only the ILP path can consume a read-only loan (the
// layered path decrypts in place), so the TCP layer routes chains here only
// when a chain processor is installed — i.e. in ILP mode.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher,
          reply_dest_resolver Resolver>
tcp::rx_process_result receive_reply_secure(
    path_mode mode, const Mem& mem, crypto::keychain<Cipher>& chain,
    const const_ring_span& wire, Resolver&& resolve,
    rpc::reply_header* out_header, secure_rx_status* status,
    path_counters& counters) {
    ILP_EXPECT(mode == path_mode::ilp);
    return receive_reply_secure_ilp(mem, chain, wire,
                                    std::forward<Resolver>(resolve),
                                    out_header, status, counters);
}

// Secure request receive (server side): requests travel under the flow's
// epoch-free *control* key, so the trailer epoch is informational only.
// Decrypts the body into `staging` (the caller parses it with
// rpc::unmarshal_request), verifies the tag, reports the cause.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher>
tcp::rx_process_result receive_request_secure(
    path_mode mode, const Mem& mem, const Cipher& control_cipher,
    std::span<std::byte> wire, std::span<std::byte> staging,
    secure_rx_status* status, path_counters& counters) {
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_request_secure");
    checksum::inet_accumulator acc;
    if (status != nullptr) *status = {};
    if (n <= rpc::secure_trailer_bytes ||
        n % core::encryption_unit_bytes != 0 ||
        n - rpc::secure_trailer_bytes > staging.size()) {
        return detail::fail_with_remainder(mem, acc, wire, 0, counters);
    }
    const std::size_t body = n - rpc::secure_trailer_bytes;
    const rpc::secure_trailer trailer =
        rpc::decode_secure_trailer(wire.subspan(body));
    if (status != nullptr) status->epoch = trailer.key_epoch;

    crypto::aead_tag_accumulator tag;
    if (mode == path_mode::ilp) {
        core::checksum_tap8 tap(acc);
        core::aead_decrypt_stage<Cipher> dec(control_cipher, tag);
        auto loop = core::make_pipeline(tap, dec);
        loop.run(mem, core::span_source(wire.first(body)),
                 core::span_dest(staging.first(body)));
        counters.fused_loop_bytes += body;
    } else {
        core::checksum_pass(mem, acc, wire.first(body), 8);
        counters.checksum_pass_bytes += body;
        core::aead_decrypt_stage<Cipher> dec(control_cipher, tag);
        core::apply_stage_in_place(mem, dec, wire.first(body));
        counters.cipher_pass_bytes += body;
        core::copy_pass(mem, wire.first(body), staging.first(body));
        counters.copy_pass_bytes += body;
    }
    counters.cipher_bytes += body;
    core::checksum_pass(mem, acc, wire.subspan(body), 8);
    counters.checksum_pass_bytes += rpc::secure_trailer_bytes;

    if (tag.fold() != trailer.tag) {
        if (status != nullptr) status->cause = secure_rx_cause::tag_mismatch;
        return {acc.folded(), false};
    }
    if (status != nullptr) status->cause = secure_rx_cause::ok;
    ++counters.messages;
    return {acc.folded(), true};
}

// Zero-copy (chain) form of the secure request receive, ILP mode only (see
// the plain-path chain overload for the rationale): trailer decoded off the
// loan first (R2), body fused-decrypted straight out of the chain into the
// parse staging, trailer checksummed in place.
template <memsim::memory_policy Mem, crypto::aead_capable Cipher>
tcp::rx_process_result receive_request_secure(
    path_mode mode, const Mem& mem, const Cipher& control_cipher,
    const const_ring_span& wire, std::span<std::byte> staging,
    secure_rx_status* status, path_counters& counters) {
    ILP_EXPECT(mode == path_mode::ilp);
    const std::size_t n = wire.size();
    counters.wire_bytes += n;
    ILP_OBS_SPAN("app", "receive_request_secure");
    checksum::inet_accumulator acc;
    if (status != nullptr) *status = {};
    const core::gather_source src = core::chain_source(wire);
    if (n <= rpc::secure_trailer_bytes ||
        n % core::encryption_unit_bytes != 0 ||
        n - rpc::secure_trailer_bytes > staging.size()) {
        return detail::fail_with_remainder(mem, acc, src, 0, counters);
    }
    const std::size_t body = n - rpc::secure_trailer_bytes;
    const rpc::secure_trailer trailer = detail::decode_trailer_chain(
        wire.subspan(body, rpc::secure_trailer_bytes));
    if (status != nullptr) status->epoch = trailer.key_epoch;

    crypto::aead_tag_accumulator tag;
    core::checksum_tap8 tap(acc);
    core::aead_decrypt_stage<Cipher> dec(control_cipher, tag);
    auto loop = core::make_pipeline(tap, dec);
    loop.run(mem, src.slice(0, body), core::span_dest(staging.first(body)));
    counters.fused_loop_bytes += body;
    counters.cipher_bytes += body;
    detail::checksum_chain(mem, acc,
                           wire.subspan(body, rpc::secure_trailer_bytes));
    counters.checksum_pass_bytes += rpc::secure_trailer_bytes;

    if (tag.fold() != trailer.tag) {
        if (status != nullptr) status->cause = secure_rx_cause::tag_mismatch;
        return {acc.folded(), false};
    }
    if (status != nullptr) status->cause = secure_rx_cause::ok;
    ++counters.messages;
    return {acc.folded(), true};
}

}  // namespace ilp::app
