// Word-touch audit drivers for the application data paths.
//
// Each driver runs a real fused path under `sim_memory` with a
// `memsim::touch_map` shadowing the payload-carrying buffers, then asks the
// analyzer (analysis/touch_audit.h) to verify the Figure 13 property: every
// source byte read exactly once, every destination byte written exactly
// once, nothing else.  The send driver replicates `send_message_ilp`'s
// composition and part schedule over a plain destination span (no TCP ring
// needed — the loop is identical); the receive driver calls the genuine
// `receive_reply_ilp`.  Both round-trip the payload so a cipher or plan bug
// fails loudly rather than producing a clean-but-wrong audit.
//
// `ilp-lint --audit` runs these as the dynamic half of the lint pass;
// tests/analysis_test.cpp runs them plus a seeded double-reading stage that
// the auditor must catch.
#pragma once

#include <cstring>
#include <vector>

#include "analysis/touch_audit.h"
#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/block_cipher.h"
#include "memsim/configs.h"
#include "memsim/mem_policy.h"
#include "memsim/touch_map.h"
#include "rpc/messages.h"
#include "util/rng.h"

// The receive driver needs the real path; include it last to keep the
// dependency direction obvious (this header sits above the paths).
#include "app/receive_path.h"

namespace ilp::app {

struct audit_outcome {
    std::vector<analysis::finding> findings;
    bool round_trip_ok = false;  // data survived the path; guards the audit
};

namespace detail {

inline rpc::reply_header audit_header(std::size_t payload_bytes) {
    rpc::reply_header h;
    h.request_id = 1;
    h.copy_index = 0;
    h.offset = 0;
    h.total_bytes = static_cast<std::uint32_t>(payload_bytes);
    return h;
}

// Builds the encrypted wire image of an audit reply with a plain
// direct-memory send pass (unaudited — this is the fixture, not the subject).
template <crypto::block_cipher Cipher>
void build_wire(const Cipher& cipher, const rpc::reply_layout& layout,
                std::span<const std::byte> payload,
                std::span<std::byte> wire) {
    rpc::reply_staging staging;
    const core::gather_source src =
        rpc::make_reply_source(detail::audit_header(payload.size()), payload,
                               staging);
    const memsim::direct_memory mem;
    checksum::inet_accumulator acc;
    core::encrypt_stage<Cipher> enc(cipher);
    core::checksum_tap8 tap(acc);
    auto loop = core::make_pipeline(enc, tap);
    const core::scatter_dest dst = core::span_dest(wire);
    for (const core::message_part& part : layout.plan.ilp_order()) {
        if (part.empty()) continue;
        loop.run(mem, src.slice(part.offset, part.len),
                 dst.slice(part.offset, part.len));
    }
}

}  // namespace detail

// Audits the fused send composition: encrypt+checksum over the B,C,A part
// schedule, application memory -> wire image.
template <crypto::block_cipher Cipher>
audit_outcome audit_fused_send(const Cipher& cipher,
                               std::size_t payload_bytes = 1024) {
    const rpc::reply_layout layout = rpc::layout_reply(payload_bytes);
    byte_buffer payload(payload_bytes);
    rng(11).fill(payload.span());
    rpc::reply_staging staging;
    const core::gather_source src = rpc::make_reply_source(
        detail::audit_header(payload_bytes), payload.span(), staging);
    byte_buffer wire(layout.wire_bytes);

    memsim::memory_system sys(memsim::test_tiny());
    memsim::touch_map map;
    map.watch("msg-staging", staging.bytes, sizeof staging.bytes);
    map.watch("msg-payload", payload.data(), payload.size());
    map.watch("wire", wire.data(), wire.size());
    sys.set_touch_map(&map);
    const memsim::sim_memory mem(sys);

    checksum::inet_accumulator acc;
    core::encrypt_stage<Cipher> enc(cipher);
    core::checksum_tap8 tap(acc);
    auto loop = core::make_pipeline(enc, tap);
    ILP_EXPECT(layout.plan.well_formed() &&
               layout.plan.aligned_for(decltype(loop)::required_alignment));
    const core::scatter_dest dst = core::span_dest(wire.span());
    for (const core::message_part& part : layout.plan.ilp_order()) {
        if (part.empty()) continue;
        loop.run(mem, src.slice(part.offset, part.len),
                 dst.slice(part.offset, part.len));
    }
    sys.set_touch_map(nullptr);

    audit_outcome out;
    out.findings = analysis::audit_touches(
        map,
        {{"msg-staging", 1, 0}, {"msg-payload", 1, 0}, {"wire", 0, 1}},
        "src/app/send_path.h:send_message_ilp", "app-send-ilp");

    // Round trip: decrypt the wire with a plain pass and compare payloads.
    byte_buffer plain(layout.wire_bytes);
    {
        const memsim::direct_memory raw;
        core::decrypt_stage<Cipher> dec(cipher);
        auto undo = core::make_pipeline(dec);
        undo.run(raw, core::span_source(wire.span()),
                 core::span_dest(plain.span()));
    }
    out.round_trip_ok =
        std::memcmp(plain.data() + rpc::reply_payload_offset, payload.data(),
                    payload_bytes) == 0;
    return out;
}

// Audits the fused receive path: the genuine receive_reply_ilp, wire image
// -> application destination buffer.
template <crypto::block_cipher Cipher>
audit_outcome audit_fused_receive(const Cipher& cipher,
                                  std::size_t payload_bytes = 1024) {
    const rpc::reply_layout layout = rpc::layout_reply(payload_bytes);
    byte_buffer payload(payload_bytes);
    rng(13).fill(payload.span());
    byte_buffer wire(layout.wire_bytes);
    detail::build_wire(cipher, layout, payload.span(), wire.span());

    byte_buffer dest(payload_bytes);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::touch_map map;
    map.watch("wire", wire.data(), wire.size());
    map.watch("reply-dest", dest.data(), dest.size());
    sys.set_touch_map(&map);
    const memsim::sim_memory mem(sys);

    path_counters counters;
    rpc::reply_header header;
    const tcp::rx_process_result result = receive_reply_ilp(
        mem, cipher, wire.span(),
        [&](const rpc::reply_header&, std::size_t n) -> std::span<std::byte> {
            return n == dest.size() ? dest.span() : std::span<std::byte>{};
        },
        &header, counters);
    sys.set_touch_map(nullptr);

    audit_outcome out;
    out.findings = analysis::audit_touches(
        map, {{"wire", 1, 0}, {"reply-dest", 0, 1}},
        "src/app/receive_path.h:receive_reply_ilp", "app-recv-reply-ilp");
    out.round_trip_ok =
        result.ok &&
        std::memcmp(dest.data(), payload.data(), payload_bytes) == 0;
    return out;
}

// Audits the zero-copy fused receive: the genuine chain-taking
// receive_reply_ilp over a wire image deliberately staged as a two-piece
// ring loan (the arena's tail holds the first piece, its head the second —
// exactly the shape datagram_pipe hands out across the ring wrap).  On top
// of the exactly-once expectations, the copy-count audit (A3) proves no
// staging pass survives: the only writes on the whole watched path are the
// payload bytes landing in their destination.
template <crypto::block_cipher Cipher>
audit_outcome audit_zero_copy_receive(const Cipher& cipher,
                                      std::size_t payload_bytes = 1024) {
    const rpc::reply_layout layout = rpc::layout_reply(payload_bytes);
    byte_buffer payload(payload_bytes);
    rng(17).fill(payload.span());
    byte_buffer wire(layout.wire_bytes);
    detail::build_wire(cipher, layout, payload.span(), wire.span());

    // Stage the wire as a wrap-straddling loan, split at an odd offset so
    // the chain cut lands mid-word inside the payload region.
    const std::size_t split = layout.wire_bytes / 2 + 3;
    byte_buffer arena(layout.wire_bytes + 64);
    std::byte* piece_a = arena.data() + arena.size() - split;
    std::byte* piece_b = arena.data();
    std::memcpy(piece_a, wire.data(), split);
    std::memcpy(piece_b, wire.data() + split, layout.wire_bytes - split);
    const_ring_span chain;
    chain.first = {piece_a, split};
    chain.second = {piece_b, layout.wire_bytes - split};

    byte_buffer dest(payload_bytes);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::touch_map map;
    map.watch("kernel-a", piece_a, split);
    map.watch("kernel-b", piece_b, layout.wire_bytes - split);
    map.watch("reply-dest", dest.data(), dest.size());
    sys.set_touch_map(&map);
    const memsim::sim_memory mem(sys);

    path_counters counters;
    rpc::reply_header header;
    const tcp::rx_process_result result = receive_reply_ilp(
        mem, cipher, chain,
        [&](const rpc::reply_header&, std::size_t n) -> std::span<std::byte> {
            return n == dest.size() ? dest.span() : std::span<std::byte>{};
        },
        &header, counters);
    sys.set_touch_map(nullptr);

    audit_outcome out;
    out.findings = analysis::audit_touches(
        map, {{"kernel-a", 1, 0}, {"kernel-b", 1, 0}, {"reply-dest", 0, 1}},
        "src/app/receive_path.h:receive_reply_ilp", "app-recv-zero-copy");
    const auto copies = analysis::audit_copy_count(
        map, payload_bytes, "src/app/receive_path.h:receive_reply_ilp",
        "app-recv-zero-copy");
    out.findings.insert(out.findings.end(), copies.begin(), copies.end());
    out.round_trip_ok =
        result.ok &&
        std::memcmp(dest.data(), payload.data(), payload_bytes) == 0;
    return out;
}

}  // namespace ilp::app
