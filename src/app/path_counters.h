// Per-side accounting of what the data paths did.
//
// The platform timing models (src/platform) convert these counters plus the
// simulated memory-system cycles into per-packet processing times, and the
// figure benches report them directly (e.g. Fig. 13's access counts come
// from the memory simulator, while the pass structure recorded here explains
// them).
#pragma once

#include <cstdint>

namespace ilp::app {

enum class path_mode {
    ilp,      // fused loop (marshal+encrypt+checksum in the copy)
    layered,  // one pass per protocol function (conventional implementation)
};

struct path_counters {
    std::uint64_t messages = 0;
    std::uint64_t payload_bytes = 0;  // application payload carried
    std::uint64_t wire_bytes = 0;     // encrypted wire bytes produced/consumed

    // Pass accounting (bytes that flowed through each kind of pass).
    std::uint64_t fused_loop_bytes = 0;     // ILP loop traffic
    std::uint64_t marshal_pass_bytes = 0;   // standalone (un)marshal pass
    std::uint64_t cipher_pass_bytes = 0;    // standalone en/decrypt pass
    std::uint64_t checksum_pass_bytes = 0;  // standalone checksum pass
    std::uint64_t copy_pass_bytes = 0;      // tcp_send / delivery copies

    // Bytes that went through the cipher at all (fused or not) — drives the
    // per-byte cipher ALU cost in the timing model.
    std::uint64_t cipher_bytes = 0;

    path_counters& operator+=(const path_counters& other) noexcept {
        messages += other.messages;
        payload_bytes += other.payload_bytes;
        wire_bytes += other.wire_bytes;
        fused_loop_bytes += other.fused_loop_bytes;
        marshal_pass_bytes += other.marshal_pass_bytes;
        cipher_pass_bytes += other.cipher_pass_bytes;
        checksum_pass_bytes += other.checksum_pass_bytes;
        copy_pass_bytes += other.copy_pass_bytes;
        cipher_bytes += other.cipher_bytes;
        return *this;
    }
};

}  // namespace ilp::app
