// Runtime-assembled flow graphs — the app's input to the legality engine.
//
// The engine no longer trusts a fixed registry of hand-audited pipelines:
// a flow's stage composition is assembled at run time from its config
// (cipher, wire framing, optional observation tap, side), described as an
// analysis::stage_graph, and handed to analysis::legality_gate before any
// fused loop runs.  This header builds those graphs.  The same builders
// drive the `ilp-lint --compose` sweep, so the graph the engine gates is
// byte-for-byte the graph CI verified differentially.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "analysis/graph.h"
#include "app/secure_path.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/des.h"
#include "crypto/rc4.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "rpc/messages.h"

namespace ilp::app {

// Optional observe-only tap a flow can splice into its data path.  inet2
// forces the loop down to the checksum's natural 2-byte unit (legal
// anywhere); crc32 is ordering-constrained, so it is legal only on
// linearly-scheduled sides — splicing it into a B,C,A send path is the
// canonical verified-illegal composition the gate demotes to layered.
enum class compose_tap : std::uint8_t { none, inet2, crc32 };

inline const char* to_string(compose_tap t) noexcept {
    switch (t) {
        case compose_tap::none: return "none";
        case compose_tap::inet2: return "inet2";
        case compose_tap::crc32: return "crc32";
    }
    return "?";
}

// How the composition traverses the message parts.
enum class compose_schedule : std::uint8_t {
    send_bca,     // send side, paper's out-of-order B,C,A part plan
    send_linear,  // send side pinned to stream order (A,B,C)
    receive,      // receive side: header region then body, in order
};

inline const char* to_string(compose_schedule s) noexcept {
    switch (s) {
        case compose_schedule::send_bca: return "send-bca";
        case compose_schedule::send_linear: return "send-linear";
        case compose_schedule::receive: return "receive";
    }
    return "?";
}

// Representative marshalled size the composed graphs (and the sweep's
// differential runs) use: header + a 1 KB payload, same as path_models.cpp.
inline constexpr std::size_t compose_marshalled_bytes =
    rpc::reply_payload_offset + 1024;

inline analysis::block_node tap_node(compose_tap t) {
    if (t == compose_tap::crc32) {
        return {core::crc32_tap::footprint_decl, 0};
    }
    return {core::checksum_tap2::footprint_decl, 0};
}

template <typename Cipher>
constexpr const char* cipher_label() {
    if constexpr (std::is_same_v<Cipher, crypto::null_cipher>) {
        return "null";
    } else if constexpr (std::is_same_v<Cipher, crypto::simple_cipher>) {
        return "simple";
    } else if constexpr (std::is_same_v<Cipher, crypto::safer_simplified>) {
        return "safer-simplified";
    } else if constexpr (std::is_same_v<Cipher, crypto::safer_k64>) {
        return "safer-k64";
    } else if constexpr (std::is_same_v<Cipher, crypto::des>) {
        return "des";
    } else if constexpr (std::is_same_v<Cipher, crypto::aead_cipher>) {
        return "aead";
    } else if constexpr (std::is_same_v<Cipher, crypto::rc4>) {
        return "rc4";
    } else {
        return "cipher";
    }
}

// Builds the stage graph for one flow data path.  `epoch` is the
// epoch-relevant parameter folded into the graph hash: a rekey produces a
// new hash, so the gate's verdict cache cannot serve a stale verdict across
// a key change.
template <typename Cipher>
analysis::stage_graph flow_graph(const secure_params& params, compose_tap tap,
                                 compose_schedule sched, std::uint64_t epoch) {
    const bool secure = secure_framing(params);
    analysis::stage_graph g;
    g.name = std::string("flow/") + cipher_label<Cipher>() + "/" +
             (secure ? "v3" : "v2") + "/tap-" + to_string(tap) + "/" +
             to_string(sched);
    g.site = "app/compose_models.h:flow_graph";
    g.side = sched == compose_schedule::receive ? analysis::graph_side::receive
                                                : analysis::graph_side::send;
    g.kind = analysis::pipeline_kind::fused;
    g.out_of_order_parts = sched == compose_schedule::send_bca;
    g.trailer_reserved_bytes = secure ? secure_trailer_reserved_bytes : 0;

    const core::message_plan plan = core::plan_parts(compose_marshalled_bytes);
    const auto parts = g.out_of_order_parts ? plan.ilp_order()
                                            : plan.linear_order();
    for (const core::message_part& p : parts) {
        if (!p.empty()) g.parts.push_back({p.offset, p.len});
    }

    const bool decrypting = sched == compose_schedule::receive;
    analysis::block_node cipher_node;
    if constexpr (std::is_same_v<Cipher, crypto::rc4>) {
        cipher_node = {crypto::rc4_stage::footprint_decl, epoch};
    } else if constexpr (crypto::aead_capable<Cipher>) {
        if (secure) {
            cipher_node = {
                decrypting
                    ? core::aead_decrypt_stage<Cipher>::footprint_decl
                    : core::aead_encrypt_stage<Cipher>::footprint_decl,
                epoch};
        } else {
            cipher_node = {decrypting
                               ? core::decrypt_stage<Cipher>::footprint_decl
                               : core::encrypt_stage<Cipher>::footprint_decl,
                           epoch};
        }
    } else {
        // A non-AEAD cipher cannot claim the v3 trailer reservation; the
        // composer rejects such graphs under R2 (unfilled reservation).
        cipher_node = {decrypting
                           ? core::decrypt_stage<Cipher>::footprint_decl
                           : core::encrypt_stage<Cipher>::footprint_decl,
                       epoch};
    }

    // Send: transform first, TCP checksum taps the ciphertext on its way
    // out.  Receive: checksum the wire image first, then invert.  The
    // optional extra tap rides at the plaintext-adjacent end in both cases.
    if (decrypting) {
        g.nodes.push_back({core::checksum_tap8::footprint_decl, 0});
        g.nodes.push_back(cipher_node);
    } else {
        g.nodes.push_back(cipher_node);
        g.nodes.push_back({core::checksum_tap8::footprint_decl, 0});
    }
    if (tap != compose_tap::none) g.nodes.push_back(tap_node(tap));
    return g;
}

template <typename Cipher>
analysis::stage_graph flow_send_graph(const secure_params& params,
                                      compose_tap tap, std::uint64_t epoch) {
    return flow_graph<Cipher>(params, tap, compose_schedule::send_bca, epoch);
}

template <typename Cipher>
analysis::stage_graph flow_receive_graph(const secure_params& params,
                                         compose_tap tap,
                                         std::uint64_t epoch) {
    return flow_graph<Cipher>(params, tap, compose_schedule::receive, epoch);
}

}  // namespace ilp::app
