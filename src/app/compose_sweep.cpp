#include "app/compose_sweep.h"

#include <array>
#include <cstring>
#include <functional>
#include <optional>
#include <span>

#include "analysis/compose.h"
#include "app/compose_models.h"
#include "core/dynamic_pipeline.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/word_filter.h"
#include "memsim/mem_policy.h"

namespace ilp::app {

namespace {

using mem_t = memsim::direct_memory;

// Deterministic pseudo-random bytes (xorshift) — no global entropy, so the
// sweep is reproducible run to run.
std::vector<std::byte> make_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
    for (std::byte& b : v) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        b = static_cast<std::byte>(x & 0xffu);
    }
    return v;
}

template <typename Cipher>
Cipher make_cipher() {
    if constexpr (std::is_same_v<Cipher, crypto::null_cipher>) {
        return crypto::null_cipher{};
    } else {
        const std::vector<std::byte> key =
            make_bytes(Cipher::key_bytes, 0xC0FFEEull);
        return Cipher{std::span<const std::byte>(key)};
    }
}

// Every observable the two executions must agree on.
struct tap_values {
    std::uint16_t inet8 = 0;  // always-on TCP checksum tap
    std::uint16_t inet2 = 0;  // optional 2-byte-unit tap
    std::uint32_t crc = 0;    // optional CRC-32 tap
    std::uint32_t tag = 0;    // AEAD tag (secure v3 runs)
};

struct exec_result {
    bool outputs_match = false;
    bool taps_match = false;
};

// Holds AEAD stage slots only when the cipher supports them — naming
// aead_*_stage<Cipher> for a non-AEAD cipher would violate its constraint.
template <typename Cipher, bool = crypto::aead_capable<Cipher>>
struct aead_stage_slots {
    std::optional<core::aead_encrypt_stage<Cipher>> enc;
    std::optional<core::aead_decrypt_stage<Cipher>> dec;
};
template <typename Cipher>
struct aead_stage_slots<Cipher, false> {};

bool taps_agree(const tap_values& f, const tap_values& l, compose_tap tap,
                bool aead) {
    bool t = f.inet8 == l.inet8;
    if (tap == compose_tap::inet2) t = t && f.inet2 == l.inet2;
    if (tap == compose_tap::crc32) t = t && f.crc == l.crc;
    if (aead) t = t && f.tag == l.tag;
    return t;
}

// One differential run of a block-stage composition.  The fused side drives
// a dynamic_pipeline (the runtime-assembled analogue of the fused loop) over
// the message parts in the composed schedule; the layered side applies each
// stage as a full linear pass over its own copy — the reference a correct
// fusion must be bit-identical to.
template <crypto::block_cipher Cipher>
exec_result execute_block_case(const Cipher& cipher, bool secure,
                               compose_tap tap, compose_schedule sched) {
    mem_t mem;
    const core::message_plan plan = core::plan_parts(compose_marshalled_bytes);
    const std::vector<std::byte> input = make_bytes(plan.total_bytes, 7);
    std::vector<std::byte> fused_out(plan.total_bytes);
    std::vector<std::byte> layered_out(plan.total_bytes);
    const bool decrypting = sched == compose_schedule::receive;
    tap_values f;
    tap_values l;

    {
        checksum::inet_accumulator acc8;
        checksum::inet_accumulator acc2;
        checksum::crc32 crc;
        crypto::aead_tag_accumulator tag;
        core::checksum_tap8 tap8(acc8);
        core::checksum_tap2 tap2(acc2);
        core::crc32_tap crct(crc);
        core::encrypt_stage<Cipher> enc(cipher);
        core::decrypt_stage<Cipher> dec(cipher);
        aead_stage_slots<Cipher> aead;
        core::dynamic_pipeline<mem_t> pipe;
        const auto add_cipher_stage = [&] {
            if constexpr (crypto::aead_capable<Cipher>) {
                if (secure) {
                    if (decrypting) {
                        aead.dec.emplace(cipher, tag);
                        pipe.add_stage(*aead.dec);
                    } else {
                        aead.enc.emplace(cipher, tag);
                        pipe.add_stage(*aead.enc);
                    }
                    return;
                }
            }
            if (decrypting) {
                pipe.add_stage(dec);
            } else {
                pipe.add_stage(enc);
            }
        };
        if (decrypting) {
            pipe.add_stage(tap8);
            add_cipher_stage();
        } else {
            add_cipher_stage();
            pipe.add_stage(tap8);
        }
        if (tap == compose_tap::inet2) pipe.add_stage(tap2);
        if (tap == compose_tap::crc32) pipe.add_stage(crct);

        const auto parts = sched == compose_schedule::send_bca
                               ? plan.ilp_order()
                               : plan.linear_order();
        for (const core::message_part& p : parts) {
            if (p.empty()) continue;
            pipe.run(mem,
                     core::span_source(std::span<const std::byte>(input)
                                           .subspan(p.offset, p.len)),
                     core::span_dest(std::span<std::byte>(fused_out)
                                         .subspan(p.offset, p.len)));
        }
        f = {acc8.folded(), acc2.folded(), crc.value(), tag.fold()};
    }

    {
        std::memcpy(layered_out.data(), input.data(), input.size());
        const std::span<std::byte> buf(layered_out);
        checksum::inet_accumulator acc8;
        checksum::inet_accumulator acc2;
        checksum::crc32 crc;
        crypto::aead_tag_accumulator tag;
        const auto tap8_pass = [&] {
            core::checksum_tap8 t(acc8);
            core::apply_stage_in_place(mem, t, buf);
        };
        const auto cipher_pass = [&] {
            if constexpr (crypto::aead_capable<Cipher>) {
                if (secure) {
                    if (decrypting) {
                        core::aead_decrypt_stage<Cipher> s(cipher, tag);
                        core::apply_stage_in_place(mem, s, buf);
                    } else {
                        core::aead_encrypt_stage<Cipher> s(cipher, tag);
                        core::apply_stage_in_place(mem, s, buf);
                    }
                    return;
                }
            }
            if (decrypting) {
                core::decrypt_stage<Cipher> s(cipher);
                core::apply_stage_in_place(mem, s, buf);
            } else {
                core::encrypt_stage<Cipher> s(cipher);
                core::apply_stage_in_place(mem, s, buf);
            }
        };
        if (decrypting) {
            tap8_pass();
            cipher_pass();
        } else {
            cipher_pass();
            tap8_pass();
        }
        if (tap == compose_tap::inet2) {
            core::checksum_tap2 t(acc2);
            core::apply_stage_in_place(mem, t, buf);
        }
        if (tap == compose_tap::crc32) {
            core::crc32_tap t(crc);
            core::apply_stage_in_place(mem, t, buf);
        }
        l = {acc8.folded(), acc2.folded(), crc.value(), tag.fold()};
    }

    exec_result r;
    r.outputs_match = fused_out == layered_out;
    r.taps_match =
        taps_agree(f, l, tap,
                   secure && crypto::aead_capable<Cipher>);
    return r;
}

// rc4 is stateful (keystream position), so each execution gets its own
// instance keyed identically; the fused side consumes keystream in part
// order, the layered side strictly linearly — which is exactly the R1
// divergence on the B,C,A schedule.
exec_result execute_rc4_case(compose_tap tap, compose_schedule sched) {
    mem_t mem;
    const core::message_plan plan = core::plan_parts(compose_marshalled_bytes);
    const std::vector<std::byte> input = make_bytes(plan.total_bytes, 7);
    const std::vector<std::byte> key = make_bytes(16, 0xC0FFEEull);
    std::vector<std::byte> fused_out(plan.total_bytes);
    std::vector<std::byte> layered_out(plan.total_bytes);
    const bool decrypting = sched == compose_schedule::receive;
    tap_values f;
    tap_values l;

    {
        checksum::inet_accumulator acc8;
        checksum::inet_accumulator acc2;
        checksum::crc32 crc;
        crypto::rc4 stream{std::span<const std::byte>(key)};
        crypto::rc4_stage rcs(stream);
        core::checksum_tap8 tap8(acc8);
        core::checksum_tap2 tap2(acc2);
        core::crc32_tap crct(crc);
        core::dynamic_pipeline<mem_t> pipe;
        if (decrypting) {
            pipe.add_stage(tap8);
            pipe.add_stage(rcs);
        } else {
            pipe.add_stage(rcs);
            pipe.add_stage(tap8);
        }
        if (tap == compose_tap::inet2) pipe.add_stage(tap2);
        if (tap == compose_tap::crc32) pipe.add_stage(crct);
        const auto parts = sched == compose_schedule::send_bca
                               ? plan.ilp_order()
                               : plan.linear_order();
        for (const core::message_part& p : parts) {
            if (p.empty()) continue;
            pipe.run(mem,
                     core::span_source(std::span<const std::byte>(input)
                                           .subspan(p.offset, p.len)),
                     core::span_dest(std::span<std::byte>(fused_out)
                                         .subspan(p.offset, p.len)));
        }
        f = {acc8.folded(), acc2.folded(), crc.value(), 0};
    }

    {
        std::memcpy(layered_out.data(), input.data(), input.size());
        const std::span<std::byte> buf(layered_out);
        checksum::inet_accumulator acc8;
        checksum::inet_accumulator acc2;
        checksum::crc32 crc;
        crypto::rc4 stream{std::span<const std::byte>(key)};
        crypto::rc4_stage rcs(stream);
        core::checksum_tap8 tap8(acc8);
        if (decrypting) {
            core::apply_stage_in_place(mem, tap8, buf);
            core::apply_stage_in_place(mem, rcs, buf);
        } else {
            core::apply_stage_in_place(mem, rcs, buf);
            core::apply_stage_in_place(mem, tap8, buf);
        }
        if (tap == compose_tap::inet2) {
            core::checksum_tap2 t(acc2);
            core::apply_stage_in_place(mem, t, buf);
        }
        if (tap == compose_tap::crc32) {
            core::crc32_tap t(crc);
            core::apply_stage_in_place(mem, t, buf);
        }
        l = {acc8.folded(), acc2.folded(), crc.value(), 0};
    }

    exec_result r;
    r.outputs_match = fused_out == layered_out;
    r.taps_match = taps_agree(f, l, tap, false);
    return r;
}

// ---------------------------------------------------------------------------
// Word-filter chains (Abbott & Peterson shape)

constexpr std::size_t word_case_bytes = 1024;

template <crypto::block_cipher Cipher>
analysis::stage_graph word_chain_graph(const Cipher& cipher, bool with_xdr,
                                       bool encrypting) {
    // Throwaway chain, assembled only so the graph carries the *live*
    // footprint declarations (the word-filter footprints are virtual).
    checksum::inet_accumulator acc;
    std::vector<std::byte> dummy(word_case_bytes);
    core::xdr_word_filter<mem_t> xdr;
    core::cipher_word_filter<mem_t, Cipher, true> enc(cipher);
    core::cipher_word_filter<mem_t, Cipher, false> dec(cipher);
    core::checksum_word_filter<mem_t> ck(acc);
    core::sink_word_filter<mem_t> sink(dummy);
    core::word_filter<mem_t>* cipher_f =
        encrypting ? static_cast<core::word_filter<mem_t>*>(&enc) : &dec;
    core::word_filter<mem_t>* head = cipher_f;
    if (with_xdr) {
        xdr.set_next(cipher_f);
        head = &xdr;
    }
    cipher_f->set_next(&ck);
    ck.set_next(&sink);

    analysis::stage_graph g;
    g.name = std::string("word/") + cipher_label<Cipher>() +
             (with_xdr ? "/xdr" : "") + (encrypting ? "/encrypt" : "/decrypt");
    g.site = "app/compose_sweep.cpp:word_chain_graph";
    g.side = encrypting ? analysis::graph_side::send
                        : analysis::graph_side::receive;
    g.kind = analysis::pipeline_kind::word_chain;
    g.parts = {{0, word_case_bytes}};
    for (const analysis::footprint& fp : core::chain_footprints(*head)) {
        g.nodes.push_back({fp, 0});
    }
    return g;
}

template <crypto::block_cipher Cipher>
exec_result execute_word_case(const Cipher& cipher, bool with_xdr,
                              bool encrypting) {
    mem_t mem;
    const std::vector<std::byte> input = make_bytes(word_case_bytes, 11);
    std::vector<std::byte> chain_out(word_case_bytes);
    std::vector<std::byte> layered_out(word_case_bytes);
    tap_values f;
    tap_values l;

    {
        checksum::inet_accumulator acc;
        core::xdr_word_filter<mem_t> xdr;
        core::cipher_word_filter<mem_t, Cipher, true> enc(cipher);
        core::cipher_word_filter<mem_t, Cipher, false> dec(cipher);
        core::checksum_word_filter<mem_t> ck(acc);
        core::sink_word_filter<mem_t> sink(chain_out);
        core::word_filter<mem_t>* cipher_f =
            encrypting ? static_cast<core::word_filter<mem_t>*>(&enc) : &dec;
        core::word_filter<mem_t>* head = cipher_f;
        if (with_xdr) {
            xdr.set_next(cipher_f);
            head = &xdr;
        }
        cipher_f->set_next(&ck);
        ck.set_next(&sink);
        core::feed_words(mem, *head, input);
        if (sink.bytes_written() != word_case_bytes) {
            return {};  // chain lost words: unconditional mismatch
        }
        f.inet8 = acc.folded();
    }

    {
        std::memcpy(layered_out.data(), input.data(), input.size());
        const std::span<std::byte> buf(layered_out);
        checksum::inet_accumulator acc;
        if (with_xdr) {
            core::xdr_encode_stage x;
            core::apply_stage_in_place(mem, x, buf);
        }
        if (encrypting) {
            core::encrypt_stage<Cipher> s(cipher);
            core::apply_stage_in_place(mem, s, buf);
        } else {
            core::decrypt_stage<Cipher> s(cipher);
            core::apply_stage_in_place(mem, s, buf);
        }
        core::checksum_pass(mem, acc, buf, 8);
        l.inet8 = acc.folded();
    }

    exec_result r;
    r.outputs_match = chain_out == layered_out;
    r.taps_match = f.inet8 == l.inet8;
    return r;
}

// ---------------------------------------------------------------------------
// Classification: hold each verdict to the differential truth.

void record_case(compose_sweep_report& rep, const analysis::stage_graph& g,
                 bool expect_r1, bool expect_r2,
                 const std::function<exec_result()>& exec) {
    const analysis::verdict v = analysis::compose_and_check(g);
    compose_case c;
    c.name = g.name;
    c.hash = v.hash;
    c.legal = v.legal;
    c.rule = v.rule;
    c.offender = v.offender;
    const bool expected_legal = !expect_r1 && !expect_r2;
    c.mismatch_expected = expect_r1;

    if (v.legal != expected_legal) {
        if (v.legal) {
            ++rep.accepted;
            ++rep.miscomputations;
            c.status = std::string("accepted, but the sweep model expects ") +
                       (expect_r1 ? "R1-ordering" : "R2-header-size");
        } else {
            ++rep.rejected;
            ++rep.unexplained_rejections;
            c.status = "rejected (" + v.rule +
                       ") but the sweep model expects this graph to be legal";
        }
    } else if (!v.legal) {
        ++rep.rejected;
        const char* want = expect_r1 ? "R1-ordering" : "R2-header-size";
        if (v.rule != want) {
            ++rep.unexplained_rejections;
            c.status = "rejected under '" + v.rule + "' where '" + want +
                       "' was expected";
        } else if (expect_r1) {
            // R1 graphs are executable — run them and require the predicted
            // out-of-order divergence to actually appear.
            const exec_result r = exec();
            c.executed = true;
            ++rep.executed;
            c.outputs_match = r.outputs_match;
            c.taps_match = r.taps_match;
            if (r.outputs_match && r.taps_match) {
                ++rep.unexplained_rejections;
                c.status =
                    "rejected (R1-ordering) but the differential run did "
                    "not diverge";
            } else {
                c.ok = true;
                c.status = "rejected (R1-ordering: " + v.offender +
                           "); divergence confirmed by execution";
            }
        } else {
            // R2 trailer mismatches are not executable (there is no stage
            // to fill — or consume — the reservation); the named rule and
            // offender are the explanation.
            c.ok = true;
            c.status = "rejected (R2-header-size: " + v.offender +
                       "); unexecutable by construction";
        }
    } else {
        ++rep.accepted;
        const exec_result r = exec();
        c.executed = true;
        ++rep.executed;
        c.outputs_match = r.outputs_match;
        c.taps_match = r.taps_match;
        if (r.outputs_match && r.taps_match) {
            c.ok = true;
            c.status = "accepted; fused == layered, bit-identical";
        } else {
            ++rep.miscomputations;
            c.status = std::string("accepted but the differential run "
                                   "diverged (outputs ") +
                       (r.outputs_match ? "match" : "differ") + ", taps " +
                       (r.taps_match ? "match" : "differ") + ")";
        }
    }
    rep.cases.push_back(std::move(c));
}

constexpr std::array<compose_schedule, 3> all_schedules = {
    compose_schedule::send_bca, compose_schedule::send_linear,
    compose_schedule::receive};
constexpr std::array<compose_tap, 3> all_taps = {
    compose_tap::none, compose_tap::inet2, compose_tap::crc32};

template <typename Cipher>
void sweep_block_family(compose_sweep_report& rep) {
    const Cipher cipher = make_cipher<Cipher>();
    for (int framing = 0; framing < 2; ++framing) {
        const bool v3 = framing == 1;
        secure_params params;
        params.enabled = v3;
        params.flow_secret = 0x5ec0u;
        for (const compose_schedule sched : all_schedules) {
            for (const compose_tap tap : all_taps) {
                const analysis::stage_graph g =
                    flow_graph<Cipher>(params, tap, sched, 0);
                const bool r1 = sched == compose_schedule::send_bca &&
                                tap == compose_tap::crc32;
                const bool r2 = v3 && !crypto::aead_capable<Cipher>;
                const bool secure_exec = v3 && crypto::aead_capable<Cipher>;
                record_case(rep, g, r1, r2, [&] {
                    return execute_block_case(cipher, secure_exec, tap,
                                              sched);
                });
            }
        }
    }
}

void sweep_rc4_family(compose_sweep_report& rep) {
    for (int framing = 0; framing < 2; ++framing) {
        const bool v3 = framing == 1;
        secure_params params;
        params.enabled = v3;
        params.flow_secret = 0x5ec0u;
        for (const compose_schedule sched : all_schedules) {
            for (const compose_tap tap : all_taps) {
                const analysis::stage_graph g =
                    flow_graph<crypto::rc4>(params, tap, sched, 0);
                // rc4 itself is ordering-constrained, so *any* B,C,A
                // schedule is an R1 rejection regardless of tap.
                const bool r1 = sched == compose_schedule::send_bca;
                const bool r2 = v3;  // stream cipher fills no trailer
                record_case(rep, g, r1, r2,
                            [&] { return execute_rc4_case(tap, sched); });
            }
        }
    }
}

template <typename Cipher>
void sweep_word_family(compose_sweep_report& rep) {
    const Cipher cipher = make_cipher<Cipher>();
    struct variant {
        bool with_xdr;
        bool encrypting;
    };
    constexpr std::array<variant, 3> variants = {
        variant{false, true}, variant{true, true}, variant{false, false}};
    for (const variant& var : variants) {
        const analysis::stage_graph g =
            word_chain_graph(cipher, var.with_xdr, var.encrypting);
        record_case(rep, g, false, false, [&] {
            return execute_word_case(cipher, var.with_xdr, var.encrypting);
        });
    }
}

}  // namespace

compose_sweep_report run_compose_sweep() {
    compose_sweep_report rep;
    sweep_block_family<crypto::null_cipher>(rep);
    sweep_block_family<crypto::simple_cipher>(rep);
    sweep_block_family<crypto::safer_simplified>(rep);
    sweep_block_family<crypto::safer_k64>(rep);
    sweep_block_family<crypto::des>(rep);
    sweep_block_family<crypto::aead_cipher>(rep);
    sweep_rc4_family(rep);
    sweep_word_family<crypto::null_cipher>(rep);
    sweep_word_family<crypto::simple_cipher>(rep);
    sweep_word_family<crypto::safer_simplified>(rep);
    sweep_word_family<crypto::safer_k64>(rep);
    sweep_word_family<crypto::des>(rep);
    return rep;
}

}  // namespace ilp::app
