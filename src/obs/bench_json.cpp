#include "obs/bench_json.h"

#include <cinttypes>
#include <cstdio>

namespace ilp::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
}

void append_number(std::string& out, double v) {
    char buf[48];
    // %.10g keeps integers exact up to 2^33 and round-trips the precision
    // the diff tool needs without trailing-digit noise.
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out += buf;
}

const char* direction_name(direction d) {
    switch (d) {
        case direction::higher_is_better: return "higher";
        case direction::lower_is_better: return "lower";
        case direction::info: break;
    }
    return "info";
}

}  // namespace

bench_report::bench_report(std::string bench_name)
    : bench_(std::move(bench_name)) {}

void bench_report::meta(std::string key, std::string value) {
    meta_.emplace_back(std::move(key), std::move(value));
}

void bench_report::metric(std::string name, double value, std::string unit,
                          direction dir) {
    metrics_.push_back({std::move(name), value, std::move(unit), dir});
}

void bench_report::histogram_metric(std::string name, const histogram& h,
                                    std::string unit) {
    metric(name + ".p99", h.percentile(99.0), unit,
           direction::lower_is_better);
    histograms_.push_back({std::move(name), std::move(unit), h});
}

std::string bench_report::render() const {
    std::string out;
    out += "{\n  \"schema_version\": ";
    char buf[24];
    std::snprintf(buf, sizeof buf, "%d", bench_schema_version);
    out += buf;
    out += ",\n  \"bench\": \"";
    append_escaped(out, bench_);
    out += "\",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    \"";
        append_escaped(out, meta_[i].first);
        out += "\": \"";
        append_escaped(out, meta_[i].second);
        out += "\"";
    }
    out += meta_.empty() ? "},\n" : "\n  },\n";
    out += "  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        const metric_row& m = metrics_[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": \"";
        append_escaped(out, m.name);
        out += "\", \"value\": ";
        append_number(out, m.value);
        out += ", \"unit\": \"";
        append_escaped(out, m.unit);
        out += "\", \"better\": \"";
        out += direction_name(m.dir);
        out += "\"}";
    }
    out += metrics_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"histograms\": [";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        const hist_row& h = histograms_[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": \"";
        append_escaped(out, h.name);
        out += "\", \"unit\": \"";
        append_escaped(out, h.unit);
        out += "\", \"count\": ";
        append_number(out, static_cast<double>(h.hist.count()));
        out += ", \"min\": ";
        append_number(out, static_cast<double>(h.hist.min()));
        out += ", \"max\": ";
        append_number(out, static_cast<double>(h.hist.max()));
        out += ", \"mean\": ";
        append_number(out, h.hist.mean());
        out += ", \"p50\": ";
        append_number(out, h.hist.percentile(50.0));
        out += ", \"p90\": ";
        append_number(out, h.hist.percentile(90.0));
        out += ", \"p99\": ";
        append_number(out, h.hist.percentile(99.0));
        out += ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t b = 0; b < histogram::bucket_count; ++b) {
            if (h.hist.buckets()[b] == 0) continue;
            if (!first_bucket) out += ", ";
            first_bucket = false;
            out += "[";
            append_number(out, static_cast<double>(histogram::bucket_lo(b)));
            out += ", ";
            append_number(out, static_cast<double>(histogram::bucket_hi(b)));
            out += ", ";
            append_number(out, static_cast<double>(h.hist.buckets()[b]));
            out += "]";
        }
        out += "]}";
    }
    out += histograms_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

bool bench_report::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = render();
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    if (written != json.size()) {
        std::fclose(f);
        return false;
    }
    return std::fclose(f) == 0;
}

}  // namespace ilp::obs
