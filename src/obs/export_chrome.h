// Chrome trace_event exporter.
//
// Renders the tracer's event ring as the Trace Event JSON Array Format
// ({"traceEvents": [...]}), loadable in Perfetto / chrome://tracing.  Spans
// become complete ("ph":"X") events, instants become "i" events; each
// attribution side maps to its own tid with a thread_name metadata record.
// Memory attribution travels in "args" (inclusive and self counters), so a
// Perfetto query can attribute cache misses by stage.
//
// Timebase: virtual microseconds by default.  Simulated runs advance the
// clock only between poll steps, so for intra-step structure the exporter
// can instead place spans on each side's memory-system *cycle* counter,
// which is the quantity the paper's processing times derive from anyway.
#pragma once

#include <string>

#include "obs/tracer.h"

namespace ilp::obs {

enum class trace_timebase {
    sim_us,  // virtual-clock microseconds
    cycles,  // attributed memory-system cycles (unattributed spans fall
             // back to virtual time)
};

std::string chrome_trace_json(const tracer& t,
                              trace_timebase timebase = trace_timebase::sim_us);

// Writes chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const tracer& t, const std::string& path,
                        trace_timebase timebase = trace_timebase::sim_us);

}  // namespace ilp::obs
