// Memory-system counter snapshots for span attribution.
//
// A span records the delta of these counters between its open and close, so
// the Figure 13/14 quantities (accesses, L1-D misses, L2 misses, simulated
// memory-system cycles) become attributable to an individual pipeline stage
// instead of only to a whole run.
#pragma once

#include <cstdint>

namespace ilp::memsim {
class memory_system;
}

namespace ilp::obs {

// One snapshot (or delta) of a memsim::memory_system's counters.  All fields
// are monotone over a run, so deltas are exact.
struct mem_counters {
    std::uint64_t reads = 0;          // data reads (load instructions)
    std::uint64_t writes = 0;         // data writes (store instructions)
    std::uint64_t l1d_misses = 0;     // Figure 14's quantity
    std::uint64_t l2_hits = 0;        // unified L2 (data + instruction side)
    std::uint64_t l2_misses = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t ifetch_misses = 0;
    std::uint64_t cycles = 0;         // accumulated memory-system time

    std::uint64_t accesses() const noexcept { return reads + writes; }

    mem_counters& operator+=(const mem_counters& o) noexcept {
        reads += o.reads;
        writes += o.writes;
        l1d_misses += o.l1d_misses;
        l2_hits += o.l2_hits;
        l2_misses += o.l2_misses;
        ifetches += o.ifetches;
        ifetch_misses += o.ifetch_misses;
        cycles += o.cycles;
        return *this;
    }
    mem_counters& operator-=(const mem_counters& o) noexcept {
        reads -= o.reads;
        writes -= o.writes;
        l1d_misses -= o.l1d_misses;
        l2_hits -= o.l2_hits;
        l2_misses -= o.l2_misses;
        ifetches -= o.ifetches;
        ifetch_misses -= o.ifetch_misses;
        cycles -= o.cycles;
        return *this;
    }
    friend mem_counters operator-(mem_counters a, const mem_counters& b) {
        a -= b;
        return a;
    }
    friend bool operator==(const mem_counters&, const mem_counters&) = default;
};

// Samples the current counters of a memory system (implemented in
// tracer.cpp to keep this header light).
mem_counters sample_counters(const memsim::memory_system& sys);

}  // namespace ilp::obs
