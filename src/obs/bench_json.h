// Versioned BENCH JSON schema writer.
//
// Every benchmark that records a baseline (BENCH_*.json) emits this schema
// so `tools/ilp-trace --diff` and CI can compare runs mechanically:
//
//   {
//     "schema_version": 2,
//     "bench": "<name>",
//     "meta": { "<key>": "<value>", ... },
//     "metrics": [
//       {"name": "...", "value": 1.25, "unit": "mbps", "better": "higher"},
//       ...
//     ],
//     "histograms": [
//       {"name": "...", "unit": "us", "count": N, "min": .., "max": ..,
//        "mean": .., "p50": .., "p90": .., "p99": ..,
//        "buckets": [[lo, hi, count], ...]},   // non-empty buckets only
//       ...
//     ]
//   }
//
// "better" drives the regression verdict: "higher"/"lower" metrics fail a
// diff beyond the threshold in the bad direction, "info" metrics are
// reported but never fail.  Histograms additionally surface their p99 as a
// "<name>.p99" lower-is-better metric so latency regressions gate too.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.h"

namespace ilp::obs {

enum class direction { higher_is_better, lower_is_better, info };

inline constexpr int bench_schema_version = 2;

class bench_report {
public:
    explicit bench_report(std::string bench_name);

    void meta(std::string key, std::string value);
    void metric(std::string name, double value, std::string unit,
                direction dir);
    // Records the histogram (buckets + percentiles) and a "<name>.p99"
    // lower-is-better gating metric.
    void histogram_metric(std::string name, const histogram& h,
                          std::string unit);

    std::string render() const;
    bool write(const std::string& path) const;  // false on I/O failure

private:
    struct metric_row {
        std::string name;
        double value;
        std::string unit;
        direction dir;
    };
    struct hist_row {
        std::string name;
        std::string unit;
        histogram hist;
    };

    std::string bench_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<metric_row> metrics_;
    std::vector<hist_row> histograms_;
};

}  // namespace ilp::obs
