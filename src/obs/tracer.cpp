#include "obs/tracer.h"

#include "memsim/memory_system.h"
#include "util/contracts.h"

namespace ilp::obs {

namespace {

thread_local tracer* g_current = nullptr;

}  // namespace

mem_counters sample_counters(const memsim::memory_system& sys) {
    mem_counters c;
    c.reads = sys.data_stats().reads.total_accesses();
    c.writes = sys.data_stats().writes.total_accesses();
    c.l1d_misses = sys.data_stats().total_misses();
    if (const memsim::cache* l2 = sys.l2()) {
        c.l2_hits = l2->hits();
        c.l2_misses = l2->misses();
    }
    c.ifetches = sys.instruction_fetches();
    c.ifetch_misses = sys.instruction_fetch_misses();
    c.cycles = sys.cycles();
    return c;
}

tracer::tracer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {
    stack_.reserve(32);
}

tracer* tracer::current() noexcept { return g_current; }

tracer* tracer::install(tracer* t) noexcept {
    tracer* prev = g_current;
    g_current = t;
    return prev;
}

std::vector<span> tracer::events() const {
    std::vector<span> out;
    const std::size_t live =
        recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                 : ring_.size();
    out.reserve(live);
    // Oldest surviving event first: when the ring has wrapped, it lives at
    // the write cursor.
    const std::size_t start =
        recorded_ < ring_.size() ? 0 : write_ % ring_.size();
    for (std::size_t i = 0; i < live; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

mem_counters tracer::side_self_totals(std::string_view side) const {
    mem_counters sum;
    for (const auto& [key, totals] : stages_) {
        if (key.side == side) sum += totals.self;
    }
    return sum;
}

void tracer::open(const char* category, const char* name) {
    frame f;
    f.category = category;
    f.name = name;
    f.side = side_;
    f.source = source_;
    f.flow = flow_;
    f.begin_us = now();
    if (f.source != nullptr) f.at_open = sample_counters(*f.source);
    stack_.push_back(f);
}

void tracer::close() {
    ILP_EXPECT(!stack_.empty());
    const frame f = stack_.back();
    stack_.pop_back();

    span s;
    s.category = f.category;
    s.name = f.name;
    s.side = f.side;
    s.kind = event_kind::span;
    s.begin_us = f.begin_us;
    s.end_us = now();
    s.depth = static_cast<std::uint32_t>(stack_.size());
    s.flow = f.flow;
    if (f.source != nullptr) {
        const mem_counters at_close = sample_counters(*f.source);
        s.begin_cycles = f.at_open.cycles;
        s.end_cycles = at_close.cycles;
        s.incl = at_close - f.at_open;
    }
    s.self = s.incl - f.child_incl;
    const sim_time dur = s.end_us - s.begin_us;
    s.self_us = dur - f.child_us;

    // Charge this span's inclusive figures to the parent so the parent's
    // self attribution excludes it.  Memory counters only transfer between
    // spans measuring the same memory system.
    if (!stack_.empty()) {
        frame& parent = stack_.back();
        parent.child_us += dur;
        if (parent.source == f.source && f.source != nullptr) {
            parent.child_incl += s.incl;
        }
    }
    push_event(s);
}

void tracer::record_instant(const char* category, const char* name) {
    span s;
    s.category = category;
    s.name = name;
    s.side = side_;
    s.kind = event_kind::instant;
    s.begin_us = s.end_us = now();
    s.depth = static_cast<std::uint32_t>(stack_.size());
    s.flow = flow_;
    if (source_ != nullptr) {
        const std::uint64_t cycles = sample_counters(*source_).cycles;
        s.begin_cycles = s.end_cycles = cycles;
    }
    push_event(s);
}

void tracer::push_event(const span& s) {
    // Aggregates first: they are never dropped and never sampled — every
    // flow's work lands here whatever the sampler decides about its spans.
    stage_key key{s.side != nullptr ? s.side : "", s.category, s.name};
    stage_totals& totals = stages_[std::move(key)];
    ++totals.count;
    totals.total_us += s.end_us - s.begin_us;
    totals.self_us += s.self_us;
    totals.incl += s.incl;
    totals.self += s.self;
    if (s.kind == event_kind::span) totals.self_cycles.record(s.self.cycles);

    // The ring records only sampled flows (non-flow-scoped events always
    // pass).  Sampled-out events are counted separately from dropped():
    // a drop is an overwrite the ring could not avoid, sampling is policy.
    if (!sampler_.sampled(s.flow)) {
        ++sampled_out_;
        return;
    }
    span stamped = s;
    stamped.seq = recorded_;
    ring_[write_] = stamped;
    write_ = (write_ + 1) % ring_.size();
    ++recorded_;
}

}  // namespace ilp::obs
