#include "obs/export_chrome.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace ilp::obs {

namespace {

void append_escaped(std::string& out, const char* s) {
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
}

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

}  // namespace

std::string chrome_trace_json(const tracer& t, trace_timebase timebase) {
    const std::vector<span> events = t.events();

    // Stable tid assignment: tid 0 for unattributed events, then sides in
    // order of first appearance.
    std::map<std::string, int> tids;
    const auto tid_of = [&](const span& s) {
        if (s.side == nullptr) return 0;
        const auto it = tids.find(s.side);
        if (it != tids.end()) return it->second;
        const int tid = static_cast<int>(tids.size()) + 1;
        tids.emplace(s.side, tid);
        return tid;
    };
    for (const span& s : events) tid_of(s);

    std::string out;
    out.reserve(events.size() * 256 + 512);
    out += "{\"traceEvents\":[";
    bool first = true;

    const auto emit_meta = [&](int tid, const std::string& name) {
        if (!first) out += ",";
        first = false;
        out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
        append_u64(out, static_cast<std::uint64_t>(tid));
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        append_escaped(out, name.c_str());
        out += "\"}}";
    };
    emit_meta(0, "unattributed");
    for (const auto& [side, tid] : tids) emit_meta(tid, side);

    for (const span& s : events) {
        const bool use_cycles =
            timebase == trace_timebase::cycles && s.side != nullptr;
        const std::uint64_t ts = use_cycles ? s.begin_cycles : s.begin_us;
        const std::uint64_t dur =
            use_cycles ? s.end_cycles - s.begin_cycles : s.end_us - s.begin_us;
        if (!first) out += ",";
        first = false;
        out += "{\"ph\":\"";
        out += s.kind == event_kind::instant ? "i" : "X";
        out += "\",\"pid\":1,\"tid\":";
        append_u64(out, static_cast<std::uint64_t>(tid_of(s)));
        out += ",\"ts\":";
        append_u64(out, ts);
        if (s.kind == event_kind::span) {
            out += ",\"dur\":";
            append_u64(out, dur);
        } else {
            out += ",\"s\":\"t\"";
        }
        out += ",\"cat\":\"";
        append_escaped(out, s.category);
        out += "\",\"name\":\"";
        append_escaped(out, s.name);
        out += "\",\"args\":{\"seq\":";
        append_u64(out, s.seq);
        // Only flow-scoped spans carry a flow arg, so single-flow traces
        // (and their golden files) are unchanged.
        if (s.flow >= 0) {
            out += ",\"flow\":";
            append_u64(out, static_cast<std::uint64_t>(s.flow));
        }
        out += ",\"depth\":";
        append_u64(out, s.depth);
        out += ",\"sim_us\":";
        append_u64(out, s.begin_us);
        out += ",\"accesses\":";
        append_u64(out, s.incl.accesses());
        out += ",\"l1d_misses\":";
        append_u64(out, s.incl.l1d_misses);
        out += ",\"l2_misses\":";
        append_u64(out, s.incl.l2_misses);
        out += ",\"cycles\":";
        append_u64(out, s.incl.cycles);
        out += ",\"self_accesses\":";
        append_u64(out, s.self.accesses());
        out += ",\"self_l1d_misses\":";
        append_u64(out, s.self.l1d_misses);
        out += ",\"self_cycles\":";
        append_u64(out, s.self.cycles);
        out += "}}";
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":"
           "\"ilpstack obs::tracer\",\"timebase\":\"";
    out += timebase == trace_timebase::cycles ? "cycles" : "sim_us";
    out += "\",\"dropped_events\":";
    append_u64(out, t.dropped());
    // Sampling telemetry only when the sampler actually kept events out, so
    // unsampled traces (and their golden files) render byte-identically.
    if (t.sampled_out() > 0) {
        out += ",\"sampled_out\":";
        append_u64(out, t.sampled_out());
        out += ",\"sampling_rate_permyriad\":";
        append_u64(out, t.sampler().rate_permyriad);
    }
    out += "}}";
    return out;
}

bool write_chrome_trace(const tracer& t, const std::string& path,
                        trace_timebase timebase) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = chrome_trace_json(t, timebase);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (written != json.size()) std::fclose(f);
    return ok;
}

}  // namespace ilp::obs
