// Fixed-width per-stage breakdown of a trace.
//
// Aggregates the tracer's per-stage totals into a stats::table: span count,
// self virtual time, self memory accesses / L1-D misses / L2 misses /
// memory-system cycles, and the p99 of per-span self cycles.  This is the
// Fig. 13/14-style breakdown *per stage*: summing the self columns of one
// side reproduces that side's memory_system run totals.
#pragma once

#include <string>

#include "obs/tracer.h"
#include "stats/table.h"

namespace ilp::obs {

// One row per (side, category, name) stage, sides grouped together.
stats::table stage_table(const tracer& t);

// stage_table(t).render() plus a dropped-events note when the ring wrapped.
std::string stage_summary(const tracer& t);

}  // namespace ilp::obs
