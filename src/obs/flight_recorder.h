// Per-flow flight recorder: a fixed ring of recent state transitions.
//
// Every flow carries one of these — always on, a few hundred bytes, O(1)
// per event — recording the coarse protocol transitions that explain an
// outcome: connect, data segments, retransmissions, RPC retries, rekeys,
// tag failures, epoch skews, legality-gate demotions and the terminal
// outcome itself, each stamped with the shard's virtual clock.  When a flow
// fails explicitly (the PR 1/6 taxonomy) or is demoted by the composition
// gate, the recorder is dumped as that flow's JSON "black box" in the fleet
// report, so a 10k-flow run explains its failures without anyone re-running
// it under a tracer.
//
// This is deliberately not the span tracer: spans are sampled and rich, the
// flight recorder is universal and tiny.  The ring wraps — only the most
// recent `capacity` transitions survive, which is the point: the events
// *leading into* the failure are the ones worth keeping.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/virtual_clock.h"

namespace ilp::obs {

enum class flight_event : std::uint8_t {
    connect,            // request issued; arg = flow id
    segment,            // scheduler-granted data segment; arg = wire bytes
    retransmit,         // TCP retransmissions observed; arg = new count
    rpc_retry,          // client re-issued the request; arg = new count
    rekey,              // server advanced its key epoch; arg = new epoch
    tag_failure,        // explicit AEAD tag rejection; arg = new count
    epoch_skew,         // explicit epoch-skew rejection; arg = new count
    composed_fallback,  // legality gate demoted the flow to layered
    completed,          // terminal outcomes (arg = rpc retries at the end)
    gave_up,
    deadline_exceeded,
    request_rejected,
    ports_exhausted,
};

// Stable lowercase name ("segment", "gave_up", ...) for tables and JSON.
const char* flight_event_name(flight_event ev) noexcept;

struct flight_entry {
    sim_time at_us = 0;
    std::uint32_t arg = 0;
    flight_event event = flight_event::connect;

    friend bool operator==(const flight_entry&, const flight_entry&) = default;
};

class flight_recorder {
public:
    static constexpr std::size_t capacity = 32;

    void record(sim_time at_us, flight_event ev,
                std::uint32_t arg = 0) noexcept {
        ring_[static_cast<std::size_t>(recorded_ % capacity)] = {at_us, arg,
                                                                 ev};
        ++recorded_;
    }

    // Events ever recorded; min(recorded, capacity) of them survive.
    std::uint64_t recorded() const noexcept { return recorded_; }
    std::size_t size() const noexcept {
        return recorded_ < capacity ? static_cast<std::size_t>(recorded_)
                                    : capacity;
    }

    // Oldest-surviving-first copy of the ring.
    std::vector<flight_entry> entries() const {
        std::vector<flight_entry> out;
        const std::size_t live = size();
        out.reserve(live);
        const std::size_t start =
            recorded_ < capacity ? 0
                                 : static_cast<std::size_t>(recorded_ % capacity);
        for (std::size_t i = 0; i < live; ++i) {
            out.push_back(ring_[(start + i) % capacity]);
        }
        return out;
    }

private:
    std::array<flight_entry, capacity> ring_{};
    std::uint64_t recorded_ = 0;
};

}  // namespace ilp::obs
