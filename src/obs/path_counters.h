// Per-side accounting of what the data paths did.
//
// The platform timing models (src/platform) convert these counters plus the
// simulated memory-system cycles into per-packet processing times, and the
// figure benches report them directly (e.g. Fig. 13's access counts come
// from the memory simulator, while the pass structure recorded here explains
// them).
//
// The struct stays a trivially-copyable value so the hot paths can bump
// plain integers; `publish()` lifts a snapshot into an obs::registry under
// dotted names, which is how the harness and the BENCH exporters consume it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/registry.h"

namespace ilp::obs {

struct path_counters {
    std::uint64_t messages = 0;
    std::uint64_t payload_bytes = 0;  // application payload carried
    std::uint64_t wire_bytes = 0;     // encrypted wire bytes produced/consumed

    // Pass accounting (bytes that flowed through each kind of pass).
    std::uint64_t fused_loop_bytes = 0;     // ILP loop traffic
    std::uint64_t marshal_pass_bytes = 0;   // standalone (un)marshal pass
    std::uint64_t cipher_pass_bytes = 0;    // standalone en/decrypt pass
    std::uint64_t checksum_pass_bytes = 0;  // standalone checksum pass
    std::uint64_t copy_pass_bytes = 0;      // tcp_send / delivery copies

    // Bytes that went through the cipher at all (fused or not) — drives the
    // per-byte cipher ALU cost in the timing model.
    std::uint64_t cipher_bytes = 0;

    path_counters& operator+=(const path_counters& other) noexcept {
        messages += other.messages;
        payload_bytes += other.payload_bytes;
        wire_bytes += other.wire_bytes;
        fused_loop_bytes += other.fused_loop_bytes;
        marshal_pass_bytes += other.marshal_pass_bytes;
        cipher_pass_bytes += other.cipher_pass_bytes;
        checksum_pass_bytes += other.checksum_pass_bytes;
        copy_pass_bytes += other.copy_pass_bytes;
        cipher_bytes += other.cipher_bytes;
        return *this;
    }
};

// Publishes every field as "<prefix>.<field>".  Cumulative: publishing two
// snapshots under one prefix sums them.
inline void publish(registry& r, std::string_view prefix,
                    const path_counters& c) {
    const std::string p(prefix);
    r.add(p + ".messages", c.messages);
    r.add(p + ".payload_bytes", c.payload_bytes);
    r.add(p + ".wire_bytes", c.wire_bytes);
    r.add(p + ".fused_loop_bytes", c.fused_loop_bytes);
    r.add(p + ".marshal_pass_bytes", c.marshal_pass_bytes);
    r.add(p + ".cipher_pass_bytes", c.cipher_pass_bytes);
    r.add(p + ".checksum_pass_bytes", c.checksum_pass_bytes);
    r.add(p + ".copy_pass_bytes", c.copy_pass_bytes);
    r.add(p + ".cipher_bytes", c.cipher_bytes);
}

}  // namespace ilp::obs
