#include "obs/registry.h"

#include <algorithm>
#include <bit>

namespace ilp::obs {

namespace {

std::size_t bucket_of(std::uint64_t value) noexcept {
    // 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...; the widest values share
    // the last bucket.
    return std::min<std::size_t>(std::bit_width(value),
                                 histogram::bucket_count - 1);
}

}  // namespace

void histogram::record(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    if (count_ == 0 || value < min_) min_ = value;
    if (value > max_) max_ = value;
    ++count_;
    sum_ += value;
}

double histogram::percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bucket_count; ++i) {
        if (buckets_[i] == 0) continue;
        const double first = static_cast<double>(seen);
        seen += buckets_[i];
        if (rank >= static_cast<double>(seen)) continue;
        // Interpolate inside the bucket; clamp to the recorded extremes so
        // single-bucket distributions report exact values.
        const double lo = static_cast<double>(bucket_lo(i));
        const double hi = static_cast<double>(bucket_hi(i));
        const double frac =
            buckets_[i] == 1
                ? 0.0
                : (rank - first) / static_cast<double>(buckets_[i] - 1);
        double v = lo + frac * (hi - 1 - lo);
        v = std::clamp(v, static_cast<double>(min()),
                       static_cast<double>(max_));
        return v;
    }
    return static_cast<double>(max_);
}

histogram& histogram::operator+=(const histogram& other) noexcept {
    if (other.count_ == 0) return *this;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < bucket_count; ++i) {
        buckets_[i] += other.buckets_[i];
    }
    return *this;
}

void registry::add(std::string_view name, std::uint64_t delta) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

std::uint64_t registry::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void registry::set_gauge(std::string_view name, double value) {
    gauges_.insert_or_assign(std::string(name), value);
}

double registry::gauge(std::string_view name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

histogram& registry::hist(std::string_view name) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(std::string(name), histogram{}).first->second;
}

const histogram* registry::find_hist(std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void registry::merge(const registry& other) {
    for (const auto& [name, value] : other.counters_) add(name, value);
    for (const auto& [name, value] : other.gauges_) set_gauge(name, value);
    for (const auto& [name, h] : other.histograms_) hist(name) += h;
}

}  // namespace ilp::obs
