#include "obs/export_text.h"

#include <cstdio>

namespace ilp::obs {

stats::table stage_table(const tracer& t) {
    stats::table table({"side", "stage", "count", "self us", "accesses",
                        "reads", "writes", "l1d miss", "l2 miss", "cycles",
                        "p99 cyc"});
    for (const auto& [key, totals] : t.stages()) {
        table.row()
            .cell(key.side.empty() ? "-" : key.side)
            .cell(key.category + "/" + key.name)
            .cell(totals.count)
            .cell(totals.self_us)
            .cell(totals.self.accesses())
            .cell(totals.self.reads)
            .cell(totals.self.writes)
            .cell(totals.self.l1d_misses)
            .cell(totals.self.l2_misses)
            .cell(totals.self.cycles)
            .cell(totals.self_cycles.percentile(99.0), 0);
    }
    return table;
}

std::string stage_summary(const tracer& t) {
    std::string out = stage_table(t).render();
    if (t.dropped() > 0) {
        char note[96];
        std::snprintf(note, sizeof note,
                      "(ring wrapped: %llu events overwritten)\n",
                      static_cast<unsigned long long>(t.dropped()));
        out += note;
    }
    return out;
}

}  // namespace ilp::obs
