#include "obs/flight_recorder.h"

namespace ilp::obs {

const char* flight_event_name(flight_event ev) noexcept {
    switch (ev) {
        case flight_event::connect: return "connect";
        case flight_event::segment: return "segment";
        case flight_event::retransmit: return "retransmit";
        case flight_event::rpc_retry: return "rpc_retry";
        case flight_event::rekey: return "rekey";
        case flight_event::tag_failure: return "tag_failure";
        case flight_event::epoch_skew: return "epoch_skew";
        case flight_event::composed_fallback: return "composed_fallback";
        case flight_event::completed: return "completed";
        case flight_event::gave_up: return "gave_up";
        case flight_event::deadline_exceeded: return "deadline_exceeded";
        case flight_event::request_rejected: return "request_rejected";
        case flight_event::ports_exhausted: return "ports_exhausted";
    }
    return "unknown";
}

}  // namespace ilp::obs
