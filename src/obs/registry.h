// Metrics registry: counters, gauges and log-bucketed histograms.
//
// This is the stack's single metrics sink.  The transfer harness publishes
// every endpoint's counters into one registry under dotted names
// ("server.send.fused_loop_bytes", "recovery.rpc_retries", ...), so
// aggregation across endpoints is just repeated add() calls instead of the
// ad-hoc per-struct summing the harness used to do, and every exporter
// (text table, BENCH JSON) renders from the same data.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ilp::obs {

// Power-of-two-bucketed histogram for latency-like quantities.  Bucket 0
// holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).  Percentiles are
// interpolated linearly inside the bucket, which is exact enough for the
// "p99 regressed" question the BENCH pipeline asks.
class histogram {
public:
    static constexpr std::size_t bucket_count = 64;

    void record(std::uint64_t value) noexcept;

    std::uint64_t count() const noexcept { return count_; }
    std::uint64_t sum() const noexcept { return sum_; }
    std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const noexcept { return max_; }
    double mean() const noexcept {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    // p in [0, 100].
    double percentile(double p) const noexcept;

    const std::array<std::uint64_t, bucket_count>& buckets() const noexcept {
        return buckets_;
    }
    // Inclusive lower / exclusive upper value bound of one bucket.
    static std::uint64_t bucket_lo(std::size_t i) noexcept {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }
    static std::uint64_t bucket_hi(std::size_t i) noexcept {
        return i == 0 ? 1 : std::uint64_t{1} << i;
    }

    histogram& operator+=(const histogram& other) noexcept;

private:
    std::array<std::uint64_t, bucket_count> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

class registry {
public:
    // Counters are create-on-first-use and cumulative: publishing the same
    // name from several sources sums them.
    void add(std::string_view name, std::uint64_t delta = 1);
    std::uint64_t counter(std::string_view name) const;  // 0 when absent

    void set_gauge(std::string_view name, double value);
    double gauge(std::string_view name) const;  // 0.0 when absent

    histogram& hist(std::string_view name);
    const histogram* find_hist(std::string_view name) const;

    const std::map<std::string, std::uint64_t, std::less<>>& counters()
        const noexcept {
        return counters_;
    }
    const std::map<std::string, double, std::less<>>& gauges() const noexcept {
        return gauges_;
    }
    const std::map<std::string, histogram, std::less<>>& histograms()
        const noexcept {
        return histograms_;
    }

    // Sums counters, merges histograms, overwrites gauges.
    void merge(const registry& other);

private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, histogram, std::less<>> histograms_;
};

}  // namespace ilp::obs
