// Fixed-capacity ring-buffer span tracer with memsim attribution.
//
// The tracer records *spans* — named, nested intervals of virtual time —
// across the whole stack: application send/receive loops, fused-pipeline
// parts, RPC marshal/retry, TCP segmentize/checksum/retransmit, net
// enqueue/drop.  Each span additionally snapshots the counters of the
// memory-system the enclosing code is attributed to, so the paper's
// Figure 13/14 quantities (accesses, L1-D misses, cycles) break down per
// stage, live, instead of only per run.
//
// Two stores, two lifetimes:
//   * a fixed-capacity ring of completed events (the recent window the
//     Chrome trace_event exporter renders; wraparound overwrites the
//     oldest), and
//   * per-stage aggregate totals keyed by (side, category, name), which are
//     never dropped — the source for the fixed-width breakdown tables and
//     for the invariant that per-span *self* attribution sums exactly to
//     the memory_system run totals.
//
// Instrumentation sites use the ILP_OBS_* macros; with the CMake option
// ILP_OBS=OFF they compile to nothing, and with it ON (the default) an
// uninstalled tracer costs one thread-local pointer test per site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "memsim/mem_policy.h"
#include "obs/counters.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "util/virtual_clock.h"

#ifndef ILP_OBS_ENABLED
#define ILP_OBS_ENABLED 1
#endif

namespace ilp::obs {

enum class event_kind : std::uint8_t { span, instant };

// One completed event.  `incl` is the counter delta of the attributed
// memory system over the whole span; `self` subtracts the deltas of nested
// spans attributed to the same memory system, so summing `self` over all
// spans of one side reproduces that side's run totals (asserted in
// tests/obs_test.cpp).
struct span {
    const char* category = "";
    const char* name = "";
    const char* side = nullptr;  // attribution domain ("client", "server", ...)
    event_kind kind = event_kind::span;
    sim_time begin_us = 0;
    sim_time end_us = 0;
    sim_time self_us = 0;
    std::uint64_t begin_cycles = 0;  // memsim cycles at open (0: no source)
    std::uint64_t end_cycles = 0;
    std::uint32_t depth = 0;  // nesting depth at open (0 = top level)
    std::uint64_t seq = 0;    // monotone completion index
    // Flow id the enclosing code was serving when the span opened (-1: not
    // flow-scoped).  The multi-flow engine sets it via ILP_OBS_FLOW so
    // per-stage miss attribution can be split per flow (`ilp-trace
    // summarize --per-flow`).
    std::int64_t flow = -1;
    mem_counters incl;
    mem_counters self;
};

// Aggregation key: one logical stage on one attribution side.
struct stage_key {
    std::string side;
    std::string category;
    std::string name;
    friend auto operator<=>(const stage_key&, const stage_key&) = default;
};

struct stage_totals {
    std::uint64_t count = 0;
    sim_time total_us = 0;
    sim_time self_us = 0;
    mem_counters incl;
    mem_counters self;
    histogram self_cycles;  // per-span self memory-system cycles
};

class tracer {
public:
    explicit tracer(std::size_t capacity = 4096);

    // The clock that timestamps spans.  The transfer harness installs its
    // own virtual clock at the start of a run; spans opened with no clock
    // carry timestamp 0.  The clock is monotone by contract
    // (util/virtual_clock.h), so begin <= end always holds.
    void set_clock(const virtual_clock* clock) noexcept { clock_ = clock; }
    const virtual_clock* clock() const noexcept { return clock_; }

    // Deterministic flow sampling: completed events whose flow id the
    // sampler rejects are counted in sampled_out() and skipped by the ring,
    // but still feed the per-stage aggregates.  The default sampler records
    // everything (the pre-sampling behaviour).
    void set_sampler(const flow_sampler& s) noexcept { sampler_ = s; }
    const flow_sampler& sampler() const noexcept { return sampler_; }
    std::uint64_t sampled_out() const noexcept { return sampled_out_; }

    // --- completed-event ring ------------------------------------------
    std::size_t capacity() const noexcept { return ring_.size(); }
    std::uint64_t recorded() const noexcept { return recorded_; }
    std::uint64_t dropped() const noexcept {
        return recorded_ <= ring_.size() ? 0 : recorded_ - ring_.size();
    }
    // Oldest-surviving-first copy of the ring.
    std::vector<span> events() const;

    // --- per-stage aggregates (never dropped) --------------------------
    const std::map<stage_key, stage_totals>& stages() const noexcept {
        return stages_;
    }
    // Sum of per-span self attribution for one side; equals the attributed
    // memory system's run totals when every access ran inside a span.
    mem_counters side_self_totals(std::string_view side) const;

    std::uint32_t open_depth() const noexcept {
        return static_cast<std::uint32_t>(stack_.size());
    }

    // --- recording (called by scoped_span / scoped_attribution) --------
    void open(const char* category, const char* name);
    void close();
    void record_instant(const char* category, const char* name);

    // --- thread-local installation -------------------------------------
    static tracer* current() noexcept;
    // Returns the previously installed tracer (nullptr if none).
    static tracer* install(tracer* t) noexcept;

private:
    friend class scoped_attribution;
    friend class scoped_flow;

    struct frame {
        const char* category;
        const char* name;
        const char* side;
        const memsim::memory_system* source;  // fixed at open
        std::int64_t flow = -1;
        sim_time begin_us;
        mem_counters at_open;
        mem_counters child_incl;  // same-source children only
        sim_time child_us = 0;
    };

    sim_time now() const noexcept { return clock_ ? clock_->now() : 0; }
    void push_event(const span& s);

    const virtual_clock* clock_ = nullptr;
    const memsim::memory_system* source_ = nullptr;  // current attribution
    const char* side_ = nullptr;
    std::int64_t flow_ = -1;  // current flow scope (-1: none)
    std::vector<frame> stack_;
    flow_sampler sampler_{};
    std::vector<span> ring_;
    std::size_t write_ = 0;       // next ring slot
    std::uint64_t recorded_ = 0;  // events the ring accepted, ever
    std::uint64_t sampled_out_ = 0;  // events the sampler kept out of the ring
    std::map<stage_key, stage_totals> stages_;
};

// RAII span; no-op when no tracer is installed.
class scoped_span {
public:
    scoped_span(const char* category, const char* name)
        : tracer_(tracer::current()) {
        if (tracer_ != nullptr) tracer_->open(category, name);
    }
    ~scoped_span() {
        if (tracer_ != nullptr) tracer_->close();
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    tracer* tracer_;
};

// RAII attribution scope: spans opened inside are charged to `source`
// (one endpoint's memory system) under the domain name `side`.  Nests;
// restores the previous attribution on exit.
class scoped_attribution {
public:
    scoped_attribution(const char* side, const memsim::memory_system* source)
        : tracer_(tracer::current()) {
        if (tracer_ == nullptr) return;
        prev_source_ = tracer_->source_;
        prev_side_ = tracer_->side_;
        tracer_->source_ = source;
        tracer_->side_ = side;
    }
    ~scoped_attribution() {
        if (tracer_ == nullptr) return;
        tracer_->source_ = prev_source_;
        tracer_->side_ = prev_side_;
    }
    scoped_attribution(const scoped_attribution&) = delete;
    scoped_attribution& operator=(const scoped_attribution&) = delete;

private:
    tracer* tracer_;
    const memsim::memory_system* prev_source_ = nullptr;
    const char* prev_side_ = nullptr;
};

// RAII flow scope: spans and instants recorded inside carry `flow` as their
// flow id.  Nests; restores the previous flow on exit.  The engine wraps
// each flow's service visit and packet handlers in one of these.
class scoped_flow {
public:
    explicit scoped_flow(std::int64_t flow) : tracer_(tracer::current()) {
        if (tracer_ == nullptr) return;
        prev_flow_ = tracer_->flow_;
        tracer_->flow_ = flow;
    }
    ~scoped_flow() {
        if (tracer_ != nullptr) tracer_->flow_ = prev_flow_;
    }
    scoped_flow(const scoped_flow&) = delete;
    scoped_flow& operator=(const scoped_flow&) = delete;

private:
    tracer* tracer_;
    std::int64_t prev_flow_ = -1;
};

inline void instant(const char* category, const char* name) {
    if (tracer* t = tracer::current()) t->record_instant(category, name);
}

// Maps a memory policy to the memory system spans should be attributed to:
// sim_memory exposes its system, every other policy (direct_memory) has
// nothing to attribute.
inline const memsim::memory_system* attribution_source(
    const memsim::sim_memory& mem) noexcept {
    return &mem.system();
}
template <typename M>
const memsim::memory_system* attribution_source(const M&) noexcept {
    return nullptr;
}

}  // namespace ilp::obs

// Statement macros for instrumentation sites.  They compile out entirely
// under ILP_OBS=OFF; the arguments are then not evaluated.
#if ILP_OBS_ENABLED
#define ILP_OBS_CONCAT_(a, b) a##b
#define ILP_OBS_CONCAT(a, b) ILP_OBS_CONCAT_(a, b)
#define ILP_OBS_SPAN(category, name)                   \
    [[maybe_unused]] ::ilp::obs::scoped_span ILP_OBS_CONCAT( \
        ilp_obs_span_, __LINE__) { category, name }
#define ILP_OBS_ATTR(side, source)                            \
    [[maybe_unused]] ::ilp::obs::scoped_attribution ILP_OBS_CONCAT( \
        ilp_obs_attr_, __LINE__) { side, source }
#define ILP_OBS_FLOW(flow)                              \
    [[maybe_unused]] ::ilp::obs::scoped_flow ILP_OBS_CONCAT( \
        ilp_obs_flow_, __LINE__) { static_cast<std::int64_t>(flow) }
#define ILP_OBS_INSTANT(category, name) ::ilp::obs::instant(category, name)
#else
#define ILP_OBS_SPAN(category, name) static_cast<void>(0)
#define ILP_OBS_ATTR(side, source) static_cast<void>(0)
#define ILP_OBS_FLOW(flow) static_cast<void>(0)
#define ILP_OBS_INSTANT(category, name) static_cast<void>(0)
#endif
