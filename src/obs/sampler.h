// Deterministic per-flow trace sampling.
//
// At fleet scale, recording every flow's spans into the tracer ring buries
// the trace under an arbitrary interleaving and evicts the spans anyone
// wanted to read.  The sampler makes span *recording* a pure function of
// (seed, flow id): a flow is traced iff its hashed coin lands under the
// configured rate.  Because the decision consults nothing but the seed and
// the flow's own id, the sampled flow set is invariant under shard count,
// shard packing and serial-vs-threaded execution — the same invariance
// contract the engine's per-flow fault streams follow (util::derive_seed).
//
// Sampling gates only the completed-event ring: unsampled flows still feed
// the tracer's never-dropped per-stage aggregates and every metric, so
// fleet-wide accounting stays exact while the trace stays readable.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace ilp::obs {

struct flow_sampler {
    // Stream-split base for the per-flow sampling coin.  Two fleets with the
    // same seed and rate sample the same flow ids.
    std::uint64_t seed = 0;
    // Sampling rate in parts per ten thousand: 10'000 traces every flow
    // (the pre-sampling behaviour and the default), 100 traces ~1 %, 0
    // traces none.
    std::uint32_t rate_permyriad = 10'000;

    // Is `flow` span-traced?  Spans that are not flow-scoped (flow < 0 —
    // harness-level work) are always recorded.
    bool sampled(std::int64_t flow) const noexcept {
        if (flow < 0 || rate_permyriad >= 10'000) return true;
        if (rate_permyriad == 0) return false;
        return derive_seed(seed, static_cast<std::uint64_t>(flow)) % 10'000 <
               rate_permyriad;
    }

    friend bool operator==(const flow_sampler&, const flow_sampler&) = default;
};

}  // namespace ilp::obs
