// Fixed-capacity single-producer/single-consumer ring.
//
// The pipelined dataplane (pipeline/stage_runner.h) connects its stages with
// these rings: stage A (segmentize, shard thread) produces slots, stage B
// (the fused data-manipulation loop, optionally a worker thread) consumes
// and re-produces them, stage C (commit/bookkeeping, shard thread) drains.
//
// Contract:
//   * capacity is a power of two, fixed at construction — no allocation
//     ever happens after the constructor returns,
//   * exactly one producer thread calls try_push and one consumer thread
//     calls try_pop; head/tail are monotone 64-bit counters published with
//     release stores and read with acquire loads, so the slot payload
//     written before a push happens-before the pop that returns it,
//   * full/empty are detected from the counter distance; the ring never
//     overwrites and never blocks — callers own the wait policy (the
//     stage_runner counts those waits as pipeline.ring.{full,empty}_waits).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace ilp::pipeline {

template <typename T>
class spsc_ring {
public:
    explicit spsc_ring(std::size_t capacity)
        : slots_(capacity), mask_(capacity - 1) {
        ILP_EXPECT(capacity > 0 && (capacity & (capacity - 1)) == 0);
    }

    spsc_ring(const spsc_ring&) = delete;
    spsc_ring& operator=(const spsc_ring&) = delete;

    std::size_t capacity() const noexcept { return slots_.size(); }

    // Producer side.  False when the ring is full (consumer lagging).
    bool try_push(const T& value) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        if (tail - head == slots_.size()) return false;
        slots_[tail & mask_] = value;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    // Consumer side.  False when the ring is empty (producer lagging).
    bool try_pop(T& out) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail) return false;
        out = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    // Approximate across threads (each side sees its own counter exactly).
    std::size_t size() const noexcept {
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(tail - head);
    }
    bool empty() const noexcept { return size() == 0; }
    bool full() const noexcept { return size() == slots_.size(); }

private:
    std::vector<T> slots_;
    std::size_t mask_;
    // Separate cache lines so producer and consumer don't false-share.
    alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
    alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace ilp::pipeline
