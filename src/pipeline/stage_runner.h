// Intra-flow stage pipelining over SPSC rings.
//
// The TCP segment path decomposes into three stages with distinct state
// classes (Laminar/FlexTOE-style dataflow TCP, PAPERS.md):
//
//   A  segmentize   — job bookkeeping, reply layout, TCP ring/window
//                     reservation.  Owns job queues and sequence space.
//                     Always on the shard thread.
//   B  fused loop   — marshal + encrypt + checksum in ONE stage.  The source
//                     paper's whole point is that these data manipulations
//                     stay integrated (one read of application memory, one
//                     write into the TCP ring); pipelining happens *around*
//                     the loop, never inside it.  Owns only the slot it was
//                     handed — no shared protocol state — so it may run on a
//                     dedicated worker thread.
//   C  complete     — FIFO commit into the retransmission queue, transmit,
//                     counters, rekey bookkeeping.  Owns TCP/scheduler/crypto
//                     state.  Always on the shard thread.
//
// The stage_runner owns a fixed pool of `depth` slots and two spsc_rings
// (A->B and B->C).  Slots always complete in submission order — the rings
// are FIFO and the worker processes them in order — which is what lets the
// completion stage commit segments with strictly increasing sequence
// numbers and keeps pipelined runs bit-identical to serial ones.
//
// Inline mode (threaded=false) steps the same rings on the caller's thread:
// identical data flow, zero concurrency — the mode used under sim_memory so
// per-stage memsim attribution stays single-threaded, and the determinism
// baseline the threaded mode is tested against.
//
// Stall accounting: acquire() failing (pool exhausted — producer found the
// pipeline full) and next_done() having to wait on the worker (consumer
// found the done ring empty) are the two ring stalls, exported fleet-wide
// as pipeline.ring.{full_waits,empty_waits} and visible per stage in
// `ilp-trace summarize --per-stage-worker`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/tracer.h"
#include "pipeline/spsc_ring.h"
#include "util/contracts.h"

namespace ilp::pipeline {

struct ring_stall_stats {
    std::uint64_t full_waits = 0;   // producer found the pipeline full
    std::uint64_t empty_waits = 0;  // consumer waited on the fused stage
    std::uint64_t segments = 0;     // slots through the full A->B->C path
    std::uint64_t batches = 0;      // scheduler-grant batches submitted
};

template <typename Slot>
class stage_runner {
public:
    using fuse_fn = void (*)(Slot&);

    // `depth` slots (power of two — it sizes the rings), `fuse` is stage B.
    stage_runner(std::size_t depth, bool threaded, fuse_fn fuse)
        : pool_(depth),
          free_(),
          to_fuse_(depth),
          done_(depth),
          fuse_(fuse),
          threaded_(threaded) {
        ILP_EXPECT(fuse != nullptr);
        free_.reserve(depth);
        for (Slot& s : pool_) free_.push_back(&s);
        if (threaded_) {
            worker_ = std::thread([this] { worker_loop(); });
        }
    }

    stage_runner(const stage_runner&) = delete;
    stage_runner& operator=(const stage_runner&) = delete;

    ~stage_runner() {
        if (threaded_) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                stop_ = true;
            }
            work_cv_.notify_one();
            worker_.join();
        }
    }

    std::size_t depth() const noexcept { return pool_.size(); }
    bool threaded() const noexcept { return threaded_; }
    bool outstanding() const noexcept { return submitted_ != 0; }

    // Stage A: claim a free slot, or nullptr when the pipeline is full (the
    // producer stall — complete the oldest slot to make room).
    Slot* acquire() {
        if (free_.empty()) {
            ++stats_.full_waits;
            ILP_OBS_INSTANT("pipeline", "ring_full_wait");
            return nullptr;
        }
        Slot* s = free_.back();
        free_.pop_back();
        return s;
    }

    // Returns an acquired slot that was never submitted (segmentize failed).
    void recycle(Slot* s) { free_.push_back(s); }

    // Stage A -> B handoff.  The pool bound guarantees ring space.
    void submit(Slot* s) {
        const bool pushed = to_fuse_.try_push(s);
        ILP_ENSURE(pushed);  // outstanding <= depth == ring capacity
        ++submitted_;
        if (threaded_) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
            }
            work_cv_.notify_one();
        }
    }

    void note_batch() { ++stats_.batches; }

    // Next completed slot in FIFO submission order; nullptr when nothing is
    // outstanding.  Inline mode runs stage B here on the caller's thread;
    // threaded mode blocks on the worker when the done ring is empty (the
    // consumer stall).
    Slot* next_done() {
        if (submitted_ == 0) return nullptr;
        Slot* s = nullptr;
        if (threaded_) {
            if (!done_.try_pop(s)) {
                ++stats_.empty_waits;
                ILP_OBS_INSTANT("pipeline", "ring_empty_wait");
                std::unique_lock<std::mutex> lock(mutex_);
                done_cv_.wait(lock, [this] { return !done_.empty(); });
                const bool popped = done_.try_pop(s);
                ILP_ENSURE(popped);  // sole consumer
            }
        } else {
            if (!done_.try_pop(s)) {
                const bool popped = to_fuse_.try_pop(s);
                ILP_ENSURE(popped);  // submitted_ > 0 and done_ was empty
                {
                    ILP_OBS_SPAN("pipeline", "fused_loop");
                    fuse_(*s);
                }
                const bool requeued = done_.try_push(s);
                ILP_ENSURE(requeued);
                const bool redrained = done_.try_pop(s);
                ILP_ENSURE(redrained);
            }
        }
        --submitted_;
        ++stats_.segments;
        return s;
    }

    // Stage C done: the slot returns to the pool.
    void release(Slot* s) { free_.push_back(s); }

    const ring_stall_stats& stats() const noexcept { return stats_; }

private:
    void worker_loop() {
        // No tracer travels to the worker (the ILP_OBS macros no-op on
        // threads without one) — stage B runs bare, which is exactly why
        // threaded mode is only eligible under direct_memory.
        for (;;) {
            Slot* s = nullptr;
            if (to_fuse_.try_pop(s)) {
                fuse_(*s);
                const bool pushed = done_.try_push(s);
                ILP_ENSURE(pushed);
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                }
                done_cv_.notify_one();
                continue;
            }
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !to_fuse_.empty(); });
            if (stop_ && to_fuse_.empty()) return;
        }
    }

    std::vector<Slot> pool_;  // stable addresses: slots travel by pointer
    std::vector<Slot*> free_;  // shard-thread-only free list
    spsc_ring<Slot*> to_fuse_;  // stage A -> stage B
    spsc_ring<Slot*> done_;     // stage B -> stage C
    fuse_fn fuse_;
    bool threaded_;
    std::size_t submitted_ = 0;  // slots between submit() and next_done()
    ring_stall_stats stats_;
    std::thread worker_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    bool stop_ = false;
};

}  // namespace ilp::pipeline
