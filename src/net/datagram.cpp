#include "net/datagram.h"

#include <algorithm>
#include <cstring>

#include "obs/tracer.h"

namespace ilp::net {

datagram_pipe::datagram_pipe(virtual_clock& clock, sim_time latency_us,
                             fault_config faults)
    : clock_(&clock),
      latency_us_(latency_us),
      faults_(faults),
      rng_(faults.seed),
      kernel_staging_(max_packet_bytes),
      deliver_buffer_(max_packet_bytes) {}

// Decides whether the packet is lost before it reaches the in-flight queue,
// applying the loss causes in plan order: scheduled outage (clock-driven,
// no RNG draw), then the Gilbert–Elliott burst state, then the independent
// Bernoulli coin.  Burst and truncation draws only happen when configured,
// so legacy fault configs replay the exact same RNG stream as before.
bool datagram_pipe::lose_packet() {
    const sim_time now = clock_->now();
    for (const outage_window& w : faults_.outages) {
        if (now >= w.start_us && now < w.end_us) {
            ++stats_.packets_dropped;
            ++stats_.packets_outage_dropped;
            ILP_OBS_INSTANT("net", "drop_outage");
            return true;
        }
    }
    if (faults_.burst.enabled) {
        const double flip = burst_bad_ ? faults_.burst.p_bad_to_good
                                       : faults_.burst.p_good_to_bad;
        if (rng_.next_bool(flip)) burst_bad_ = !burst_bad_;
        const double loss =
            burst_bad_ ? faults_.burst.bad_loss : faults_.burst.good_loss;
        if (rng_.next_bool(loss)) {
            ++stats_.packets_dropped;
            if (burst_bad_) ++stats_.packets_burst_dropped;
            ILP_OBS_INSTANT("net", "drop_burst");
            return true;
        }
    }
    if (rng_.next_bool(faults_.drop_probability)) {
        ++stats_.packets_dropped;
        ILP_OBS_INSTANT("net", "drop_random");
        return true;
    }
    return false;
}

void datagram_pipe::enqueue(std::size_t bytes) {
    ILP_OBS_SPAN("net", "enqueue");
    ++stats_.packets_sent;
    ++stats_.send_crossings;
    stats_.bytes_sent += bytes;

    if (lose_packet()) return;

    const int copies = rng_.next_bool(faults_.duplicate_probability) ? 2 : 1;
    if (copies == 2) ++stats_.packets_duplicated;

    for (int c = 0; c < copies; ++c) {
        // Finite kernel queue: tail drop when the link is saturated.
        if (faults_.max_queue_packets != 0 &&
            queue_.size() >= faults_.max_queue_packets) {
            ++stats_.packets_dropped;
            ++stats_.packets_queue_dropped;
            ILP_OBS_INSTANT("net", "drop_queue");
            continue;
        }
        in_flight_packet pkt;
        pkt.data.assign(kernel_staging_.data(), kernel_staging_.data() + bytes);
        if (rng_.next_bool(faults_.corrupt_probability)) {
            ++stats_.packets_corrupted;
            ILP_OBS_INSTANT("net", "corrupt");
            const std::size_t victim = rng_.next_below(pkt.data.size());
            pkt.data[victim] ^= static_cast<std::byte>(
                1u << rng_.next_below(8));
        }
        if (faults_.truncate_probability > 0 && bytes > 1 &&
            rng_.next_bool(faults_.truncate_probability)) {
            ++stats_.packets_truncated;
            pkt.data.resize(1 + rng_.next_below(bytes - 1));
        }
        sim_time deliver_at = clock_->now() + latency_us_;
        if (rng_.next_bool(faults_.reorder_probability)) {
            ++stats_.packets_reordered;
            // Hold the packet long enough that a later send overtakes it.
            deliver_at += 2 * latency_us_ + 1;
        }
        pkt.deliver_at = deliver_at;
        queue_.push_back(std::move(pkt));
        clock_->schedule_at(deliver_at, [this] { deliver_due(); });
    }
}

void datagram_pipe::deliver_due() {
    ILP_OBS_SPAN("net", "deliver");
    const sim_time now = clock_->now();
    for (;;) {
        // Earliest due packet (stable order for ties: queue order).
        auto it = queue_.end();
        for (auto cand = queue_.begin(); cand != queue_.end(); ++cand) {
            if (cand->deliver_at > now) continue;
            if (it == queue_.end() || cand->deliver_at < it->deliver_at) {
                it = cand;
            }
        }
        if (it == queue_.end()) break;

        const std::size_t n = it->data.size();
        std::memcpy(deliver_buffer_.data(), it->data.data(), n);
        queue_.erase(it);
        ++stats_.packets_delivered;
        ++stats_.deliver_crossings;
        if (on_packet_ != nullptr) {
            on_packet_(deliver_buffer_.subspan(0, n));
        }
    }
}

}  // namespace ilp::net
