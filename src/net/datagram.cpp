#include "net/datagram.h"

#include <algorithm>
#include <cstring>

namespace ilp::net {

datagram_pipe::datagram_pipe(virtual_clock& clock, sim_time latency_us,
                             fault_config faults)
    : clock_(&clock),
      latency_us_(latency_us),
      faults_(faults),
      rng_(faults.seed),
      kernel_staging_(max_packet_bytes),
      deliver_buffer_(max_packet_bytes) {}

void datagram_pipe::enqueue(std::size_t bytes) {
    ++stats_.packets_sent;
    ++stats_.send_crossings;
    stats_.bytes_sent += bytes;

    if (rng_.next_bool(faults_.drop_probability)) {
        ++stats_.packets_dropped;
        return;
    }

    const int copies = rng_.next_bool(faults_.duplicate_probability) ? 2 : 1;
    if (copies == 2) ++stats_.packets_duplicated;

    for (int c = 0; c < copies; ++c) {
        in_flight_packet pkt;
        pkt.data.assign(kernel_staging_.data(), kernel_staging_.data() + bytes);
        if (rng_.next_bool(faults_.corrupt_probability)) {
            ++stats_.packets_corrupted;
            const std::size_t victim = rng_.next_below(bytes);
            pkt.data[victim] ^= static_cast<std::byte>(
                1u << rng_.next_below(8));
        }
        sim_time deliver_at = clock_->now() + latency_us_;
        if (rng_.next_bool(faults_.reorder_probability)) {
            ++stats_.packets_reordered;
            // Hold the packet long enough that a later send overtakes it.
            deliver_at += 2 * latency_us_ + 1;
        }
        pkt.deliver_at = deliver_at;
        queue_.push_back(std::move(pkt));
        clock_->schedule_at(deliver_at, [this] { deliver_due(); });
    }
}

void datagram_pipe::deliver_due() {
    const sim_time now = clock_->now();
    for (;;) {
        // Earliest due packet (stable order for ties: queue order).
        auto it = queue_.end();
        for (auto cand = queue_.begin(); cand != queue_.end(); ++cand) {
            if (cand->deliver_at > now) continue;
            if (it == queue_.end() || cand->deliver_at < it->deliver_at) {
                it = cand;
            }
        }
        if (it == queue_.end()) break;

        const std::size_t n = it->data.size();
        std::memcpy(deliver_buffer_.data(), it->data.data(), n);
        queue_.erase(it);
        ++stats_.packets_delivered;
        ++stats_.deliver_crossings;
        if (on_packet_ != nullptr) {
            on_packet_(deliver_buffer_.subspan(0, n));
        }
    }
}

}  // namespace ilp::net
