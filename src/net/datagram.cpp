#include "net/datagram.h"

#include <algorithm>
#include <cstring>

#include "obs/tracer.h"

namespace ilp::net {

datagram_pipe::datagram_pipe(virtual_clock& clock, sim_time latency_us,
                             fault_config faults)
    : clock_(&clock),
      latency_us_(latency_us),
      faults_(faults),
      untagged_(faults, faults.seed),
      kernel_staging_(max_packet_bytes),
      deliver_buffer_(max_packet_bytes),
      rx_ring_(max_packet_bytes + 512) {}

void datagram_pipe::configure_tag(std::uint32_t tag,
                                  const fault_config& faults) {
    ILP_EXPECT(tag != 0);
    tagged_.insert_or_assign(
        tag, fault_state(faults, derive_seed(faults.seed, tag)));
}

datagram_pipe::fault_state& datagram_pipe::state_for(std::uint32_t tag) {
    if (tag == 0) return untagged_;
    const auto it = tagged_.find(tag);
    if (it != tagged_.end()) return it->second;
    // Unconfigured tag: inherit the pipe-level plan on the tag's own stream.
    return tagged_
        .emplace(tag, fault_state(faults_, derive_seed(faults_.seed, tag)))
        .first->second;
}

tag_stats datagram_pipe::stats_for_tag(std::uint32_t tag) const {
    if (tag == 0) return untagged_.stats;
    const auto it = tagged_.find(tag);
    return it == tagged_.end() ? tag_stats{} : it->second.stats;
}

std::size_t datagram_pipe::in_flight_for(std::uint32_t tag) const {
    if (tag == 0) return untagged_.stats.in_flight;
    const auto it = tagged_.find(tag);
    return it == tagged_.end() ? 0 : it->second.stats.in_flight;
}

// Decides whether the packet is lost before it reaches the in-flight queue,
// applying the loss causes in plan order: scheduled outage (clock-driven,
// no RNG draw), then the Gilbert–Elliott burst state, then the independent
// Bernoulli coin.  Burst and truncation draws only happen when configured,
// so legacy fault configs replay the exact same RNG stream as before.
bool datagram_pipe::lose_packet(fault_state& fs) {
    const sim_time now = clock_->now();
    for (const outage_window& w : fs.faults.outages) {
        if (now >= w.start_us && now < w.end_us) {
            ++stats_.packets_dropped;
            ++stats_.packets_outage_dropped;
            ++fs.stats.packets_dropped;
            ILP_OBS_INSTANT("net", "drop_outage");
            return true;
        }
    }
    if (fs.faults.burst.enabled) {
        const double flip = fs.burst_bad ? fs.faults.burst.p_bad_to_good
                                         : fs.faults.burst.p_good_to_bad;
        if (fs.coin.next_bool(flip)) fs.burst_bad = !fs.burst_bad;
        const double loss =
            fs.burst_bad ? fs.faults.burst.bad_loss : fs.faults.burst.good_loss;
        if (fs.coin.next_bool(loss)) {
            ++stats_.packets_dropped;
            if (fs.burst_bad) ++stats_.packets_burst_dropped;
            ++fs.stats.packets_dropped;
            ILP_OBS_INSTANT("net", "drop_burst");
            return true;
        }
    }
    if (fs.coin.next_bool(fs.faults.drop_probability)) {
        ++stats_.packets_dropped;
        ++fs.stats.packets_dropped;
        ILP_OBS_INSTANT("net", "drop_random");
        return true;
    }
    return false;
}

void datagram_pipe::enqueue(std::size_t bytes, std::uint32_t tag) {
    ILP_OBS_SPAN("net", "enqueue");
    ++stats_.packets_sent;
    ++stats_.send_crossings;
    stats_.bytes_sent += bytes;
    fault_state& fs = state_for(tag);
    ++fs.stats.packets_sent;

    if (lose_packet(fs)) return;

    const int copies = fs.coin.next_bool(fs.faults.duplicate_probability) ? 2 : 1;
    if (copies == 2) ++stats_.packets_duplicated;

    for (int c = 0; c < copies; ++c) {
        // Fair-share cap first: a flow already holding its share of the
        // shared queue loses the packet even if the queue has room, so a
        // pathological flow cannot crowd everyone else out.
        if (tag != 0 && per_tag_queue_cap_ != 0 &&
            fs.stats.in_flight >= per_tag_queue_cap_) {
            ++stats_.packets_dropped;
            ++stats_.packets_queue_dropped;
            ++fs.stats.packets_dropped;
            ++fs.stats.packets_queue_dropped;
            ILP_OBS_INSTANT("net", "drop_queue_share");
            continue;
        }
        // Finite kernel queue: tail drop when the link is saturated.
        if (faults_.max_queue_packets != 0 &&
            queue_.size() >= faults_.max_queue_packets) {
            ++stats_.packets_dropped;
            ++stats_.packets_queue_dropped;
            ++fs.stats.packets_dropped;
            ++fs.stats.packets_queue_dropped;
            ILP_OBS_INSTANT("net", "drop_queue");
            continue;
        }
        in_flight_packet pkt;
        pkt.tag = tag;
        pkt.data.assign(kernel_staging_.data(), kernel_staging_.data() + bytes);
        if (fs.coin.next_bool(fs.faults.corrupt_probability)) {
            ++stats_.packets_corrupted;
            ILP_OBS_INSTANT("net", "corrupt");
            // Always draw uniformly over the whole packet, then remap the
            // victim into the targeted region: the RNG draw sequence is
            // identical whatever corrupt_span says, so switching targets
            // never perturbs the rest of the fault replay.
            std::size_t victim = fs.coin.next_below(pkt.data.size());
            const std::size_t header = std::min<std::size_t>(20, bytes);
            const std::size_t tail = std::min<std::size_t>(8, bytes);
            switch (fs.faults.corrupt_span) {
                case corrupt_target::anywhere:
                    break;
                case corrupt_target::header:
                    victim %= header;
                    ++stats_.packets_header_corrupted;
                    break;
                case corrupt_target::payload:
                    // Past the header image; tiny packets keep the full
                    // range rather than corrupting nothing.
                    if (bytes > header) {
                        victim = header + victim % (bytes - header);
                    }
                    ++stats_.packets_payload_corrupted;
                    break;
                case corrupt_target::trailer_tail:
                    victim = bytes - tail + victim % tail;
                    ++stats_.packets_tail_corrupted;
                    break;
            }
            pkt.data[victim] ^= static_cast<std::byte>(
                1u << fs.coin.next_below(8));
        }
        if (fs.faults.truncate_probability > 0 && bytes > 1 &&
            fs.coin.next_bool(fs.faults.truncate_probability)) {
            ++stats_.packets_truncated;
            pkt.data.resize(1 + fs.coin.next_below(bytes - 1));
        }
        sim_time deliver_at = clock_->now() + latency_us_;
        if (fs.coin.next_bool(fs.faults.reorder_probability)) {
            ++stats_.packets_reordered;
            // Hold the packet long enough that a later send overtakes it.
            deliver_at += 2 * latency_us_ + 1;
        }
        pkt.deliver_at = deliver_at;
        queue_.push_back(std::move(pkt));
        ++fs.stats.in_flight;
        clock_->schedule_at(deliver_at, [this] { deliver_due(); });
    }
}

void datagram_pipe::deliver_due() {
    ILP_OBS_SPAN("net", "deliver");
    const sim_time now = clock_->now();
    for (;;) {
        // Earliest due packet (stable order for ties: queue order).
        auto it = queue_.end();
        for (auto cand = queue_.begin(); cand != queue_.end(); ++cand) {
            if (cand->deliver_at > now) continue;
            if (it == queue_.end() || cand->deliver_at < it->deliver_at) {
                it = cand;
            }
        }
        if (it == queue_.end()) break;

        const std::size_t n = it->data.size();
        const_ring_span loan;
        if (on_segment_ != nullptr) {
            // Loaned delivery: DMA the packet into the receive ring at the
            // current write offset, splitting it across the wrap when it
            // does not fit contiguously.  The copy is physical but
            // uncounted, like the deliver-buffer staging below — the model
            // charges the receiver only for what it touches in place.
            const std::size_t cap = rx_ring_.size();
            const std::size_t at = rx_offset_;
            if (at + n <= cap) {
                std::memcpy(rx_ring_.data() + at, it->data.data(), n);
                loan.first = {rx_ring_.data() + at, n};
            } else {
                const std::size_t head = cap - at;
                std::memcpy(rx_ring_.data() + at, it->data.data(), head);
                std::memcpy(rx_ring_.data(), it->data.data() + head,
                            n - head);
                loan.first = {rx_ring_.data() + at, head};
                loan.second = {rx_ring_.data(), n - head};
            }
            rx_offset_ = (at + n) % cap;
        } else {
            std::memcpy(deliver_buffer_.data(), it->data.data(), n);
        }
        fault_state& fs = state_for(it->tag);
        ILP_EXPECT(fs.stats.in_flight > 0);
        --fs.stats.in_flight;
        ++fs.stats.packets_delivered;
        queue_.erase(it);
        ++stats_.packets_delivered;
        ++stats_.deliver_crossings;
        if (on_segment_ != nullptr) {
            on_segment_(loan);
        } else if (on_packet_ != nullptr) {
            on_packet_(deliver_buffer_.subspan(0, n));
        }
    }
}

}  // namespace ilp::net
