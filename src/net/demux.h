// Port demultiplexer — the kernel part's routing duty.
//
// §3.1: "On the receiving side, the kernel part demultiplexes IP packets to
// the corresponding user-level TCP connection, i.e. to the corresponding
// application.  Each TCP user-level connection receives only the packets of
// its associated application."
//
// The demux peeks at the TCP destination port (bytes 2..3 of the segment)
// without a full header parse — kernel demultiplexing is deliberately
// minimal, everything else happens in user space.  Register it as a
// datagram_pipe receiver and bind one handler per local port.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "tcp/header.h"
#include "util/contracts.h"
#include "util/endian.h"

namespace ilp::net {

class port_demux {
public:
    using handler = std::function<void(std::span<const std::byte>)>;

    // Binds `on_packet` to segments addressed to `port`.  A port may have at
    // most one listener: binding an already-bound port is rejected (returns
    // false, counted) instead of silently replacing the existing flow's
    // handler.  Restarting a connection on the same port is an explicit
    // rebind().
    [[nodiscard]] bool bind(std::uint16_t port, handler on_packet) {
        const auto [it, inserted] =
            handlers_.emplace(port, std::move(on_packet));
        if (!inserted) ++bind_conflicts_;
        return inserted;
    }

    // Replaces the handler of a bound port (connection restart) or binds a
    // free one.
    void rebind(std::uint16_t port, handler on_packet) {
        handlers_[port] = std::move(on_packet);
    }

    void unbind(std::uint16_t port) { handlers_.erase(port); }

    std::size_t bound_ports() const noexcept { return handlers_.size(); }

    // The pipe receiver: route by destination port.
    void dispatch(std::span<const std::byte> packet) {
        if (packet.size() < tcp::header_bytes) {
            ++malformed_;
            return;
        }
        const std::uint16_t dst_port = load_be16(packet.data() + 2);
        const auto it = handlers_.find(dst_port);
        if (it == handlers_.end()) {
            ++no_listener_drops_;
            return;
        }
        ++dispatched_;
        it->second(packet);
    }

    // Adapter for datagram_pipe::set_receiver.
    handler receiver() {
        return [this](std::span<const std::byte> p) { dispatch(p); };
    }

    std::uint64_t dispatched() const noexcept { return dispatched_; }
    std::uint64_t no_listener_drops() const noexcept {
        return no_listener_drops_;
    }
    std::uint64_t malformed() const noexcept { return malformed_; }
    std::uint64_t bind_conflicts() const noexcept { return bind_conflicts_; }

private:
    std::map<std::uint16_t, handler> handlers_;
    std::uint64_t dispatched_ = 0;
    std::uint64_t no_listener_drops_ = 0;
    std::uint64_t malformed_ = 0;
    std::uint64_t bind_conflicts_ = 0;
};

// Port-number allocator for the multi-flow engine: hands out local ports
// from a fixed range, recycles released ports (LIFO, so teardown/reopen
// churn stays in a small working set), and reports exhaustion as an explicit
// error (nullopt) instead of the silent-overwrite UB path that handing the
// same port to two flows used to be.
//
// Every operation is strictly O(1), allocation-free after construction: the
// free list is reserved for the whole range up front (release can never
// reallocate), and a per-port busy bitmap turns the releasing-a-free-port
// programmer error into an O(1) contract check instead of a list scan.
class port_allocator {
public:
    port_allocator(std::uint16_t first, std::uint16_t last)
        : first_(first), last_(last), next_(first), busy_(capacity(), 0) {
        ILP_EXPECT(first <= last);
        free_.reserve(capacity());
    }

    // Next free port, or nullopt when the range is exhausted.
    std::optional<std::uint16_t> allocate() {
        if (!free_.empty()) {
            const std::uint16_t p = free_.back();
            free_.pop_back();
            ++allocated_;
            busy_[p - first_] = 1;
            return p;
        }
        if (next_ > last_) return std::nullopt;
        ++allocated_;
        const std::uint16_t p = static_cast<std::uint16_t>(next_++);
        busy_[p - first_] = 1;
        return p;
    }

    // Returns a port to the pool.  Releasing a port that was never handed
    // out — including a double release — is a programmer error.
    void release(std::uint16_t port) {
        ILP_EXPECT(port >= first_ && port < next_);
        ILP_EXPECT(busy_[port - first_] != 0);
        ILP_EXPECT(allocated_ > 0);
        --allocated_;
        busy_[port - first_] = 0;
        free_.push_back(port);  // never reallocates: reserved to capacity()
    }

    std::size_t capacity() const noexcept {
        return static_cast<std::size_t>(last_ - first_) + 1;
    }
    std::size_t allocated() const noexcept { return allocated_; }
    // Structural O(1) witnesses for the churn microbench: the free list must
    // keep its construction-time reservation through any churn pattern.
    std::size_t free_list_capacity() const noexcept { return free_.capacity(); }
    std::size_t free_list_size() const noexcept { return free_.size(); }

private:
    std::uint16_t first_;
    std::uint16_t last_;
    std::uint32_t next_;  // wider than uint16_t so next_ > last_ can hold
    std::size_t allocated_ = 0;
    std::vector<std::uint16_t> free_;
    std::vector<std::uint8_t> busy_;  // 1 = currently handed out
};

}  // namespace ilp::net
