// Port demultiplexer — the kernel part's routing duty.
//
// §3.1: "On the receiving side, the kernel part demultiplexes IP packets to
// the corresponding user-level TCP connection, i.e. to the corresponding
// application.  Each TCP user-level connection receives only the packets of
// its associated application."
//
// The demux peeks at the TCP destination port (bytes 2..3 of the segment)
// without a full header parse — kernel demultiplexing is deliberately
// minimal, everything else happens in user space.  Register it as a
// datagram_pipe receiver and bind one handler per local port.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>

#include "tcp/header.h"
#include "util/endian.h"

namespace ilp::net {

class port_demux {
public:
    using handler = std::function<void(std::span<const std::byte>)>;

    // Binds `on_packet` to segments addressed to `port`.  Rebinding a bound
    // port replaces the handler (connection restart).
    void bind(std::uint16_t port, handler on_packet) {
        handlers_[port] = std::move(on_packet);
    }

    void unbind(std::uint16_t port) { handlers_.erase(port); }

    std::size_t bound_ports() const noexcept { return handlers_.size(); }

    // The pipe receiver: route by destination port.
    void dispatch(std::span<const std::byte> packet) {
        if (packet.size() < tcp::header_bytes) {
            ++malformed_;
            return;
        }
        const std::uint16_t dst_port = load_be16(packet.data() + 2);
        const auto it = handlers_.find(dst_port);
        if (it == handlers_.end()) {
            ++no_listener_drops_;
            return;
        }
        ++dispatched_;
        it->second(packet);
    }

    // Adapter for datagram_pipe::set_receiver.
    handler receiver() {
        return [this](std::span<const std::byte> p) { dispatch(p); };
    }

    std::uint64_t dispatched() const noexcept { return dispatched_; }
    std::uint64_t no_listener_drops() const noexcept {
        return no_listener_drops_;
    }
    std::uint64_t malformed() const noexcept { return malformed_; }

private:
    std::map<std::uint16_t, handler> handlers_;
    std::uint64_t dispatched_ = 0;
    std::uint64_t no_listener_drops_ = 0;
    std::uint64_t malformed_ = 0;
};

}  // namespace ilp::net
