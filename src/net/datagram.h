// The "kernel part": an in-process datagram service.
//
// The paper's user-level TCP sits on a thin kernel component with "similar
// functionality as UDP without checksum" (§3.1): it carries TPDUs between
// the user-level TCP instances and demultiplexes arriving packets to the
// right connection.  This module reproduces that substrate in-process:
//
//   * unidirectional `datagram_pipe`s with configurable latency,
//   * deterministic fault injection (drop / duplicate / corrupt / reorder)
//     driven by a seeded RNG so failure tests are reproducible,
//   * an explicit *system copy* at each domain crossing, performed through
//     the caller's memory-access policy — the r/w pass the paper's Figures
//     3 and 5 label "system copy", and
//   * crossing counters, because the user/kernel crossing count is the
//     paper's explanation for the user-level vs kernel TCP gap (Fig. 12).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "buffer/byte_buffer.h"
#include "buffer/ring_buffer.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

namespace ilp::net {

// Gilbert–Elliott two-state loss model: the link alternates between a good
// and a bad state with the given transition probabilities (evaluated once
// per packet) and drops packets with a state-dependent probability.  This
// produces the *correlated* (bursty) loss real links exhibit, which
// independent Bernoulli drops cannot.
struct burst_model {
    bool enabled = false;
    double p_good_to_bad = 0.0;  // P(good -> bad) per packet
    double p_bad_to_good = 1.0;  // P(bad -> good) per packet
    double good_loss = 0.0;      // drop probability while in the good state
    double bad_loss = 1.0;       // drop probability while in the bad state
};

// A scheduled link outage: every packet sent with now() in [start_us,
// end_us) is dropped, deterministic and independent of the RNG.
struct outage_window {
    sim_time start_us = 0;
    sim_time end_us = 0;
};

// Where a corruption flip lands.  `anywhere` is the classic uniform draw;
// the targeted modes remap the same draw into a region of the packet, so a
// test can aim the bit flip at the protocol header, the payload body, or
// the trailing bytes (where the secure framing keeps its epoch+tag trailer)
// without changing the RNG draw sequence.
enum class corrupt_target : std::uint8_t {
    anywhere,
    header,        // first min(20, size) bytes — the TCP header image
    payload,       // bytes past the header region (whole packet if tiny)
    trailer_tail,  // last min(8, size) bytes — the secure trailer image
};

// A fault *plan*: the classic per-packet Bernoulli coins plus correlated
// burst loss, scheduled outages, packet truncation and a finite kernel
// queue.  Everything is driven by one seeded RNG (plus the virtual clock
// for outages), so any failure scenario replays bit-for-bit.
struct fault_config {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double corrupt_probability = 0.0;
    corrupt_target corrupt_span = corrupt_target::anywhere;
    double reorder_probability = 0.0;
    // Deliver only a random proper prefix of the packet (models a partial
    // DMA / mid-frame cut; the checksum or header parse catches it).
    double truncate_probability = 0.0;
    burst_model burst{};
    std::vector<outage_window> outages{};
    // Finite kernel queue: packets arriving while `max_queue_packets` are
    // already in flight are tail-dropped.  0 means unbounded.
    std::size_t max_queue_packets = 0;
    std::uint64_t seed = 1;
};

struct pipe_stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;  // all loss causes combined
    std::uint64_t packets_duplicated = 0;
    std::uint64_t packets_corrupted = 0;
    std::uint64_t packets_reordered = 0;
    std::uint64_t bytes_sent = 0;
    // Per-cause loss breakdown (each drop increments packets_dropped plus
    // exactly one of these; plain Bernoulli drops are the remainder).
    std::uint64_t packets_burst_dropped = 0;   // Gilbert–Elliott bad state
    std::uint64_t packets_outage_dropped = 0;  // scheduled outage window
    std::uint64_t packets_queue_dropped = 0;   // finite kernel queue full
    std::uint64_t packets_truncated = 0;       // delivered, but cut short
    // Per-target corruption breakdown (each targeted flip increments
    // packets_corrupted plus exactly one of these; `anywhere` flips are the
    // remainder).
    std::uint64_t packets_header_corrupted = 0;
    std::uint64_t packets_payload_corrupted = 0;
    std::uint64_t packets_tail_corrupted = 0;
    // Domain crossings: one per send() (user -> kernel) and one per
    // delivered packet (kernel -> user handler).
    std::uint64_t send_crossings = 0;
    std::uint64_t deliver_crossings = 0;
};

// Per-tag view of the shared queue: one logical flow's share of the pipe.
// The multi-flow engine tags every send with the flow's id, so the kernel
// queue can account (and bound) each flow's occupancy and the fault plan can
// draw each flow's coins from its own RNG stream.
struct tag_stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;        // all loss causes combined
    std::uint64_t packets_queue_dropped = 0;  // shared queue / fair-share cap
    std::size_t in_flight = 0;
};

// One direction of a link.  Packets are copied into a kernel staging buffer
// through the sender's memory policy (the send-side system copy), queued
// with the configured latency, and handed to the receiver as a span of
// kernel memory (the receive-side system copy is the receiver's duty,
// matching Fig. 5 step 1).
//
// Multi-flow use: several connections share one pipe, distinguished by a
// send *tag* (0 = untagged, the single-flow legacy path).  Each tag gets its
// own fault plan and RNG stream — seeded derive_seed(seed, tag) — so one
// flow's loss pattern depends only on its own packet sequence, never on how
// other flows' packets interleave on the shared link.  The finite kernel
// queue stays shared (faults_.max_queue_packets), with an optional per-tag
// fair-share cap so one retransmit-happy flow cannot occupy the whole queue
// and starve the rest.
class datagram_pipe {
public:
    static constexpr std::size_t max_packet_bytes = 8 * 1024;

    using handler = std::function<void(std::span<const std::byte>)>;
    // Zero-copy delivery: the packet as a loan inside the pipe's receive
    // ring — up to two spans when it straddles the ring wrap.
    using segment_handler = std::function<void(const const_ring_span&)>;

    datagram_pipe(virtual_clock& clock, sim_time latency_us,
                  fault_config faults = {});

    void set_receiver(handler on_packet) { on_packet_ = std::move(on_packet); }

    // Installs a zero-copy receiver, replacing any span handler.  Instead of
    // staging each packet in the shared deliver buffer (which the receiver
    // must then copy into user space), the pipe lends the packet in place
    // inside its receive ring: the loan is valid only for the duration of
    // the call, and the receiver either processes it in place or copies
    // the bytes it needs to keep.  The DMA into the ring is physical but
    // uncounted, exactly like the deliver-buffer staging it replaces — the
    // loan removes the *counted* user-space copy, not the kernel DMA.
    void set_segment_receiver(segment_handler on_segment) {
        on_segment_ = std::move(on_segment);
    }

    // Sends the concatenation of `parts` as one datagram.  The gather lets
    // TCP transmit a header plus (possibly wrapped) ring-buffer payload
    // without pre-flattening, like writev.  All bytes are copied into the
    // kernel staging buffer through `mem`.
    template <memsim::memory_policy Mem>
    void send(const Mem& mem,
              std::initializer_list<std::span<const std::byte>> parts,
              std::uint32_t tag = 0) {
        std::size_t total = 0;
        for (const auto part : parts) {
            ILP_EXPECT(total + part.size() <= max_packet_bytes);
            mem.copy(kernel_staging_.data() + total, part.data(), part.size());
            total += part.size();
        }
        enqueue(total, tag);
    }

    template <memsim::memory_policy Mem>
    void send(const Mem& mem, std::span<const std::byte> packet,
              std::uint32_t tag = 0) {
        send(mem, {packet}, tag);
    }

    // Zero-copy send: models an fbufs/zero-copy network adapter (the
    // paper's refs [12]-[15]) where the driver DMAs straight out of the
    // protocol buffer — no counted system copy, the crossing still happens.
    // §4.1: "Using more advanced systems, e.g. zero-copy network adapters
    // ... could raise the benefits from ILP further."
    void send_zero_copy(std::initializer_list<std::span<const std::byte>> parts,
                        std::uint32_t tag = 0) {
        std::size_t total = 0;
        for (const auto part : parts) {
            ILP_EXPECT(total + part.size() <= max_packet_bytes);
            std::memcpy(kernel_staging_.data() + total, part.data(),
                        part.size());
            total += part.size();
        }
        enqueue(total, tag);
    }

    // Installs a fault plan for one tag (tag != 0).  Without this, a tagged
    // send inherits the pipe-level plan; either way the tag's coins come
    // from its own derive_seed(seed, tag) stream.
    void configure_tag(std::uint32_t tag, const fault_config& faults);

    // Fair-share bound on the shared queue: a tagged packet arriving while
    // its tag already has `cap` packets in flight is queue-dropped even if
    // the shared queue has room.  0 disables the cap.
    void set_per_tag_queue_cap(std::size_t cap) noexcept {
        per_tag_queue_cap_ = cap;
    }

    // Delivers every packet whose latency has elapsed (called by the clock's
    // timer machinery; exposed for tests that poll manually).
    void deliver_due();

    const pipe_stats& stats() const noexcept { return stats_; }
    std::size_t in_flight() const noexcept { return queue_.size(); }
    // Per-tag accounting; zeroed stats for a tag never seen.
    tag_stats stats_for_tag(std::uint32_t tag) const;
    std::size_t in_flight_for(std::uint32_t tag) const;

private:
    struct in_flight_packet {
        std::vector<std::byte> data;
        sim_time deliver_at;
        std::uint32_t tag = 0;
    };

    // Fault-plan state of one coin stream (the untagged legacy stream or one
    // tag's stream).
    struct fault_state {
        fault_config faults;
        rng coin;
        bool burst_bad = false;  // Gilbert–Elliott state
        tag_stats stats;
        fault_state(const fault_config& f, std::uint64_t seed)
            : faults(f), coin(seed) {}
    };

    void enqueue(std::size_t bytes, std::uint32_t tag);
    // Outage / burst / Bernoulli verdict against one stream's plan.
    bool lose_packet(fault_state& fs);
    fault_state& state_for(std::uint32_t tag);

    virtual_clock* clock_;
    sim_time latency_us_;
    fault_config faults_;
    fault_state untagged_;
    std::map<std::uint32_t, fault_state> tagged_;
    std::size_t per_tag_queue_cap_ = 0;
    handler on_packet_;
    segment_handler on_segment_;
    byte_buffer kernel_staging_;  // send-side kernel buffer (system copy dst)
    byte_buffer deliver_buffer_;  // receive-side kernel buffer (DMA target)
    // Receive ring for loaned deliveries: sized a little past the largest
    // packet so the write offset wraps at varying positions and loans
    // regularly straddle the wrap (exercising the two-span chain path).
    byte_buffer rx_ring_;
    std::size_t rx_offset_ = 0;
    std::deque<in_flight_packet> queue_;
    pipe_stats stats_;
};

// A bidirectional link: data direction plus the reverse path the
// acknowledgement packets use.
class duplex_link {
public:
    duplex_link(virtual_clock& clock, sim_time latency_us,
                fault_config forward_faults = {},
                fault_config reverse_faults = {})
        : forward_(clock, latency_us, forward_faults),
          reverse_(clock, latency_us, reverse_faults) {}

    datagram_pipe& forward() noexcept { return forward_; }
    datagram_pipe& reverse() noexcept { return reverse_; }

private:
    datagram_pipe forward_;
    datagram_pipe reverse_;
};

}  // namespace ilp::net
