// The "kernel part": an in-process datagram service.
//
// The paper's user-level TCP sits on a thin kernel component with "similar
// functionality as UDP without checksum" (§3.1): it carries TPDUs between
// the user-level TCP instances and demultiplexes arriving packets to the
// right connection.  This module reproduces that substrate in-process:
//
//   * unidirectional `datagram_pipe`s with configurable latency,
//   * deterministic fault injection (drop / duplicate / corrupt / reorder)
//     driven by a seeded RNG so failure tests are reproducible,
//   * an explicit *system copy* at each domain crossing, performed through
//     the caller's memory-access policy — the r/w pass the paper's Figures
//     3 and 5 label "system copy", and
//   * crossing counters, because the user/kernel crossing count is the
//     paper's explanation for the user-level vs kernel TCP gap (Fig. 12).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "buffer/byte_buffer.h"
#include "buffer/ring_buffer.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

namespace ilp::net {

struct fault_config {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double corrupt_probability = 0.0;
    double reorder_probability = 0.0;
    std::uint64_t seed = 1;
};

struct pipe_stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_duplicated = 0;
    std::uint64_t packets_corrupted = 0;
    std::uint64_t packets_reordered = 0;
    std::uint64_t bytes_sent = 0;
    // Domain crossings: one per send() (user -> kernel) and one per
    // delivered packet (kernel -> user handler).
    std::uint64_t send_crossings = 0;
    std::uint64_t deliver_crossings = 0;
};

// One direction of a link.  Packets are copied into a kernel staging buffer
// through the sender's memory policy (the send-side system copy), queued
// with the configured latency, and handed to the receiver as a span of
// kernel memory (the receive-side system copy is the receiver's duty,
// matching Fig. 5 step 1).
class datagram_pipe {
public:
    static constexpr std::size_t max_packet_bytes = 8 * 1024;

    using handler = std::function<void(std::span<const std::byte>)>;

    datagram_pipe(virtual_clock& clock, sim_time latency_us,
                  fault_config faults = {});

    void set_receiver(handler on_packet) { on_packet_ = std::move(on_packet); }

    // Sends the concatenation of `parts` as one datagram.  The gather lets
    // TCP transmit a header plus (possibly wrapped) ring-buffer payload
    // without pre-flattening, like writev.  All bytes are copied into the
    // kernel staging buffer through `mem`.
    template <memsim::memory_policy Mem>
    void send(const Mem& mem,
              std::initializer_list<std::span<const std::byte>> parts) {
        std::size_t total = 0;
        for (const auto part : parts) {
            ILP_EXPECT(total + part.size() <= max_packet_bytes);
            mem.copy(kernel_staging_.data() + total, part.data(), part.size());
            total += part.size();
        }
        enqueue(total);
    }

    template <memsim::memory_policy Mem>
    void send(const Mem& mem, std::span<const std::byte> packet) {
        send(mem, {packet});
    }

    // Zero-copy send: models an fbufs/zero-copy network adapter (the
    // paper's refs [12]-[15]) where the driver DMAs straight out of the
    // protocol buffer — no counted system copy, the crossing still happens.
    // §4.1: "Using more advanced systems, e.g. zero-copy network adapters
    // ... could raise the benefits from ILP further."
    void send_zero_copy(std::initializer_list<std::span<const std::byte>> parts) {
        std::size_t total = 0;
        for (const auto part : parts) {
            ILP_EXPECT(total + part.size() <= max_packet_bytes);
            std::memcpy(kernel_staging_.data() + total, part.data(),
                        part.size());
            total += part.size();
        }
        enqueue(total);
    }

    // Delivers every packet whose latency has elapsed (called by the clock's
    // timer machinery; exposed for tests that poll manually).
    void deliver_due();

    const pipe_stats& stats() const noexcept { return stats_; }
    std::size_t in_flight() const noexcept { return queue_.size(); }

private:
    struct in_flight_packet {
        std::vector<std::byte> data;
        sim_time deliver_at;
    };

    void enqueue(std::size_t bytes);

    virtual_clock* clock_;
    sim_time latency_us_;
    fault_config faults_;
    rng rng_;
    handler on_packet_;
    byte_buffer kernel_staging_;  // send-side kernel buffer (system copy dst)
    byte_buffer deliver_buffer_;  // receive-side kernel buffer (DMA target)
    std::deque<in_flight_packet> queue_;
    pipe_stats stats_;
};

// A bidirectional link: data direction plus the reverse path the
// acknowledgement packets use.
class duplex_link {
public:
    duplex_link(virtual_clock& clock, sim_time latency_us,
                fault_config forward_faults = {},
                fault_config reverse_faults = {})
        : forward_(clock, latency_us, forward_faults),
          reverse_(clock, latency_us, reverse_faults) {}

    datagram_pipe& forward() noexcept { return forward_; }
    datagram_pipe& reverse() noexcept { return reverse_; }

private:
    datagram_pipe forward_;
    datagram_pipe reverse_;
};

}  // namespace ilp::net
