#include "engine/fleet.h"

#include <algorithm>
#include <string>

namespace ilp::engine {
namespace {

// FNV-1a over the bytes of each mixed-in 64-bit word.
constexpr std::uint64_t fnv_offset = 14695981039346656037ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= fnv_prime;
    }
}

}  // namespace

double fleet_report::aggregate_throughput_mbps() const {
    if (max_elapsed_us == 0) return 0.0;
    return static_cast<double>(payload_bytes) * 8.0 /
           static_cast<double>(max_elapsed_us);
}

std::uint64_t fleet_report::digest() const {
    // `flows` is sorted by finalize(), so the digest is independent of the
    // shard iteration order that collected the outcomes.  Shard-dependent
    // fields (shard index, scheduler grants, shared-queue drops) stay out:
    // the digest states what happened *to* each flow, not where it ran.
    std::uint64_t h = fnv_offset;
    for (const flow_outcome& o : flows) {
        mix(h, o.flow_id);
        std::uint64_t flags = 0;
        flags |= o.completed ? 1u : 0u;
        flags |= o.verified ? 2u : 0u;
        flags |= o.gave_up ? 4u : 0u;
        flags |= o.deadline_exceeded ? 8u : 0u;
        flags |= o.request_rejected ? 16u : 0u;
        flags |= o.ports_exhausted ? 32u : 0u;
        mix(h, flags);
        mix(h, o.payload_bytes);
        mix(h, o.elapsed_us);
        mix(h, o.rpc_retries);
        mix(h, o.tcp_retransmissions);
        mix(h, o.rekeys);
        mix(h, o.tag_failures);
        mix(h, o.epoch_skews);
        mix(h, o.epoch_window_hits);
    }
    return h;
}

void fleet_report::finalize() {
    std::sort(flows.begin(), flows.end(),
              [](const flow_outcome& a, const flow_outcome& b) {
                  return a.flow_id < b.flow_id;
              });
    completed = verified = failed = deadline_exceeded = 0;
    payload_bytes = 0;
    max_elapsed_us = 0;
    for (const flow_outcome& o : flows) {
        if (o.completed) ++completed;
        if (o.verified) ++verified;
        if (o.gave_up || o.request_rejected || o.ports_exhausted) ++failed;
        if (o.deadline_exceeded) ++deadline_exceeded;
        payload_bytes += o.payload_bytes;
    }
    for (const shard_summary& s : shards) {
        max_elapsed_us = std::max(max_elapsed_us, s.elapsed_us);
    }

    metrics = obs::registry{};
    metrics.add("engine.flows", flows.size());
    metrics.add("engine.completed", completed);
    metrics.add("engine.verified", verified);
    metrics.add("engine.failed", failed);
    metrics.add("engine.deadline_exceeded", deadline_exceeded);
    metrics.add("engine.payload_bytes", payload_bytes);
    metrics.add("engine.max_elapsed_us", max_elapsed_us);
    metrics.set_gauge("engine.aggregate_throughput_mbps",
                      aggregate_throughput_mbps());
    obs::histogram& elapsed = metrics.hist("engine.flow_elapsed_us");
    obs::histogram& bytes = metrics.hist("engine.flow_payload_bytes");
    for (const flow_outcome& o : flows) {
        metrics.add("engine.rpc_retries", o.rpc_retries);
        metrics.add("engine.tcp_retransmissions", o.tcp_retransmissions);
        metrics.add("engine.reply_packets_dropped", o.reply_packets_dropped);
        metrics.add("engine.queue_dropped", o.queue_dropped);
        metrics.add("engine.crypto.rekeys", o.rekeys);
        metrics.add("engine.crypto.tag_failures", o.tag_failures);
        metrics.add("engine.crypto.epoch_skews", o.epoch_skews);
        metrics.add("engine.crypto.epoch_window_hits", o.epoch_window_hits);
        elapsed.record(o.elapsed_us);
        bytes.record(o.payload_bytes);
    }
    for (const shard_summary& s : shards) {
        metrics.add("analysis.gate.checks", s.gate.checks);
        metrics.add("analysis.gate.cache_hits", s.gate.cache_hits);
        metrics.add("analysis.gate.fallbacks", s.gate.fallbacks);
        metrics.add("engine.net.reply_packets_sent", s.reply_data.packets_sent);
        metrics.add("engine.net.reply_packets_delivered",
                    s.reply_data.packets_delivered);
        metrics.add("engine.net.reply_packets_dropped",
                    s.reply_data.packets_dropped);
        metrics.add("engine.net.reply_queue_dropped",
                    s.reply_data.packets_queue_dropped +
                        s.reply_ack.packets_queue_dropped);
        metrics.add("engine.mem.client.accesses", s.client_mem.accesses());
        metrics.add("engine.mem.client.l1d_misses", s.client_mem.l1d_misses);
        metrics.add("engine.mem.client.cycles", s.client_mem.cycles);
        metrics.add("engine.mem.server.accesses", s.server_mem.accesses());
        metrics.add("engine.mem.server.l1d_misses", s.server_mem.l1d_misses);
        metrics.add("engine.mem.server.cycles", s.server_mem.cycles);
        const std::string prefix =
            "engine.shard" + std::to_string(s.shard) + ".";
        metrics.add(prefix + "flows", s.flows);
        metrics.add(prefix + "completed", s.completed);
        metrics.add(prefix + "elapsed_us", s.elapsed_us);
        metrics.add(prefix + "mem_cycles",
                    s.client_mem.cycles + s.server_mem.cycles);
    }
}

}  // namespace ilp::engine
