#include "engine/fleet.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>

namespace ilp::engine {
namespace {

// FNV-1a over the bytes of each mixed-in 64-bit word.
constexpr std::uint64_t fnv_offset = 14695981039346656037ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= fnv_prime;
    }
}

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

void append_double(std::string& out, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out += buf;
}

void append_latency(std::string& out, const obs::histogram& h) {
    out += "{\"count\":";
    append_u64(out, h.count());
    out += ",\"min_us\":";
    append_u64(out, h.min());
    out += ",\"max_us\":";
    append_u64(out, h.max());
    out += ",\"mean_us\":";
    append_double(out, h.mean());
    out += ",\"p50_us\":";
    append_double(out, h.percentile(50.0));
    out += ",\"p90_us\":";
    append_double(out, h.percentile(90.0));
    out += ",\"p99_us\":";
    append_double(out, h.percentile(99.0));
    out += "}";
}

void append_slowest(std::string& out, const std::vector<slow_flow>& slowest) {
    out += "[";
    for (std::size_t i = 0; i < slowest.size(); ++i) {
        if (i != 0) out += ",";
        out += "{\"flow\":";
        append_u64(out, slowest[i].flow_id);
        out += ",\"elapsed_us\":";
        append_u64(out, slowest[i].elapsed_us);
        out += "}";
    }
    out += "]";
}

const char* outcome_name(const flow_outcome& o) {
    if (o.completed) return "completed";
    if (o.gave_up) return "gave_up";
    if (o.deadline_exceeded) return "deadline_exceeded";
    if (o.request_rejected) return "request_rejected";
    if (o.ports_exhausted) return "ports_exhausted";
    return "open";
}

}  // namespace

double fleet_report::aggregate_throughput_mbps() const {
    if (max_elapsed_us == 0) return 0.0;
    return static_cast<double>(payload_bytes) * 8.0 /
           static_cast<double>(max_elapsed_us);
}

std::uint64_t fleet_report::digest() const {
    // `flows` is sorted by finalize(), so the digest is independent of the
    // shard iteration order that collected the outcomes.  Shard-dependent
    // fields (shard index, scheduler grants, shared-queue drops) stay out:
    // the digest states what happened *to* each flow, not where it ran.
    std::uint64_t h = fnv_offset;
    for (const flow_outcome& o : flows) {
        mix(h, o.flow_id);
        std::uint64_t flags = 0;
        flags |= o.completed ? 1u : 0u;
        flags |= o.verified ? 2u : 0u;
        flags |= o.gave_up ? 4u : 0u;
        flags |= o.deadline_exceeded ? 8u : 0u;
        flags |= o.request_rejected ? 16u : 0u;
        flags |= o.ports_exhausted ? 32u : 0u;
        mix(h, flags);
        mix(h, o.payload_bytes);
        mix(h, o.elapsed_us);
        mix(h, o.rpc_retries);
        mix(h, o.tcp_retransmissions);
        mix(h, o.rekeys);
        mix(h, o.tag_failures);
        mix(h, o.epoch_skews);
        mix(h, o.epoch_window_hits);
    }
    return h;
}

void fleet_report::finalize() {
    std::sort(flows.begin(), flows.end(),
              [](const flow_outcome& a, const flow_outcome& b) {
                  return a.flow_id < b.flow_id;
              });
    completed = verified = failed = deadline_exceeded = trace_sampled = 0;
    payload_bytes = 0;
    max_elapsed_us = 0;
    for (const flow_outcome& o : flows) {
        if (o.completed) ++completed;
        if (o.verified) ++verified;
        if (o.gave_up || o.request_rejected || o.ports_exhausted) ++failed;
        if (o.deadline_exceeded) ++deadline_exceeded;
        if (o.trace_sampled) ++trace_sampled;
        payload_bytes += o.payload_bytes;
    }
    // The fleet latency view is the per-shard sketches merged — no per-flow
    // latency state anywhere — plus the shard top-k lists folded into one.
    flow_latency = obs::histogram{};
    slowest.clear();
    for (const shard_summary& s : shards) {
        max_elapsed_us = std::max(max_elapsed_us, s.elapsed_us);
        flow_latency += s.latency;
        slowest.insert(slowest.end(), s.slowest.begin(), s.slowest.end());
    }
    std::sort(slowest.begin(), slowest.end(),
              [](const slow_flow& a, const slow_flow& b) {
                  return a.elapsed_us != b.elapsed_us
                             ? a.elapsed_us > b.elapsed_us
                             : a.flow_id < b.flow_id;
              });
    if (slowest.size() > 8) slowest.resize(8);

    metrics = obs::registry{};
    metrics.add("engine.flows", flows.size());
    metrics.add("engine.completed", completed);
    metrics.add("engine.verified", verified);
    metrics.add("engine.failed", failed);
    metrics.add("engine.deadline_exceeded", deadline_exceeded);
    metrics.add("engine.payload_bytes", payload_bytes);
    metrics.add("engine.max_elapsed_us", max_elapsed_us);
    metrics.set_gauge("engine.aggregate_throughput_mbps",
                      aggregate_throughput_mbps());
    // Fleet observability: sampling coverage and the merged latency sketch,
    // whose p99 is the BENCH_scale gating quantity.
    metrics.add("obs.trace.sampled_flows", trace_sampled);
    metrics.set_gauge("obs.trace.sampling_rate_permyriad",
                      sampler.rate_permyriad);
    metrics.hist("fleet.flow_latency_us") += flow_latency;
    metrics.set_gauge("fleet.flow_latency.p99", flow_latency.percentile(99.0));
    obs::histogram& elapsed = metrics.hist("engine.flow_elapsed_us");
    obs::histogram& bytes = metrics.hist("engine.flow_payload_bytes");
    for (const flow_outcome& o : flows) {
        metrics.add("engine.rpc_retries", o.rpc_retries);
        metrics.add("engine.tcp_retransmissions", o.tcp_retransmissions);
        metrics.add("engine.reply_packets_dropped", o.reply_packets_dropped);
        metrics.add("engine.queue_dropped", o.queue_dropped);
        metrics.add("engine.crypto.rekeys", o.rekeys);
        metrics.add("engine.crypto.tag_failures", o.tag_failures);
        metrics.add("engine.crypto.epoch_skews", o.epoch_skews);
        metrics.add("engine.crypto.epoch_window_hits", o.epoch_window_hits);
        elapsed.record(o.elapsed_us);
        bytes.record(o.payload_bytes);
    }
    for (const shard_summary& s : shards) {
        // Pipelined-dataplane stall accounting (satellite of the ring
        // contract): how often stage A found every slot in flight and how
        // often stage C had to wait on the fused stage.
        metrics.add("pipeline.ring.full_waits", s.pipeline.full_waits);
        metrics.add("pipeline.ring.empty_waits", s.pipeline.empty_waits);
        metrics.add("pipeline.segments", s.pipeline.segments);
        metrics.add("pipeline.batches", s.pipeline.batches);
        metrics.add("analysis.gate.checks", s.gate.checks);
        metrics.add("analysis.gate.cache_hits", s.gate.cache_hits);
        metrics.add("analysis.gate.fallbacks", s.gate.fallbacks);
        metrics.add("engine.net.reply_packets_sent", s.reply_data.packets_sent);
        metrics.add("engine.net.reply_packets_delivered",
                    s.reply_data.packets_delivered);
        metrics.add("engine.net.reply_packets_dropped",
                    s.reply_data.packets_dropped);
        metrics.add("engine.net.reply_queue_dropped",
                    s.reply_data.packets_queue_dropped +
                        s.reply_ack.packets_queue_dropped);
        metrics.add("engine.mem.client.accesses", s.client_mem.accesses());
        metrics.add("engine.mem.client.l1d_misses", s.client_mem.l1d_misses);
        metrics.add("engine.mem.client.cycles", s.client_mem.cycles);
        metrics.add("engine.mem.server.accesses", s.server_mem.accesses());
        metrics.add("engine.mem.server.l1d_misses", s.server_mem.l1d_misses);
        metrics.add("engine.mem.server.cycles", s.server_mem.cycles);
        const std::string prefix =
            "engine.shard" + std::to_string(s.shard) + ".";
        metrics.add(prefix + "flows", s.flows);
        metrics.add(prefix + "completed", s.completed);
        metrics.add(prefix + "failed", s.failed);
        metrics.add(prefix + "fallbacks", s.fallbacks);
        metrics.add(prefix + "elapsed_us", s.elapsed_us);
        metrics.add(prefix + "mem_cycles",
                    s.client_mem.cycles + s.server_mem.cycles);
    }
}

std::string fleet_report_json(const fleet_report& report) {
    std::string out;
    out.reserve(4096 + report.shards.size() * 512);
    out += "{\"schema_version\":1,\"kind\":\"fleet_report\",\"digest\":\"";
    char digest_buf[20];
    std::snprintf(digest_buf, sizeof digest_buf, "%016" PRIx64,
                  report.digest());
    out += digest_buf;
    out += "\",\"flows\":";
    append_u64(out, report.flows.size());
    out += ",\"completed\":";
    append_u64(out, report.completed);
    out += ",\"verified\":";
    append_u64(out, report.verified);
    out += ",\"failed\":";
    append_u64(out, report.failed);
    out += ",\"deadline_exceeded\":";
    append_u64(out, report.deadline_exceeded);
    out += ",\"payload_bytes\":";
    append_u64(out, report.payload_bytes);
    out += ",\"max_elapsed_us\":";
    append_u64(out, report.max_elapsed_us);

    out += ",\"sampling\":{\"seed\":";
    append_u64(out, report.sampler.seed);
    out += ",\"rate_permyriad\":";
    append_u64(out, report.sampler.rate_permyriad);
    out += ",\"sampled_flows\":";
    append_u64(out, report.trace_sampled);
    out += ",\"trace_dropped\":";
    append_u64(out, report.metrics.counter("obs.trace.dropped"));
    out += "}";

    out += ",\"latency\":";
    append_latency(out, report.flow_latency);
    out += ",\"top_slowest\":";
    append_slowest(out, report.slowest);

    out += ",\"shards\":[";
    for (std::size_t i = 0; i < report.shards.size(); ++i) {
        const shard_summary& s = report.shards[i];
        if (i != 0) out += ",";
        out += "{\"shard\":";
        append_u64(out, s.shard);
        out += ",\"flows\":";
        append_u64(out, s.flows);
        out += ",\"completed\":";
        append_u64(out, s.completed);
        out += ",\"failed\":";
        append_u64(out, s.failed);
        out += ",\"fallbacks\":";
        append_u64(out, s.fallbacks);
        out += ",\"rekeys\":";
        append_u64(out, s.rekeys);
        out += ",\"elapsed_us\":";
        append_u64(out, s.elapsed_us);
        out += ",\"latency\":";
        append_latency(out, s.latency);
        out += ",\"top_slowest\":";
        append_slowest(out, s.slowest);
        out += "}";
    }
    out += "]";

    // The black boxes: one flight-recorder dump per flow that failed
    // explicitly or was demoted by the legality gate.  Healthy flows keep
    // their recorders private — the dump is the failure-debugging artifact,
    // not a per-flow firehose.
    out += ",\"black_boxes\":[";
    bool first = true;
    for (const flow_outcome& o : report.flows) {
        if (!o.failed_explicitly() && !o.composed_fallback) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"flow\":";
        append_u64(out, o.flow_id);
        out += ",\"shard\":";
        append_u64(out, o.shard);
        out += ",\"outcome\":\"";
        out += outcome_name(o);
        out += "\",\"composed_fallback\":";
        out += o.composed_fallback ? "true" : "false";
        out += ",\"recorded\":";
        append_u64(out, o.black_box.recorded());
        out += ",\"events\":[";
        const std::vector<obs::flight_entry> entries = o.black_box.entries();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (i != 0) out += ",";
            out += "{\"t_us\":";
            append_u64(out, entries[i].at_us);
            out += ",\"ev\":\"";
            out += obs::flight_event_name(entries[i].event);
            out += "\",\"arg\":";
            append_u64(out, entries[i].arg);
            out += "}";
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

bool write_fleet_report_json(const fleet_report& report,
                             const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = fleet_report_json(report);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (written != json.size()) std::fclose(f);
    return ok;
}

}  // namespace ilp::engine
