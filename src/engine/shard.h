// One worker shard of the multi-flow engine.
//
// A shard owns everything its flows touch — a virtual clock, one request
// and one reply duplex link, four port demultiplexers (one per pipe
// direction), a port allocator, a file store and the flow table — so shards
// share *nothing* and can run serially on one thread or each on its own OS
// thread with identical results: flows are deterministic on their shard's
// virtual clock.
//
// Scheduler round (tick): visit every live flow in flow-id order, let the
// service policy (engine/scheduler.h) meter the server's segment
// transmissions, poll the client's retry machinery, advance the clock one
// poll step, then reap flows that completed, failed explicitly, or hit
// their per-flow deadline.  Reaped flows quiesce their TCP timers (armed
// timers capture endpoint pointers), unbind their demux routes and return
// their ports to the allocator; their endpoints and outcome stay readable
// until the shard dies.
//
// Legacy mode (`shard_options::legacy_single_flow`) reproduces the
// historical single-flow harness exactly: fixed ports 5001/5002/6001/6002,
// untagged sends (tag 0, the pipes' legacy RNG stream), direct pipe
// receivers instead of demuxes, and the pump()/poll()/advance() cadence —
// app::run_transfer is a thin wrapper over a one-flow shard.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/gate.h"
#include "app/compose_models.h"
#include "app/file_transfer.h"
#include "engine/flow.h"
#include "engine/scheduler.h"
#include "net/demux.h"
#include "obs/tracer.h"
#include "pipeline/stage_runner.h"
#include "rpc/messages.h"
#include "util/contracts.h"

namespace ilp::engine {

struct shard_options {
    sim_time link_latency_us = 100;
    sim_time poll_step_us = 200;
    // Pipe-level fault plans (request forward/reverse, reply
    // forward/reverse).  In engine mode these normally carry only the
    // shared kernel-queue bound; per-flow plans install per tag.  Legacy
    // mode routes the transfer_config fault plans through here verbatim.
    net::fault_config request_forward_faults{};
    net::fault_config request_reverse_faults{};
    net::fault_config reply_forward_faults{};
    net::fault_config reply_reverse_faults{};
    // Fair-share bound per flow inside the shared kernel queue (0 = off).
    std::size_t per_flow_queue_cap = 0;
    sched_policy policy = sched_policy::round_robin;
    std::size_t drr_quantum_bytes = 4096;
    // Local-port range the allocator hands flows (4 ports per flow).
    std::uint16_t first_port = 10'000;
    std::uint16_t last_port = 59'999;
    bool legacy_single_flow = false;
    // Run the pipelined dataplane's fused stage on a dedicated worker thread
    // per shard.  Only honoured under direct memory (no memsim attribution
    // source): simulated-memory runs demote to inline stepping, which
    // produces identical output with single-threaded counter updates.
    bool pipeline_workers = false;
    // Deterministic per-flow trace sampling (obs/sampler.h): installed on
    // the shard's tracer and stamped into every outcome.  The default
    // samples every flow — the pre-sampling behaviour.
    obs::flow_sampler trace_sampler{};
};

template <memsim::memory_policy Mem, crypto::block_cipher Cipher>
class shard {
public:
    shard(std::uint32_t index, const shard_options& opts,
          const Mem& client_mem, const Mem& server_mem)
        : index_(index),
          opts_(opts),
          client_mem_(client_mem),
          server_mem_(server_mem),
          scheduler_(opts.policy, opts.drr_quantum_bytes),
          request_link_(clock_, opts.link_latency_us,
                        opts.request_forward_faults,
                        opts.request_reverse_faults),
          reply_link_(clock_, opts.link_latency_us, opts.reply_forward_faults,
                      opts.reply_reverse_faults),
          ports_(opts.first_port, opts.last_port) {
        // An installed tracer timestamps this shard's spans on this shard's
        // clock (worker threads carry no tracer; the macros no-op there)
        // and applies this shard's flow sampler to its event ring.
        if (obs::tracer* t = obs::tracer::current()) {
            t->set_clock(&clock_);
            t->set_sampler(opts_.trace_sampler);
        }
        if (!opts_.legacy_single_flow) {
            request_link_.forward().set_receiver(
                request_fwd_demux_.receiver());
            request_link_.reverse().set_receiver(
                request_rev_demux_.receiver());
            reply_link_.forward().set_receiver(reply_fwd_demux_.receiver());
            reply_link_.reverse().set_receiver(reply_rev_demux_.receiver());
            if (opts_.per_flow_queue_cap != 0) {
                request_link_.forward().set_per_tag_queue_cap(
                    opts_.per_flow_queue_cap);
                request_link_.reverse().set_per_tag_queue_cap(
                    opts_.per_flow_queue_cap);
                reply_link_.forward().set_per_tag_queue_cap(
                    opts_.per_flow_queue_cap);
                reply_link_.reverse().set_per_tag_queue_cap(
                    opts_.per_flow_queue_cap);
            }
        }
    }

    shard(const shard&) = delete;
    shard& operator=(const shard&) = delete;

    // Opens flow `id`: allocates its four local ports, binds its demux
    // routes, installs its per-flow fault plans, constructs the endpoint
    // pair and issues the file request.  Returns false — with an explicit
    // outcome recorded — when the port range is exhausted or the request
    // cannot be issued.
    bool open_flow(std::uint32_t id, const flow_config& cfg,
                   const Cipher& client_cipher, const Cipher& server_cipher) {
        ILP_EXPECT(table_.find(id) == table_.end());
        auto holder =
            std::make_unique<flow_entry>(client_cipher, server_cipher);
        flow_entry& e = *holder;
        e.id = id;
        e.tag = opts_.legacy_single_flow ? 0 : id + 1;
        e.cfg = cfg;
        e.outcome.flow_id = id;
        e.outcome.shard = index_;
        e.outcome.trace_sampled = opts_.trace_sampler.sampled(id);
        if (opts_.legacy_single_flow) {
            e.file = "testfile";
        } else {
            // (push_back, not `= "f"`: dodges a GCC 12 -Wrestrict false
            // positive in the string assignment fast path.)
            e.file.push_back('f');
            e.file += std::to_string(id);
        }
        store_.add_random(e.file, cfg.file_bytes, cfg.file_seed);

        tcp::connection_config request_cfg;
        tcp::connection_config reply_cfg;
        reply_cfg.local_addr = 0x0a000002;  // server
        reply_cfg.remote_addr = 0x0a000001;
        request_cfg.zero_copy = reply_cfg.zero_copy = cfg.zero_copy;
        request_cfg.net_tag = reply_cfg.net_tag = e.tag;
        if (opts_.legacy_single_flow) {
            request_cfg.local_port = 5001;
            request_cfg.remote_port = 5002;
            reply_cfg.local_port = 6001;
            reply_cfg.remote_port = 6002;
        } else {
            if (!allocate_ports(e)) {
                e.finished = true;
                e.outcome.ports_exhausted = true;
                e.outcome.black_box.record(
                    clock_.now(), obs::flight_event::ports_exhausted);
                table_.emplace(id, std::move(holder));
                return false;
            }
            request_cfg.local_port = e.ports[port_client_request];
            request_cfg.remote_port = e.ports[port_server_request];
            reply_cfg.local_port = e.ports[port_server_reply];
            reply_cfg.remote_port = e.ports[port_client_reply];
            // Per-flow fault plans on the flow's own tag stream.
            request_link_.forward().configure_tag(e.tag,
                                                  cfg.request_forward_faults);
            request_link_.reverse().configure_tag(e.tag,
                                                  cfg.request_reverse_faults);
            reply_link_.forward().configure_tag(e.tag, cfg.forward_faults);
            reply_link_.reverse().configure_tag(e.tag, cfg.reverse_faults);
        }

        // Both endpoints share the flow's security parameters — the
        // deterministic KDF stands in for the key exchange.  The client-side
        // secret override is the key-mismatch test knob.
        app::secure_params server_sec = secure_params_for(cfg);
        app::secure_params client_sec = server_sec;
        if (cfg.client_secret_override != 0) {
            client_sec.flow_secret = cfg.client_secret_override;
        }

        // Composition-legality gate: the flow's runtime-assembled stage
        // graphs (send and receive side) must be verified legal before any
        // fused loop runs.  A verified-illegal graph — e.g. a crc32 tap on
        // the B,C,A send schedule — demotes the flow to the layered path
        // deterministically; the demotion is counted, never silent.
        app::path_mode mode = cfg.mode;
        if (mode == app::path_mode::ilp) {
            const analysis::verdict& tx = gate_.check(
                app::flow_send_graph<Cipher>(server_sec, cfg.tap, 0));
            const analysis::verdict& rx = gate_.check(
                app::flow_receive_graph<Cipher>(client_sec, cfg.tap, 0));
            if (!tx.legal || !rx.legal) {
                mode = app::path_mode::layered;
                gate_.count_fallback();
                e.cfg.mode = mode;
                e.outcome.composed_fallback = true;
                e.outcome.black_box.record(
                    clock_.now(), obs::flight_event::composed_fallback);
            }
        }

        if (opts_.legacy_single_flow) {
            e.server = std::make_unique<app::file_server<Mem, Cipher>>(
                server_mem_, e.server_cipher, clock_, request_link_,
                reply_link_, tcp::mirrored(request_cfg), reply_cfg, mode,
                store_, server_sec);
            e.client = std::make_unique<app::file_client<Mem, Cipher>>(
                client_mem_, e.client_cipher, clock_, request_link_,
                reply_link_, request_cfg, tcp::mirrored(reply_cfg), mode,
                cfg.retry, client_sec);
        } else {
            e.server = std::make_unique<app::file_server<Mem, Cipher>>(
                server_mem_, e.server_cipher, clock_, request_link_.reverse(),
                reply_link_.forward(), tcp::mirrored(request_cfg), reply_cfg,
                mode, store_, server_sec);
            e.client = std::make_unique<app::file_client<Mem, Cipher>>(
                client_mem_, e.client_cipher, clock_, request_link_.forward(),
                reply_link_.reverse(), request_cfg, tcp::mirrored(reply_cfg),
                mode, cfg.retry, client_sec);
            // Engine flows are serviced only through the scheduler: the
            // ACK handler must not bypass the meter (and serviced_bytes
            // must account every data segment).
            e.server->set_auto_pump(false);
            bind_routes(e);
        }

        rpc::file_request request;
        request.request_id = 7 + id;
        request.filename = e.file;
        request.copy_count = cfg.copies;
        // Secure framing spends 8 of the per-packet wire budget on the
        // trailer; the payload shrinks so segments still fit the budget.
        const bool secure_framing =
            cfg.secure && cfg.secure_wire_version == rpc::wire_version_secure;
        request.max_reply_payload = static_cast<std::uint32_t>(
            secure_framing
                ? rpc::max_payload_for_secure_wire(cfg.packet_wire_bytes)
                : rpc::max_payload_for_wire(cfg.packet_wire_bytes));
        e.started_at = clock_.now();
        bool issued = false;
        if (request.max_reply_payload != 0) {
            obs::scoped_flow flow_scope(opts_.legacy_single_flow
                                            ? -1
                                            : static_cast<std::int64_t>(id));
            issued = e.client->request_file(request);
        }
        if (!issued) {
            e.finished = true;
            e.outcome.request_rejected = true;
            e.outcome.black_box.record(clock_.now(),
                                       obs::flight_event::request_rejected);
            teardown(e);
        } else {
            e.outcome.black_box.record(e.started_at,
                                       obs::flight_event::connect, id);
            ++active_;
            active_insert(e);
            // The runner outlives every flow on the shard; threaded only
            // under direct memory (no attribution source to race on).
            if (!opts_.legacy_single_flow && e.cfg.pipeline_depth > 0 &&
                mode == app::path_mode::ilp) {
                ensure_pipeline(e.cfg.pipeline_depth);
            }
        }
        table_.emplace(id, std::move(holder));
        return issued;
    }

    // Finishes a flow early (lifecycle teardown).  The outcome records
    // whatever state the flow reached; ports and routes are recycled.
    void close_flow(std::uint32_t id) {
        const auto it = table_.find(id);
        ILP_EXPECT(it != table_.end());
        if (!it->second->finished) finish(*it->second, false);
    }

    // Runs every open flow to its terminal outcome.
    void run() {
        if (obs::tracer* t = obs::tracer::current()) {
            t->set_clock(&clock_);
            t->set_sampler(opts_.trace_sampler);
        }
        while (active_ > 0) tick();
    }

    // One scheduler round; exposed so tests can single-step.  Both sweeps
    // walk the intrusive active list (live flows in id order) rather than
    // the whole table, so finished flows cost nothing per round.
    void tick() {
        for (flow_entry* e = active_head_; e != nullptr; e = e->active_next) {
            service(*e);
        }
        clock_.advance(opts_.poll_step_us);
        for (flow_entry* e = active_head_; e != nullptr;) {
            flow_entry* next = e->active_next;  // finish() unlinks e
            const bool deadline =
                clock_.now() - e->started_at >= e->cfg.deadline_us;
            if (e->client->done() || e->client->failed() || deadline) {
                finish(*e, deadline);
            }
            e = next;
        }
    }

    // --- introspection ---------------------------------------------------
    std::uint32_t index() const noexcept { return index_; }
    virtual_clock& clock() noexcept { return clock_; }
    net::duplex_link& request_link() noexcept { return request_link_; }
    net::duplex_link& reply_link() noexcept { return reply_link_; }
    const app::file_store& store() const noexcept { return store_; }
    std::size_t flows() const noexcept { return table_.size(); }
    std::size_t active_flows() const noexcept { return active_; }
    const net::port_allocator& ports() const noexcept { return ports_; }
    const net::port_demux& reply_data_demux() const noexcept {
        return reply_fwd_demux_;
    }
    const net::port_demux& request_data_demux() const noexcept {
        return request_fwd_demux_;
    }

    app::file_client<Mem, Cipher>& client(std::uint32_t id) {
        return *entry(id).client;
    }
    app::file_server<Mem, Cipher>& server(std::uint32_t id) {
        return *entry(id).server;
    }
    const flow_outcome& outcome(std::uint32_t id) const {
        const auto it = table_.find(id);
        ILP_EXPECT(it != table_.end());
        return it->second->outcome;
    }
    std::uint64_t serviced_bytes(std::uint32_t id) const {
        const auto it = table_.find(id);
        ILP_EXPECT(it != table_.end());
        return it->second->serviced_bytes;
    }
    std::vector<flow_outcome> outcomes() const {
        std::vector<flow_outcome> out;
        out.reserve(table_.size());
        for (const auto& [id, e] : table_) out.push_back(e->outcome);
        return out;
    }
    const Mem& client_mem() const noexcept { return client_mem_; }
    const Mem& server_mem() const noexcept { return server_mem_; }
    const analysis::legality_gate& gate() const noexcept { return gate_; }
    // Per-shard flow-latency sketch (log2 buckets over elapsed_us of every
    // finished flow) and the bounded slowest-flow list it cannot express.
    const obs::histogram& latency_sketch() const noexcept {
        return latency_sketch_;
    }
    const std::vector<slow_flow>& slowest_flows() const noexcept {
        return slowest_;
    }
    // Ring-stall accounting of this shard's pipelined dataplane (zeros when
    // no flow opted in).
    pipeline::ring_stall_stats pipeline_stats() const noexcept {
        return pipeline_.has_value() ? pipeline_->stats()
                                     : pipeline::ring_stall_stats{};
    }
    bool pipeline_threaded() const noexcept {
        return pipeline_.has_value() && pipeline_->threaded();
    }

private:
    // e.ports slots; each of the four pipe directions has its own demux, so
    // distinct slots guarantee bind() can never conflict.
    static constexpr std::size_t port_client_request = 0;
    static constexpr std::size_t port_server_request = 1;
    static constexpr std::size_t port_client_reply = 2;
    static constexpr std::size_t port_server_reply = 3;

    struct flow_entry {
        flow_entry(const Cipher& cc, const Cipher& sc)
            : client_cipher(cc), server_cipher(sc) {}
        std::uint32_t id = 0;
        std::uint32_t tag = 0;
        flow_config cfg;
        Cipher client_cipher;  // stable storage: endpoints keep pointers
        Cipher server_cipher;
        std::string file;
        std::array<std::uint16_t, 4> ports{};
        std::unique_ptr<app::file_server<Mem, Cipher>> server;
        std::unique_ptr<app::file_client<Mem, Cipher>> client;
        sim_time started_at = 0;
        sched_state sched;
        std::uint64_t serviced_bytes = 0;
        std::uint64_t seen_rekeys = 0;  // last epoch the gate re-verified at
        // Last counter values the flight recorder turned into events, so
        // each service visit records only the transitions since the last.
        std::uint64_t fr_retransmissions = 0;
        std::uint64_t fr_retries = 0;
        std::uint64_t fr_rekeys = 0;
        std::uint64_t fr_tag_failures = 0;
        std::uint64_t fr_epoch_skews = 0;
        bool finished = false;
        flow_outcome outcome;
        // Intrusive active-list links (id-ordered): tick() walks only live
        // flows, so a mostly-finished table costs nothing per round, and
        // finish() unlinks in O(1).
        flow_entry* active_prev = nullptr;
        flow_entry* active_next = nullptr;
    };

    static app::secure_params secure_params_for(const flow_config& cfg) {
        app::secure_params sec;
        sec.enabled = cfg.secure;
        sec.flow_secret = cfg.flow_secret;
        sec.wire_version = cfg.secure_wire_version;
        sec.rekey_interval_bytes = cfg.rekey_interval_bytes;
        return sec;
    }

    flow_entry& entry(std::uint32_t id) {
        const auto it = table_.find(id);
        ILP_EXPECT(it != table_.end());
        return *it->second;
    }

    bool allocate_ports(flow_entry& e) {
        std::size_t n = 0;
        for (; n < e.ports.size(); ++n) {
            const std::optional<std::uint16_t> p = ports_.allocate();
            if (!p.has_value()) break;
            e.ports[n] = *p;
        }
        if (n == e.ports.size()) return true;
        // Partial allocation on exhaustion: give the ports back.
        for (std::size_t i = 0; i < n; ++i) ports_.release(e.ports[i]);
        return false;
    }

    void bind_routes(flow_entry& e) {
        flow_entry* ep = &e;
        bool ok = request_fwd_demux_.bind(
            e.ports[port_server_request], [ep](std::span<const std::byte> p) {
                obs::scoped_flow flow_scope(ep->id);
                ep->server->on_request_packet(p);
            });
        ok = request_rev_demux_.bind(e.ports[port_client_request],
                                     [ep](std::span<const std::byte> p) {
                                         obs::scoped_flow flow_scope(ep->id);
                                         ep->client->on_request_ack_packet(p);
                                     }) &&
             ok;
        ok = reply_fwd_demux_.bind(e.ports[port_client_reply],
                                   [ep](std::span<const std::byte> p) {
                                       obs::scoped_flow flow_scope(ep->id);
                                       ep->client->on_reply_packet(p);
                                   }) &&
             ok;
        ok = reply_rev_demux_.bind(e.ports[port_server_reply],
                                   [ep](std::span<const std::byte> p) {
                                       obs::scoped_flow flow_scope(ep->id);
                                       ep->server->on_reply_ack_packet(p);
                                   }) &&
             ok;
        ILP_ENSURE(ok);  // freshly allocated ports cannot conflict
    }

    // Re-verify the composed send graph whenever the server advances its key
    // epoch: the verdict cache is keyed by a hash that folds in the epoch
    // parameter, so a rekey is exactly the event that invalidates the cached
    // entry.  The graph *shape* is epoch-invariant, so a flow the gate
    // admitted at setup must stay legal across rekeys — a flipped verdict
    // here would be a gate bug, hence the hard contract.
    void regate_on_rekey(flow_entry& e) {
        if (!e.cfg.secure || e.cfg.mode != app::path_mode::ilp) return;
        const std::uint64_t rekeys = e.server->secure_stats().rekeys;
        if (rekeys == e.seen_rekeys) return;
        e.seen_rekeys = rekeys;
        const analysis::verdict& v = gate_.check(app::flow_send_graph<Cipher>(
            secure_params_for(e.cfg), e.cfg.tap, rekeys));
        ILP_ENSURE(v.legal);
    }

    void service(flow_entry& e) {
        regate_on_rekey(e);
        if (opts_.legacy_single_flow) {
            e.server->pump();
            e.client->poll();
            record_transitions(e);
            return;
        }
        if (e.cfg.pipeline_depth > 0 && e.cfg.mode == app::path_mode::ilp &&
            pipeline_.has_value()) {
            service_pipelined(e);
            return;
        }
        obs::scoped_flow flow_scope(e.id);
        scheduler_.begin_visit(e.sched, e.server->next_wire_bytes());
        for (;;) {
            const std::size_t wire = e.server->next_wire_bytes();
            if (!scheduler_.grant(e.sched, wire)) break;
            const std::size_t sent = e.server->pump_one();
            if (sent == 0) break;  // TCP window/buffer blocked
            scheduler_.charge(e.sched, sent);
            e.serviced_bytes += sent;
            e.outcome.black_box.record(clock_.now(),
                                       obs::flight_event::segment,
                                       static_cast<std::uint32_t>(sent));
        }
        e.client->poll();
        record_transitions(e);
    }

    // Pipelined service visit: the same grant → send → charge contract as
    // the serial loop above, but with the fused stage of segment n
    // overlapped with the segmentation of segment n+1 through the stage
    // runner.  Every batch (up to cfg.pipeline_batch segments) is drained
    // *within* the visit — before tick() advances the clock — so pipelining
    // is invisible to virtual time and the fleet digest.
    void service_pipelined(flow_entry& e) {
        obs::scoped_flow flow_scope(e.id);
        auto& runner = *pipeline_;
        app::file_server<Mem, Cipher>& server = *e.server;
        const std::size_t k =
            e.cfg.pipeline_batch == 0 ? 1 : e.cfg.pipeline_batch;
        scheduler_.begin_visit(e.sched, server.next_wire_bytes());
        bool blocked = false;
        while (!blocked) {
            std::size_t batch = 0;
            bool flush = false;
            while (batch < k && !flush) {
                const std::size_t wire = server.next_wire_bytes();
                if (!scheduler_.grant(e.sched, wire)) {
                    blocked = true;
                    break;
                }
                auto* slot = runner.acquire();
                if (slot == nullptr) {
                    // Pipeline full: retire the oldest in-flight segment.
                    drain_one(server);
                    slot = runner.acquire();
                    ILP_ENSURE(slot != nullptr);
                }
                bool segmentized;
                {
                    ILP_OBS_ATTR("server", server_obs_src_);
                    ILP_OBS_SPAN("pipeline", "segmentize");
                    segmentized = server.segmentize_segment(*slot);
                }
                if (!segmentized) {  // TCP window/buffer blocked
                    runner.recycle(slot);
                    blocked = true;
                    break;
                }
                scheduler_.charge(e.sched, slot->wire);
                e.serviced_bytes += slot->wire;
                e.outcome.black_box.record(
                    clock_.now(), obs::flight_event::segment,
                    static_cast<std::uint32_t>(slot->wire));
                runner.submit(slot);
                ++batch;
                // Rekey barrier: the segment just queued advances the key
                // window when it completes; drain before the next segment
                // snapshots its cipher, so post-rekey segments encrypt
                // under the new epoch exactly as the serial path would.
                if (server.pipeline_flush_pending()) flush = true;
            }
            if (batch > 0) runner.note_batch();
            while (runner.outstanding()) drain_one(server);
        }
        e.client->poll();
        record_transitions(e);
    }

    // Stage C for one slot.  Inline mode runs the fused loop inside
    // next_done() on this thread, so the server attribution scope must cover
    // it — serial runs the same loop under that scope inside pump_one().
    void drain_one(app::file_server<Mem, Cipher>& server) {
        typename app::file_server<Mem, Cipher>::pipeline_slot* slot = nullptr;
        {
            ILP_OBS_ATTR("server", server_obs_src_);
            slot = pipeline_->next_done();
        }
        ILP_ENSURE(slot != nullptr);
        {
            ILP_OBS_ATTR("server", server_obs_src_);
            ILP_OBS_SPAN("pipeline", "bookkeeping");
            server.complete_segment(*slot);
        }
        pipeline_->release(slot);
    }

    // (Re)creates the shard's stage runner so its slot pool covers the
    // deepest pipeline requested so far.  Only called from open_flow, when
    // nothing is in flight.  Threading is demoted to inline stepping under
    // simulated memory: memsim counters are not thread-safe, and inline
    // stepping produces identical output.
    void ensure_pipeline(std::size_t depth) {
        const bool threaded = opts_.pipeline_workers &&
                              obs::attribution_source(server_mem_) == nullptr;
        if (pipeline_.has_value() && pipeline_->depth() >= depth &&
            pipeline_->threaded() == threaded) {
            return;
        }
        std::size_t d = depth;
        if (pipeline_.has_value()) d = std::max(d, pipeline_->depth());
        pipeline_.emplace(d, threaded,
                          &app::file_server<Mem, Cipher>::fuse_slot);
    }

    // Id-ordered intrusive active list.  Production paths open flows in
    // increasing id order, so the backwards scan is O(1) there; finish()
    // unlinks in O(1) always.
    void active_insert(flow_entry& e) {
        flow_entry* pos = active_tail_;
        while (pos != nullptr && pos->id > e.id) pos = pos->active_prev;
        e.active_prev = pos;
        e.active_next = pos != nullptr ? pos->active_next : active_head_;
        if (e.active_next != nullptr) {
            e.active_next->active_prev = &e;
        } else {
            active_tail_ = &e;
        }
        if (pos != nullptr) {
            pos->active_next = &e;
        } else {
            active_head_ = &e;
        }
    }

    void active_remove(flow_entry& e) {
        if (e.active_prev != nullptr) {
            e.active_prev->active_next = e.active_next;
        } else {
            active_head_ = e.active_next;
        }
        if (e.active_next != nullptr) {
            e.active_next->active_prev = e.active_prev;
        } else {
            active_tail_ = e.active_prev;
        }
        e.active_prev = e.active_next = nullptr;
    }

    // Flight recorder: turn this visit's counter deltas into dated events.
    // A handful of counter loads per flow per tick — O(1), always on.
    void record_transitions(flow_entry& e) {
        obs::flight_recorder& fr = e.outcome.black_box;
        const sim_time now = clock_.now();
        const std::uint64_t retx = e.server->reply_tcp_stats().retransmissions;
        if (retx != e.fr_retransmissions) {
            fr.record(now, obs::flight_event::retransmit,
                      static_cast<std::uint32_t>(retx));
            e.fr_retransmissions = retx;
        }
        const std::uint64_t retries = e.client->recovery().retries;
        if (retries != e.fr_retries) {
            fr.record(now, obs::flight_event::rpc_retry,
                      static_cast<std::uint32_t>(retries));
            e.fr_retries = retries;
        }
        if (!e.cfg.secure) return;
        const std::uint64_t rekeys = e.server->secure_stats().rekeys;
        if (rekeys != e.fr_rekeys) {
            fr.record(now, obs::flight_event::rekey,
                      static_cast<std::uint32_t>(rekeys));
            e.fr_rekeys = rekeys;
        }
        const std::uint64_t tags = e.client->secure_stats().tag_failures +
                                   e.server->secure_stats().tag_failures;
        if (tags != e.fr_tag_failures) {
            fr.record(now, obs::flight_event::tag_failure,
                      static_cast<std::uint32_t>(tags));
            e.fr_tag_failures = tags;
        }
        const std::uint64_t skews = e.client->secure_stats().epoch_skews;
        if (skews != e.fr_epoch_skews) {
            fr.record(now, obs::flight_event::epoch_skew,
                      static_cast<std::uint32_t>(skews));
            e.fr_epoch_skews = skews;
        }
    }

    void finish(flow_entry& e, bool deadline_hit) {
        e.finished = true;
        --active_;
        active_remove(e);
        flow_outcome& o = e.outcome;
        o.completed = e.client->done();
        o.gave_up = e.client->failed() && !o.completed;
        o.deadline_exceeded = deadline_hit && !o.completed && !o.gave_up;
        o.elapsed_us = clock_.now() - e.started_at;
        o.payload_bytes = e.client->bytes_received();
        o.rpc_retries = e.client->recovery().retries;
        o.tcp_retransmissions = e.server->reply_tcp_stats().retransmissions;
        o.serviced_bytes = e.serviced_bytes;
        o.rekeys = e.server->secure_stats().rekeys;
        o.tag_failures = e.client->secure_stats().tag_failures +
                         e.server->secure_stats().tag_failures;
        o.epoch_skews = e.client->secure_stats().epoch_skews;
        o.epoch_window_hits = e.client->secure_stats().window_hits;
        if (e.tag != 0) {
            const net::tag_stats fwd =
                reply_link_.forward().stats_for_tag(e.tag);
            const net::tag_stats rev =
                reply_link_.reverse().stats_for_tag(e.tag);
            o.reply_packets_dropped = fwd.packets_dropped;
            o.queue_dropped =
                fwd.packets_queue_dropped + rev.packets_queue_dropped;
        }
        if (o.completed) {
            o.verified = true;
            const std::vector<std::byte>* original = store_.find(e.file);
            for (std::uint32_t c = 0; c < e.cfg.copies; ++c) {
                const auto received = e.client->copy_data(c);
                if (received.size() != original->size() ||
                    (original->size() > 0 &&
                     std::memcmp(received.data(), original->data(),
                                 original->size()) != 0)) {
                    o.verified = false;
                }
            }
        }
        // Terminal flight-recorder entry + the shard's O(1) latency state:
        // a log2-bucket sketch instead of any per-flow histogram, plus a
        // bounded top-k so the slowest flows keep their identity.
        const obs::flight_event terminal =
            o.completed          ? obs::flight_event::completed
            : o.gave_up          ? obs::flight_event::gave_up
            : o.deadline_exceeded ? obs::flight_event::deadline_exceeded
                                  : obs::flight_event::connect;
        if (terminal != obs::flight_event::connect) {
            o.black_box.record(clock_.now(), terminal,
                               static_cast<std::uint32_t>(o.rpc_retries));
        }
        latency_sketch_.record(o.elapsed_us);
        note_slow_flow(o.flow_id, o.elapsed_us);
        teardown(e);
    }

    // Keeps the k slowest finished flows, replace-min: O(k) per finish with
    // k fixed, so per-flow cost stays O(1) at any fleet size.
    void note_slow_flow(std::uint32_t id, sim_time elapsed_us) {
        if (slowest_.size() < max_slow_flows) {
            slowest_.push_back({id, elapsed_us});
            return;
        }
        std::size_t min_i = 0;
        for (std::size_t i = 1; i < slowest_.size(); ++i) {
            if (slowest_[i].elapsed_us < slowest_[min_i].elapsed_us) min_i = i;
        }
        if (elapsed_us > slowest_[min_i].elapsed_us) {
            slowest_[min_i] = {id, elapsed_us};
        }
    }

    // Recycles the flow's routes, ports and timers.  Endpoint state stays
    // readable (stats, received data) until the shard dies; late packets
    // addressed to the recycled ports count as no-listener drops.
    void teardown(flow_entry& e) {
        e.client->quiesce();
        e.server->quiesce();
        if (opts_.legacy_single_flow) return;
        request_fwd_demux_.unbind(e.ports[port_server_request]);
        request_rev_demux_.unbind(e.ports[port_client_request]);
        reply_fwd_demux_.unbind(e.ports[port_client_reply]);
        reply_rev_demux_.unbind(e.ports[port_server_reply]);
        for (const std::uint16_t p : e.ports) ports_.release(p);
    }

    std::uint32_t index_;
    shard_options opts_;
    Mem client_mem_;
    Mem server_mem_;
    const memsim::memory_system* server_obs_src_ =
        obs::attribution_source(server_mem_);
    flow_scheduler scheduler_;
    virtual_clock clock_;  // declared before the links: they capture it
    net::duplex_link request_link_;
    net::duplex_link reply_link_;
    net::port_demux request_fwd_demux_;  // -> server request receivers
    net::port_demux request_rev_demux_;  // -> client request-ACK handlers
    net::port_demux reply_fwd_demux_;    // -> client reply receivers
    net::port_demux reply_rev_demux_;    // -> server reply-ACK handlers
    net::port_allocator ports_;
    app::file_store store_;
    analysis::legality_gate gate_;
    std::optional<pipeline::stage_runner<
        typename app::file_server<Mem, Cipher>::pipeline_slot>>
        pipeline_;
    std::map<std::uint32_t, std::unique_ptr<flow_entry>> table_;
    std::size_t active_ = 0;
    flow_entry* active_head_ = nullptr;  // live flows, ascending id
    flow_entry* active_tail_ = nullptr;
    static constexpr std::size_t max_slow_flows = 8;
    obs::histogram latency_sketch_;
    std::vector<slow_flow> slowest_;
};

}  // namespace ilp::engine
