// Fleet runner: shards a population of flows across workers and aggregates
// one fleet_report.
//
// Flow f runs on shard f % shards.  Shards share nothing — each owns its
// virtual clock, links, demuxes, ports, store and memory policies — so
// `threaded` mode (one OS thread per shard) produces bit-identical per-flow
// outcomes to the serial order; tests/engine_test.cpp pins that down with
// fleet_report::digest().  Per-flow determinism goes further: because every
// per-flow random stream (fault coins, cipher key) is seed-split by flow id,
// the digest is also invariant under the shard *count* — re-packing flows
// onto more workers changes which shared link a flow crosses but not what
// happens to it (as long as the shared kernel queue is unbounded; a finite
// shared queue couples co-located flows by design).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/gate.h"
#include "engine/shard.h"
#include "memsim/configs.h"
#include "obs/counters.h"
#include "obs/registry.h"
#include "util/rng.h"

namespace ilp::engine {

struct fleet_config {
    std::uint32_t flows = 1;
    std::uint32_t shards = 1;
    // Run each shard on its own OS thread (shards stay deterministic: they
    // share no state, and worker threads carry no tracer).
    bool threaded = false;
    sched_policy policy = sched_policy::round_robin;
    std::size_t drr_quantum_bytes = 4096;
    sim_time poll_step_us = 200;
    sim_time link_latency_us = 100;
    std::uint64_t key_seed = 0x22bb;
    // Shared kernel-queue bound per pipe direction (0 = unbounded) and the
    // per-flow fair-share cap inside it.
    std::size_t kernel_queue_packets = 0;
    std::size_t per_flow_queue_cap = 0;
    // Deterministic trace sampling (obs/sampler.h): which flows' spans the
    // installed tracer's ring keeps.  A pure function of (seed, flow id),
    // so the sampled set is invariant under shards/threads — and sampling
    // can never perturb protocol behaviour or the fleet digest.
    obs::flow_sampler trace_sampler{};
    // Run each shard's pipelined fused stage on a dedicated worker thread
    // (shard_options::pipeline_workers); ignored for flows that did not opt
    // in via flow_config::pipeline_depth, demoted to inline stepping under
    // simulated memory.  Digest-neutral either way.
    bool pipeline_workers = false;
    flow_config defaults{};
    // Per-flow override hook, applied to a copy of `defaults` before the
    // flow opens (e.g. give 10% of flows a Gilbert–Elliott loss plan).
    std::function<void(std::uint32_t, flow_config&)> per_flow{};
};

// Per-shard rollup: what the shard's shared reply link and its two memory
// systems saw — the cache-contention view the per-flow outcomes can't give.
struct shard_summary {
    std::uint32_t shard = 0;
    std::uint32_t flows = 0;
    std::uint32_t completed = 0;
    std::uint32_t failed = 0;     // explicit-failure taxonomy outcomes
    std::uint32_t fallbacks = 0;  // gate demotions among this shard's flows
    std::uint64_t rekeys = 0;     // server epoch advances, all flows
    sim_time elapsed_us = 0;  // the shard clock's final reading
    net::pipe_stats reply_data;
    net::pipe_stats reply_ack;
    obs::mem_counters client_mem;  // zero under direct_memory
    obs::mem_counters server_mem;
    // Composition-legality gate activity on this shard (setup + rekey
    // checks, verdict-cache hits, demotions to the layered path).
    analysis::gate_stats gate;
    // Per-shard flow-latency sketch (log2 buckets over every finished
    // flow's elapsed_us) and the bounded slowest-flow identities: the O(1)
    // replacement for per-flow latency state.
    obs::histogram latency;
    std::vector<slow_flow> slowest;
    // Ring-stall accounting of the shard's pipelined dataplane (all zero
    // when no flow opted in): exported fleet-wide as pipeline.ring.*.
    pipeline::ring_stall_stats pipeline;
    bool pipeline_threaded = false;
};

struct fleet_report {
    std::vector<flow_outcome> flows;  // sorted by flow id
    std::vector<shard_summary> shards;
    std::uint32_t completed = 0;
    std::uint32_t verified = 0;
    std::uint32_t failed = 0;  // gave_up + request_rejected + ports_exhausted
    std::uint32_t deadline_exceeded = 0;
    std::uint32_t trace_sampled = 0;  // flows the sampler selected for spans
    std::uint64_t payload_bytes = 0;
    sim_time max_elapsed_us = 0;  // slowest shard's clock
    // The sampler the fleet ran under (echoed into the JSON export).
    obs::flow_sampler sampler;
    // Fleet-wide flow-latency sketch: the per-shard log2 sketches merged.
    // Its p99 is the BENCH_scale gating metric `fleet.flow_latency.p99`.
    obs::histogram flow_latency;
    // Fleet-wide slowest flows, merged from the per-shard bounded lists.
    std::vector<slow_flow> slowest;
    // Aggregates under engine.* names, ready to merge into a bench report.
    obs::registry metrics;

    // Payload bits over the slowest shard's virtual time.
    double aggregate_throughput_mbps() const;
    // Order-independent fingerprint of every flow's outcome, excluding
    // shard-dependent fields (shard index, scheduler grants, shared-queue
    // drops).  Equal digests mean equal per-flow behaviour; the determinism,
    // shard-invariance and threaded-parity tests all compare digests.
    std::uint64_t digest() const;
    // Sorts flows and computes the aggregate fields and metrics.
    void finalize();
};

// JSON export of the fleet's observability state: per-shard rollups with
// latency sketches, the fleet-wide top-k slowest flows, sampling coverage,
// and a flight-recorder "black box" dump for every flow that failed
// explicitly or was demoted by the legality gate.  `ilp-trace summarize
// --fleet` renders it; CI validates and archives it.
std::string fleet_report_json(const fleet_report& report);
bool write_fleet_report_json(const fleet_report& report,
                             const std::string& path);

// Key size for the per-flow static cipher; ciphers without a declared
// key_bytes (rc4 takes any length) get the historical 8-byte key.
template <typename C>
constexpr std::size_t cipher_key_bytes() {
    if constexpr (requires { C::key_bytes; }) {
        return C::key_bytes;
    } else {
        return 8;
    }
}

// Runs `cfg.flows` transfers to completion.  `shard_mems(s)` supplies shard
// s's (client, server) memory-policy pair — the hook that gives every shard
// its own memsim::memory_system in simulated runs.
template <memsim::memory_policy Mem, crypto::block_cipher Cipher,
          typename MemFactory>
fleet_report run_fleet(const fleet_config& cfg, MemFactory&& shard_mems) {
    ILP_EXPECT(cfg.shards > 0);
    shard_options opts;
    opts.link_latency_us = cfg.link_latency_us;
    opts.poll_step_us = cfg.poll_step_us;
    opts.per_flow_queue_cap = cfg.per_flow_queue_cap;
    opts.policy = cfg.policy;
    opts.drr_quantum_bytes = cfg.drr_quantum_bytes;
    opts.trace_sampler = cfg.trace_sampler;
    opts.pipeline_workers = cfg.pipeline_workers;
    if (cfg.kernel_queue_packets != 0) {
        opts.request_forward_faults.max_queue_packets =
            cfg.kernel_queue_packets;
        opts.request_reverse_faults.max_queue_packets =
            cfg.kernel_queue_packets;
        opts.reply_forward_faults.max_queue_packets = cfg.kernel_queue_packets;
        opts.reply_reverse_faults.max_queue_packets = cfg.kernel_queue_packets;
    }

    std::vector<std::unique_ptr<shard<Mem, Cipher>>> workers;
    workers.reserve(cfg.shards);
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
        auto mems = shard_mems(s);
        workers.push_back(std::make_unique<shard<Mem, Cipher>>(
            s, opts, mems.first, mems.second));
    }

    for (std::uint32_t f = 0; f < cfg.flows; ++f) {
        flow_config fc = cfg.defaults;
        if (cfg.per_flow) cfg.per_flow(f, fc);
        // Per-flow secrets from a flow-split stream: flow f's key material
        // is the same whatever shard it lands on (the digest-invariance
        // contract extends to rekeying).
        if (fc.secure && fc.flow_secret == 0) {
            fc.flow_secret = derive_seed(cfg.key_seed, 0x5ec00000ull + f);
        }
        // Per-flow static cipher key, sized for the cipher in use.
        std::array<std::byte, cipher_key_bytes<Cipher>()> key{};
        rng key_rng(derive_seed(cfg.key_seed, f));
        key_rng.fill(key);
        const Cipher cipher{std::span<const std::byte>(key)};
        workers[f % cfg.shards]->open_flow(f, fc, cipher, cipher);
    }

    if (cfg.threaded && cfg.shards > 1) {
        std::vector<std::thread> threads;
        threads.reserve(workers.size());
        for (auto& w : workers) {
            threads.emplace_back([&w] { w->run(); });
        }
        for (auto& t : threads) t.join();
    } else {
        for (auto& w : workers) w->run();
    }

    fleet_report report;
    report.sampler = cfg.trace_sampler;
    report.shards.reserve(workers.size());
    for (auto& w : workers) {
        shard_summary s;
        s.shard = w->index();
        s.elapsed_us = w->clock().now();
        s.reply_data = w->reply_link().forward().stats();
        s.reply_ack = w->reply_link().reverse().stats();
        if (const memsim::memory_system* sys =
                obs::attribution_source(w->client_mem())) {
            s.client_mem = obs::sample_counters(*sys);
        }
        if (const memsim::memory_system* sys =
                obs::attribution_source(w->server_mem())) {
            s.server_mem = obs::sample_counters(*sys);
        }
        s.gate = w->gate().stats();
        s.latency = w->latency_sketch();
        s.slowest = w->slowest_flows();
        s.pipeline = w->pipeline_stats();
        s.pipeline_threaded = w->pipeline_threaded();
        std::sort(s.slowest.begin(), s.slowest.end(),
                  [](const slow_flow& a, const slow_flow& b) {
                      return a.elapsed_us != b.elapsed_us
                                 ? a.elapsed_us > b.elapsed_us
                                 : a.flow_id < b.flow_id;
                  });
        for (const flow_outcome& o : w->outcomes()) {
            ++s.flows;
            if (o.completed) ++s.completed;
            if (o.failed_explicitly()) ++s.failed;
            if (o.composed_fallback) ++s.fallbacks;
            s.rekeys += o.rekeys;
            report.flows.push_back(o);
        }
        report.shards.push_back(s);
    }
    report.finalize();
    return report;
}

// Native fleet: every side of every shard uses raw memory.
template <crypto::block_cipher Cipher>
fleet_report run_fleet_native(const fleet_config& cfg) {
    return run_fleet<memsim::direct_memory, Cipher>(cfg, [](std::uint32_t) {
        return std::pair<memsim::direct_memory, memsim::direct_memory>{};
    });
}

// Simulated fleet: each shard gets its own pair of cache simulators (client
// side, server side), so shard_summary reports per-shard cache contention.
template <crypto::block_cipher Cipher>
fleet_report run_fleet_simulated(const fleet_config& cfg,
                                 const memsim::memory_system_config& mc) {
    std::vector<std::unique_ptr<memsim::memory_system>> systems;
    systems.reserve(static_cast<std::size_t>(cfg.shards) * 2);
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
        systems.push_back(std::make_unique<memsim::memory_system>(mc));
        systems.push_back(std::make_unique<memsim::memory_system>(mc));
    }
    return run_fleet<memsim::sim_memory, Cipher>(cfg, [&](std::uint32_t s) {
        return std::pair<memsim::sim_memory, memsim::sim_memory>(
            memsim::sim_memory(*systems[2 * s]),
            memsim::sim_memory(*systems[2 * s + 1]));
    });
}

}  // namespace ilp::engine
