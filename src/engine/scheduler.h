// Pluggable flow-service policies for the shard's scheduler round.
//
// Every virtual-clock tick the shard visits each live flow once and asks
// the policy how much that flow's server may transmit:
//
//   * round_robin — drain until blocked: each visit sends every segment TCP
//     has window/buffer space for, exactly the single-flow harness cadence.
//     Fair in visits, not in bytes: a flow with large segments gets more
//     link per visit than one with small segments.
//   * deficit_round_robin — byte-metered (Shreedhar & Varghese): each visit
//     deposits `quantum_bytes` of credit, a segment may go out only when the
//     flow's credit covers its wire size, and sent bytes are charged.  Over
//     any window of whole rounds two backlogged flows' granted bytes differ
//     by at most one quantum plus one maximum segment, whatever their
//     segment sizes (bounded in tests/engine_test.cpp).
//
// The policy is deliberately per-flow state + pure functions: nothing here
// couples one flow's grant to another's, which keeps per-flow outcomes
// independent of how flows are packed onto shards.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ilp::engine {

enum class sched_policy { round_robin, deficit_round_robin };

// Per-flow scheduling state, owned by the shard's flow-table entry.
struct sched_state {
    std::uint64_t deficit_bytes = 0;
};

class flow_scheduler {
public:
    flow_scheduler(sched_policy policy, std::size_t quantum_bytes)
        : policy_(policy), quantum_(quantum_bytes) {}

    sched_policy policy() const noexcept { return policy_; }
    std::size_t quantum_bytes() const noexcept { return quantum_; }

    // Called once at the start of a flow's service visit with the wire size
    // of its next pending segment (0 = nothing pending).  DRR deposits the
    // quantum; an idle flow's credit resets (classic DRR — credit must not
    // be hoarded across idle periods), and a window-blocked flow's credit
    // is clamped to one quantum beyond its next segment so unblocking can't
    // release an unbounded burst.
    void begin_visit(sched_state& s, std::size_t next_wire_bytes) const {
        if (policy_ != sched_policy::deficit_round_robin) return;
        if (next_wire_bytes == 0) {
            s.deficit_bytes = 0;
            return;
        }
        s.deficit_bytes += quantum_;
        const std::uint64_t clamp =
            static_cast<std::uint64_t>(quantum_) + next_wire_bytes;
        if (s.deficit_bytes > clamp) s.deficit_bytes = clamp;
    }

    // May the flow transmit its next segment of `wire_bytes` now?
    bool grant(const sched_state& s, std::size_t wire_bytes) const {
        if (wire_bytes == 0) return false;  // nothing pending
        if (policy_ != sched_policy::deficit_round_robin) return true;
        return s.deficit_bytes >= wire_bytes;
    }

    // Charge a transmitted segment against the flow's credit.
    void charge(sched_state& s, std::size_t wire_bytes) const {
        if (policy_ != sched_policy::deficit_round_robin) return;
        const auto w = static_cast<std::uint64_t>(wire_bytes);
        s.deficit_bytes -= w < s.deficit_bytes ? w : s.deficit_bytes;
    }

private:
    sched_policy policy_;
    std::size_t quantum_;
};

}  // namespace ilp::engine
