// Multi-flow engine: per-flow configuration and outcome records.
//
// The engine (engine/shard.h, engine/fleet.h) runs many simultaneous ILP
// file transfers — each one the same client/server pair the single-flow
// harness drives — over *shared* datagram links.  A flow's id keys the
// shard's flow table and stamps every packet the flow emits
// (tcp::connection_config::net_tag = id + 1), so the shared pipes account
// each flow's queue occupancy separately and draw its fault coins from a
// per-flow RNG stream: a flow's loss pattern depends only on its own packet
// sequence, never on how other flows interleave on the link.  That is what
// makes per-flow outcomes invariant under re-sharding (tested in
// tests/engine_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "app/compose_models.h"
#include "app/file_transfer.h"
#include "app/path_mode.h"
#include "net/datagram.h"
#include "obs/flight_recorder.h"
#include "util/virtual_clock.h"

namespace ilp::engine {

// Mirrors the single-flow transfer_config knobs that are per-flow by
// nature; link latency, poll cadence and the shared queue bound live in the
// shard/fleet options instead.
struct flow_config {
    app::path_mode mode = app::path_mode::ilp;
    std::size_t file_bytes = 15 * 1024;
    std::uint32_t copies = 1;
    std::size_t packet_wire_bytes = 1024;
    app::retry_policy retry{};
    std::uint64_t file_seed = 0x11aa;
    sim_time deadline_us = 120'000'000;  // per-flow, on the shard's clock
    bool zero_copy = false;
    // Per-flow fault plans, installed for this flow's tag on the shared
    // pipes (reply data / reply ACK / request data / request ACK).  Seeds
    // are stream-split by tag, so two flows with identical plans still draw
    // independent coins.
    net::fault_config forward_faults{};
    net::fault_config reverse_faults{};
    net::fault_config request_forward_faults{};
    net::fault_config request_reverse_faults{};
    // Transport security (requires an aead_capable cipher).  The flow secret
    // seeds the per-epoch KDF on both endpoints; 0 lets run_fleet derive one
    // from the fleet key_seed and the flow id.  wire_version 2 negotiates
    // the flow down to classic framing (no trailers, no rekey).
    bool secure = false;
    std::uint32_t secure_wire_version = rpc::wire_version_secure;
    std::uint64_t rekey_interval_bytes = 0;
    std::uint64_t flow_secret = 0;
    // Test knob: derive the *client* keychain from a different secret, so a
    // key mismatch surfaces as explicit tag failures (never silent).
    std::uint64_t client_secret_override = 0;
    // Optional observe-only tap spliced into the flow's composed stage
    // graph.  The legality gate verifies the resulting composition at flow
    // setup; a tap that makes the fused graph illegal (crc32 on the B,C,A
    // send side) demotes the flow to the layered path.
    app::compose_tap tap = app::compose_tap::none;
    // Pipelined dataplane (ILP mode only).  pipeline_depth > 0 opts the
    // flow's reply path into stage pipelining over SPSC rings: segmentize →
    // fused marshal/encrypt/checksum → ack/window bookkeeping, with up to
    // `depth` segments in flight.  Must be a power of two (ring capacity);
    // 0 keeps the bit-identical serial path.  pipeline_batch is the
    // scheduler grant batch k: segments segmentized per stage-A burst before
    // the shard drains the pipeline.  Both knobs are digest-neutral by
    // construction (tested in tests/engine_test.cpp).
    std::size_t pipeline_depth = 0;
    std::size_t pipeline_batch = 4;
};

// Terminal record of one flow.  Exactly one of completed / gave_up /
// deadline_exceeded / request_rejected / ports_exhausted holds, so every
// flow either completes (and is verified against the served file) or fails
// *explicitly* — there is no silent outcome.
struct flow_outcome {
    std::uint32_t flow_id = 0;
    std::uint32_t shard = 0;  // excluded from fleet_report::digest()
    bool completed = false;
    bool verified = false;            // received copies byte-identical
    bool gave_up = false;             // client retry budget exhausted
    bool deadline_exceeded = false;   // per-flow deadline hit first
    bool request_rejected = false;    // request could not even be issued
    bool ports_exhausted = false;     // shard port range ran out
    std::uint64_t payload_bytes = 0;
    sim_time elapsed_us = 0;
    std::uint64_t rpc_retries = 0;
    std::uint64_t tcp_retransmissions = 0;
    std::uint64_t reply_packets_dropped = 0;  // this flow's tag, all causes
    // Shared-queue and fair-share-cap drops charged to this flow (its
    // backpressure footprint), both link directions.
    std::uint64_t queue_dropped = 0;
    // Wire bytes the shard's scheduler granted this flow (the quantity the
    // DRR fairness bound is stated over).
    std::uint64_t serviced_bytes = 0;
    // Transport-security counters (zero for non-secure flows): server key
    // advances, explicit client-side tag/epoch rejections, and acceptances
    // under the previous epoch (the retransmit window earning its keep).
    std::uint64_t rekeys = 0;
    std::uint64_t tag_failures = 0;
    std::uint64_t epoch_skews = 0;
    std::uint64_t epoch_window_hits = 0;
    // The legality gate verified this flow's composed graph illegal and
    // demoted it to the layered path at setup.  Excluded from
    // fleet_report::digest(): the demotion is policy, not transfer outcome,
    // and the BENCH baselines predate it.
    bool composed_fallback = false;
    // Did the deterministic trace sampler select this flow for span tracing?
    // Pure function of (sampler seed, flow id), so the sampled set is
    // invariant under shard count and threading.  Digest-excluded:
    // observability policy, not transfer outcome.
    bool trace_sampled = true;
    // Always-on flight recorder: the last obs::flight_recorder::capacity
    // protocol transitions, virtual-clock stamped.  Dumped as a JSON black
    // box by fleet_report_json() when the flow failed explicitly or was
    // demoted by the gate.  Digest-excluded.
    obs::flight_recorder black_box;

    double throughput_mbps() const {
        if (elapsed_us == 0) return 0.0;
        return static_cast<double>(payload_bytes) * 8.0 /
               static_cast<double>(elapsed_us);
    }

    // Did the flow end in one of the explicit failure outcomes (the PR 1/6
    // taxonomy)?  These are the flows whose black box the fleet report dumps.
    bool failed_explicitly() const {
        return gave_up || deadline_exceeded || request_rejected ||
               ports_exhausted;
    }
};

// One entry of a shard's bounded top-k slowest-flows list: the identity the
// latency sketch cannot keep (log2 buckets forget flow ids).
struct slow_flow {
    std::uint32_t flow_id = 0;
    sim_time elapsed_us = 0;
};

}  // namespace ilp::engine
