#include "util/virtual_clock.h"

#include <algorithm>

#include "util/contracts.h"

namespace ilp {

void virtual_clock::advance(sim_time delta_us) {
    ILP_EXPECT(delta_us <= ~sim_time{0} - now_us_);  // no sim_time overflow
    advance_to(now_us_ + delta_us);
}

void virtual_clock::advance_to(sim_time deadline_us) {
    ILP_EXPECT(deadline_us >= now_us_);  // monotone: the clock never rewinds
    // Fire timers in deadline order up to the target time.  Timer callbacks
    // may schedule new timers; those fire too if due before the target.
    for (;;) {
        timer* next = nullptr;
        for (auto& t : timers_) {
            if (t.cancelled || t.deadline > deadline_us) continue;
            if (next == nullptr || t.deadline < next->deadline ||
                (t.deadline == next->deadline && t.token < next->token)) {
                next = &t;
            }
        }
        if (next == nullptr) break;
        now_us_ = std::max(now_us_, next->deadline);
        auto fn = std::move(next->fn);
        next->cancelled = true;
        fn();
    }
    now_us_ = deadline_us;
    std::erase_if(timers_, [](const timer& t) { return t.cancelled; });
}

std::uint64_t virtual_clock::schedule_at(sim_time deadline_us,
                                         std::function<void()> fn) {
    ILP_EXPECT(fn != nullptr);
    const std::uint64_t token = next_token_++;
    timers_.push_back(timer{deadline_us, token, std::move(fn)});
    return token;
}

bool virtual_clock::cancel(std::uint64_t token) {
    for (auto& t : timers_) {
        if (t.token == token && !t.cancelled) {
            t.cancelled = true;
            return true;
        }
    }
    return false;
}

std::size_t virtual_clock::pending_timers() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(timers_.begin(), timers_.end(),
                      [](const timer& t) { return !t.cancelled; }));
}

}  // namespace ilp
