#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

// GCC 12 false-positives -Wmaybe-uninitialized on the variant move inside
// `value(std::move(out))` once parse_object/parse_array are inlined into
// parse_value at -O2 (gcc bug 105562); the temporary is fully constructed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace ilp::json {

namespace {

class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    std::optional<value> run() {
        skip_ws();
        std::optional<value> v = parse_value();
        if (!v.has_value()) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
        return v;
    }

private:
    static constexpr std::size_t max_depth = 64;

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skip_ws() {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume(char c) {
        if (eof() || peek() != c) return false;
        ++pos_;
        return true;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    std::optional<value> parse_value() {
        if (eof()) return std::nullopt;
        switch (peek()) {
            case 'n':
                return consume_literal("null")
                           ? std::optional<value>(value(nullptr))
                           : std::nullopt;
            case 't':
                return consume_literal("true")
                           ? std::optional<value>(value(true))
                           : std::nullopt;
            case 'f':
                return consume_literal("false")
                           ? std::optional<value>(value(false))
                           : std::nullopt;
            case '"': return parse_string_value();
            case '[': return parse_array();
            case '{': return parse_object();
            default: return parse_number();
        }
    }

    std::optional<value> parse_number() {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-') ++pos_;
        while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                          peek() == '.' || peek() == 'e' || peek() == 'E' ||
                          peek() == '+' || peek() == '-')) {
            ++pos_;
        }
        if (pos_ == start) return std::nullopt;
        // strtod needs a terminated buffer; numbers are short.
        char buf[64];
        const std::size_t len = pos_ - start;
        if (len >= sizeof buf) return std::nullopt;
        text_.copy(buf, len, start);
        buf[len] = '\0';
        char* end = nullptr;
        const double d = std::strtod(buf, &end);
        if (end != buf + len) return std::nullopt;
        return value(d);
    }

    std::optional<std::string> parse_string() {
        if (!consume('"')) return std::nullopt;
        std::string out;
        while (!eof()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (eof()) return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) return std::nullopt;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= h - '0';
                        else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                        else return std::nullopt;
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs in
                    // our own output never occur; pass them through raw).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: return std::nullopt;
            }
        }
        return std::nullopt;  // unterminated
    }

    std::optional<value> parse_string_value() {
        std::optional<std::string> s = parse_string();
        if (!s.has_value()) return std::nullopt;
        return value(std::move(*s));
    }

    std::optional<value> parse_array() {
        if (!consume('[') || ++depth_ > max_depth) return std::nullopt;
        array out;
        skip_ws();
        if (consume(']')) {
            --depth_;
            return value(std::move(out));
        }
        while (true) {
            skip_ws();
            std::optional<value> v = parse_value();
            if (!v.has_value()) return std::nullopt;
            out.push_back(std::move(*v));
            skip_ws();
            if (consume(']')) break;
            if (!consume(',')) return std::nullopt;
        }
        --depth_;
        return value(std::move(out));
    }

    std::optional<value> parse_object() {
        if (!consume('{') || ++depth_ > max_depth) return std::nullopt;
        object out;
        skip_ws();
        if (consume('}')) {
            --depth_;
            return value(std::move(out));
        }
        while (true) {
            skip_ws();
            std::optional<std::string> key = parse_string();
            if (!key.has_value()) return std::nullopt;
            skip_ws();
            if (!consume(':')) return std::nullopt;
            skip_ws();
            std::optional<value> v = parse_value();
            if (!v.has_value()) return std::nullopt;
            out.insert_or_assign(std::move(*key), std::move(*v));
            skip_ws();
            if (consume('}')) break;
            if (!consume(',')) return std::nullopt;
        }
        --depth_;
        return value(std::move(out));
    }
};

}  // namespace

std::optional<value> parse(std::string_view text) {
    return parser(text).run();
}

std::optional<value> parse_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) return std::nullopt;
    return parse(text);
}

}  // namespace ilp::json
