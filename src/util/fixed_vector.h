// Fixed-capacity inline vector (no heap allocation).
//
// Used on the per-packet fast path (gather/scatter segment lists, message
// part schedules) where allocation would distort both the wall-clock
// benchmarks and the simulated memory traffic.
#pragma once

#include <cstddef>

#include "util/contracts.h"

namespace ilp {

template <typename T, std::size_t Capacity>
class fixed_vector {
public:
    using value_type = T;

    fixed_vector() = default;

    std::size_t size() const noexcept { return size_; }
    static constexpr std::size_t capacity() noexcept { return Capacity; }
    bool empty() const noexcept { return size_ == 0; }
    bool full() const noexcept { return size_ == Capacity; }

    void push_back(const T& value) {
        ILP_EXPECT(size_ < Capacity);
        items_[size_++] = value;
    }

    void clear() noexcept { size_ = 0; }

    T& operator[](std::size_t i) {
        ILP_EXPECT(i < size_);
        return items_[i];
    }
    const T& operator[](std::size_t i) const {
        ILP_EXPECT(i < size_);
        return items_[i];
    }

    T& back() {
        ILP_EXPECT(size_ > 0);
        return items_[size_ - 1];
    }

    T* data() noexcept { return items_; }
    const T* data() const noexcept { return items_; }

    T* begin() noexcept { return items_; }
    T* end() noexcept { return items_ + size_; }
    const T* begin() const noexcept { return items_; }
    const T* end() const noexcept { return items_ + size_; }

private:
    T items_[Capacity] = {};
    std::size_t size_ = 0;
};

}  // namespace ilp
