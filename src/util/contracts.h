// Lightweight contract checking used across the library.
//
// ILP_EXPECT / ILP_ENSURE abort with a message on violation; they stay on in
// release builds because the protocol code validates untrusted input with
// them only indirectly (untrusted input goes through error returns, contracts
// guard programmer errors).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ilp::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
    std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
    std::abort();
}

}  // namespace ilp::detail

#define ILP_EXPECT(cond)                                                     \
    ((cond) ? static_cast<void>(0)                                           \
            : ::ilp::detail::contract_failure("precondition", #cond,         \
                                              __FILE__, __LINE__))

#define ILP_ENSURE(cond)                                                     \
    ((cond) ? static_cast<void>(0)                                           \
            : ::ilp::detail::contract_failure("postcondition", #cond,        \
                                              __FILE__, __LINE__))

// The paper implements data manipulations as macros because function calls
// forfeit the ILP gain (§3.2.1).  The modern equivalent is forced inlining;
// every per-unit kernel in the fused loop is marked ILP_ALWAYS_INLINE.
#if defined(__GNUC__) || defined(__clang__)
#define ILP_ALWAYS_INLINE inline __attribute__((always_inline))
#define ILP_NEVER_INLINE __attribute__((noinline))
#else
#define ILP_ALWAYS_INLINE inline
#define ILP_NEVER_INLINE
#endif
