// Network byte order (big-endian) load/store helpers.
//
// All wire formats in the stack (TCP header, RPC header, XDR, encryption
// length header) are big-endian, per RFC 1014 and the TCP/IP conventions the
// paper's stack uses.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ilp {

constexpr std::uint16_t load_be16(const std::byte* p) noexcept {
    return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(p[0]) << 8) |
                                      std::to_integer<std::uint16_t>(p[1]));
}

constexpr std::uint32_t load_be32(const std::byte* p) noexcept {
    return (std::to_integer<std::uint32_t>(p[0]) << 24) |
           (std::to_integer<std::uint32_t>(p[1]) << 16) |
           (std::to_integer<std::uint32_t>(p[2]) << 8) |
           std::to_integer<std::uint32_t>(p[3]);
}

constexpr std::uint64_t load_be64(const std::byte* p) noexcept {
    return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

constexpr void store_be16(std::byte* p, std::uint16_t v) noexcept {
    p[0] = static_cast<std::byte>(v >> 8);
    p[1] = static_cast<std::byte>(v & 0xff);
}

constexpr void store_be32(std::byte* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::byte>(v >> 24);
    p[1] = static_cast<std::byte>((v >> 16) & 0xff);
    p[2] = static_cast<std::byte>((v >> 8) & 0xff);
    p[3] = static_cast<std::byte>(v & 0xff);
}

constexpr void store_be64(std::byte* p, std::uint64_t v) noexcept {
    store_be32(p, static_cast<std::uint32_t>(v >> 32));
    store_be32(p + 4, static_cast<std::uint32_t>(v & 0xffffffffu));
}

// Host byte-order <-> big-endian conversion for whole words already loaded
// into a register (used by kernels that read words through a memory-access
// policy and then need the network-order value).
constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
    return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
           ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

constexpr std::uint16_t byteswap16(std::uint16_t v) noexcept {
    return static_cast<std::uint16_t>(((v & 0x00ffu) << 8) | ((v & 0xff00u) >> 8));
}

constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
    return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v))) << 32) |
           byteswap32(static_cast<std::uint32_t>(v >> 32));
}

constexpr bool host_is_little_endian() noexcept {
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    return true;
#else
    return false;
#endif
}

// Host word -> network order.
constexpr std::uint32_t host_to_be32(std::uint32_t v) noexcept {
    return host_is_little_endian() ? byteswap32(v) : v;
}
constexpr std::uint32_t be32_to_host(std::uint32_t v) noexcept {
    return host_to_be32(v);
}
constexpr std::uint16_t host_to_be16(std::uint16_t v) noexcept {
    return host_is_little_endian() ? byteswap16(v) : v;
}
constexpr std::uint16_t be16_to_host(std::uint16_t v) noexcept {
    return host_to_be16(v);
}

}  // namespace ilp
