// Alignment and processing-unit arithmetic.
//
// The paper's unit-size negotiation (§2.2): when function fx manipulates
// Lx-byte units and fy manipulates Ly-byte units, data should be exchanged in
// units of Le = lcm(Lx, Ly), optionally also folding in a system parameter Ls
// (memory bus width / cache line size): Le = lcm(Lx, Ly, Ls).
#pragma once

#include <cstddef>
#include <numeric>

#include "util/contracts.h"

namespace ilp {

constexpr std::size_t align_up(std::size_t n, std::size_t alignment) noexcept {
    return (n + alignment - 1) / alignment * alignment;
}

constexpr std::size_t align_down(std::size_t n, std::size_t alignment) noexcept {
    return n / alignment * alignment;
}

constexpr bool is_aligned(std::size_t n, std::size_t alignment) noexcept {
    return n % alignment == 0;
}

// Number of padding bytes needed to reach the next multiple of `alignment`.
constexpr std::size_t padding_for(std::size_t n, std::size_t alignment) noexcept {
    return align_up(n, alignment) - n;
}

// Exchanged processing-unit length for two data manipulation functions.
constexpr std::size_t exchange_unit(std::size_t lx, std::size_t ly) noexcept {
    return std::lcm(lx, ly);
}

// Exchanged unit folding in the system parameter Ls (paper §2.2).
constexpr std::size_t exchange_unit(std::size_t lx, std::size_t ly,
                                    std::size_t ls) noexcept {
    return std::lcm(std::lcm(lx, ly), ls);
}

// lcm over a parameter pack of unit sizes; used by the compile-time pipeline
// to derive the fused loop's unit Le from all stage unit sizes.
template <typename... Sizes>
constexpr std::size_t exchange_unit_of(Sizes... sizes) noexcept {
    std::size_t result = 1;
    ((result = std::lcm(result, static_cast<std::size_t>(sizes))), ...);
    return result;
}

}  // namespace ilp
