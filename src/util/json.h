// Minimal JSON parser (no dependencies) for the observability tooling.
//
// tools/ilp-trace reads Chrome trace_event files and versioned BENCH JSON
// baselines; the container ships no JSON library, so this is a small
// recursive-descent parser over the subset JSON defines: null, booleans,
// numbers (as double), strings with escape sequences, arrays and objects.
// It is a *reader* — the exporters in src/obs build their output as text.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ilp::json {

class value;
using array = std::vector<value>;
using object = std::map<std::string, value>;

class value {
public:
    value() : v_(nullptr) {}
    value(std::nullptr_t) : v_(nullptr) {}
    value(bool b) : v_(b) {}
    value(double d) : v_(d) {}
    value(std::string s) : v_(std::move(s)) {}
    value(array a) : v_(std::move(a)) {}
    value(object o) : v_(std::move(o)) {}

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
    bool is_bool() const { return std::holds_alternative<bool>(v_); }
    bool is_number() const { return std::holds_alternative<double>(v_); }
    bool is_string() const { return std::holds_alternative<std::string>(v_); }
    bool is_array() const { return std::holds_alternative<array>(v_); }
    bool is_object() const { return std::holds_alternative<object>(v_); }

    bool as_bool(bool fallback = false) const {
        const bool* b = std::get_if<bool>(&v_);
        return b != nullptr ? *b : fallback;
    }
    double as_number(double fallback = 0.0) const {
        const double* d = std::get_if<double>(&v_);
        return d != nullptr ? *d : fallback;
    }
    const std::string* as_string() const {
        return std::get_if<std::string>(&v_);
    }
    const array* as_array() const { return std::get_if<array>(&v_); }
    const object* as_object() const { return std::get_if<object>(&v_); }

    // Object member lookup; nullptr when this is not an object or the key
    // is absent.
    const value* find(std::string_view key) const {
        const object* o = as_object();
        if (o == nullptr) return nullptr;
        const auto it = o->find(std::string(key));
        return it == o->end() ? nullptr : &it->second;
    }
    // Convenience: member number / string with fallback.
    double number_at(std::string_view key, double fallback = 0.0) const {
        const value* m = find(key);
        return m == nullptr ? fallback : m->as_number(fallback);
    }
    std::string string_at(std::string_view key,
                          std::string fallback = "") const {
        const value* m = find(key);
        if (m == nullptr) return fallback;
        const std::string* s = m->as_string();
        return s == nullptr ? fallback : *s;
    }

private:
    std::variant<std::nullptr_t, bool, double, std::string, array, object> v_;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage rejected); nullopt on any syntax error.
std::optional<value> parse(std::string_view text);

// Reads a whole file and parses it; nullopt on I/O or syntax error.
std::optional<value> parse_file(const std::string& path);

}  // namespace ilp::json
