// Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
//
// Used for workload generation (file contents), fault injection in the
// datagram substrate, and property-test input generation.  Self-contained so
// results never depend on the standard library's unspecified distributions.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace ilp {

// Deterministically combines a base seed with a stream id (splitmix64-style
// finalizer over the pair).  Every per-flow RNG in the multi-flow engine is
// seeded with derive_seed(base, flow_id), so a flow's random stream (file
// contents, key material, fault coins) depends only on the base seed and its
// own id — never on scheduling order or shard assignment.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::uint64_t stream) noexcept {
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

class rng {
public:
    explicit rng(std::uint64_t seed) noexcept {
        // splitmix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    std::uint32_t next_u32() noexcept {
        return static_cast<std::uint32_t>(next_u64() >> 32);
    }

    // Uniform in [0, bound); bound must be > 0.  Uses rejection sampling to
    // avoid modulo bias.
    std::uint64_t next_below(std::uint64_t bound) noexcept {
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next_u64();
            if (r >= threshold) return r % bound;
        }
    }

    // Uniform double in [0, 1).
    double next_double() noexcept {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    bool next_bool(double probability_true) noexcept {
        return next_double() < probability_true;
    }

    void fill(std::span<std::byte> out) noexcept {
        std::size_t i = 0;
        while (i + 8 <= out.size()) {
            std::uint64_t v = next_u64();
            for (int b = 0; b < 8; ++b) {
                out[i + b] = static_cast<std::byte>(v & 0xff);
                v >>= 8;
            }
            i += 8;
        }
        if (i < out.size()) {
            std::uint64_t v = next_u64();
            for (; i < out.size(); ++i) {
                out[i] = static_cast<std::byte>(v & 0xff);
                v >>= 8;
            }
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

}  // namespace ilp
