#include "util/hexdump.h"

#include <cctype>
#include <cstdio>

namespace ilp {

std::string hexdump(std::span<const std::byte> data) {
    std::string out;
    char line[128];
    for (std::size_t offset = 0; offset < data.size(); offset += 16) {
        const std::size_t n = std::min<std::size_t>(16, data.size() - offset);
        int pos = std::snprintf(line, sizeof line, "%08zx  ", offset);
        for (std::size_t i = 0; i < 16; ++i) {
            if (i < n) {
                pos += std::snprintf(line + pos, sizeof line - pos, "%02x ",
                                     std::to_integer<unsigned>(data[offset + i]));
            } else {
                pos += std::snprintf(line + pos, sizeof line - pos, "   ");
            }
            if (i == 7) pos += std::snprintf(line + pos, sizeof line - pos, " ");
        }
        pos += std::snprintf(line + pos, sizeof line - pos, " |");
        for (std::size_t i = 0; i < n; ++i) {
            const int c = std::to_integer<int>(data[offset + i]);
            line[pos++] = std::isprint(c) ? static_cast<char>(c) : '.';
        }
        line[pos++] = '|';
        line[pos++] = '\n';
        out.append(line, static_cast<std::size_t>(pos));
    }
    return out;
}

std::string to_hex(std::span<const std::byte> data) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (const std::byte b : data) {
        const unsigned v = std::to_integer<unsigned>(b);
        out.push_back(digits[v >> 4]);
        out.push_back(digits[v & 0xf]);
    }
    return out;
}

}  // namespace ilp
