// Deterministic virtual time source.
//
// The TCP retransmission machinery and the platform timing models run on
// virtual time so that every test and simulated experiment is reproducible
// bit-for-bit, independent of host load (the paper fought exactly this noise
// on its SPARCstations).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ilp {

// Microseconds since simulation start.
using sim_time = std::uint64_t;

// Monotonicity contract: now() never decreases.  advance()/advance_to()
// enforce it with ILP_EXPECT — rewinding time (advance_to into the past) or
// overflowing sim_time (advance by a delta that wraps the 64-bit counter)
// aborts in any build with contracts enabled.  Everything downstream relies
// on this: the span tracer records begin <= end without clamping, TCP's RTO
// estimator subtracts timestamps unsigned, and the BENCH reports divide by
// elapsed time.  2^64 microseconds is ~584,000 years of virtual time, so
// the overflow check only ever fires on arithmetic bugs, not on long runs.
class virtual_clock {
public:
    sim_time now() const noexcept { return now_us_; }

    // Advance time; fires due timers in deadline order.  delta_us must not
    // overflow now() + delta_us (checked).
    void advance(sim_time delta_us);

    // Jump directly to an absolute time >= now() (checked; the clock never
    // rewinds).
    void advance_to(sim_time deadline_us);

    // Schedules `fn` at absolute time `deadline_us`; returns a token usable
    // with cancel().  Timers scheduled for a time <= now() fire on the next
    // advance() call.
    std::uint64_t schedule_at(sim_time deadline_us, std::function<void()> fn);
    std::uint64_t schedule_after(sim_time delta_us, std::function<void()> fn) {
        return schedule_at(now_us_ + delta_us, std::move(fn));
    }

    // Cancels a pending timer; returns false if it already fired or was
    // cancelled before.
    bool cancel(std::uint64_t token);

    std::size_t pending_timers() const noexcept;

private:
    struct timer {
        sim_time deadline;
        std::uint64_t token;
        std::function<void()> fn;
        bool cancelled = false;
    };

    sim_time now_us_ = 0;
    std::uint64_t next_token_ = 1;
    std::vector<timer> timers_;  // kept unsorted; scanned on advance
};

}  // namespace ilp
