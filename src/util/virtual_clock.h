// Deterministic virtual time source.
//
// The TCP retransmission machinery and the platform timing models run on
// virtual time so that every test and simulated experiment is reproducible
// bit-for-bit, independent of host load (the paper fought exactly this noise
// on its SPARCstations).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ilp {

// Microseconds since simulation start.
using sim_time = std::uint64_t;

class virtual_clock {
public:
    sim_time now() const noexcept { return now_us_; }

    // Advance time; fires due timers in deadline order.
    void advance(sim_time delta_us);

    // Jump directly to an absolute time >= now().
    void advance_to(sim_time deadline_us);

    // Schedules `fn` at absolute time `deadline_us`; returns a token usable
    // with cancel().  Timers scheduled for a time <= now() fire on the next
    // advance() call.
    std::uint64_t schedule_at(sim_time deadline_us, std::function<void()> fn);
    std::uint64_t schedule_after(sim_time delta_us, std::function<void()> fn) {
        return schedule_at(now_us_ + delta_us, std::move(fn));
    }

    // Cancels a pending timer; returns false if it already fired or was
    // cancelled before.
    bool cancel(std::uint64_t token);

    std::size_t pending_timers() const noexcept;

private:
    struct timer {
        sim_time deadline;
        std::uint64_t token;
        std::function<void()> fn;
        bool cancelled = false;
    };

    sim_time now_us_ = 0;
    std::uint64_t next_token_ = 1;
    std::vector<timer> timers_;  // kept unsorted; scanned on advance
};

}  // namespace ilp
