// Debug formatting of byte ranges ("xxd"-style), used by tests and examples.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace ilp {

// Formats `data` as offset / hex bytes / printable-ASCII columns, 16 bytes
// per line.
std::string hexdump(std::span<const std::byte> data);

// Compact lowercase hex string without separators ("deadbeef").
std::string to_hex(std::span<const std::byte> data);

}  // namespace ilp
