// RFC 1071 Internet (one's-complement) checksum.
//
// The checksum is the paper's canonical *non-ordering-constrained* data
// manipulation (§2.2): 16-bit one's-complement addition is commutative and
// associative, so words can be summed in any order and in any width.  That
// is what makes it fusable into the ILP loop, and what lets the loop feed it
// 8-byte units that are already in registers (add_register_u64) instead of
// re-reading memory in 2-byte units.
//
// The accumulator tracks byte parity so data may be appended in arbitrary
// chunk sizes, including odd ones, and still produce the standard result.
#pragma once

#include <cstdint>
#include <span>

#include "memsim/mem_policy.h"
#include "util/contracts.h"
#include "util/endian.h"

namespace ilp::checksum {

class inet_accumulator {
public:
    // Appends one byte.
    ILP_ALWAYS_INLINE void add_byte(std::uint8_t b) noexcept {
        if (odd_) {
            sum_ += b;  // low half of the current 16-bit word
        } else {
            sum_ += static_cast<std::uint32_t>(b) << 8;
        }
        odd_ = !odd_;
    }

    // Appends a 16-bit word given in big-endian (wire) value form.  Only
    // valid at even parity.
    ILP_ALWAYS_INLINE void add_be16(std::uint16_t v) noexcept {
        ILP_EXPECT(!odd_);
        sum_ += v;
    }

    // Appends 4/8 bytes whose *memory-order* byte sequence is packed in a
    // host-endian register value, as produced by Mem::load_u32/load_u64.
    // This is the fused-loop entry point: the bytes never touch memory
    // again.  Only valid at even parity.
    ILP_ALWAYS_INLINE void add_register_u32(std::uint32_t v) noexcept {
        ILP_EXPECT(!odd_);
        // Convert the register image to the big-endian word sequence the
        // checksum is defined over.
        const std::uint32_t be = host_to_be32(v);
        sum_ += be >> 16;
        sum_ += be & 0xffffu;
    }

    ILP_ALWAYS_INLINE void add_register_u64(std::uint64_t v) noexcept {
        ILP_EXPECT(!odd_);
        const std::uint64_t be =
            host_is_little_endian() ? byteswap64(v) : v;
        sum_ += (be >> 48) & 0xffffu;
        sum_ += (be >> 32) & 0xffffu;
        sum_ += (be >> 16) & 0xffffu;
        sum_ += be & 0xffffu;
    }

    // Appends a byte range through a memory-access policy, reading in the
    // given unit width (2, 4 or 8 bytes per load).  This is the classical
    // standalone checksum pass of the non-ILP implementation; the width
    // variants exist because the paper's unit-size analysis (§2.2) hinges on
    // how many discrete memory operations a pass issues.
    template <memsim::memory_policy Mem>
    void add_bytes(const Mem& mem, std::span<const std::byte> data,
                   std::size_t unit_width = 2) {
        const std::byte* p = data.data();
        std::size_t n = data.size();
        // Align to even parity first.
        if (odd_ && n > 0) {
            add_byte(mem.load_u8(p));
            ++p;
            --n;
        }
        switch (unit_width) {
            case 8:
                for (; n >= 8; n -= 8, p += 8) add_register_u64(mem.load_u64(p));
                [[fallthrough]];
            case 4:
                for (; n >= 4; n -= 4, p += 4) add_register_u32(mem.load_u32(p));
                [[fallthrough]];
            case 2:
                for (; n >= 2; n -= 2, p += 2) {
                    const std::uint16_t v = mem.load_u16(p);
                    add_be16(host_is_little_endian() ? byteswap16(v) : v);
                }
                break;
            default:
                ILP_EXPECT(false && "unit_width must be 2, 4 or 8");
        }
        for (; n > 0; --n, ++p) add_byte(mem.load_u8(p));
    }

    bool odd() const noexcept { return odd_; }

    // Folds the accumulator to the 16-bit one's-complement sum (not yet
    // complemented).
    std::uint16_t folded() const noexcept {
        std::uint64_t s = sum_;
        while (s >> 16) s = (s & 0xffffu) + (s >> 16);
        return static_cast<std::uint16_t>(s);
    }

    // Final checksum value as it appears on the wire (one's complement of
    // the folded sum).
    std::uint16_t finish() const noexcept {
        return static_cast<std::uint16_t>(~folded());
    }

private:
    std::uint64_t sum_ = 0;
    bool odd_ = false;
};

// Incremental update (RFC 1624): given a wire checksum field value and one
// 16-bit word of the covered data changing from `old_word` to `new_word`,
// returns the new checksum field value without re-summing the packet.
// HC' = ~(~HC + ~m + m').
inline std::uint16_t inet_checksum_update(std::uint16_t checksum_field,
                                          std::uint16_t old_word,
                                          std::uint16_t new_word) noexcept {
    std::uint32_t sum = static_cast<std::uint16_t>(~checksum_field);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

// One-shot convenience over a span (2-byte units, direct memory).
inline std::uint16_t inet_checksum(std::span<const std::byte> data) {
    inet_accumulator acc;
    acc.add_bytes(memsim::direct_memory{}, data, 2);
    return acc.finish();
}

// Verifies data that *includes* its checksum field: the folded sum over the
// whole range must be 0xffff.
inline bool inet_checksum_ok(std::span<const std::byte> data) {
    inet_accumulator acc;
    acc.add_bytes(memsim::direct_memory{}, data, 2);
    return acc.folded() == 0xffff;
}

}  // namespace ilp::checksum
