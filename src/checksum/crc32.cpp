#include "checksum/crc32.h"

namespace ilp::checksum {

namespace {

// Table generated at static-initialization time from the reflected
// polynomial 0xEDB88320.
struct crc_table {
    std::array<std::uint32_t, 256> entries;

    crc_table() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            entries[i] = c;
        }
    }
};

const crc_table& table() {
    static const crc_table t;
    return t;
}

}  // namespace

const std::byte* crc32::table_bytes() noexcept {
    return reinterpret_cast<const std::byte*>(table().entries.data());
}

std::uint32_t crc32_of(std::span<const std::byte> data) {
    crc32 crc;
    crc.update(data);
    return crc.value();
}

}  // namespace ilp::checksum
