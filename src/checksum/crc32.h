// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).
//
// CRC is the paper's example of an *ordering-constrained* data manipulation
// (§2.2): each step depends on the running remainder, so bytes must be
// processed strictly in serial order.  The ILP pipeline's stage traits mark
// it ordering-constrained and refuse to fuse it out of order; it exists here
// both as that counter-example and as a real integrity option for the
// file-transfer application.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "memsim/mem_policy.h"

namespace ilp::checksum {

class crc32 {
public:
    // Size of the lookup table read through the memory policy (256 × u32);
    // the analyzer's cache-pressure accounting (§4.2) uses this.
    static constexpr std::size_t table_size_bytes = 256 * 4;

    // Appends bytes through a memory-access policy; the 256-entry lookup
    // table is itself memory and its reads are counted, because table
    // pressure is exactly the cache effect the paper analyses for
    // table-driven manipulations (§4.2).
    template <memsim::memory_policy Mem>
    void update(const Mem& mem, std::span<const std::byte> data) {
        std::uint32_t crc = state_;
        const std::byte* p = data.data();
        for (std::size_t i = 0; i < data.size(); ++i) {
            const std::uint8_t v = mem.load_u8(p + i);
            const std::size_t index = (crc ^ v) & 0xffu;
            const std::uint32_t entry = mem.load_u32(table_bytes() + index * 4);
            crc = (crc >> 8) ^ entry;
        }
        state_ = crc;
    }

    void update(std::span<const std::byte> data) {
        update(memsim::direct_memory{}, data);
    }

    // Fused-loop entry point: `scratch` holds register-resident bytes, so the
    // data reads are free; only the table lookups go through the policy.
    template <memsim::memory_policy Mem>
    void update_scratch(const Mem& mem, const std::byte* scratch,
                        std::size_t n) {
        std::uint32_t crc = state_;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t v = std::to_integer<std::uint8_t>(scratch[i]);
            const std::size_t index = (crc ^ v) & 0xffu;
            const std::uint32_t entry = mem.load_u32(table_bytes() + index * 4);
            crc = (crc >> 8) ^ entry;
        }
        state_ = crc;
    }

    std::uint32_t value() const noexcept { return ~state_; }

    void reset() noexcept { state_ = 0xffffffffu; }

    // The lookup table viewed as raw bytes (host endianness), so accesses go
    // through the memory policy like any other table.
    static const std::byte* table_bytes() noexcept;

private:
    std::uint32_t state_ = 0xffffffffu;
};

// One-shot CRC-32 of a byte range.
std::uint32_t crc32_of(std::span<const std::byte> data);

}  // namespace ilp::checksum
