// Adler-32 checksum (RFC 1950).
//
// A second ordering-constrained integrity function (the running B sum
// depends on byte order), included to exercise the pipeline's
// ordering-constraint machinery with more than one example and as an
// alternative application-level checksum in the examples.
#pragma once

#include <cstdint>
#include <span>

#include "memsim/mem_policy.h"

namespace ilp::checksum {

class adler32 {
public:
    template <memsim::memory_policy Mem>
    void update(const Mem& mem, std::span<const std::byte> data) {
        std::uint32_t a = state_ & 0xffffu;
        std::uint32_t b = state_ >> 16;
        const std::byte* p = data.data();
        std::size_t n = data.size();
        std::size_t i = 0;
        while (n > 0) {
            // Process in blocks small enough that a and b cannot overflow
            // before the modulo.
            const std::size_t block = std::min<std::size_t>(n, 5552);
            for (std::size_t k = 0; k < block; ++k) {
                a += mem.load_u8(p + i + k);
                b += a;
            }
            a %= 65521u;
            b %= 65521u;
            i += block;
            n -= block;
        }
        state_ = (b << 16) | a;
    }

    void update(std::span<const std::byte> data) {
        update(memsim::direct_memory{}, data);
    }

    std::uint32_t value() const noexcept { return state_; }
    void reset() noexcept { state_ = 1; }

private:
    std::uint32_t state_ = 1;
};

inline std::uint32_t adler32_of(std::span<const std::byte> data) {
    adler32 sum;
    sum.update(data);
    return sum.value();
}

}  // namespace ilp::checksum
