// SAFER K-64 block cipher (Massey, 1993) — the full algorithm.
//
// 8-byte blocks, 8-byte key, `rounds` rounds (6 recommended by Massey for
// K-64).  The paper uses SAFER K-64 as its realistic-speed cipher family
// and derives its measured cipher from it by dropping to a single simplified
// round (see safer_simplified.h); the full cipher is provided both as the
// honest baseline and for the cipher-complexity ablation benchmarks.
//
// Structure per round (bytes a..h = block[0..7], K1/K2 the round subkeys):
//   mixed key layer:  a^=K1[0]  b+=K1[1]  c+=K1[2]  d^=K1[3]
//                     e^=K1[4]  f+=K1[5]  g+=K1[6]  h^=K1[7]
//   nonlinear layer:  a=E[a]+K2[0]  b=L[b]^K2[1]  c=L[c]^K2[2]  d=E[d]+K2[3]
//                     e=E[e]+K2[4]  f=L[f]^K2[5]  g=L[g]^K2[6]  h=E[h]+K2[7]
//   3 levels of 2-PHT(x,y) = (2x+y, x+y) with the Armageddon shuffle between
//   levels, then a final mixed key layer after the last round.
//
// Key schedule: K_1 is the user key; K_i[j] = rotl3(K_{i-1}[j]) + E[E[9i+j]]
// (Massey's byte-rotation-plus-bias schedule).  The original paper's test
// vectors were not available offline; the implementation is validated by
// round-trip, avalanche and permutation properties instead (see tests).
//
// All table and subkey reads in the data path go through the memory-access
// policy so the simulator sees the cipher's true table pressure.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/kdf.h"
#include "crypto/safer_tables.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"

namespace ilp::crypto {

class safer_k64 {
public:
    static constexpr std::size_t block_bytes = 8;
    static constexpr std::size_t key_bytes = 8;
    static constexpr unsigned default_rounds = 6;
    static constexpr unsigned max_rounds = 10;

    // Working set read through the memory policy per block: the two
    // 256-byte exp/log tables plus the expanded key schedule (§4.2).
    static constexpr std::size_t table_bytes =
        2 * 256 + (2 * max_rounds + 1) * key_bytes;

    safer_k64(std::span<const std::byte> key, unsigned rounds);
    explicit safer_k64(std::span<const std::byte> key)
        : safer_k64(key, default_rounds) {}

    unsigned rounds() const noexcept { return rounds_; }

    // Key hygiene: scrub the expanded key schedule when the instance is
    // retired (flow teardown or epoch retirement).
    ~safer_k64() {
        zeroize(reinterpret_cast<std::byte*>(subkeys_), sizeof(subkeys_));
    }
    safer_k64(const safer_k64&) = default;
    safer_k64& operator=(const safer_k64&) = default;

    // Encrypts/decrypts one 8-byte block in place.  `block` points at
    // scratch ("register") bytes and is accessed directly; subkeys and the
    // E/L tables are accessed through `mem` and therefore counted.
    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& mem, std::byte* block) const {
        const std::byte* const exp = safer_exp_table();
        const std::byte* const log = safer_log_table();
        std::uint8_t v[block_bytes];
        for (std::size_t j = 0; j < block_bytes; ++j) {
            v[j] = std::to_integer<std::uint8_t>(block[j]);
        }
        for (unsigned r = 0; r < rounds_; ++r) {
            const std::byte* k1 = subkey(2 * r);
            const std::byte* k2 = subkey(2 * r + 1);
            mixed_xor_add(mem, v, k1);
            // Nonlinear layer: E on the xor positions, L on the add
            // positions, then the complementary key mix.
            v[0] = add8(mem.load_u8(exp + v[0]), mem.load_u8(k2 + 0));
            v[1] = mem.load_u8(log + v[1]) ^ mem.load_u8(k2 + 1);
            v[2] = mem.load_u8(log + v[2]) ^ mem.load_u8(k2 + 2);
            v[3] = add8(mem.load_u8(exp + v[3]), mem.load_u8(k2 + 3));
            v[4] = add8(mem.load_u8(exp + v[4]), mem.load_u8(k2 + 4));
            v[5] = mem.load_u8(log + v[5]) ^ mem.load_u8(k2 + 5);
            v[6] = mem.load_u8(log + v[6]) ^ mem.load_u8(k2 + 6);
            v[7] = add8(mem.load_u8(exp + v[7]), mem.load_u8(k2 + 7));
            // Linear layer: three PHT levels with the byte shuffle.
            pht(v[0], v[1]); pht(v[2], v[3]); pht(v[4], v[5]); pht(v[6], v[7]);
            pht(v[0], v[2]); pht(v[4], v[6]); pht(v[1], v[3]); pht(v[5], v[7]);
            pht(v[0], v[4]); pht(v[1], v[5]); pht(v[2], v[6]); pht(v[3], v[7]);
            std::uint8_t t = v[1]; v[1] = v[4]; v[4] = v[2]; v[2] = t;
            t = v[3]; v[3] = v[5]; v[5] = v[6]; v[6] = t;
        }
        mixed_xor_add(mem, v, subkey(2 * rounds_));
        for (std::size_t j = 0; j < block_bytes; ++j) {
            block[j] = static_cast<std::byte>(v[j]);
        }
    }

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& mem, std::byte* block) const {
        const std::byte* const exp = safer_exp_table();
        const std::byte* const log = safer_log_table();
        std::uint8_t v[block_bytes];
        for (std::size_t j = 0; j < block_bytes; ++j) {
            v[j] = std::to_integer<std::uint8_t>(block[j]);
        }
        mixed_xor_sub(mem, v, subkey(2 * rounds_));
        for (unsigned r = rounds_; r-- > 0;) {
            const std::byte* k1 = subkey(2 * r);
            const std::byte* k2 = subkey(2 * r + 1);
            // Inverse shuffle.
            std::uint8_t t = v[2]; v[2] = v[4]; v[4] = v[1]; v[1] = t;
            t = v[3]; v[3] = v[6]; v[6] = v[5]; v[5] = t;
            ipht(v[0], v[4]); ipht(v[1], v[5]); ipht(v[2], v[6]); ipht(v[3], v[7]);
            ipht(v[0], v[2]); ipht(v[4], v[6]); ipht(v[1], v[3]); ipht(v[5], v[7]);
            ipht(v[0], v[1]); ipht(v[2], v[3]); ipht(v[4], v[5]); ipht(v[6], v[7]);
            // Inverse nonlinear + key layers.
            v[0] = mem.load_u8(log + sub8(v[0], mem.load_u8(k2 + 0))) ^
                   mem.load_u8(k1 + 0);
            v[1] = sub8(mem.load_u8(exp + (v[1] ^ mem.load_u8(k2 + 1))),
                        mem.load_u8(k1 + 1));
            v[2] = sub8(mem.load_u8(exp + (v[2] ^ mem.load_u8(k2 + 2))),
                        mem.load_u8(k1 + 2));
            v[3] = mem.load_u8(log + sub8(v[3], mem.load_u8(k2 + 3))) ^
                   mem.load_u8(k1 + 3);
            v[4] = mem.load_u8(log + sub8(v[4], mem.load_u8(k2 + 4))) ^
                   mem.load_u8(k1 + 4);
            v[5] = sub8(mem.load_u8(exp + (v[5] ^ mem.load_u8(k2 + 5))),
                        mem.load_u8(k1 + 5));
            v[6] = sub8(mem.load_u8(exp + (v[6] ^ mem.load_u8(k2 + 6))),
                        mem.load_u8(k1 + 6));
            v[7] = mem.load_u8(log + sub8(v[7], mem.load_u8(k2 + 7))) ^
                   mem.load_u8(k1 + 7);
        }
        for (std::size_t j = 0; j < block_bytes; ++j) {
            block[j] = static_cast<std::byte>(v[j]);
        }
    }

    // Subkey bytes for round-key index i in [0, 2*rounds]; exposed for the
    // simplified cipher, which reuses the first two subkeys.
    const std::byte* subkey(unsigned i) const noexcept {
        ILP_EXPECT(i <= 2 * rounds_);
        return reinterpret_cast<const std::byte*>(subkeys_[i]);
    }

private:
    static ILP_ALWAYS_INLINE std::uint8_t add8(std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a + b);
    }
    static ILP_ALWAYS_INLINE std::uint8_t sub8(std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a - b);
    }
    static ILP_ALWAYS_INLINE void pht(std::uint8_t& x, std::uint8_t& y) {
        y = add8(y, x);
        x = add8(x, y);
    }
    static ILP_ALWAYS_INLINE void ipht(std::uint8_t& x, std::uint8_t& y) {
        x = sub8(x, y);
        y = sub8(y, x);
    }

    template <memsim::memory_policy Mem>
    static void mixed_xor_add(const Mem& mem, std::uint8_t* v,
                              const std::byte* k) {
        v[0] ^= mem.load_u8(k + 0);
        v[1] = add8(v[1], mem.load_u8(k + 1));
        v[2] = add8(v[2], mem.load_u8(k + 2));
        v[3] ^= mem.load_u8(k + 3);
        v[4] ^= mem.load_u8(k + 4);
        v[5] = add8(v[5], mem.load_u8(k + 5));
        v[6] = add8(v[6], mem.load_u8(k + 6));
        v[7] ^= mem.load_u8(k + 7);
    }

    template <memsim::memory_policy Mem>
    static void mixed_xor_sub(const Mem& mem, std::uint8_t* v,
                              const std::byte* k) {
        v[0] ^= mem.load_u8(k + 0);
        v[1] = sub8(v[1], mem.load_u8(k + 1));
        v[2] = sub8(v[2], mem.load_u8(k + 2));
        v[3] ^= mem.load_u8(k + 3);
        v[4] ^= mem.load_u8(k + 4);
        v[5] = sub8(v[5], mem.load_u8(k + 5));
        v[6] = sub8(v[6], mem.load_u8(k + 6));
        v[7] ^= mem.load_u8(k + 7);
    }

    unsigned rounds_;
    alignas(8) std::uint8_t subkeys_[2 * max_rounds + 1][key_bytes];
};

}  // namespace ilp::crypto
