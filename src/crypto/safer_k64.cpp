#include "crypto/safer_k64.h"

namespace ilp::crypto {

namespace {

constexpr std::uint8_t rotl3(std::uint8_t x) noexcept {
    return static_cast<std::uint8_t>((x << 3) | (x >> 5));
}

}  // namespace

safer_k64::safer_k64(std::span<const std::byte> key,
                     unsigned rounds)
    : rounds_(rounds) {
    ILP_EXPECT(key.size() == key_bytes);
    ILP_EXPECT(rounds >= 1 && rounds <= max_rounds);
    // K_1 is the user key; each later subkey rotates every byte left by 3
    // and adds the bias B_i[j] = E[E[9i + j]] (1-based i, j).
    std::uint8_t reg[key_bytes];
    for (std::size_t j = 0; j < key_bytes; ++j) {
        reg[j] = std::to_integer<std::uint8_t>(key[j]);
        subkeys_[0][j] = reg[j];
    }
    for (unsigned i = 2; i <= 2 * rounds_ + 1; ++i) {
        for (std::size_t j = 0; j < key_bytes; ++j) {
            reg[j] = rotl3(reg[j]);
            const std::uint8_t bias = safer_exp(
                safer_exp(static_cast<std::uint8_t>(9 * i + j + 1)));
            subkeys_[i - 1][j] = static_cast<std::uint8_t>(reg[j] + bias);
        }
    }
}

}  // namespace ilp::crypto
