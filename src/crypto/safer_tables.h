// The SAFER exponential/logarithm tables (Massey, "SAFER K-64: A
// Byte-Oriented Block-Ciphering Algorithm").
//
// exp_table[i] = 45^i mod 257 (mod 256), so exp_table[128] = 256 mod 256 = 0,
// and log_table is its inverse permutation (log_table[0] = 128).
//
// These two 256-byte tables are the heart of the paper's cache analysis
// (§4.2): every encrypted byte costs a data-dependent table read, and in the
// ILP case the tables compete for cache lines with packet data between
// 8-byte units, which is why ILP *raises* the miss ratio with this cipher.
// Table reads therefore go through the memory-access policy.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ilp::crypto {

// 256-byte tables, 8-byte aligned, laid out as raw bytes so any memory
// policy can read them.
const std::byte* safer_exp_table() noexcept;
const std::byte* safer_log_table() noexcept;

// Direct (uncounted) table access, for key-schedule computation which the
// paper performs once at connection setup, outside the measured data path.
std::uint8_t safer_exp(std::uint8_t x) noexcept;
std::uint8_t safer_log(std::uint8_t x) noexcept;

}  // namespace ilp::crypto
