// RC4 stream cipher — the ordering-constrained counter-example.
//
// §2.2: "An ordering constrained function requires that data are processed
// in a serial order to ensure a correct result.  Examples of ordering
// constrained functions are the CRC calculation … and stream cipher
// encryption algorithms."  Such functions cannot take part in the paper's
// out-of-order message-part processing (parts B, C, A): the pipeline's
// ordering_constrained flag propagates from this stage and the send path
// must fall back to strictly linear processing.
//
// The 256-byte state is read *and written* for every data byte (the swap),
// so under the simulator RC4 exhibits even heavier table pressure than
// SAFER — a useful extra point on the cache-behaviour axis.
#pragma once

#include <cstdint>
#include <span>

#include "analysis/footprint.h"
#include "crypto/kdf.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"

namespace ilp::crypto {

class rc4 {
public:
    explicit rc4(std::span<const std::byte> key) {
        ILP_EXPECT(!key.empty() && key.size() <= 256);
        for (unsigned i = 0; i < 256; ++i) {
            state_[i] = static_cast<std::uint8_t>(i);
        }
        std::uint8_t j = 0;
        for (unsigned i = 0; i < 256; ++i) {
            j = static_cast<std::uint8_t>(
                j + state_[i] +
                std::to_integer<std::uint8_t>(key[i % key.size()]));
            std::swap(state_[i], state_[j]);
        }
    }

    // XORs the keystream over `data` in place.  Encryption and decryption
    // are the same operation; the object's stream position advances, so
    // both sides must process bytes in identical order — the ordering
    // constraint made concrete.
    template <memsim::memory_policy Mem>
    void process(const Mem& mem, std::byte* data, std::size_t n) {
        std::byte* const s = reinterpret_cast<std::byte*>(state_);
        std::uint8_t i = i_;
        std::uint8_t j = j_;
        for (std::size_t k = 0; k < n; ++k) {
            i = static_cast<std::uint8_t>(i + 1);
            const std::uint8_t si = mem.load_u8(s + i);
            j = static_cast<std::uint8_t>(j + si);
            const std::uint8_t sj = mem.load_u8(s + j);
            mem.store_u8(s + i, sj);
            mem.store_u8(s + j, si);
            const std::uint8_t keystream =
                mem.load_u8(s + static_cast<std::uint8_t>(si + sj));
            data[k] ^= static_cast<std::byte>(keystream);
        }
        i_ = i;
        j_ = j;
    }

    // Keystream position (bytes generated so far is not tracked; exposing
    // i/j lets tests assert serial-order sensitivity).
    std::uint8_t i() const noexcept { return i_; }
    std::uint8_t j() const noexcept { return j_; }

    // Key hygiene: the permutation state is key-derived, so scrub it when
    // the instance is retired.
    ~rc4() {
        zeroize(reinterpret_cast<std::byte*>(state_), sizeof(state_));
        i_ = 0;
        j_ = 0;
    }
    rc4(const rc4&) = default;
    rc4& operator=(const rc4&) = default;

private:
    alignas(8) std::uint8_t state_[256];
    std::uint8_t i_ = 0;
    std::uint8_t j_ = 0;
};

// Stream-cipher stage: 8 bytes of keystream per unit, *ordering
// constrained* — fusing it is fine, reordering message parts is not.
class rc4_stage {
public:
    static constexpr std::size_t unit_bytes = 8;
    static constexpr bool ordering_constrained = true;
    static constexpr analysis::footprint footprint_decl{
        .name = "rc4",
        .unit_bytes = unit_bytes,
        .reads_per_unit = unit_bytes,
        .writes_per_unit = unit_bytes,
        .ordering_constrained = ordering_constrained,  // keystream position
        .length_known_before_loop = true,
        .alignment = 1,  // byte stream: any offset, but only in order
        .aux_table_bytes = 256};  // the S-box state array

    explicit rc4_stage(rc4& cipher) : cipher_(&cipher) {}

    template <memsim::memory_policy Mem>
    void process_unit(const Mem& mem, std::byte* unit) const {
        cipher_->process(mem, unit, unit_bytes);
    }

private:
    rc4* cipher_;
};

}  // namespace ilp::crypto
