// The "very simple" encryption function of paper §4.1.
//
// To isolate how data-manipulation *characteristics* (not just complexity)
// affect ILP, the paper swaps the simplified SAFER for an Abbott &
// Peterson-style cipher that "uses constant values instead of tables":
// whole-word operations, no key vector, no table lookups — so it causes no
// per-byte memory traffic at all and is maximally ILP-friendly.  With this
// cipher ILP halves the send-side cache misses instead of raising them.
//
// We use an invertible word transform per 8-byte unit: xor with a constant,
// rotate, add a constant.  Both constants are derived from the key once and
// live in the cipher object (registers in the fused loop).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "memsim/mem_policy.h"
#include "util/contracts.h"

namespace ilp::crypto {

class simple_cipher {
public:
    static constexpr std::size_t block_bytes = 8;
    static constexpr std::size_t key_bytes = 8;

    // Constant-based: no tables, no counted key loads — the paper's §4.1
    // "simple cipher" whose ILP fusion never pressures the cache.
    static constexpr std::size_t table_bytes = 0;

    explicit simple_cipher(std::span<const std::byte> key) {
        ILP_EXPECT(key.size() == key_bytes);
        std::uint64_t k = 0;
        for (std::size_t j = 0; j < key_bytes; ++j) {
            k = (k << 8) | std::to_integer<std::uint64_t>(key[j]);
        }
        xor_constant_ = k ^ 0x9e3779b97f4a7c15ull;
        add_constant_ = (k * 0x2545f4914f6cdd1dull) | 1ull;
    }

    // `Mem` is accepted for interface uniformity with the table-driven
    // ciphers but is never used: this cipher touches no memory beyond the
    // unit itself, which is the whole point of the ablation.
    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& /*mem*/, std::byte* block) const {
        std::uint64_t v;
        std::memcpy(&v, block, block_bytes);
        v ^= xor_constant_;
        v = rotl(v, 13);
        v += add_constant_;
        std::memcpy(block, &v, block_bytes);
    }

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& /*mem*/, std::byte* block) const {
        std::uint64_t v;
        std::memcpy(&v, block, block_bytes);
        v -= add_constant_;
        v = rotl(v, 64 - 13);
        v ^= xor_constant_;
        std::memcpy(block, &v, block_bytes);
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, unsigned k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t xor_constant_ = 0;
    std::uint64_t add_constant_ = 0;
};

}  // namespace ilp::crypto
