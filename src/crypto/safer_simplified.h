// The paper's *simplified* SAFER-K64 (§3.1).
//
// Full SAFER K-64 (~25 Mbps at one round on a SPARCstation 10) was still too
// slow to let ILP effects show, so the authors reduced it to one layer of
// each operation type while "keeping the characteristics of the algorithm
// unchanged":
//
//   1. add/xor of each byte with the key    (reads the key),
//   2. logarithm/exponential on each byte   (reads the E/L tables),
//   3. 2-PHT(a1,a2) = (2*a1+a2, a1+a2) on each byte pair.
//
// This keeps the cache-relevant behaviour — one key read and one
// data-dependent table read per byte — at roughly 100x DES speed, which is
// exactly what made ILP gains measurable.  Decryption mirrors the three
// layers in reverse; as the paper notes it needs more intermediate values,
// which is why its cache behaviour is worse on the receive side (§4.2).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/safer_k64.h"
#include "crypto/safer_tables.h"
#include "memsim/mem_policy.h"

namespace ilp::crypto {

class safer_simplified {
public:
    static constexpr std::size_t block_bytes = 8;
    static constexpr std::size_t key_bytes = 8;

    // Exp/log tables plus the single subkey row it reads per block (§4.2).
    static constexpr std::size_t table_bytes = 2 * 256 + key_bytes;

    explicit safer_simplified(std::span<const std::byte> key)
        : schedule_(key, 1) {}

    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& mem, std::byte* block) const {
        const std::byte* const exp = safer_exp_table();
        const std::byte* const log = safer_log_table();
        const std::byte* const k = schedule_.subkey(0);
        std::uint8_t v[block_bytes];
        // Layer 1: mixed add/xor with the key (key bytes read via `mem`).
        for (std::size_t j = 0; j < block_bytes; ++j) {
            const std::uint8_t b = std::to_integer<std::uint8_t>(block[j]);
            const std::uint8_t kj = mem.load_u8(k + j);
            v[j] = use_xor(j) ? static_cast<std::uint8_t>(b ^ kj)
                              : static_cast<std::uint8_t>(b + kj);
        }
        // Layer 2: mixed exp/log substitution (table bytes read via `mem`).
        for (std::size_t j = 0; j < block_bytes; ++j) {
            v[j] = use_xor(j) ? mem.load_u8(exp + v[j]) : mem.load_u8(log + v[j]);
        }
        // Layer 3: 2-PHT on each pair of bytes.
        for (std::size_t j = 0; j < block_bytes; j += 2) {
            const std::uint8_t a1 = v[j];
            const std::uint8_t a2 = v[j + 1];
            v[j] = static_cast<std::uint8_t>(2 * a1 + a2);
            v[j + 1] = static_cast<std::uint8_t>(a1 + a2);
        }
        for (std::size_t j = 0; j < block_bytes; ++j) {
            block[j] = static_cast<std::byte>(v[j]);
        }
    }

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& mem, std::byte* block) const {
        const std::byte* const exp = safer_exp_table();
        const std::byte* const log = safer_log_table();
        const std::byte* const k = schedule_.subkey(0);
        // Decryption keeps more intermediate state than encryption (the
        // paper's explanation for its higher receive-side cache misses): the
        // inverse PHT needs both halves of each pair before either output
        // byte is final.
        std::uint8_t in[block_bytes];
        std::uint8_t mid[block_bytes];
        std::uint8_t out[block_bytes];
        for (std::size_t j = 0; j < block_bytes; ++j) {
            in[j] = std::to_integer<std::uint8_t>(block[j]);
        }
        // Inverse layer 3: IPHT(b1,b2) = (b1-b2, 2*b2-b1).
        for (std::size_t j = 0; j < block_bytes; j += 2) {
            const std::uint8_t b1 = in[j];
            const std::uint8_t b2 = in[j + 1];
            mid[j] = static_cast<std::uint8_t>(b1 - b2);
            mid[j + 1] = static_cast<std::uint8_t>(2 * b2 - b1);
        }
        // Inverse layer 2: log undoes exp and vice versa.
        for (std::size_t j = 0; j < block_bytes; ++j) {
            mid[j] = use_xor(j) ? mem.load_u8(log + mid[j])
                                : mem.load_u8(exp + mid[j]);
        }
        // Inverse layer 1.
        for (std::size_t j = 0; j < block_bytes; ++j) {
            const std::uint8_t kj = mem.load_u8(k + j);
            out[j] = use_xor(j) ? static_cast<std::uint8_t>(mid[j] ^ kj)
                                : static_cast<std::uint8_t>(mid[j] - kj);
        }
        for (std::size_t j = 0; j < block_bytes; ++j) {
            block[j] = static_cast<std::byte>(out[j]);
        }
    }

private:
    // SAFER's mixed pattern: positions 0,3,4,7 use xor (and the E table),
    // positions 1,2,5,6 use addition (and the L table).
    static constexpr bool use_xor(std::size_t j) noexcept {
        return j == 0 || j == 3 || j == 4 || j == 7;
    }

    safer_k64 schedule_;  // reuses the SAFER key schedule (subkey 0)
};

}  // namespace ilp::crypto
