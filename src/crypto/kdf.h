// Session-key derivation and the per-flow epoch keychain.
//
// "Designing Transport-Level Encryption for Datacenter Networks" argues for
// per-connection keys with cheap rekeying inside the transport.  This module
// supplies the key lifecycle the four ciphers lacked: every flow owns a
// 64-bit *flow secret* (split off the experiment's master seed with
// util::derive_seed, so a flow's keys depend only on the master seed and its
// flow id, never on scheduling), and each *epoch* of the flow expands the
// secret into fresh key material via the deterministic splitmix/xoshiro
// expansion both endpoints share.  Because derivation is deterministic there
// is no key-exchange message: a receiver that sees a newer epoch on the wire
// derives the key forward ("handshake-lite"), which is what lets a rekey
// survive outages and resume through PR 1's recovery machinery.
//
// The keychain keeps a two-epoch window {current-1, current}: mid-flow
// rekeying must tolerate in-flight retransmits and persist probes that were
// encrypted under the previous epoch (the TCP ring stores ciphertext, so a
// retransmission naturally carries the epoch it was first sent under).
// Anything older is *retired*: its key schedule is destroyed -- the cipher
// destructors zeroize -- and require() on it aborts, so a stale key can
// never silently decrypt traffic.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>

#include "util/contracts.h"
#include "util/rng.h"

namespace ilp::crypto {

using key_epoch = std::uint32_t;

// Best-effort key-material scrubbing: volatile writes the optimizer must not
// elide even though the object is about to die.  (The hygiene contract the
// rekey tests assert: retired epochs leave no schedule bytes behind.)
inline void zeroize(std::byte* data, std::size_t n) noexcept {
    volatile std::byte* p = data;
    for (std::size_t i = 0; i < n; ++i) p[i] = std::byte{0};
}

inline void zeroize(std::span<std::byte> data) noexcept {
    zeroize(data.data(), data.size());
}

inline void zeroize_u64(std::uint64_t* words, std::size_t n) noexcept {
    volatile std::uint64_t* p = words;
    for (std::size_t i = 0; i < n; ++i) p[i] = 0;
}

// Stream ids splitting one flow secret into independent key streams.  The
// control stream keys the request direction (epoch-free: requests are rare
// control-plane messages); the data stream is further split by epoch.
inline constexpr std::uint64_t kdf_stream_data = 0xda7a;
inline constexpr std::uint64_t kdf_stream_control = 0xc07f01ull;

// Expands (flow_secret, epoch) into a cipher keyed for that epoch.  Both
// endpoints run this identically, so epoch agreement is the whole handshake.
template <typename Cipher>
Cipher derive_epoch_cipher(std::uint64_t flow_secret, key_epoch epoch) {
    std::array<std::byte, Cipher::key_bytes> key;
    rng expand(derive_seed(derive_seed(flow_secret, kdf_stream_data), epoch));
    expand.fill(key);
    Cipher cipher{std::span<const std::byte>(key)};
    zeroize(key);
    return cipher;
}

// The request-direction key: per-flow but epoch-free.
template <typename Cipher>
Cipher derive_control_cipher(std::uint64_t flow_secret) {
    std::array<std::byte, Cipher::key_bytes> key;
    rng expand(derive_seed(flow_secret, kdf_stream_control));
    expand.fill(key);
    Cipher cipher{std::span<const std::byte>(key)};
    zeroize(key);
    return cipher;
}

// Per-flow key state: the current epoch's cipher plus the previous epoch's
// (the acceptance window for retransmitted ciphertext).  advance() retires
// current-1; adopt() jumps the window forward to a newer epoch seen on the
// wire (e.g. after an outage hid several rekeys).  Epochs behind the window
// are unreachable: cipher_for() refuses them and require() aborts.
template <typename Cipher>
class keychain {
public:
    explicit keychain(std::uint64_t flow_secret) : secret_(flow_secret) {
        current_.emplace(derive_epoch_cipher<Cipher>(secret_, 0));
    }

    std::uint64_t secret() const noexcept { return secret_; }
    key_epoch current_epoch() const noexcept { return epoch_; }
    const Cipher& current() const noexcept { return *current_; }

    // Key for `epoch` if it is inside the two-epoch window, else nullptr
    // (retired or not yet derived -- the caller decides whether a newer
    // epoch warrants a forward derivation).
    const Cipher* cipher_for(key_epoch epoch) const noexcept {
        if (epoch == epoch_) return &*current_;
        if (epoch + 1 == epoch_ && previous_.has_value()) return &*previous_;
        return nullptr;
    }

    // Window lookup that treats a miss as a programming error.  The rekey
    // death-test drives this: touching a retired epoch must abort, never
    // hand back a stale key.
    const Cipher& require(key_epoch epoch) const {
        const Cipher* cipher = cipher_for(epoch);
        ILP_EXPECT(cipher != nullptr && "epoch outside the key window");
        return *cipher;
    }

    // Rekey: current becomes previous, current+1 is derived fresh, and the
    // old previous (epoch current-1) is retired -- its destructor zeroizes
    // the key schedule.
    void advance() {
        previous_.emplace(std::move(*current_));
        current_.emplace(derive_epoch_cipher<Cipher>(secret_, epoch_ + 1));
        ++epoch_;
    }

    // Receiver-side forward jump: a tag-verified segment arrived under
    // `epoch` > current (the sender rekeyed, possibly several times during
    // an outage).  Re-centres the window on {epoch-1, epoch}.  Returns false
    // -- and changes nothing -- unless the jump moves forward.
    bool adopt(key_epoch epoch) {
        if (epoch <= epoch_) return false;
        if (epoch == epoch_ + 1) {
            advance();
            return true;
        }
        previous_.emplace(derive_epoch_cipher<Cipher>(secret_, epoch - 1));
        current_.emplace(derive_epoch_cipher<Cipher>(secret_, epoch));
        epoch_ = epoch;
        return true;
    }

private:
    std::uint64_t secret_;
    key_epoch epoch_ = 0;
    std::optional<Cipher> previous_;  // epoch_ - 1; empty at epoch 0
    std::optional<Cipher> current_;   // epoch_
};

}  // namespace ilp::crypto
