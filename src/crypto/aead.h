// AEAD-shaped cipher: keystream-style word transform plus an accumulated
// authentication tag, both computed in the same pass over the data.
//
// Modern datacenter transports authenticate as they encrypt (AES-GCM-style):
// one loop produces ciphertext *and* a tag that detects wrong keys and
// payload tampering explicitly, instead of leaving corruption for the
// checksum to maybe notice.  This cipher reproduces that *shape* at the
// paper's 8-byte-unit granularity so the ILP question — does fusing
// encrypt+authenticate with marshal+checksum still win on memory accesses? —
// can be asked of a modern stage mix.
//
// It is a modelling artifact, not real cryptography.  Two deliberate
// simplifications keep the stage fusable (not ordering-constrained, so the
// out-of-order B,C,A part traversal of §3.1 stays legal):
//   - the word transform is position-independent (pure ECB over 8-byte
//     units, like every other cipher here);
//   - the tag is a *commutative* accumulation (a keyed mix of each plaintext
//     word, summed mod 2^64), so parts may be tagged in any order and the
//     sender's B,C,A traversal equals the receiver's A,B,C tag.
// A real AEAD binds position and order; see DESIGN.md §5e for why the
// memory-access accounting is unaffected.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "crypto/block_cipher.h"
#include "crypto/kdf.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"

namespace ilp::crypto {

class aead_cipher {
public:
    static constexpr std::size_t block_bytes = 8;
    static constexpr std::size_t key_bytes = 16;

    // Constant-based like simple_cipher: four key words live in registers,
    // no tables compete with packet data for cache lines.
    static constexpr std::size_t table_bytes = 0;

    explicit aead_cipher(std::span<const std::byte> key) {
        ILP_EXPECT(key.size() == key_bytes);
        std::uint64_t k[2] = {0, 0};
        for (std::size_t j = 0; j < key_bytes; ++j) {
            k[j / 8] = (k[j / 8] << 8) | std::to_integer<std::uint64_t>(key[j]);
        }
        k_[0] = k[0] ^ 0x9e3779b97f4a7c15ull;
        k_[1] = (k[0] * 0x2545f4914f6cdd1dull) | 1ull;  // odd => invertible
        k_[2] = modular_inverse(k_[1]);
        k_[3] = k[1] ^ 0xbf58476d1ce4e5b9ull;
        k_[4] = (k[1] * 0x94d049bb133111ebull) ^ k[0];
        zeroize_u64(k, 2);
    }

    // Key material is per-epoch and short-lived; scrub it on retirement.
    ~aead_cipher() { zeroize_u64(k_, 5); }
    aead_cipher(const aead_cipher&) = default;
    aead_cipher& operator=(const aead_cipher&) = default;

    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& /*mem*/, std::byte* block) const {
        std::uint64_t v;
        std::memcpy(&v, block, block_bytes);
        v ^= k_[0];
        v = rotl(v, 19);
        v *= k_[1];
        v ^= k_[3];
        std::memcpy(block, &v, block_bytes);
    }

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& /*mem*/, std::byte* block) const {
        std::uint64_t v;
        std::memcpy(&v, block, block_bytes);
        v ^= k_[3];
        v *= k_[2];
        v = rotl(v, 64 - 19);
        v ^= k_[0];
        std::memcpy(block, &v, block_bytes);
    }

    // Keyed mix of one *plaintext* word for the authentication tag.  The tag
    // is the sum of tag_mix over all units (mod 2^64), folded to 32 bits at
    // the trailer — commutative, so fusion's out-of-order traversal is legal.
    std::uint64_t tag_mix(std::uint64_t plain_word) const noexcept {
        return (plain_word ^ k_[4]) * 0xff51afd7ed558ccdull;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, unsigned k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    // Inverse of an odd multiplier mod 2^64 by Newton iteration: each step
    // doubles the correct low bits, five steps reach all 64.
    static constexpr std::uint64_t modular_inverse(std::uint64_t a) noexcept {
        std::uint64_t x = a;  // correct to 3 bits for odd a
        for (int i = 0; i < 5; ++i) x *= 2 - a * x;
        return x;
    }

    // k_[0] xor-in, k_[1] odd multiplier, k_[2] its inverse, k_[3] xor-out,
    // k_[4] tag key.  One array so the destructor scrubs it in a single sweep.
    std::uint64_t k_[5] = {0, 1, 1, 0, 0};
};

// Ciphers that support the authenticated secure framing: keyed construction
// (so the KDF can derive per-epoch instances) plus the tag mix.
template <typename C>
concept aead_capable = block_cipher<C> && requires(const C& c, std::uint64_t w,
                                                   std::span<const std::byte> key) {
    { C::key_bytes } -> std::convertible_to<std::size_t>;
    C{key};
    { c.tag_mix(w) } -> std::convertible_to<std::uint64_t>;
};

// Running tag over the units of one message.  Fused and layered paths both
// funnel per-unit mixes through this; fold() emits the 32-bit wire tag.
struct aead_tag_accumulator {
    std::uint64_t sum = 0;

    ILP_ALWAYS_INLINE void add(std::uint64_t mixed) noexcept { sum += mixed; }

    std::uint32_t fold() const noexcept {
        return static_cast<std::uint32_t>(sum ^ (sum >> 32));
    }
};

}  // namespace ilp::crypto
