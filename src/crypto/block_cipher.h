// Block-cipher concept shared by the stack's cipher stages.
//
// Every cipher used in the protocol suite operates on 8-byte blocks in ECB
// fashion (the paper's stack encrypts each aligned 8-byte unit
// independently, which is what makes encryption non-ordering-constrained and
// thus fusable).  A cipher exposes in-place block transforms that take a
// memory-access policy for their table/key reads.
#pragma once

#include <concepts>
#include <cstddef>

#include "memsim/mem_policy.h"

namespace ilp::crypto {

template <typename C>
concept block_cipher =
    requires(const C& c, const memsim::direct_memory& mem, std::byte* block) {
        { C::block_bytes } -> std::convertible_to<std::size_t>;
        c.encrypt_block(mem, block);
        c.decrypt_block(mem, block);
    };

// Identity cipher: lets the same data paths run unencrypted transfers (and
// isolates marshalling/checksum behaviour in tests and ablations).
class null_cipher {
public:
    static constexpr std::size_t block_bytes = 8;

    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& /*mem*/, std::byte* /*block*/) const {}

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& /*mem*/, std::byte* /*block*/) const {}
};

}  // namespace ilp::crypto
