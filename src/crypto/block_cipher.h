// Block-cipher concept shared by the stack's cipher stages.
//
// Every cipher used in the protocol suite operates on 8-byte blocks in ECB
// fashion (the paper's stack encrypts each aligned 8-byte unit
// independently, which is what makes encryption non-ordering-constrained and
// thus fusable).  A cipher exposes in-place block transforms that take a
// memory-access policy for their table/key reads.
#pragma once

#include <concepts>
#include <cstddef>

#include "memsim/mem_policy.h"

namespace ilp::crypto {

template <typename C>
concept block_cipher =
    requires(const C& c, const memsim::direct_memory& mem, std::byte* block) {
        { C::block_bytes } -> std::convertible_to<std::size_t>;
        c.encrypt_block(mem, block);
        c.decrypt_block(mem, block);
    };

// Table/key-schedule working set a cipher touches *through the memory
// policy* per block (bytes).  This is the §4.2 cache-pressure axis — the
// difference between table-driven SAFER (log/exp tables compete with packet
// data for cache lines) and the constant-based simple_cipher (nothing) —
// and it feeds each cipher stage's footprint declaration for the analyzer's
// W2-cache-pressure rule.  Ciphers opt in with a `table_bytes` constant;
// absent a declaration the working set is taken as zero.
template <typename C>
concept declares_table_bytes = requires {
    { C::table_bytes } -> std::convertible_to<std::size_t>;
};

template <typename C>
constexpr std::size_t cipher_table_bytes() {
    if constexpr (declares_table_bytes<C>) {
        return C::table_bytes;
    } else {
        return 0;
    }
}

// Identity cipher: lets the same data paths run unencrypted transfers (and
// isolates marshalling/checksum behaviour in tests and ablations).
class null_cipher {
public:
    static constexpr std::size_t block_bytes = 8;
    static constexpr std::size_t table_bytes = 0;  // touches no memory at all

    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& /*mem*/, std::byte* /*block*/) const {}

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& /*mem*/, std::byte* /*block*/) const {}
};

}  // namespace ilp::crypto
