// DES (FIPS 46) — the paper's slow-cipher reference point.
//
// §3.1: "the processing time spent in the more complex DES encryption
// algorithm can hide totally the ILP performance gain … 0.5 Mbps for the
// system implementation of DES on a SPARCstation 10", which is why the
// measured experiments use SAFER-derived ciphers instead.  DES is included
// so the cipher-complexity axis of the ablations has its historical
// endpoint, and as another ECB block cipher exercising the stage framework.
//
// Straightforward table-driven implementation (initial/final permutation,
// 16 Feistel rounds, S-box lookups through the memory-access policy so the
// simulator sees its considerable table pressure).  Validated against the
// classic FIPS worked example in the tests.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/kdf.h"
#include "memsim/mem_policy.h"
#include "util/contracts.h"

namespace ilp::crypto {

class des {
public:
    static constexpr std::size_t block_bytes = 8;
    static constexpr std::size_t key_bytes = 8;  // parity bits ignored

    // The eight 64-entry S-boxes are read through the memory policy; the
    // subkeys live in registers by the time feistel() runs.
    static constexpr std::size_t table_bytes = 8 * 64;

    explicit des(std::span<const std::byte> key);

    // Key hygiene: scrub the round subkeys when a keyed instance is retired
    // (flow teardown or epoch retirement), so stale key schedules are never
    // left behind in freed flow-table slots.
    ~des() { zeroize_u64(subkeys_, 16); }
    des(const des&) = default;
    des& operator=(const des&) = default;

    template <memsim::memory_policy Mem>
    void encrypt_block(const Mem& mem, std::byte* block) const {
        process_block(mem, block, /*decrypt=*/false);
    }

    template <memsim::memory_policy Mem>
    void decrypt_block(const Mem& mem, std::byte* block) const {
        process_block(mem, block, /*decrypt=*/true);
    }

private:
    // The 8 S-boxes as raw bytes (64 entries each) so lookups go through
    // the memory policy.
    static const std::byte* sbox_bytes(unsigned box) noexcept;

    static std::uint64_t load_block(const std::byte* block) noexcept;
    static void store_block(std::byte* block, std::uint64_t v) noexcept;

    static std::uint64_t initial_permutation(std::uint64_t v) noexcept;
    static std::uint64_t final_permutation(std::uint64_t v) noexcept;
    static std::uint64_t expand(std::uint32_t r) noexcept;  // E: 32 -> 48
    static std::uint32_t permute_p(std::uint32_t v) noexcept;

    template <memsim::memory_policy Mem>
    std::uint32_t feistel(const Mem& mem, std::uint32_t r,
                          std::uint64_t subkey) const {
        const std::uint64_t x = expand(r) ^ subkey;
        std::uint32_t out = 0;
        for (unsigned box = 0; box < 8; ++box) {
            // 6 input bits per box, MSB-first.
            const unsigned chunk =
                static_cast<unsigned>((x >> (42 - 6 * box)) & 0x3f);
            const unsigned row = ((chunk & 0x20) >> 4) | (chunk & 1);
            const unsigned col = (chunk >> 1) & 0xf;
            const std::uint8_t s =
                mem.load_u8(sbox_bytes(box) + row * 16 + col);
            out = (out << 4) | s;
        }
        return permute_p(out);
    }

    template <memsim::memory_policy Mem>
    void process_block(const Mem& mem, std::byte* block, bool decrypt) const {
        const std::uint64_t input = initial_permutation(load_block(block));
        std::uint32_t l = static_cast<std::uint32_t>(input >> 32);
        std::uint32_t r = static_cast<std::uint32_t>(input);
        for (int round = 0; round < 16; ++round) {
            const std::uint64_t subkey =
                subkeys_[decrypt ? 15 - round : round];
            const std::uint32_t next = l ^ feistel(mem, r, subkey);
            l = r;
            r = next;
        }
        // Final swap then inverse permutation.
        const std::uint64_t pre_output =
            (static_cast<std::uint64_t>(r) << 32) | l;
        store_block(block, final_permutation(pre_output));
    }

    std::uint64_t subkeys_[16];  // 48 bits each, in the low bits
};

}  // namespace ilp::crypto
