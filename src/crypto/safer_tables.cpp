#include "crypto/safer_tables.h"

namespace ilp::crypto {

namespace {

struct tables {
    alignas(8) std::uint8_t exp[256];
    alignas(8) std::uint8_t log[256];

    tables() {
        std::uint32_t t = 1;
        for (std::size_t i = 0; i < 256; ++i) {
            exp[i] = static_cast<std::uint8_t>(t & 0xff);
            log[exp[i]] = static_cast<std::uint8_t>(i);
            t = t * 45 % 257;
        }
    }
};

const tables& get() {
    static const tables t;
    return t;
}

}  // namespace

const std::byte* safer_exp_table() noexcept {
    return reinterpret_cast<const std::byte*>(get().exp);
}

const std::byte* safer_log_table() noexcept {
    return reinterpret_cast<const std::byte*>(get().log);
}

std::uint8_t safer_exp(std::uint8_t x) noexcept { return get().exp[x]; }
std::uint8_t safer_log(std::uint8_t x) noexcept { return get().log[x]; }

}  // namespace ilp::crypto
