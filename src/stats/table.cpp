#include "stats/table.h"

#include <cstdio>

#include "util/contracts.h"

namespace ilp::stats {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    ILP_EXPECT(!headers_.empty());
}

table& table::row() {
    rows_.emplace_back();
    return *this;
}

table& table::cell(std::string value) {
    ILP_EXPECT(!rows_.empty());
    ILP_EXPECT(rows_.back().size() < headers_.size());
    rows_.back().push_back(std::move(value));
    return *this;
}

table& table::cell(std::int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return cell(std::string(buf));
}

table& table::cell(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    return cell(std::string(buf));
}

table& table::cell(double value, int precision) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return cell(std::string(buf));
}

std::string table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }

    std::string out;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string{};
            out += "  ";
            out += v;
            out.append(widths[c] - v.size(), ' ');
        }
        out += '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    out.append(total, '-');
    out += '\n';
    for (const auto& r : rows_) emit_row(r);
    return out;
}

void table::print() const { std::fputs(render().c_str(), stdout); }

double percent_gain(double non_ilp, double ilp) {
    if (non_ilp == 0.0) return 0.0;
    return (non_ilp - ilp) / non_ilp * 100.0;
}

}  // namespace ilp::stats
