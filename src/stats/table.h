// Fixed-width text table printer shared by the benchmark harnesses.
//
// Every bench binary regenerating a paper figure prints a table with the
// paper's reported values next to the measured/simulated ones, so the shape
// comparison is visible directly in the bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ilp::stats {

class table {
public:
    explicit table(std::vector<std::string> headers);

    // Starts a new row; cell() appends to the current row.
    table& row();
    table& cell(std::string value);
    table& cell(std::int64_t value);
    table& cell(std::uint64_t value);
    table& cell(double value, int precision = 2);

    // Renders with column widths fitted to content, one separator line
    // between header and body.
    std::string render() const;

    // Convenience: render and write to stdout.
    void print() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// Percentage difference "(base - other) / base * 100", the quantity the
// paper quotes as the ILP gain (e.g. "58 us (16 %) less").
double percent_gain(double non_ilp, double ilp);

}  // namespace ilp::stats
