// TCP-layer pipeline registrations for the fusion analyzer.
//
// The TCP layer runs two data manipulations of its own: the pseudo-header
// Internet checksum over outgoing segments when the send filler didn't
// already fold it in (tcp_output), and the verification checksum over
// incoming segments (tcp_input).  Both are single-stage "fusions" — a bare
// checksum tap over the wire bytes — but registering them keeps the lint
// inventory honest: every place the stack touches payload data appears in
// `ilp-lint --list`.
#pragma once

#include "analysis/registry.h"

namespace ilp::tcp {

// Registers the TCP-layer pipeline configurations; returns any findings
// raised at registration (none are expected — failures here mean the layer
// composed an illegal pipeline).
std::vector<analysis::finding> register_tcp_pipelines(
    analysis::pipeline_registry& registry);

}  // namespace ilp::tcp
