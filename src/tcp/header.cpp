#include "tcp/header.h"

#include "memsim/mem_policy.h"
#include "util/contracts.h"
#include "util/endian.h"

namespace ilp::tcp {

void serialize_header(const header_fields& h, std::span<std::byte> out) {
    ILP_EXPECT(out.size() >= header_bytes);
    std::byte* p = out.data();
    store_be16(p + 0, h.src_port);
    store_be16(p + 2, h.dst_port);
    store_be32(p + 4, h.seq);
    store_be32(p + 8, h.ack);
    p[12] = std::byte{5 << 4};  // data offset = 5 words, no options
    p[13] = static_cast<std::byte>(h.control);
    store_be16(p + 14, h.window);
    store_be16(p + 16, h.checksum);
    store_be16(p + 18, h.urgent);
}

bool parse_header(std::span<const std::byte> in, header_fields& out) {
    if (in.size() < header_bytes) return false;
    const std::byte* p = in.data();
    if ((std::to_integer<unsigned>(p[12]) >> 4) != 5) return false;
    out.src_port = load_be16(p + 0);
    out.dst_port = load_be16(p + 2);
    out.seq = load_be32(p + 4);
    out.ack = load_be32(p + 8);
    out.control = std::to_integer<std::uint8_t>(p[13]);
    out.window = load_be16(p + 14);
    out.checksum = load_be16(p + 16);
    out.urgent = load_be16(p + 18);
    return true;
}

void accumulate_pseudo_header(checksum::inet_accumulator& acc,
                              std::uint32_t src_addr, std::uint32_t dst_addr,
                              std::uint16_t tcp_length) {
    acc.add_be16(static_cast<std::uint16_t>(src_addr >> 16));
    acc.add_be16(static_cast<std::uint16_t>(src_addr & 0xffff));
    acc.add_be16(static_cast<std::uint16_t>(dst_addr >> 16));
    acc.add_be16(static_cast<std::uint16_t>(dst_addr & 0xffff));
    acc.add_be16(6);  // zero byte + protocol number (TCP)
    acc.add_be16(tcp_length);
}

void accumulate_header(checksum::inet_accumulator& acc,
                       std::span<const std::byte> header) {
    ILP_EXPECT(header.size() == header_bytes);
    acc.add_bytes(memsim::direct_memory{}, header, 2);
}

std::uint16_t finish_segment_checksum(std::uint32_t src_addr,
                                      std::uint32_t dst_addr,
                                      std::span<const std::byte> header,
                                      std::uint16_t payload_sum_folded,
                                      std::size_t payload_len) {
    checksum::inet_accumulator acc;
    accumulate_pseudo_header(
        acc, src_addr, dst_addr,
        static_cast<std::uint16_t>(header_bytes + payload_len));
    accumulate_header(acc, header);
    acc.add_be16(payload_sum_folded);
    return acc.finish();
}

bool verify_segment_checksum(std::uint32_t src_addr, std::uint32_t dst_addr,
                             std::span<const std::byte> header,
                             std::uint16_t payload_sum_folded,
                             std::size_t payload_len) {
    checksum::inet_accumulator acc;
    accumulate_pseudo_header(
        acc, src_addr, dst_addr,
        static_cast<std::uint16_t>(header_bytes + payload_len));
    accumulate_header(acc, header);
    acc.add_be16(payload_sum_folded);
    return acc.folded() == 0xffff;
}

}  // namespace ilp::tcp
