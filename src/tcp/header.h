// TCP segment header — fixed 20 bytes, no options.
//
// The paper's user-level TCP "avoids TCP header options to ensure fixed-size
// headers" (§3.1): a constant header size is one of ILP's applicability
// preconditions (the loop must know where data starts before it runs).
// Layout follows RFC 793; the checksum covers the standard pseudo-header,
// the header itself and the payload.
#pragma once

#include <cstdint>
#include <span>

#include "checksum/internet_checksum.h"

namespace ilp::tcp {

inline constexpr std::size_t header_bytes = 20;

namespace flags {
inline constexpr std::uint8_t fin = 0x01;
inline constexpr std::uint8_t syn = 0x02;
inline constexpr std::uint8_t rst = 0x04;
inline constexpr std::uint8_t psh = 0x08;
inline constexpr std::uint8_t ack = 0x10;
}  // namespace flags

struct header_fields {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t control = 0;  // flag bits
    std::uint16_t window = 0;
    std::uint16_t checksum = 0;
    std::uint16_t urgent = 0;
};

// Writes the 20-byte wire form into `out` (out.size() >= header_bytes).
void serialize_header(const header_fields& h, std::span<std::byte> out);

// Parses a 20-byte wire header.  Returns false for malformed headers
// (data offset != 5, i.e. options present, which this stack forbids).
bool parse_header(std::span<const std::byte> in, header_fields& out);

// Folds the RFC 793 pseudo-header (source/destination address, protocol 6,
// TCP length) into a checksum accumulator.
void accumulate_pseudo_header(checksum::inet_accumulator& acc,
                              std::uint32_t src_addr, std::uint32_t dst_addr,
                              std::uint16_t tcp_length);

// Folds the 20 header bytes into the accumulator (control-plane pass; the
// header is tiny and freshly written, so this models register/cache work).
void accumulate_header(checksum::inet_accumulator& acc,
                       std::span<const std::byte> header);

// Computes the checksum field value for a segment whose *payload* sum has
// already been folded (one's-complement arithmetic lets the payload sum be
// produced elsewhere — by the ILP loop's tap or a separate pass — and
// combined here).  `header` must contain the final header bytes with a zero
// checksum field.
std::uint16_t finish_segment_checksum(std::uint32_t src_addr,
                                      std::uint32_t dst_addr,
                                      std::span<const std::byte> header,
                                      std::uint16_t payload_sum_folded,
                                      std::size_t payload_len);

// Verifies a received segment given the independently accumulated payload
// sum.  Returns true when the one's-complement total is all ones.
bool verify_segment_checksum(std::uint32_t src_addr, std::uint32_t dst_addr,
                             std::span<const std::byte> header,
                             std::uint16_t payload_sum_folded,
                             std::size_t payload_len);

}  // namespace ilp::tcp
