#include "tcp/pipeline_models.h"

#include "core/fused_pipeline.h"
#include "core/stage.h"

namespace ilp::tcp {

std::vector<analysis::finding> register_tcp_pipelines(
    analysis::pipeline_registry& registry) {
    using namespace analysis;
    std::vector<finding> all;

    {
        pipeline_model m;
        m.name = "tcp-output-checksum";
        m.site = "src/tcp/connection.h:tcp_output";
        m.kind = pipeline_kind::fused;
        m.stages = core::fused_pipeline<core::checksum_tap8>::footprints();
        m.exchange_unit_bytes =
            core::fused_pipeline<core::checksum_tap8>::unit_bytes;
        std::vector<finding> f = registry.add(std::move(m));
        all.insert(all.end(), f.begin(), f.end());
    }
    {
        pipeline_model m;
        m.name = "tcp-input-checksum";
        m.site = "src/tcp/connection.h:tcp_input";
        m.kind = pipeline_kind::fused;
        m.stages = core::fused_pipeline<core::checksum_tap8>::footprints();
        m.exchange_unit_bytes =
            core::fused_pipeline<core::checksum_tap8>::unit_bytes;
        std::vector<finding> f = registry.add(std::move(m));
        all.insert(all.end(), f.begin(), f.end());
    }
    {
        // The ring copy the non-fused send path performs (a pure move
        // through the widest units, fused_pipeline<> with no stages).
        pipeline_model m;
        m.name = "tcp-ring-copy";
        m.site = "src/tcp/connection.h:tcp_sender::send_message";
        m.kind = pipeline_kind::fused;
        m.stages = core::fused_pipeline<>::footprints();
        m.exchange_unit_bytes = core::fused_pipeline<>::unit_bytes;
        std::vector<finding> f = registry.add(std::move(m));
        all.insert(all.end(), f.begin(), f.end());
    }

    return all;
}

}  // namespace ilp::tcp
