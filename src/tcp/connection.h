// User-level TCP: unidirectional bulk-data connections over the datagram
// substrate.
//
// This reproduces the paper's specialised user-level TCP (§3.1):
//   * fixed 20-byte headers (no options),
//   * unidirectional data transfer per connection (ACKs flow back through
//     the reverse pipe),
//   * ALF: one TSDU maps to exactly one TPDU, so message boundaries survive
//     and the receive path never reassembles,
//   * a ring retransmission buffer the send-side ILP loop writes into
//     directly (§3.2.2),
//   * go-back-N retransmission on a fixed RTO over the virtual clock.
//
// The data manipulations themselves are *not* in this module: tcp_sender
// accepts a payload filler (the application's ILP or layered send path) and
// tcp_receiver hands the payload to a message processor (the application's
// receive path) between the initial and final processing stages — the
// three-stage decomposition of core/three_stage.h.
//
// Everything is templated on the memory-access policy, so the same engine
// runs natively (direct_memory) for wall-clock benchmarks and instrumented
// (sim_memory) under the cache simulator.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "buffer/ring_buffer.h"
#include "checksum/internet_checksum.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "obs/tracer.h"
#include "tcp/header.h"
#include "util/contracts.h"
#include "util/virtual_clock.h"

namespace ilp::tcp {

// 32-bit sequence-space comparisons (wraparound-safe).  These are a strict
// weak ordering only for sequence numbers less than 2^31 apart — at a
// distance of exactly 2^31 both seq_lt(a, b) and seq_lt(b, a) hold.  The
// sender's uses are all window-bounded, so it never sees that distance;
// receiver-side duplicate/future classification uses seq_behind instead.
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) <= 0;
}

// True iff `a` is strictly behind `b` by less than half the sequence space —
// the receiver's "stale duplicate" test.  Unlike seq_lt this gives a single
// coherent verdict at the 2^31 boundary: a segment exactly 2^31 away from
// rcv_nxt is classified as future data (out of order), never as a
// duplicate, so recovery_report's drop accounting cannot double-classify.
constexpr bool seq_behind(std::uint32_t a, std::uint32_t b) noexcept {
    return (b - a) - 1u < 0x7fffffffu;
}

struct connection_config {
    std::uint32_t local_addr = 0x0a000001;   // 10.0.0.1
    std::uint32_t remote_addr = 0x0a000002;  // 10.0.0.2
    std::uint16_t local_port = 5001;
    std::uint16_t remote_port = 5002;
    std::uint32_t initial_seq = 0;
    std::size_t send_buffer_bytes = 16 * 1024;  // retransmission ring
    std::size_t recv_window_bytes = 16 * 1024;  // advertised window
    sim_time rto_us = 200'000;  // fixed RTO, and the initial adaptive RTO
    unsigned max_retries = 8;

    // Adaptive retransmission timing (Jacobson's algorithm with Karn's
    // rule, RFC 6298): RTO = SRTT + 4*RTTVAR, exponentially backed off on
    // timeout.  Off by default so simulation experiments stay on the
    // paper's fixed-timer behaviour.
    bool adaptive_rto = false;
    sim_time min_rto_us = 2'000;
    sim_time max_rto_us = 10'000'000;

    // Zero-copy adapter model (paper refs [12]-[15]): the system copy at
    // the domain boundary disappears (fbufs / page remapping); crossings
    // and all protocol processing remain.
    bool zero_copy = false;

    // Flow tag stamped on every packet this connection emits (data,
    // retransmissions, control segments, ACKs).  The multi-flow engine sets
    // it to the flow id so the shared datagram pipes can account each flow's
    // queue share and draw its fault coins from a per-flow stream; 0 (the
    // default) is the untagged single-flow path.
    std::uint32_t net_tag = 0;
};

// The peer's view of the same connection (swapped addresses and ports);
// hand the same base config to both ends and mirror one of them.
inline connection_config mirrored(const connection_config& c) {
    connection_config m = c;
    std::swap(m.local_addr, m.remote_addr);
    std::swap(m.local_port, m.remote_port);
    return m;
}

struct sender_stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t segments_transmitted = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t bad_acks = 0;  // checksum/parse failures on ACK packets
    std::uint64_t send_blocked = 0;  // send_message refused: no buffer/window
    std::uint64_t rsts_sent = 0;      // give-up notifications to the peer
    std::uint64_t window_probes = 0;  // zero-window persist probes
    std::uint64_t resets = 0;         // reset() calls (re-establishments)
};

struct receiver_stats {
    std::uint64_t segments_received = 0;
    std::uint64_t messages_accepted = 0;
    std::uint64_t checksum_failures = 0;
    std::uint64_t app_reject_failures = 0;
    std::uint64_t out_of_order_drops = 0;
    std::uint64_t duplicate_drops = 0;
    std::uint64_t header_failures = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t rsts_received = 0;  // peer gave up on this connection
    // RST-flagged segments rejected: carrying payload or failing checksum.
    // Distinct from header_failures so a corrupted data segment whose
    // header happens to show the RST bit is visible as a *suspect reset*,
    // not lumped in with garbled headers (and it never tears the
    // connection down).
    std::uint64_t bad_rsts = 0;
    std::uint64_t resets = 0;         // reset() calls (re-establishments)
};

// ---------------------------------------------------------------------------
// Sender

template <memsim::memory_policy Mem>
class tcp_sender {
public:
    tcp_sender(const Mem& mem, virtual_clock& clock, net::datagram_pipe& out,
               const connection_config& config)
        : mem_(mem),
          clock_(&clock),
          out_(&out),
          config_(config),
          ring_(config.send_buffer_bytes),
          snd_una_(config.initial_seq),
          snd_nxt_(config.initial_seq),
          peer_window_(config.recv_window_bytes) {}

    tcp_sender(const tcp_sender&) = delete;
    tcp_sender& operator=(const tcp_sender&) = delete;

    // Space the next message may occupy right now (paper §3.2.2: when the
    // retransmission buffer is full of unacknowledged data, all data
    // manipulations are delayed until space is available again).  Reserved-
    // but-uncommitted pipeline segments count against both the ring (via
    // free_space) and the peer window, so a pipelined reservation fails in
    // exactly the states where the serial send would have been blocked.
    std::size_t sendable_bytes() const noexcept {
        const std::size_t in_flight = (snd_nxt_ - snd_una_) + pending_bytes_;
        const std::size_t window_left =
            peer_window_ > in_flight ? peer_window_ - in_flight : 0;
        return std::min(ring_.free_space(), window_left);
    }

    // Sends one application message as exactly one TPDU (ALF).  `fill`
    // receives the ring reservation and writes `wire_len` payload bytes into
    // it through this connection's memory policy; it returns the folded
    // payload checksum if the data path accumulated one (the ILP loop), or
    // nullopt to request the separate tcp_output checksum pass (the non-ILP
    // path).  Returns false — without running `fill` — when buffer or peer
    // window space is insufficient.
    template <typename Filler>
    bool send_message(std::size_t wire_len, Filler&& fill) {
        ILP_EXPECT(wire_len > 0);
        ILP_EXPECT(wire_len + header_bytes <= net::datagram_pipe::max_packet_bytes);
        if (wire_len > sendable_bytes()) {
            ++stats_.send_blocked;
            return false;
        }
        ILP_OBS_SPAN("tcp", "segmentize");
        const ring_span dst = ring_.reserve(wire_len);
        std::optional<std::uint16_t> payload_sum = fill(dst);
        ring_.commit(wire_len);

        segment_meta meta;
        meta.seq = snd_nxt_;
        meta.len = wire_len;
        if (payload_sum.has_value()) {
            meta.payload_sum = *payload_sum;
        } else {
            // tcp_output's own checksum pass over the ring (non-ILP step 4).
            ILP_OBS_SPAN("tcp", "checksum");
            meta.payload_sum = checksum_over_ring(snd_nxt_ - snd_una_, wire_len);
        }
        meta.first_sent_at = clock_->now();
        unacked_.push_back(meta);
        snd_nxt_ += static_cast<std::uint32_t>(wire_len);
        ++stats_.messages_sent;
        transmit(meta);
        arm_rto();
        return true;
    }

    // --- pipelined send path (pipeline/stage_runner.h) ---------------------
    // reserve_segment/commit_segment split send_message in two so the fused
    // data-manipulation loop can run as its own pipeline stage: segmentize
    // reserves ring and window space for the segment (at the sequence number
    // it will hold once every earlier reservation commits), the fused stage
    // fills `dst`, and the completion stage commits strictly in FIFO order —
    // publishing the bytes, queueing the retransmission metadata and
    // transmitting exactly as the serial path would have.

    struct pending_segment {
        std::uint32_t seq = 0;
        std::size_t len = 0;
        ring_span dst;
    };

    // Fails (nullopt, counted as send_blocked) in exactly the states where
    // the serial send_message would have refused: outstanding reservations
    // count against both the ring and the peer window.
    std::optional<pending_segment> reserve_segment(std::size_t wire_len) {
        ILP_EXPECT(wire_len > 0);
        ILP_EXPECT(wire_len + header_bytes <=
                   net::datagram_pipe::max_packet_bytes);
        if (wire_len > sendable_bytes()) {
            ++stats_.send_blocked;
            return std::nullopt;
        }
        ILP_OBS_SPAN("tcp", "segmentize");
        pending_segment p;
        p.seq = snd_nxt_ + static_cast<std::uint32_t>(pending_bytes_);
        p.len = wire_len;
        p.dst = ring_.reserve_tail(wire_len);
        pending_bytes_ += wire_len;
        return p;
    }

    // FIFO-only: `p` must be the oldest outstanding reservation.
    void commit_segment(const pending_segment& p, std::uint16_t payload_sum) {
        ILP_EXPECT(p.seq == snd_nxt_);
        ILP_EXPECT(pending_bytes_ >= p.len);
        ring_.commit_tail(p.len);
        pending_bytes_ -= p.len;
        segment_meta meta;
        meta.seq = p.seq;
        meta.len = p.len;
        meta.payload_sum = payload_sum;
        meta.first_sent_at = clock_->now();
        unacked_.push_back(meta);
        snd_nxt_ += static_cast<std::uint32_t>(p.len);
        ++stats_.messages_sent;
        transmit(meta);
        arm_rto();
    }

    std::size_t pending_reserved_bytes() const noexcept {
        return pending_bytes_;
    }

    // Handles an arriving ACK packet (kernel memory span from the reverse
    // pipe).  Performs the receive-side system copy of the ACK — in a
    // user-level TCP even pure ACKs cross the kernel/user boundary, the
    // overhead the paper singles out in §4.1.
    void on_ack_packet(std::span<const std::byte> kernel_packet) {
        ILP_OBS_SPAN("tcp", "ack_input");
        if (kernel_packet.size() < header_bytes) {
            ++stats_.bad_acks;
            return;
        }
        mem_.copy(ack_buffer_, kernel_packet.data(), header_bytes);
        header_fields h;
        if (!parse_header({ack_buffer_, header_bytes}, h) ||
            h.dst_port != config_.local_port ||
            h.src_port != config_.remote_port ||
            (h.control & flags::ack) == 0 ||
            !verify_segment_checksum(config_.remote_addr, config_.local_addr,
                                     {ack_buffer_, header_bytes}, 0, 0)) {
            ++stats_.bad_acks;
            return;
        }
        ++stats_.acks_received;
        peer_window_ = h.window;
        if (peer_window_ == 0) {
            // Zero-window: without a persist probe nothing would ever
            // elicit the reopening ACK and the sender would wedge forever.
            arm_persist();
        } else {
            persist_shift_ = 0;
            disarm_persist();
        }
        if (seq_leq(h.ack, snd_una_)) return;  // duplicate ACK
        if (!seq_leq(h.ack, snd_nxt_)) {
            // ACK for data never sent: a corrupted packet whose 16-bit
            // checksum collides, or a forgery.  Untrusted input must never
            // abort the process — count it and drop.
            ++stats_.bad_acks;
            return;
        }
        // Release fully acknowledged segments (ALF: ACKs fall on segment
        // boundaries because the receiver accepts whole TPDUs only).
        while (!unacked_.empty() &&
               seq_leq(unacked_.front().seq +
                           static_cast<std::uint32_t>(unacked_.front().len),
                       h.ack)) {
            const segment_meta& acked = unacked_.front();
            if (!acked.retransmitted) {
                // Karn's rule: only unambiguous (never-retransmitted)
                // segments contribute RTT samples.
                record_rtt_sample(clock_->now() - acked.first_sent_at);
            }
            ring_.release(acked.len);
            snd_una_ += static_cast<std::uint32_t>(acked.len);
            unacked_.pop_front();
        }
        retries_ = 0;
        backoff_shift_ = 0;
        disarm_rto();
        if (!unacked_.empty()) arm_rto();
    }

    // Rewinds the connection to a fresh sequence state so it can be
    // re-established after a failure (or to resynchronise with a peer that
    // reset).  Outstanding data is discarded — the layer above owns
    // recovery of anything that was never acknowledged.
    void reset(std::uint32_t isn) {
        disarm_rto();
        disarm_persist();
        unacked_.clear();
        ring_.clear();  // also drops any uncommitted tail reservations
        pending_bytes_ = 0;
        snd_una_ = snd_nxt_ = isn;
        retries_ = 0;
        backoff_shift_ = 0;
        persist_shift_ = 0;
        failed_ = false;
        peer_window_ = config_.recv_window_bytes;
        ++stats_.resets;
    }

    // Disarms the RTO and persist timers without touching stream state or
    // stats.  Must run before destroying a sender whose clock outlives it:
    // an armed timer callback captures `this`.
    void quiesce() {
        disarm_rto();
        disarm_persist();
    }

    bool idle() const noexcept { return unacked_.empty(); }
    // Smoothed RTT estimate in microseconds (0 until the first sample).
    double smoothed_rtt_us() const noexcept { return have_rtt_ ? srtt_us_ : 0; }
    sim_time effective_rto_us() const noexcept { return current_rto(); }
    bool failed() const noexcept { return failed_; }
    std::uint32_t next_seq() const noexcept { return snd_nxt_; }
    const sender_stats& stats() const noexcept { return stats_; }
    const ring_buffer& ring() const noexcept { return ring_; }

    // Attribution identity for spans opened from this connection's timers
    // (RTO, persist), which fire from clock.advance() outside any
    // endpoint-scoped attribution.
    void set_attribution(const char* side,
                         const memsim::memory_system* source) noexcept {
        obs_side_ = side;
        obs_src_ = source;
    }

private:
    struct segment_meta {
        std::uint32_t seq = 0;
        std::size_t len = 0;
        std::uint16_t payload_sum = 0;  // folded payload checksum
        sim_time first_sent_at = 0;
        bool retransmitted = false;  // Karn's rule: no RTT sample then
    };

    std::uint16_t checksum_over_ring(std::size_t offset, std::size_t len) {
        checksum::inet_accumulator acc;
        const const_ring_span view = ring_.peek(offset, len);
        acc.add_bytes(mem_, view.first, 8);
        if (!view.second.empty()) acc.add_bytes(mem_, view.second, 8);
        return acc.folded();
    }

    // tcp_output: header build, checksum completion, system copy to the
    // kernel part.
    void transmit(const segment_meta& meta) {
        ILP_OBS_SPAN("tcp", "output");
        header_fields h;
        h.src_port = config_.local_port;
        h.dst_port = config_.remote_port;
        h.seq = meta.seq;
        h.control = flags::psh;
        h.window = 0;  // no reverse data flow on this connection
        serialize_header(h, {header_buffer_, header_bytes});
        const std::uint16_t cksum = finish_segment_checksum(
            config_.local_addr, config_.remote_addr,
            {header_buffer_, header_bytes}, meta.payload_sum, meta.len);
        store_be16(header_buffer_ + 16, cksum);

        const const_ring_span payload =
            ring_.peek(meta.seq - snd_una_, meta.len);
        const std::span<const std::byte> header_span{header_buffer_,
                                                     header_bytes};
        if (config_.zero_copy) {
            out_->send_zero_copy({header_span, payload.first, payload.second},
                                 config_.net_tag);
        } else {
            out_->send(mem_, {header_span, payload.first, payload.second},
                       config_.net_tag);
        }
        ++stats_.segments_transmitted;
    }

    void arm_rto() {
        if (rto_token_ != 0 || unacked_.empty() || failed_) return;
        rto_token_ = clock_->schedule_after(current_rto(), [this] {
            ILP_OBS_ATTR(obs_side_, obs_src_);
            rto_token_ = 0;
            on_rto();
        });
    }

    // Jacobson's algorithm (RFC 6298): SRTT/RTTVAR smoothing with
    // alpha = 1/8, beta = 1/4.
    void record_rtt_sample(sim_time sample_us) {
        if (!have_rtt_) {
            srtt_us_ = static_cast<double>(sample_us);
            rttvar_us_ = static_cast<double>(sample_us) / 2.0;
            have_rtt_ = true;
            return;
        }
        const double err = static_cast<double>(sample_us) - srtt_us_;
        rttvar_us_ += ((err < 0 ? -err : err) - rttvar_us_) / 4.0;
        srtt_us_ += err / 8.0;
    }

    sim_time current_rto() const {
        if (!config_.adaptive_rto) return config_.rto_us;
        sim_time base = have_rtt_
                            ? static_cast<sim_time>(srtt_us_ + 4.0 * rttvar_us_)
                            : config_.rto_us;
        if (base < config_.min_rto_us) base = config_.min_rto_us;
        // Exponential backoff while retransmitting.
        for (unsigned i = 0; i < backoff_shift_ && base < config_.max_rto_us;
             ++i) {
            base *= 2;
        }
        return base > config_.max_rto_us ? config_.max_rto_us : base;
    }

    void disarm_rto() {
        if (rto_token_ != 0) {
            clock_->cancel(rto_token_);
            rto_token_ = 0;
        }
    }

    // Header-only control segment (RST on give-up, zero-window probes).
    void transmit_control(std::uint8_t control, std::uint32_t seq) {
        header_fields h;
        h.src_port = config_.local_port;
        h.dst_port = config_.remote_port;
        h.seq = seq;
        h.control = control;
        h.window = 0;
        serialize_header(h, {header_buffer_, header_bytes});
        const std::uint16_t cksum = finish_segment_checksum(
            config_.local_addr, config_.remote_addr,
            {header_buffer_, header_bytes}, 0, 0);
        store_be16(header_buffer_ + 16, cksum);
        const std::span<const std::byte> header_span{header_buffer_,
                                                     header_bytes};
        if (config_.zero_copy) {
            out_->send_zero_copy({header_span}, config_.net_tag);
        } else {
            out_->send(mem_, {header_span}, config_.net_tag);
        }
    }

    void arm_persist() {
        if (persist_token_ != 0 || failed_) return;
        sim_time interval = current_rto();
        for (unsigned i = 0; i < persist_shift_ && interval < config_.max_rto_us;
             ++i) {
            interval *= 2;
        }
        if (interval > config_.max_rto_us) interval = config_.max_rto_us;
        persist_token_ = clock_->schedule_after(interval, [this] {
            ILP_OBS_ATTR(obs_side_, obs_src_);
            persist_token_ = 0;
            on_persist();
        });
    }

    void disarm_persist() {
        if (persist_token_ != 0) {
            clock_->cancel(persist_token_);
            persist_token_ = 0;
        }
    }

    void on_persist() {
        if (failed_ || peer_window_ != 0) return;
        ILP_OBS_SPAN("tcp", "persist");
        // A zero-payload segment at snd_nxt elicits a pure ACK carrying the
        // peer's current window (the classic persist-timer probe).
        transmit_control(flags::psh, snd_nxt_);
        ++stats_.window_probes;
        if (persist_shift_ < 6) ++persist_shift_;
        arm_persist();
    }

    void on_rto() {
        if (unacked_.empty()) return;
        ILP_OBS_SPAN("tcp", "retransmit");
        if (++retries_ > config_.max_retries) {
            // Give up — and say so: an RST tells the peer this end stopped
            // retransmitting, instead of leaving it waiting forever.
            failed_ = true;
            ILP_OBS_INSTANT("tcp", "rst_sent");
            transmit_control(flags::rst, snd_una_);
            ++stats_.rsts_sent;
            return;
        }
        // Go-back-N: retransmit everything outstanding, with timer backoff.
        if (backoff_shift_ < 16) ++backoff_shift_;
        for (segment_meta& meta : unacked_) {
            meta.retransmitted = true;
            transmit(meta);
            ++stats_.retransmissions;
        }
        arm_rto();
    }

    Mem mem_;
    virtual_clock* clock_;
    net::datagram_pipe* out_;
    connection_config config_;
    ring_buffer ring_;
    std::deque<segment_meta> unacked_;
    std::uint32_t snd_una_;
    std::uint32_t snd_nxt_;
    std::size_t pending_bytes_ = 0;  // reserved-but-uncommitted segments
    std::size_t peer_window_;
    std::uint64_t rto_token_ = 0;
    std::uint64_t persist_token_ = 0;
    unsigned retries_ = 0;
    unsigned backoff_shift_ = 0;
    unsigned persist_shift_ = 0;
    bool have_rtt_ = false;
    double srtt_us_ = 0;
    double rttvar_us_ = 0;
    bool failed_ = false;
    const char* obs_side_ = nullptr;
    const memsim::memory_system* obs_src_ = nullptr;
    sender_stats stats_;
    alignas(8) std::byte header_buffer_[header_bytes] = {};
    alignas(8) std::byte ack_buffer_[header_bytes] = {};
};

// ---------------------------------------------------------------------------
// Receiver

// Result of the application's receive-side data manipulation over one
// payload: the folded payload checksum its loop (or pass) accumulated, plus
// whether the application-level decode succeeded.
struct rx_process_result {
    std::uint16_t payload_sum = 0;
    bool ok = false;
};

template <memsim::memory_policy Mem>
class tcp_receiver {
public:
    // `process` is the application data path: it runs over the payload in
    // the receive buffer *before* TCP control commits anything (the paper
    // places data manipulations directly after the system copy, §3.2.3).
    // The span is mutable because the non-ILP path decrypts the receive
    // buffer in place (Fig. 5 step 3).  `on_accept` fires in the final
    // stage for every delivered message.
    using processor =
        std::function<rx_process_result(std::span<std::byte> payload)>;
    // Zero-copy data path: the payload as a loaned kernel-segment chain (up
    // to two spans around the receive-ring wrap), processed in place.  Only
    // read-only paths (the fused ILP receive loop) can run this way; the
    // layered path decrypts in place and needs the mutable staging copy.
    using chain_processor =
        std::function<rx_process_result(const const_ring_span& payload)>;
    using accept_handler = std::function<void(std::size_t payload_len)>;
    // Fires when a checksum-valid RST arrives: the peer's sender exhausted
    // its retries and abandoned the connection.
    using failure_handler = std::function<void()>;

    tcp_receiver(const Mem& mem, virtual_clock& clock,
                 net::datagram_pipe& ack_out, const connection_config& config)
        : mem_(mem),
          clock_(&clock),
          ack_out_(&ack_out),
          config_(config),
          recv_buffer_(net::datagram_pipe::max_packet_bytes),
          rcv_nxt_(config.initial_seq) {}

    tcp_receiver(const tcp_receiver&) = delete;
    tcp_receiver& operator=(const tcp_receiver&) = delete;

    void set_processor(processor process) { process_ = std::move(process); }
    void set_chain_processor(chain_processor process) {
        chain_process_ = std::move(process);
    }
    void set_accept_handler(accept_handler h) { on_accept_ = std::move(h); }
    void set_failure_handler(failure_handler h) { on_failure_ = std::move(h); }

    // True once a peer RST has been seen and not yet cleared by reset().
    bool peer_failed() const noexcept { return peer_failed_; }

    // Rewinds the expected sequence number so the connection can be
    // re-established after a failure; clears the peer-failed latch.
    void reset(std::uint32_t isn) {
        rcv_nxt_ = isn;
        peer_failed_ = false;
        ++stats_.resets;
    }

    // tcp_input: one arriving TPDU in kernel memory.
    void on_packet(std::span<const std::byte> kernel_packet) {
        ILP_OBS_SPAN("tcp", "input");
        ++stats_.segments_received;

        // --- system copy (Fig. 5 step 1): kernel buffer -> receive buffer.
        // Always performed through the memory policy: what the model counts
        // is what the code does.  The zero-copy mode eliminates this copy
        // for real — the pipe lends the packet in place and delivery goes
        // through on_segment — instead of doing it off the books.
        if (kernel_packet.size() < header_bytes ||
            kernel_packet.size() > recv_buffer_.size()) {
            ++stats_.header_failures;
            return;
        }
        mem_.copy(recv_buffer_.data(), kernel_packet.data(),
                  kernel_packet.size());
        const std::size_t payload_len = kernel_packet.size() - header_bytes;

        input_staged(payload_len, [&](std::size_t len) {
            ILP_EXPECT(process_ != nullptr);
            return process_(recv_buffer_.subspan(header_bytes, len));
        });
    }

    // tcp_input, zero-copy form: the arriving TPDU is a loan inside the
    // kernel receive ring (up to two spans around the wrap).  Only the
    // 20-byte header is staged through the memory policy — TCP must parse
    // and verify it, so those touches are real and counted.  The payload is
    // handed to the chain processor in place (the fused ILP loop reads it
    // exactly once, straight out of kernel memory); without one — the
    // layered path needs contiguous mutable memory to decrypt in place —
    // it is pulled into the receive buffer through the memory policy, an
    // honestly counted copy.
    void on_segment(const const_ring_span& kernel_segment) {
        ILP_OBS_SPAN("tcp", "input");
        ++stats_.segments_received;

        const std::size_t n = kernel_segment.size();
        if (n < header_bytes || n > recv_buffer_.size()) {
            ++stats_.header_failures;
            return;
        }
        copy_chain(kernel_segment.subspan(0, header_bytes),
                   recv_buffer_.data());
        const std::size_t payload_len = n - header_bytes;

        input_staged(payload_len, [&](std::size_t len) {
            const const_ring_span payload =
                kernel_segment.subspan(header_bytes, len);
            if (chain_process_ != nullptr) return chain_process_(payload);
            ILP_EXPECT(process_ != nullptr);
            copy_chain(payload, recv_buffer_.data() + header_bytes);
            return process_(recv_buffer_.subspan(header_bytes, len));
        });
    }

    std::uint32_t expected_seq() const noexcept { return rcv_nxt_; }
    const receiver_stats& stats() const noexcept { return stats_; }

private:
    // Common control path once the header image sits at the front of the
    // receive buffer: parse + demultiplex + sequence check, then the
    // application data manipulations via `run_process(payload_len)`, then
    // the final accept/reject stage.
    template <typename ProcessFn>
    void input_staged(std::size_t payload_len, ProcessFn&& run_process) {
        // --- initial stage: parse + demultiplex + sequence check.
        header_fields h;
        if (!parse_header(recv_buffer_.subspan(0, header_bytes), h) ||
            h.dst_port != config_.local_port ||
            h.src_port != config_.remote_port) {
            ++stats_.header_failures;
            return;
        }
        if ((h.control & flags::rst) != 0) {
            // Failure signal from the peer's sender.  Sequence numbers are
            // deliberately not checked — the whole point of the RST is to
            // reach a peer whose sequence state may have diverged — but the
            // checksum must verify, and a genuine RST never carries
            // payload: a corrupted data segment whose header happens to
            // show the RST bit must not tear the connection down.
            if (payload_len == 0 &&
                verify_segment_checksum(config_.remote_addr,
                                        config_.local_addr,
                                        recv_buffer_.subspan(0, header_bytes),
                                        0, 0)) {
                ++stats_.rsts_received;
                ILP_OBS_INSTANT("tcp", "rst_received");
                peer_failed_ = true;
                if (on_failure_ != nullptr) on_failure_();
            } else {
                ++stats_.bad_rsts;
            }
            return;
        }
        if (h.seq != rcv_nxt_) {
            // Old duplicate or future segment (go-back-N: not buffered).
            if (seq_behind(h.seq, rcv_nxt_)) {
                ++stats_.duplicate_drops;
            } else {
                ++stats_.out_of_order_drops;
            }
            send_ack();  // re-advertise rcv_nxt so the sender resynchronises
            return;
        }
        if (payload_len == 0) {
            // Zero-window persist probe (or bare control segment): answer
            // with a pure ACK so the sender learns the current window.
            send_ack();
            return;
        }

        // --- ILP loop stage: the application's data manipulations run over
        // the payload now, before any TCP state is committed.
        const rx_process_result result = run_process(payload_len);

        // --- final stage: accept or reject.
        const bool checksum_ok = verify_segment_checksum(
            config_.remote_addr, config_.local_addr,
            recv_buffer_.subspan(0, header_bytes), result.payload_sum,
            payload_len);
        if (!checksum_ok) {
            ++stats_.checksum_failures;
            send_ack();
            return;
        }
        if (!result.ok) {
            // Data passed the checksum but failed application decode; the
            // message is consumed (it was correctly transferred) but counted
            // as an application-level failure.
            ++stats_.app_reject_failures;
        }
        rcv_nxt_ += static_cast<std::uint32_t>(payload_len);
        ++stats_.messages_accepted;
        send_ack();
        if (result.ok && on_accept_ != nullptr) on_accept_(payload_len);
    }

    // Counted copy of a (possibly two-piece) loan into contiguous memory.
    void copy_chain(const const_ring_span& src, std::byte* dst) {
        mem_.copy(dst, src.first.data(), src.first.size());
        if (!src.second.empty()) {
            mem_.copy(dst + src.first.size(), src.second.data(),
                      src.second.size());
        }
    }

    void send_ack() {
        ILP_OBS_SPAN("tcp", "ack_output");
        header_fields h;
        h.src_port = config_.local_port;
        h.dst_port = config_.remote_port;
        h.ack = rcv_nxt_;
        h.control = flags::ack;
        h.window = static_cast<std::uint16_t>(
            std::min<std::size_t>(config_.recv_window_bytes, 0xffff));
        serialize_header(h, {ack_buffer_, header_bytes});
        const std::uint16_t cksum = finish_segment_checksum(
            config_.local_addr, config_.remote_addr, {ack_buffer_, header_bytes},
            0, 0);
        store_be16(ack_buffer_ + 16, cksum);
        ack_out_->send(mem_,
                       {std::span<const std::byte>{ack_buffer_, header_bytes}},
                       config_.net_tag);
        ++stats_.acks_sent;
    }

    Mem mem_;
    virtual_clock* clock_;
    net::datagram_pipe* ack_out_;
    connection_config config_;
    byte_buffer recv_buffer_;
    std::uint32_t rcv_nxt_;
    processor process_;
    chain_processor chain_process_;
    accept_handler on_accept_;
    failure_handler on_failure_;
    bool peer_failed_ = false;
    receiver_stats stats_;
    alignas(8) std::byte ack_buffer_[header_bytes] = {};
};

}  // namespace ilp::tcp
