#include "platform/machines.h"

#include "util/contracts.h"

namespace ilp::platform {

namespace {

machine_model supersparc(std::string name, std::string display,
                         double clock_mhz, bool has_l2,
                         double system_us_per_packet) {
    machine_model m;
    m.name = std::move(name);
    m.display = std::move(display);
    m.clock_mhz = clock_mhz;
    m.memory = has_l2 ? memsim::supersparc_with_l2()
                      : memsim::supersparc_no_l2();
    m.alu_cycles_per_data_byte = 0.25;
    m.byte_alu_factor = 1.0;  // SPARC has byte loads/stores
    m.control_cycles_per_packet = 1500;
    m.crossing_cycles = 500;
    m.system_us_per_packet = system_us_per_packet;
    return m;
}

machine_model alpha(std::string name, std::string display, double clock_mhz,
                    std::size_t l2_bytes, double system_us_per_packet) {
    machine_model m;
    m.name = std::move(name);
    m.display = std::move(display);
    m.clock_mhz = clock_mhz;
    m.memory = memsim::alpha21064(l2_bytes);
    // Loads/stores and loop glue are costlier per byte on the 21064's
    // in-order dual-issue pipeline than on the SuperSPARC for this kind of
    // byte-and-word shuffling code.
    m.alu_cycles_per_data_byte = 0.8;
    // The 21064 has no byte load/store instructions: byte-granular cipher
    // work costs extract/insert sequences.
    m.byte_alu_factor = 3.0;
    // OSF/1 1.3/2.x: "causes a very high overhead in the experiment" (§4.1).
    m.control_cycles_per_packet = 9000;
    m.crossing_cycles = 2500;
    m.system_us_per_packet = system_us_per_packet;
    return m;
}

}  // namespace

std::vector<machine_model> paper_machines() {
    // System overheads calibrated so that 1 KB ILP throughput lands near the
    // paper's Figure 8 values given the modelled packet processing times.
    return {
        supersparc("ss10-30", "SS10-30", 36.0, /*has_l2=*/false, 900),
        supersparc("ss10-41", "SS10-41", 40.0, true, 750),
        supersparc("ss10-51", "SS10-51", 50.0, true, 500),
        supersparc("ss20-60", "SS20-60", 60.0, true, 420),
        alpha("axp3000-500", "AXP3000/500", 150.0, 512 * 1024, 600),
        alpha("axp3000-600", "AXP3000/600", 175.0, 2 * 1024 * 1024, 550),
        alpha("axp3000-800", "AXP3000/800", 200.0, 2 * 1024 * 1024, 450),
    };
}

machine_model machine(const std::string& name) {
    for (auto& m : paper_machines()) {
        if (m.name == name) return m;
    }
    ILP_EXPECT(false && "unknown machine");
    return {};
}

}  // namespace ilp::platform
