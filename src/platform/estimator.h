// The experiment estimator: runs an instrumented transfer on a machine
// model and converts the simulator's counters into the paper's reported
// quantities — per-packet send/receive processing times (us) and transfer
// throughput (Mbps).
#pragma once

#include <cstdint>
#include <string>

#include "app/harness.h"
#include "platform/machines.h"

namespace ilp::platform {

// The three implementation variants Figure 12 compares.
enum class impl_kind {
    ilp,         // user-level TCP, fused data manipulations
    layered,     // user-level TCP, one pass per function
    kernel_tcp,  // layered manipulations over an in-kernel TCP path model
};

// Ciphers the experiments sweep over.
enum class cipher_kind {
    safer_simplified,  // the paper's measured cipher (§3.1)
    simple,            // constant-based cipher (§4.1)
    safer_full,        // full 6-round SAFER K-64 (complexity ablation)
    none,              // null cipher (framework ablations)
    aead,              // keystream+tag cipher (transport-security extension)
};

// ALU cost profile of a cipher: cycles of register work per data byte (at
// byte_alu_factor 1) and whether the work is byte-granular.
struct cipher_profile {
    std::string name;
    double alu_cycles_per_byte = 0;
    bool bytewise = false;
};

cipher_profile profile_for(cipher_kind kind);

// One side's raw measurements from an instrumented transfer.
struct side_measurement {
    app::path_counters counters;
    std::uint64_t data_cycles = 0;         // memory-system time, data side
    std::uint64_t instruction_cycles = 0;  // memory-system time, code side
    std::uint64_t packets = 0;             // data-bearing TPDUs
    std::uint64_t crossings = 0;           // user/kernel boundary crossings
};

// Full result of one platform experiment.
struct experiment_result {
    bool completed = false;
    machine_model machine;
    impl_kind impl = impl_kind::ilp;
    cipher_kind cipher = cipher_kind::safer_simplified;
    std::size_t packet_wire_bytes = 0;

    double send_us_per_packet = 0;
    double recv_us_per_packet = 0;
    double throughput_mbps = 0;

    side_measurement send_side;
    side_measurement recv_side;
    memsim::access_stats send_accesses;  // Figure 13/14 quantities
    memsim::access_stats recv_accesses;
    std::uint64_t send_icache_misses = 0;
    std::uint64_t recv_icache_misses = 0;
};

// Converts one side's measurements to a per-packet processing time on the
// given machine (exposed for tests and ablations).
double processing_us_per_packet(const machine_model& machine,
                                const cipher_profile& cipher,
                                impl_kind impl,
                                const side_measurement& side);

// Runs the complete experiment: an instrumented file transfer (client and
// server each on their own copy of the machine's memory system), the
// synthetic instruction-stream replay, and the timing model.
experiment_result run_experiment(const machine_model& machine, impl_kind impl,
                                 cipher_kind cipher,
                                 const app::transfer_config& base_config);

// Convenience: the paper's standard workload (15 KB file) at a given packet
// size.
experiment_result run_standard_experiment(const machine_model& machine,
                                          impl_kind impl, cipher_kind cipher,
                                          std::size_t packet_wire_bytes);

// Result of replaying one side's synthetic instruction stream against a
// machine's I-cache (exposed for the I-cache ablation bench).
struct icache_replay_result {
    std::uint64_t cycles = 0;
    std::uint64_t misses = 0;
    std::uint64_t fetch_lines = 0;
};

icache_replay_result replay_icache(const machine_model& machine,
                                   impl_kind impl, cipher_kind cipher,
                                   std::uint64_t packets,
                                   std::size_t wire_bytes_per_packet);

}  // namespace ilp::platform
