#include "platform/estimator.h"

#include "crypto/aead.h"
#include "crypto/block_cipher.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"

#include "util/contracts.h"

namespace ilp::platform {

namespace {

// Loop-body code sizes (bytes) for the synthetic instruction stream.  The
// cipher loop dominates; values approximate compiled inner loops of the era.
struct code_sizes {
    std::size_t control_entry = 3072;  // TCP + RPC control per packet
    std::size_t marshal_loop = 768;
    std::size_t cipher_loop = 1536;
    std::size_t checksum_loop = 320;
    std::size_t copy_loop = 256;
};

code_sizes sizes_for(cipher_kind cipher) {
    code_sizes s;
    switch (cipher) {
        case cipher_kind::safer_simplified: s.cipher_loop = 1536; break;
        case cipher_kind::simple: s.cipher_loop = 256; break;
        case cipher_kind::safer_full: s.cipher_loop = 2560; break;
        case cipher_kind::none: s.cipher_loop = 0; break;
        case cipher_kind::aead: s.cipher_loop = 384; break;
    }
    return s;
}

struct icache_result {
    std::uint64_t cycles = 0;
    std::uint64_t misses = 0;
};

// Replays the instruction fetch stream of one side of the transfer against
// the machine's I-cache.  Separately compiled layers are laid out with a
// stride of (8 KB + 256 B), so on a small direct-mapped I-cache (Alpha
// 21064) the loop bodies alias each other — running them *alternating per
// unit* (the fused ILP loop) then thrashes, while running each loop to
// completion over the message (the layered passes) barely misses.  A larger
// associative I-cache (SuperSPARC: 20 KB, 5-way) holds all bodies at once.
// This reproduces the paper's §4.2 Alpha observation.
icache_result replay_instruction_stream(const machine_model& machine,
                                        impl_kind impl, cipher_kind cipher,
                                        std::uint64_t packets,
                                        std::size_t wire_bytes_per_packet,
                                        bool sending, std::uint64_t* fetches = nullptr) {
    const code_sizes sizes = sizes_for(cipher);
    memsim::memory_system sys(machine.memory);
    // Each subsystem is a separately compiled object; the linker scatters
    // them across the address space.  On an 8 KB direct-mapped I-cache
    // (Alpha 21064) the cipher and checksum bodies end up sharing one cache
    // line's worth of sets — so the fused loop, which alternates between
    // them every unit, thrashes that line twice per unit, while the layered
    // passes (each loop runs to completion over the message) barely notice.
    // A 20 KB 5-way I-cache (SuperSPARC) absorbs the alias entirely.  This
    // is the mechanism behind the paper's §4.2 Alpha observation.
    constexpr std::uint64_t frame = 8 * 1024;
    struct region {
        std::uint64_t base;
        std::size_t bytes;
    };
    const region control{0, sizes.control_entry};                 // 0x0000
    const region marshal{1 * frame + 3072, sizes.marshal_loop};   // @3072
    const region cipher_r{2 * frame + 4096, sizes.cipher_loop};   // @4096
    const region checksum{3 * frame + 4096 + sizes.cipher_loop - 32,
                          sizes.checksum_loop};  // 1 line overlaps cipher
    const region copy{4 * frame + 6656, sizes.copy_loop};         // @6656

    auto fetch = [&](const region& r) {
        if (r.bytes > 0) sys.instruction_fetch(r.base, r.bytes);
    };

    const std::uint64_t units =
        std::max<std::uint64_t>(1, wire_bytes_per_packet / 8);

    for (std::uint64_t p = 0; p < packets; ++p) {
        fetch(control);
        switch (impl) {
            case impl_kind::ilp:
                // One fused loop: all stage bodies execute per unit.
                for (std::uint64_t u = 0; u < units; ++u) {
                    fetch(marshal);
                    fetch(cipher_r);
                    fetch(checksum);
                    fetch(copy);
                }
                // System copy pass remains separate.
                for (std::uint64_t u = 0; u < units; ++u) fetch(copy);
                break;
            case impl_kind::layered:
            case impl_kind::kernel_tcp: {
                // One pass per function; each loop runs to completion.
                for (std::uint64_t u = 0; u < units; ++u) fetch(marshal);
                for (std::uint64_t u = 0; u < units; ++u) fetch(cipher_r);
                for (std::uint64_t u = 0; u < units; ++u) fetch(copy);
                for (std::uint64_t u = 0; u < units; ++u) fetch(checksum);
                const int extra_copies = impl == impl_kind::kernel_tcp ? 1 : 2;
                for (int c = 0; c < extra_copies; ++c) {
                    for (std::uint64_t u = 0; u < units; ++u) fetch(copy);
                }
                break;
            }
        }
        (void)sending;
    }
    if (fetches != nullptr) *fetches = sys.instruction_fetches();
    return {sys.cycles(), sys.instruction_fetch_misses()};
}

template <typename Cipher>
app::transfer_result run_with_cipher(const app::transfer_config& config,
                                     memsim::memory_system& client_sys,
                                     memsim::memory_system& server_sys) {
    return app::run_transfer_simulated<Cipher>(config, client_sys, server_sys);
}

app::transfer_result run_dispatch(cipher_kind cipher,
                                  const app::transfer_config& config,
                                  memsim::memory_system& client_sys,
                                  memsim::memory_system& server_sys) {
    switch (cipher) {
        case cipher_kind::safer_simplified:
            return run_with_cipher<crypto::safer_simplified>(config, client_sys,
                                                             server_sys);
        case cipher_kind::simple:
            return run_with_cipher<crypto::simple_cipher>(config, client_sys,
                                                          server_sys);
        case cipher_kind::safer_full:
            return run_with_cipher<crypto::safer_k64>(config, client_sys,
                                                      server_sys);
        case cipher_kind::none: {
            const crypto::null_cipher cipher_obj;
            return app::run_transfer(config, memsim::sim_memory(client_sys),
                                     memsim::sim_memory(server_sys),
                                     cipher_obj, cipher_obj);
        }
        case cipher_kind::aead:
            return run_with_cipher<crypto::aead_cipher>(config, client_sys,
                                                        server_sys);
    }
    ILP_EXPECT(false && "unreachable");
    return {};
}

}  // namespace

cipher_profile profile_for(cipher_kind kind) {
    switch (kind) {
        case cipher_kind::safer_simplified:
            // add/xor + log/exp + PHT per byte: ~8 register ops.
            return {"SAFER K-64 (simplified)", 4.5, true};
        case cipher_kind::simple:
            // Three 64-bit register ops per 8 bytes.
            return {"simple (constant-based)", 0.75, false};
        case cipher_kind::safer_full:
            // Six rounds of the simplified work plus the PHT network.
            return {"SAFER K-64 (6 rounds)", 29.0, true};
        case cipher_kind::none:
            return {"none", 0.0, false};
        case cipher_kind::aead:
            // xor/rotate/multiply plus the tag mix: ~12 register ops per
            // 8-byte word.
            return {"aead (keystream+tag)", 1.5, false};
    }
    ILP_EXPECT(false && "unreachable");
    return {};
}

double processing_us_per_packet(const machine_model& machine,
                                const cipher_profile& cipher, impl_kind impl,
                                const side_measurement& side) {
    if (side.packets == 0) return 0.0;
    const app::path_counters& c = side.counters;

    const double cipher_alu =
        static_cast<double>(c.cipher_bytes) * cipher.alu_cycles_per_byte *
        (cipher.bytewise ? machine.byte_alu_factor : 1.0);

    std::uint64_t pass_bytes = c.fused_loop_bytes + c.marshal_pass_bytes +
                               c.cipher_pass_bytes + c.checksum_pass_bytes +
                               c.copy_pass_bytes;
    double data_cycles = static_cast<double>(side.data_cycles);
    std::uint64_t crossings = side.crossings;
    double control_factor = 1.0;
    if (impl == impl_kind::kernel_tcp) {
        // In-kernel TCP path model: the tcp_send copy merges into the system
        // copy, ACKs stay in the kernel, and the mature BSD code path is
        // tighter than the user-level implementation (§4.1).
        pass_bytes -= c.copy_pass_bytes;
        data_cycles -= static_cast<double>(c.copy_pass_bytes) / 4.0;
        crossings = side.packets;
        control_factor = 0.7;
    }
    const double data_alu =
        static_cast<double>(pass_bytes) * machine.alu_cycles_per_data_byte;
    const double control = machine.control_cycles_per_packet * control_factor *
                           static_cast<double>(side.packets);
    const double traps =
        machine.crossing_cycles * static_cast<double>(crossings);

    const double total_cycles = cipher_alu + data_alu + control + traps +
                                data_cycles +
                                static_cast<double>(side.instruction_cycles);
    return total_cycles / machine.clock_mhz /
           static_cast<double>(side.packets);
}

experiment_result run_experiment(const machine_model& machine, impl_kind impl,
                                 cipher_kind cipher,
                                 const app::transfer_config& base_config) {
    app::transfer_config config = base_config;
    config.mode = impl == impl_kind::ilp ? app::path_mode::ilp
                                         : app::path_mode::layered;

    memsim::memory_system client_sys(machine.memory);
    memsim::memory_system server_sys(machine.memory);
    const app::transfer_result transfer =
        run_dispatch(cipher, config, client_sys, server_sys);

    experiment_result result;
    result.completed = transfer.completed && transfer.verified;
    result.machine = machine;
    result.impl = impl;
    result.cipher = cipher;
    result.packet_wire_bytes = config.packet_wire_bytes;
    if (!result.completed) return result;

    const std::uint64_t packets = transfer.reply_messages;
    const std::size_t wire_per_packet =
        packets == 0 ? 0
                     : static_cast<std::size_t>(
                           transfer.server_send.wire_bytes / packets);

    result.send_side.counters = transfer.server_send;
    result.send_side.data_cycles = server_sys.cycles();
    result.send_side.packets = packets;
    result.send_side.crossings = transfer.reply_pipe.send_crossings +
                                 transfer.reply_ack_pipe.deliver_crossings;

    result.recv_side.counters = transfer.client_receive;
    result.recv_side.data_cycles = client_sys.cycles();
    result.recv_side.packets = packets;
    result.recv_side.crossings = transfer.reply_pipe.deliver_crossings +
                                 transfer.reply_ack_pipe.send_crossings;

    const icache_result send_icache = replay_instruction_stream(
        machine, impl, cipher, packets, wire_per_packet, /*sending=*/true);
    const icache_result recv_icache = replay_instruction_stream(
        machine, impl, cipher, packets, wire_per_packet, /*sending=*/false);
    result.send_side.instruction_cycles = send_icache.cycles;
    result.recv_side.instruction_cycles = recv_icache.cycles;
    result.send_icache_misses = send_icache.misses;
    result.recv_icache_misses = recv_icache.misses;

    const cipher_profile profile = profile_for(cipher);
    result.send_us_per_packet =
        processing_us_per_packet(machine, profile, impl, result.send_side);
    result.recv_us_per_packet =
        processing_us_per_packet(machine, profile, impl, result.recv_side);

    // Loop-back transfer: client and server share one CPU, so a packet's
    // wall time is send + receive + system overhead.  The in-kernel TCP
    // spends far less system time per packet: no user-level protocol task
    // to schedule and no ACK crossings (§4.1's explanation for Fig. 12).
    const double system_us = machine.system_us_per_packet *
                             (impl == impl_kind::kernel_tcp ? 0.55 : 1.0);
    const double per_packet_us = result.send_us_per_packet +
                                 result.recv_us_per_packet + system_us;
    const double payload_bits =
        static_cast<double>(transfer.payload_bytes_delivered) * 8.0;
    result.throughput_mbps =
        payload_bits / (static_cast<double>(packets) * per_packet_us);

    result.send_accesses = server_sys.data_stats();
    result.recv_accesses = client_sys.data_stats();
    return result;
}

icache_replay_result replay_icache(const machine_model& machine,
                                   impl_kind impl, cipher_kind cipher,
                                   std::uint64_t packets,
                                   std::size_t wire_bytes_per_packet) {
    icache_replay_result out;
    const icache_result r = replay_instruction_stream(
        machine, impl, cipher, packets, wire_bytes_per_packet,
        /*sending=*/true, &out.fetch_lines);
    out.cycles = r.cycles;
    out.misses = r.misses;
    return out;
}

experiment_result run_standard_experiment(const machine_model& machine,
                                          impl_kind impl, cipher_kind cipher,
                                          std::size_t packet_wire_bytes) {
    app::transfer_config config;
    config.file_bytes = 15 * 1024;
    config.packet_wire_bytes = packet_wire_bytes;
    return run_experiment(machine, impl, cipher, config);
}

}  // namespace ilp::platform
