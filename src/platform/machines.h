// Models of the paper's seven evaluation machines.
//
// Each machine is a cache hierarchy (from memsim/configs.h) plus a small
// cycle-cost model.  The cost model is deliberately simple — the goal is the
// paper's *shapes* (ILP vs non-ILP ordering, growth with packet size, the
// no-L2 dip, the Alpha anomalies), not cycle-exact 1995 emulation:
//
//   processing_cycles = data-manipulation ALU work
//                     + memory-system cycles (from the cache simulator)
//                     + instruction-side cycles (from the I-cache model)
//                     + per-packet control work + per-crossing traps
//
//   packet time [us]  = processing_cycles / clock_mhz
//
// Per-machine quirks modelled:
//   * SS10-30 has no second-level cache: every L1 miss pays main memory.
//   * Alpha 21064 has no byte load/store instructions, so byte-granular
//     cipher work pays `byte_alu_factor`; its 8 KB direct-mapped I-cache is
//     where the fused loop's larger code footprint hurts (§4.2).
//   * OSF/1's system overhead is far higher than SunOS/Solaris (§4.1), which
//     shrinks the *relative* ILP gain on the DEC machines.
#pragma once

#include <string>
#include <vector>

#include "memsim/configs.h"

namespace ilp::platform {

struct machine_model {
    std::string name;        // canonical id, e.g. "ss10-30"
    std::string display;     // the paper's label, e.g. "SS10-30"
    double clock_mhz = 0;
    memsim::memory_system_config memory;

    // ALU cost model (cycles).
    double alu_cycles_per_data_byte = 0.25;  // marshalling/copy/checksum work
    double byte_alu_factor = 1.0;            // penalty for byte-wise ops
    double control_cycles_per_packet = 0;    // TCP/RPC control processing
    double crossing_cycles = 0;              // user/kernel boundary trap

    // System-side time (IP, driver, task switches, loop-back) per packet,
    // used only for throughput (Figures 8/9/12); the paper notes these
    // "have significant impact on the total throughput" but are not part of
    // packet processing time.
    double system_us_per_packet = 0;
};

// The seven machines of Table 1, in the paper's order.
std::vector<machine_model> paper_machines();

// Look up one machine by canonical id; aborts on unknown ids.
machine_model machine(const std::string& name);

}  // namespace ilp::platform
