// Trailer framing — the paper's proposed future-work message format.
//
// §3.1/§5: "a length field at the end of the encrypted message as done in
// other security protocols would simplify an ILP implementation" and
// "trailers for data dependent fields could be advantageous for ILP,
// although trailers make parsing of protocol information more complex."
//
// With the length *after* the data, the sender processes the message
// strictly front to back in a single pipeline run — no part A/B/C
// reordering (Fig. 4) — which also makes *ordering-constrained* stages
// (CRC-32, stream ciphers) fusable on the send path, something header
// framing forbids.  The cost appears on the receiver: the length is
// discovered last, so either the last cipher block is decrypted first
// (fine for block ciphers) or the whole message is decrypted before its
// structure is known (the only option for stream ciphers).
//
// Wire layout (everything encrypted, 8-byte aligned):
//
//     [ marshalled body | zero padding | length u32 | magic u32 ]
//                                        `-- final 8-byte block --'
//
// The magic word lets the receiver sanity-check a decrypted trailer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/gather.h"
#include "core/message_plan.h"
#include "util/alignment.h"

namespace ilp::rpc {

inline constexpr std::uint32_t trailer_magic = 0x494c5054;  // "ILPT"
inline constexpr std::size_t trailer_bytes = 8;  // length + magic

struct trailer_layout {
    std::size_t body_bytes = 0;
    std::size_t padding_bytes = 0;
    std::size_t wire_bytes = 0;  // body + padding + trailer, 8-aligned
};

// Computes the wire layout for a marshalled body of `body_bytes`.
trailer_layout layout_trailer_message(std::size_t body_bytes);

// Staging for the 8-byte trailer, filled by make_trailer_source.
struct trailer_staging {
    alignas(8) std::byte bytes[trailer_bytes];
};

// Builds the complete linear gather: body + generated padding + trailer.
// Unlike the header framing, the result is processed in one front-to-back
// pipeline run.
core::gather_source make_trailer_source(const core::gather_source& body,
                                        trailer_staging& staging);

// Decodes a *decrypted* trailer block (the last 8 wire bytes); returns the
// body length if the magic matches and the length is consistent with
// `wire_bytes`, nullopt otherwise.
std::optional<std::size_t> read_trailer(std::span<const std::byte> last_block,
                                        std::size_t wire_bytes);

}  // namespace ilp::rpc
