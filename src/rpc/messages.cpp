#include "rpc/messages.h"

#include <cstring>

#include "obs/tracer.h"
#include "util/contracts.h"
#include "util/endian.h"
#include "xdr/xdr.h"

namespace ilp::rpc {

namespace {

constexpr std::size_t max_filename_bytes = 255;

}  // namespace

std::optional<std::size_t> marshal_request(const file_request& request,
                                           std::span<std::byte> out) {
    ILP_OBS_SPAN("rpc", "marshal_request");
    if (request.filename.size() > max_filename_bytes) return std::nullopt;
    if (request.version != wire_version &&
        request.version != wire_version_secure) {
        return std::nullopt;
    }
    xdr::writer w(out);
    const std::size_t length_slot = w.reserve_u32();  // encryption header
    w.put_u32(msg_type_request);
    w.put_u32(request.version);
    w.put_u32(request.request_id);
    w.put_string(request.filename);
    w.put_u32(request.copy_count);
    w.put_u32(request.max_reply_payload);
    w.put_u32(request.start_offset);
    w.put_u32(request.reply_isn);
    if (request.version == wire_version_secure) {
        w.put_u32(request.key_epoch);
    }
    if (!w.ok()) return std::nullopt;
    const std::size_t marshalled = w.position();
    w.patch_u32(length_slot, static_cast<std::uint32_t>(marshalled));
    const std::size_t wire = align_up(marshalled, core::encryption_unit_bytes);
    if (wire > out.size()) return std::nullopt;
    // Alignment bytes are zero.
    for (std::size_t i = marshalled; i < wire; ++i) out[i] = std::byte{0};
    return wire;
}

std::optional<file_request> unmarshal_request(
    std::span<const std::byte> wire) {
    ILP_OBS_SPAN("rpc", "unmarshal_request");
    xdr::reader r(wire);
    const std::uint32_t length = r.get_u32();
    if (!r.ok() || !validate_enc_header(length, wire.size()).has_value()) {
        return std::nullopt;
    }
    xdr::reader body(wire.subspan(enc_header_bytes,
                                  length - enc_header_bytes));
    file_request request;
    if (body.get_u32() != msg_type_request) return std::nullopt;
    const std::uint32_t version = body.get_u32();
    if (version != wire_version && version != wire_version_secure) {
        return std::nullopt;
    }
    request.version = version;
    request.request_id = body.get_u32();
    request.filename = body.get_string(max_filename_bytes);
    request.copy_count = body.get_u32();
    request.max_reply_payload = body.get_u32();
    request.start_offset = body.get_u32();
    request.reply_isn = body.get_u32();
    if (version == wire_version_secure) {
        request.key_epoch = body.get_u32();
    }
    if (!body.ok() || !body.at_end()) return std::nullopt;
    return request;
}

reply_layout layout_reply(std::size_t payload_bytes) {
    reply_layout layout;
    layout.payload_bytes = payload_bytes;
    layout.marshalled_bytes = enc_header_bytes + reply_header_bytes + 4 +
                              xdr::padded_size(payload_bytes);
    layout.wire_bytes =
        align_up(layout.marshalled_bytes, core::encryption_unit_bytes);
    layout.plan = core::plan_parts(layout.marshalled_bytes);
    ILP_ENSURE(layout.plan.total_bytes == layout.wire_bytes);
    return layout;
}

std::size_t max_payload_for_wire(std::size_t wire_budget) {
    if (wire_budget < reply_payload_offset + core::encryption_unit_bytes) {
        return 0;
    }
    // Invert layout_reply: find the largest payload that still fits.
    std::size_t payload = wire_budget - reply_payload_offset;
    while (payload > 0 && layout_reply(payload).wire_bytes > wire_budget) {
        --payload;
    }
    return payload;
}

core::gather_source make_reply_source(const reply_header& header,
                                      std::span<const std::byte> payload,
                                      reply_staging& staging) {
    const reply_layout layout = layout_reply(payload.size());
    // Control-plane encode of the headers (the stub's fixed part).
    xdr::writer w({staging.bytes, sizeof staging.bytes});
    w.put_u32(static_cast<std::uint32_t>(layout.marshalled_bytes));
    w.put_u32(header.msg_type);
    w.put_u32(header.request_id);
    w.put_u32(header.copy_index);
    w.put_u32(header.offset);
    w.put_u32(header.total_bytes);
    w.put_u32(static_cast<std::uint32_t>(payload.size()));
    ILP_ENSURE(w.ok() && w.position() == reply_payload_offset);

    core::gather_source src;
    src.add({staging.bytes, reply_payload_offset});
    if (!payload.empty()) src.add(payload);
    const std::size_t tail =
        layout.wire_bytes - reply_payload_offset - payload.size();
    if (tail > 0) src.add_zeros(tail);  // XDR pad + cipher alignment
    ILP_ENSURE(src.total_size() == layout.wire_bytes);
    return src;
}

std::optional<reply_header> decode_reply_header(
    std::span<const std::byte> words) {
    if (words.size() < reply_header_bytes) return std::nullopt;
    xdr::reader r(words.subspan(0, reply_header_bytes));
    reply_header h;
    h.msg_type = r.get_u32();
    h.request_id = r.get_u32();
    h.copy_index = r.get_u32();
    h.offset = r.get_u32();
    h.total_bytes = r.get_u32();
    if (!r.ok() || h.msg_type != msg_type_reply) return std::nullopt;
    return h;
}

void encode_secure_trailer(const secure_trailer& trailer,
                           std::span<std::byte> bytes) {
    ILP_EXPECT(bytes.size() == secure_trailer_bytes);
    const std::uint32_t epoch_be = host_to_be32(trailer.key_epoch);
    const std::uint32_t tag_be = host_to_be32(trailer.tag);
    std::memcpy(bytes.data(), &epoch_be, 4);
    std::memcpy(bytes.data() + 4, &tag_be, 4);
}

secure_trailer decode_secure_trailer(std::span<const std::byte> bytes) {
    ILP_EXPECT(bytes.size() == secure_trailer_bytes);
    std::uint32_t epoch_be = 0;
    std::uint32_t tag_be = 0;
    std::memcpy(&epoch_be, bytes.data(), 4);
    std::memcpy(&tag_be, bytes.data() + 4, 4);
    return {.key_epoch = be32_to_host(epoch_be), .tag = be32_to_host(tag_be)};
}

std::size_t max_payload_for_secure_wire(std::size_t wire_budget) {
    if (wire_budget <= secure_trailer_bytes) return 0;
    return max_payload_for_wire(wire_budget - secure_trailer_bytes);
}

std::optional<std::size_t> validate_enc_header(std::uint32_t length_field,
                                               std::size_t wire_bytes) {
    const std::size_t length = length_field;
    if (length < enc_header_bytes) return std::nullopt;
    if (align_up(length, core::encryption_unit_bytes) != wire_bytes) {
        return std::nullopt;
    }
    return length;
}

}  // namespace ilp::rpc
