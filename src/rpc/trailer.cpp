#include "rpc/trailer.h"

#include "util/contracts.h"
#include "util/endian.h"

namespace ilp::rpc {

trailer_layout layout_trailer_message(std::size_t body_bytes) {
    trailer_layout layout;
    layout.body_bytes = body_bytes;
    layout.wire_bytes =
        align_up(body_bytes + trailer_bytes, core::encryption_unit_bytes);
    layout.padding_bytes = layout.wire_bytes - body_bytes - trailer_bytes;
    return layout;
}

core::gather_source make_trailer_source(const core::gather_source& body,
                                        trailer_staging& staging) {
    const trailer_layout layout = layout_trailer_message(body.total_size());
    store_be32(staging.bytes,
               static_cast<std::uint32_t>(layout.body_bytes));
    store_be32(staging.bytes + 4, trailer_magic);

    core::gather_source src;
    for (const core::gather_segment& seg : body.segments()) {
        src.append_raw(seg);
    }
    if (layout.padding_bytes > 0) src.add_zeros(layout.padding_bytes);
    src.add({staging.bytes, trailer_bytes});
    ILP_ENSURE(src.total_size() == layout.wire_bytes);
    return src;
}

std::optional<std::size_t> read_trailer(std::span<const std::byte> last_block,
                                        std::size_t wire_bytes) {
    if (last_block.size() != trailer_bytes) return std::nullopt;
    if (load_be32(last_block.data() + 4) != trailer_magic) return std::nullopt;
    const std::size_t body = load_be32(last_block.data());
    if (layout_trailer_message(body).wire_bytes != wire_bytes) {
        return std::nullopt;
    }
    return body;
}

}  // namespace ilp::rpc
