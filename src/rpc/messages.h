// File-transfer RPC messages — the "generated" stubs.
//
// The paper's application describes its request and reply messages in ASN.1
// and feeds them to the MAVROS stub compiler; the generated routine emits
// the RPC header and the XDR form of the message (§3.1).  This module is
// the hand-written equivalent of that generated code: fixed message layouts,
// explicit wire offsets, and builders that produce the gather/scatter
// descriptions the ILP loop marshals through.
//
// Wire layout of every message, offsets relative to the encryption header
// (paper Fig. 2 / Fig. 4):
//
//   [0,4)    encryption header: length of the marshalled message (including
//            this field, excluding alignment), big-endian
//   [4,..)   RPC header + XDR body (the marshalled message)
//   [..,N)   alignment bytes to the next 8-byte boundary
//
// Request (client -> server), wire version 2:
//   RPC header: msg_type=1, wire_version, request_id
//   body:       filename (XDR string), copy_count, max_reply_payload,
//               start_offset, reply_isn
//
// Reply (server -> client), one per file segment:
//   RPC header: msg_type=2, request_id, copy_index, offset, total_bytes
//   body:       segment payload (XDR variable opaque)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/gather.h"
#include "core/message_plan.h"
#include "util/alignment.h"

namespace ilp::rpc {

inline constexpr std::uint32_t msg_type_request = 1;
inline constexpr std::uint32_t msg_type_reply = 2;

// Request wire-format version.  v2 added resumable transfers: a version
// word after msg_type plus the start_offset and reply_isn fields.  v1
// requests (no version word) are rejected.  v3 adds transport security: a
// key_epoch word after reply_isn, and every secure message carries an
// 8-byte clear trailer [epoch | tag] (see secure_trailer_bytes).  Endpoints
// negotiate down: a flow configured for wire v2 runs the v2 format with no
// trailers and no rekeying.
inline constexpr std::uint32_t wire_version = 2;
inline constexpr std::uint32_t wire_version_secure = 3;

// Encryption header size (the length field).
inline constexpr std::size_t enc_header_bytes = core::encryption_header_bytes;

// ---------------------------------------------------------------------------
// Request

struct file_request {
    std::uint32_t request_id = 0;
    std::string filename;
    std::uint32_t copy_count = 1;
    std::uint32_t max_reply_payload = 1024;
    // Resume point: byte offset into the reply *stream* (all copies
    // concatenated, so copy k starts at k * file_size).  The server serves
    // from here, which makes re-issued requests idempotent.
    std::uint32_t start_offset = 0;
    // Initial sequence number the reply connection uses for this attempt;
    // client and server reset their reply endpoints to it when it differs
    // from the server's current reply stream position.
    std::uint32_t reply_isn = 0;
    // Format this request was marshalled in (v2 or v3).  Marshalling writes
    // it; unmarshalling records what arrived so the server can reject a
    // version that does not match the flow's negotiated framing.
    std::uint32_t version = wire_version;
    // v3 only: the client's current key epoch, so a server picking up a
    // resumed flow re-centres its key window before replying.
    std::uint32_t key_epoch = 0;
};

// Marshals a request (control-plane; requests are small and rare) into
// `out`, producing the complete unencrypted wire image *including* the
// encryption header and alignment bytes.  Returns the total wire size, or
// nullopt if `out` is too small.
std::optional<std::size_t> marshal_request(const file_request& request,
                                           std::span<std::byte> out);

// Parses a decrypted request wire image (starting at the encryption
// header).  Returns nullopt on malformed input.
std::optional<file_request> unmarshal_request(
    std::span<const std::byte> wire);

// ---------------------------------------------------------------------------
// Reply

// Fixed-size RPC header of a reply: 5 XDR words after the encryption header.
struct reply_header {
    std::uint32_t msg_type = msg_type_reply;
    std::uint32_t request_id = 0;
    std::uint32_t copy_index = 0;
    std::uint32_t offset = 0;
    std::uint32_t total_bytes = 0;
};

inline constexpr std::size_t reply_header_bytes = 5 * 4;

// Offsets within the wire image.
inline constexpr std::size_t reply_payload_offset =
    enc_header_bytes + reply_header_bytes + 4;  // after the opaque length word

struct reply_layout {
    std::size_t payload_bytes = 0;     // segment payload carried
    std::size_t marshalled_bytes = 0;  // enc header + RPC header + XDR body
    std::size_t wire_bytes = 0;        // marshalled + alignment
    core::message_plan plan;           // parts A/B/C of this message
};

// Computes the layout for a reply carrying `payload_bytes` of file data.
reply_layout layout_reply(std::size_t payload_bytes);

// Largest payload such that the reply's wire size does not exceed
// `wire_budget` (the experiment's "packet size" knob).  Returns 0 if even an
// empty reply does not fit.
std::size_t max_payload_for_wire(std::size_t wire_budget);

// The sender-side staging for one reply's headers: the encryption header and
// RPC header words plus the XDR opaque length, pre-encoded in wire (XDR)
// form by control-plane code.  The ILP loop reads these 28 bytes through the
// gather exactly once, like any other message bytes.
struct reply_staging {
    alignas(8) std::byte bytes[reply_payload_offset];
};

// Fills `staging` and returns the gather source describing the complete wire
// image: staging (copy) + payload (copy) + generated padding.  `payload`
// must live until the gather has been consumed.
core::gather_source make_reply_source(const reply_header& header,
                                      std::span<const std::byte> payload,
                                      reply_staging& staging);

// Receive side: decodes the five RPC header words (already decrypted, XDR
// form) into a reply_header.  `words` must hold reply_header_bytes bytes.
std::optional<reply_header> decode_reply_header(
    std::span<const std::byte> words);

// ---------------------------------------------------------------------------
// Secure trailer (wire v3)
//
// Every secure message — request and reply — is the v2 wire image encrypted
// under the epoch key, followed by an 8-byte *clear* trailer:
//
//   [0,4)  key epoch, big-endian (clear so the receiver can select the key
//          before decrypting; a retransmitted segment carries the epoch it
//          was first encrypted under)
//   [4,8)  authentication tag, big-endian (folded AEAD accumulator over the
//          plaintext units of the encrypted region)
//
// The trailer is covered by the TCP checksum but not encrypted; wire sizes
// stay 8-aligned because the trailer is itself 8 bytes.

inline constexpr std::size_t secure_trailer_bytes = 8;

struct secure_trailer {
    std::uint32_t key_epoch = 0;
    std::uint32_t tag = 0;
};

// Encodes/decodes the trailer in `bytes` (exactly secure_trailer_bytes).
void encode_secure_trailer(const secure_trailer& trailer,
                           std::span<std::byte> bytes);
secure_trailer decode_secure_trailer(std::span<const std::byte> bytes);

// Largest payload whose *secure* reply (wire image + trailer) fits in
// `wire_budget`.
std::size_t max_payload_for_secure_wire(std::size_t wire_budget);

// ---------------------------------------------------------------------------
// Encryption header helpers

// Reads the marshalled-length field from a decrypted encryption header and
// validates it against the actual wire size; returns the marshalled length
// or nullopt.
std::optional<std::size_t> validate_enc_header(std::uint32_t length_field,
                                               std::size_t wire_bytes);

}  // namespace ilp::rpc
