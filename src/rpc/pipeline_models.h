// RPC-layer pipeline registrations for the fusion analyzer.
//
// The RPC layer owns two framing schemes, with opposite fusion properties:
//
//  * Header framing (messages.h): the encrypted length field leads the
//    message, forcing the §3.2.2 out-of-order part schedule (B, C, A).
//    Only non-ordering-constrained stages may fuse — the analyzer's
//    R1-ordering rule enforces exactly what the paper argues.
//
//  * Trailer framing (trailer.h, the paper's §5 future-work format): the
//    length trails the data, the sender runs strictly front-to-back, and
//    ordering-constrained stages (CRC-32) become fusable.  Registering the
//    trailer+CRC composition as *linear* documents that legality in the
//    lint inventory — the same stages registered under header framing
//    would be rejected.
#pragma once

#include "analysis/registry.h"

namespace ilp::rpc {

std::vector<analysis::finding> register_rpc_pipelines(
    analysis::pipeline_registry& registry);

}  // namespace ilp::rpc
