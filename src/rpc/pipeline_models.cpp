#include "rpc/pipeline_models.h"

#include "checksum/crc32.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "crypto/safer_k64.h"

namespace ilp::rpc {

namespace {

analysis::pipeline_model fused_model(
    const char* name, const char* site,
    std::vector<analysis::footprint> stages, std::size_t exchange_unit) {
    analysis::pipeline_model m;
    m.name = name;
    m.site = site;
    m.kind = analysis::pipeline_kind::fused;
    m.stages = std::move(stages);
    m.exchange_unit_bytes = exchange_unit;
    return m;
}

}  // namespace

std::vector<analysis::finding> register_rpc_pipelines(
    analysis::pipeline_registry& registry) {
    using namespace analysis;
    using enc = core::encrypt_stage<crypto::safer_k64>;
    using dec = core::decrypt_stage<crypto::safer_k64>;
    std::vector<finding> all;
    const auto take = [&all](std::vector<finding> f) {
        all.insert(all.end(), f.begin(), f.end());
    };

    // Trailer framing: linear front-to-back send, checksum tap fused with
    // encryption.
    using trailer_send = core::fused_pipeline<enc, core::checksum_tap8>;
    take(registry.add(fused_model(
        "rpc-trailer-send", "src/rpc/trailer.h:make_trailer_source",
        trailer_send::footprints(), trailer_send::unit_bytes)));

    using trailer_recv = core::fused_pipeline<core::checksum_tap8, dec>;
    take(registry.add(fused_model(
        "rpc-trailer-recv", "src/rpc/trailer.h:parse_trailer",
        trailer_recv::footprints(), trailer_recv::unit_bytes)));

    // Trailer framing with CRC-32 integrity: the ordering-constrained tap
    // is legal here *because* the schedule is linear — the analyzer only
    // fires R1-ordering under an out-of-order part plan.
    using trailer_crc = core::fused_pipeline<enc, core::crc32_tap>;
    take(registry.add(fused_model(
        "rpc-trailer-crc-send", "src/rpc/trailer.h:make_trailer_source",
        trailer_crc::footprints(), trailer_crc::unit_bytes)));

    // Header-framed reply marshalling: the header words stream through the
    // gather's xdr_words transform (4-byte units, no ordering constraint).
    using header_marshal = core::fused_pipeline<core::xdr_encode_stage>;
    take(registry.add(fused_model(
        "rpc-reply-header-marshal", "src/rpc/messages.h:make_reply_source",
        header_marshal::footprints(), header_marshal::unit_bytes)));

    return all;
}

}  // namespace ilp::rpc
