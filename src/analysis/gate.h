// Legality gate — the engine's runtime entry into the composer.
//
// engine::shard calls `check()` at flow setup and again on every rekey or
// policy change.  Verdicts are cached by graph hash, so the steady-state
// cost of gating is one hash of the stage graph; a rekey that changes an
// epoch-relevant parameter changes the hash and forces a fresh
// compose_and_check.  Flows whose graph is verified illegal are not run
// fused — the caller demotes them to the layered path and records the
// demotion with `count_fallback()`, surfaced as `analysis.gate.fallbacks`.
#pragma once

#include <cstdint>
#include <map>

#include "analysis/compose.h"

namespace ilp::analysis {

struct gate_stats {
    std::uint64_t checks = 0;      // check() calls
    std::uint64_t cache_hits = 0;  // served from the verdict cache
    std::uint64_t fallbacks = 0;   // illegal graphs demoted to layered
};

class legality_gate {
  public:
    // Composes and checks `g`, or returns the cached verdict when an
    // identical graph (same hash) was checked before.  The reference stays
    // valid until clear().
    const verdict& check(const stage_graph& g);

    // Records that the caller demoted a flow to the layered path because
    // its graph was verified illegal.
    void count_fallback() noexcept { ++stats_.fallbacks; }

    const gate_stats& stats() const noexcept { return stats_; }
    std::size_t cached_verdicts() const noexcept { return cache_.size(); }
    void clear() noexcept {
        cache_.clear();
        stats_ = {};
    }

  private:
    std::map<std::uint64_t, verdict> cache_;
    gate_stats stats_;
};

}  // namespace ilp::analysis
