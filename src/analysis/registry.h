// Pipeline registry — every composition the stack runs, in one place.
//
// Each protocol layer registers the pipeline configurations it builds
// (src/tcp/pipeline_models.h, src/rpc/pipeline_models.h,
// src/app/path_models.h); `ilp-lint` and the tests walk the registry and
// check every entry.  Registration is explicit (a function call, not static
// initializers) so tools control exactly which layers they audit and tests
// can build throwaway registries.
#pragma once

#include <vector>

#include "analysis/check.h"
#include "analysis/model.h"

namespace ilp::analysis {

class pipeline_registry {
public:
    // Checks the model at registration time — the "construction time"
    // rejection the analyzer promises.  Returns the findings for this model
    // (the model is recorded either way so lint can report it).
    std::vector<finding> add(pipeline_model model);

    const std::vector<pipeline_model>& models() const noexcept {
        return models_;
    }

    // Re-checks every registered model and returns all findings.
    std::vector<finding> check_all() const;

    void clear() { models_.clear(); }

private:
    std::vector<pipeline_model> models_;
};

}  // namespace ilp::analysis
