#include "analysis/registry.h"

namespace ilp::analysis {

std::vector<finding> pipeline_registry::add(pipeline_model model) {
    std::vector<finding> findings = check_pipeline(model);
    models_.push_back(std::move(model));
    return findings;
}

std::vector<finding> pipeline_registry::check_all() const {
    std::vector<finding> all;
    for (const pipeline_model& m : models_) {
        std::vector<finding> f = check_pipeline(m);
        all.insert(all.end(), f.begin(), f.end());
    }
    return all;
}

}  // namespace ilp::analysis
