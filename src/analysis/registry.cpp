#include "analysis/registry.h"

#include <cstdio>
#include <cstdlib>

namespace ilp::analysis {

std::vector<finding> pipeline_registry::add(pipeline_model model) {
    // A second registration under an existing name would silently shadow the
    // first in every report keyed by pipeline name; that is always a wiring
    // bug, so fail loudly at registration time rather than confuse a lint
    // run later.
    for (const pipeline_model& existing : models_) {
        if (existing.name == model.name) {
            std::fprintf(stderr,
                         "ilp::analysis: duplicate pipeline registration "
                         "'%s' (already registered from %s; second "
                         "registration from %s)\n",
                         model.name.c_str(), existing.site.c_str(),
                         model.site.c_str());
            std::abort();
        }
    }
    std::vector<finding> findings = check_pipeline(model);
    models_.push_back(std::move(model));
    return findings;
}

std::vector<finding> pipeline_registry::check_all() const {
    std::vector<finding> all;
    for (const pipeline_model& m : models_) {
        std::vector<finding> f = check_pipeline(m);
        all.insert(all.end(), f.begin(), f.end());
    }
    return all;
}

}  // namespace ilp::analysis
