// Block-graph IR — runtime-assembled stage compositions as data.
//
// The pipeline registry (registry.h) covers the compositions the stack
// compiles in; this IR covers the ones it *assembles at runtime*: a flow's
// per-connection cipher choice, optional filter/tee taps, a framing decided
// by version negotiation.  Every data-manipulation block is a
// self-describing node — its footprint (granularity, alignment, ordering
// and header-size constraints, table working set, trailer obligation) plus
// the epoch-relevant parameters that decide when a cached legality verdict
// must die.  The symbolic composer (compose.h) folds a graph's footprints
// into one pipeline_model and runs the paper's applicability rules on the
// composition; the legality gate (gate.h) caches those verdicts by
// graph_hash so the per-flow cost at connection setup is a map lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/model.h"

namespace ilp::analysis {

// One self-describing data-manipulation block in a runtime-assembled graph.
struct block_node {
    footprint fp;

    // Epoch-/key-relevant block parameter (key epoch for cipher blocks,
    // policy revision for filters, ...).  It is folded into graph_hash(),
    // so a rekey or policy change produces a *different* hash and a cached
    // verdict can never outlive the key material it was issued for — the
    // gate's cache-invalidation contract.
    std::uint64_t param = 0;
};

// Which direction of the data path the graph describes.  The side does not
// change the rules, but it names the graph in diagnostics and keeps send
// and receive compositions from colliding in the verdict cache.
enum class graph_side : std::uint8_t { send, receive };

const char* side_name(graph_side s) noexcept;

// Dependency edge: data flows from node `from` to node `to`.
struct graph_edge {
    std::size_t from = 0;
    std::size_t to = 0;
};

struct stage_graph {
    std::string name;
    std::string site;
    graph_side side = graph_side::send;
    pipeline_kind kind = pipeline_kind::fused;

    std::vector<block_node> nodes;

    // Edges between nodes (indices into `nodes`).  An empty edge list means
    // "linear chain in node order" — the common case.  The composer folds
    // footprints along a topological order and rejects cyclic graphs
    // outright (a cycle is not a pipeline).
    std::vector<graph_edge> edges;

    // Framing facts the rules need and the footprints cannot carry:
    // how many trailer bytes the wire format reserves after the body,
    // whether the schedule runs message parts out of order (B,C,A), whether
    // every header length is fixed before the loop, and the part geometry.
    std::size_t trailer_reserved_bytes = 0;
    bool out_of_order_parts = false;
    bool header_sizes_known = true;
    std::vector<part_info> parts;
};

// Order-sensitive FNV-1a fingerprint of the whole graph: structure (nodes,
// edges, kind, side), every node's footprint fields *and* its
// epoch-relevant param, the framing facts and the part geometry.  Two
// graphs hash equal only if the composer would reach the same verdict for
// both — the key the legality gate caches verdicts under.
std::uint64_t graph_hash(const stage_graph& g);

// Topological order of node indices (deterministic: ready nodes are taken
// in index order, so a linear chain folds in declaration order).  Returns
// nullopt when the graph has a cycle.
std::optional<std::vector<std::size_t>> topo_order(const stage_graph& g);

}  // namespace ilp::analysis
