#include "analysis/diagnostics.h"

#include <array>

// GCC 12 false-positives -Wrestrict on inlined std::string concatenation in
// render_json (gcc bug 105329): the compiler invents impossible overlapping
// memcpy bounds for operator+ on rvalue strings.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace ilp::analysis {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars); the
// diagnostic strings are ASCII so this is complete for our output.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    std::array<char, 8> buf{};
                    std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
                    out += buf.data();
                } else {
                    out += c;
                }
        }
    }
    return out;
}

const char* kind_name(pipeline_kind k) {
    switch (k) {
        case pipeline_kind::fused: return "fused";
        case pipeline_kind::word_chain: return "word_chain";
        case pipeline_kind::layered: return "layered";
    }
    return "unknown";
}

}  // namespace

std::string render_text(const finding& f) {
    std::string out = f.site;
    out += ": ";
    out += severity_name(f.sev);
    out += ": [";
    out += f.rule;
    out += "] ";
    out += f.message;
    if (!f.pipeline.empty()) {
        out += "  (pipeline: ";
        out += f.pipeline;
        out += ")";
    }
    if (!f.stage.empty()) {
        out += "  (stage: ";
        out += f.stage;
        out += ")";
    }
    return out;
}

std::size_t print_report(std::FILE* out,
                         const std::vector<finding>& findings) {
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const finding& f : findings) {
        if (f.sev == severity::error) ++errors;
        if (f.sev == severity::warning) ++warnings;
        std::fprintf(out, "%s\n", render_text(f).c_str());
    }
    std::fprintf(out, "%zu finding(s): %zu error(s), %zu warning(s)\n",
                 findings.size(), errors, warnings);
    return errors;
}

std::string render_json(const std::vector<pipeline_model>& models,
                        const std::vector<finding>& findings) {
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::string out = "{\n  \"pipelines\": [\n";
    for (std::size_t i = 0; i < models.size(); ++i) {
        const pipeline_model& m = models[i];
        out += "    {\"name\": \"" + json_escape(m.name) + "\", \"site\": \"" +
               json_escape(m.site) + "\", \"kind\": \"" + kind_name(m.kind) +
               "\", \"stages\": [";
        for (std::size_t j = 0; j < m.stages.size(); ++j) {
            out += std::string("\"") + json_escape(m.stages[j].name) + "\"";
            if (j + 1 < m.stages.size()) out += ", ";
        }
        out += "], \"exchange_unit_bytes\": " +
               std::to_string(m.exchange_unit_bytes) + "}";
        if (i + 1 < models.size()) out += ",";
        out += "\n";
    }
    out += "  ],\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const finding& f = findings[i];
        if (f.sev == severity::error) ++errors;
        if (f.sev == severity::warning) ++warnings;
        out += std::string("    {\"severity\": \"") + severity_name(f.sev) +
               "\", \"rule\": \"" + json_escape(f.rule) + "\", \"site\": \"" +
               json_escape(f.site) + "\", \"pipeline\": \"" +
               json_escape(f.pipeline) + "\", \"stage\": \"" +
               json_escape(f.stage) + "\", \"message\": \"" +
               json_escape(f.message) + "\"}";
        if (i + 1 < findings.size()) out += ",";
        out += "\n";
    }
    out += "  ],\n";
    out += "  \"errors\": " + std::to_string(errors) + ",\n";
    out += "  \"warnings\": " + std::to_string(warnings) + "\n}\n";
    return out;
}

}  // namespace ilp::analysis
