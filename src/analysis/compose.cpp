#include "analysis/compose.h"

#include <numeric>

namespace ilp::analysis {

namespace {

// Ls, the memory-path unit the fused loop exchanges at minimum
// (fused_pipeline starts its lcm fold at 8; word chains hand out 4-byte
// words by definition).
std::size_t base_unit(pipeline_kind kind) {
    return kind == pipeline_kind::word_chain ? 4 : 8;
}

void add_graph_finding(verdict& v, const stage_graph& g, severity sev,
                       const char* rule, std::string message,
                       std::string stage) {
    v.findings.push_back({sev, rule, g.site, g.name, std::move(message),
                          std::move(stage)});
}

// Graph-level R2: the trailer is a header size — its length must be fixed
// (and reserved) before the loop starts.  Stages that emit trailer bytes
// (AEAD tag) and framings that reserve them must agree exactly; an
// unclaimed reservation would put uninitialized bytes on the wire, an
// unreserved obligation would have no place to put the tag.
void check_trailer_obligations(verdict& v, const stage_graph& g) {
    std::size_t obliged = 0;
    const char* last_obliger = nullptr;
    for (const block_node& n : g.nodes) {
        if (n.fp.trailer_bytes == 0) continue;
        obliged += n.fp.trailer_bytes;
        last_obliger = n.fp.name;
    }
    if (obliged == g.trailer_reserved_bytes) return;
    if (obliged > g.trailer_reserved_bytes) {
        add_graph_finding(
            v, g, severity::error, "R2-header-size",
            std::string("stage '") + last_obliger + "' obliges " +
                std::to_string(obliged) +
                " trailer byte(s) but the framing reserves only " +
                std::to_string(g.trailer_reserved_bytes) +
                "; the trailer length is a header size that must be fixed "
                "before the loop starts (paper §2.2)",
            std::string(last_obliger) + " × framing");
    } else {
        add_graph_finding(
            v, g, severity::error, "R2-header-size",
            "framing reserves " + std::to_string(g.trailer_reserved_bytes) +
                " trailer byte(s) but the composed stages oblige only " +
                std::to_string(obliged) +
                "; no stage fills the reservation, so the wire would carry "
                "uninitialized trailer bytes",
            "framing × (no trailer-emitting stage)");
    }
}

}  // namespace

verdict compose_and_check(const stage_graph& g) {
    verdict v;
    v.hash = graph_hash(g);
    v.composed.name = g.name;
    v.composed.site = g.site;
    v.composed.kind = g.kind;
    v.composed.out_of_order_parts = g.out_of_order_parts;
    v.composed.header_sizes_known = g.header_sizes_known;
    v.composed.parts = g.parts;

    const std::optional<std::vector<std::size_t>> order = topo_order(g);
    if (!order.has_value()) {
        add_graph_finding(
            v, g, severity::error, "R4-footprint",
            "stage graph is cyclic (or has a dangling edge); a composition "
            "must be a DAG to fold into a pipeline",
            "graph cycle");
        v.legal = false;
        v.rule = v.findings.front().rule;
        v.offender = v.findings.front().stage;
        return v;
    }

    // Fold the footprints along the topological order: the composed stage
    // list, and Le as the lcm of every unit size over the Ls base — the
    // same fold fused_pipeline does at compile time.
    std::size_t le = base_unit(g.kind);
    for (const std::size_t i : *order) {
        const footprint& fp = g.nodes[i].fp;
        v.composed.stages.push_back(fp);
        if (fp.unit_bytes != 0) le = std::lcm(le, fp.unit_bytes);
    }
    v.composed.exchange_unit_bytes = le;

    v.findings = check_pipeline(v.composed);
    check_trailer_obligations(v, g);

    v.legal = passes(v.findings);
    if (!v.legal) {
        for (const finding& f : v.findings) {
            if (f.sev != severity::error) continue;
            v.rule = f.rule;
            v.offender = f.stage;
            break;
        }
    }
    return v;
}

}  // namespace ilp::analysis
