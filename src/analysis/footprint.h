// Footprint IR — the static description of one data-manipulation stage.
//
// Braun & Diot's applicability rules (§2.2, §5) restrict ILP to fusions of
// non-ordering-constrained data manipulations whose header sizes are known
// before the integrated loop starts, composed at compatible granularities.
// The fused loop itself cannot see those properties — a block cipher and a
// CRC look identical as `process_unit` callables — so every stage *declares*
// them as a `footprint`, and the analyzer (src/analysis/check.h) proves a
// composition legal before it runs.
//
// This header is a dependency leaf: src/core, src/crypto and src/checksum
// include it to attach declarations to their stages, and the checker/lint
// layers consume it.  It must not include anything from those modules.
#pragma once

#include <concepts>
#include <cstddef>

namespace ilp::analysis {

// What one stage does to each processing unit that flows through the fused
// loop, plus the constraints that decide whether fusing it is legal.
struct footprint {
    // Diagnostic name ("encrypt", "crc32_tap", ...).  Static storage only.
    const char* name = "stage";

    // Natural processing-unit size: 2 for the Internet checksum tap, 4 for
    // XDR words, 8 for block ciphers.  Must match Stage::unit_bytes.
    std::size_t unit_bytes = 1;

    // Bytes of the unit the stage reads / writes per pass.  A transformer
    // reads and writes the whole unit; a tap (checksum) reads it and writes
    // nothing; a generator writes without reading.  writes_per_unit == 0
    // marks observe-only stages.
    std::size_t reads_per_unit = 0;
    std::size_t writes_per_unit = 0;

    // Result depends on processing order (CRC, stream ciphers).  Such stages
    // may only be fused when message parts run strictly in linear order.
    bool ordering_constrained = false;

    // Header/length sizes this stage needs are fixed before the loop starts.
    // False models functions that discover their own extent mid-stream
    // (XDR variable-length opaque/string decode); the paper rules these out
    // of ILP entirely.
    bool length_known_before_loop = true;

    // Required alignment of the stream offset each unit starts at (a cipher
    // block must not straddle a message-part boundary).
    std::size_t alignment = 1;

    // Working set of auxiliary memory touched per unit (S-box / log-exp /
    // CRC tables, key schedules).  Feeds the §4.2 cache-pressure warning:
    // table-driven manipulations compete with packet data for cache lines.
    std::size_t aux_table_bytes = 0;

    // Trailer bytes this stage obliges the framing to reserve after the
    // body (the AEAD stages' clear [epoch|tag] trailer).  The composer
    // (compose.h) sums the obligations across a graph and requires them to
    // match what the framing actually reserves — an unclaimed or unreserved
    // trailer is an R2 rejection, because the trailer length is a header
    // size that must be fixed before the loop starts.
    std::size_t trailer_bytes = 0;

    // False when this footprint was synthesized as a conservative default
    // (footprint_of<> for a stage with no declaration).  Checked pipelines
    // containing such a stage draw the W4 warning: the composition still
    // runs, but "verified" would overstate what the analyzer proved.
    bool declared = true;
};

// ---------------------------------------------------------------------------
// Extraction from stage types.
//
// Stages opt in by declaring `static constexpr analysis::footprint
// footprint_decl{...}`.  Stages without a declaration (e.g. ad-hoc test
// stages) get a conservative default synthesized from the data_stage
// members, so composing them still works — the analyzer just has less to
// say about them.

template <typename S>
concept has_footprint_decl = requires {
    { S::footprint_decl.unit_bytes } -> std::convertible_to<std::size_t>;
};

template <typename S>
constexpr footprint footprint_of() {
    if constexpr (has_footprint_decl<S>) {
        static_assert(S::footprint_decl.unit_bytes == S::unit_bytes,
                      "footprint declaration disagrees with stage unit size");
        static_assert(S::footprint_decl.ordering_constrained ==
                          S::ordering_constrained,
                      "footprint declaration disagrees with ordering flag");
        return S::footprint_decl;
    } else {
        return footprint{.name = "undeclared",
                         .unit_bytes = S::unit_bytes,
                         .reads_per_unit = S::unit_bytes,
                         .writes_per_unit = S::unit_bytes,
                         .ordering_constrained = S::ordering_constrained,
                         .length_known_before_loop = true,
                         .alignment = S::unit_bytes,
                         .aux_table_bytes = 0,
                         .trailer_bytes = 0,
                         .declared = false};
    }
}

}  // namespace ilp::analysis
