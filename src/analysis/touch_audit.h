// Runtime word-touch auditor — the dynamic half of the fusion analyzer.
//
// The static checker proves a composition *may* be fused; this auditor
// proves a fused run actually delivered the property the fusion exists for:
// each payload byte read from its source exactly once and written to its
// destination exactly once (the paper's Figure 13 memory-access counts are
// exactly this property, summed).  Callers run a fused path under
// `sim_memory` with a `memsim::touch_map` attached to the memory system,
// declare what each watched range should have seen, and `audit_touches`
// turns every deviation into an analyzer finding:
//
//   A1-redundant-touch  error  a byte was read/written more often than the
//                              fused loop needs — a stage re-reads buffer
//                              memory or data bounces through a staging pass
//   A2-missed-touch     error  a byte the loop should have processed was
//                              never touched (torn plan, skipped part)
//   A3-copy-count       error  total bytes written across the watched
//                              ranges exceed the path's write budget — some
//                              word landed at more than one address, so a
//                              staging copy survives on a path that claims
//                              to process data in place
//
// Scratch ("register") traffic is invisible here by construction: the loop
// works on locals, and only accesses routed through the memory policy are
// counted — the same rule the simulator applies for Figure 13.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "memsim/touch_map.h"

namespace ilp::analysis {

// What one watched range must have experienced, per byte.
struct touch_expectation {
    std::string label;          // matches touch_map::watch's label
    std::uint32_t reads = 0;    // exact per-byte read count
    std::uint32_t writes = 0;   // exact per-byte write count
};

// Compares the map against the expectations.  Contiguous runs of deviating
// bytes collapse into one finding each (first offset + length), so a
// systematically wrong loop produces a handful of findings, not thousands.
// Expectations naming unknown labels produce an A2 finding.
std::vector<finding> audit_touches(
    const memsim::touch_map& map,
    const std::vector<touch_expectation>& expectations,
    const std::string& site, const std::string& pipeline);

// Copy-count audit (A3): sums every write observed across ALL watched
// ranges, with multiplicity, and flags the run when the total exceeds
// `budget_bytes`.  For a zero-copy receive the budget is exactly the
// payload size — the only writes on the path are the payload landing in its
// destination, so one extra written byte proves a staging copy survived.
std::vector<finding> audit_copy_count(const memsim::touch_map& map,
                                      std::size_t budget_bytes,
                                      const std::string& site,
                                      const std::string& pipeline);

}  // namespace ilp::analysis
