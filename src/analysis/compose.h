// Symbolic composer — fold a stage graph's footprints, run the rules.
//
// compose_and_check() linearizes a stage_graph along a topological order,
// folds the node footprints into one pipeline_model (Le = lcm of every unit
// size with the Ls = 8 memory-path parameter, exactly as fused_pipeline
// computes it at compile time), runs the full R1–R4 rule set plus the
// W1–W4 cost warnings on the *composed* model, and checks the graph-level
// obligations no single footprint can express: acyclicity, and that the
// trailer bytes the stages oblige (AEAD [epoch|tag]) match the trailer the
// framing actually reserves.  The result is a machine-readable verdict:
// legal or not, which rule fired first, and which stage (pair) it fired on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/graph.h"

namespace ilp::analysis {

// Machine-readable result of composing and checking one stage graph.
struct verdict {
    bool legal = false;
    std::uint64_t hash = 0;  // graph_hash of the input graph

    // First error's rule id ("" when legal) and its offending stage or
    // stage pair ("crc32_tap × B,C,A schedule").
    std::string rule;
    std::string offender;

    // The folded model the rules ran on, and every finding (errors,
    // warnings and notes) they produced.
    pipeline_model composed;
    std::vector<finding> findings;
};

verdict compose_and_check(const stage_graph& g);

}  // namespace ilp::analysis
