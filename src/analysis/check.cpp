#include "analysis/check.h"

#include <numeric>

namespace ilp::analysis {

const char* severity_name(severity s) noexcept {
    switch (s) {
        case severity::note: return "note";
        case severity::warning: return "warning";
        case severity::error: return "error";
    }
    return "unknown";
}

bool passes(const std::vector<finding>& findings) noexcept {
    for (const finding& f : findings) {
        if (f.sev == severity::error) return false;
    }
    return true;
}

namespace {

void add(std::vector<finding>& out, const pipeline_model& m, severity sev,
         const char* rule, std::string message, std::string stage = {}) {
    out.push_back(
        {sev, rule, m.site, m.name, std::move(message), std::move(stage)});
}

// R4: the analyzer's own input must be coherent before the paper rules can
// mean anything.
void check_footprints(const pipeline_model& m, std::vector<finding>& out) {
    for (const footprint& fp : m.stages) {
        const std::string who = std::string("stage '") + fp.name + "'";
        if (!fp.declared) {
            add(out, m, severity::warning, "W4-conservative-footprint",
                who + " has no declared footprint; the checker is running "
                      "on a conservative default synthesized from the stage "
                      "type, so a clean verdict does not verify what the "
                      "stage actually does — declare a footprint",
                fp.name);
        }
        if (fp.unit_bytes == 0) {
            add(out, m, severity::error, "R4-footprint",
                who + " declares a zero-byte processing unit", fp.name);
            continue;
        }
        if (fp.reads_per_unit > fp.unit_bytes ||
            fp.writes_per_unit > fp.unit_bytes) {
            add(out, m, severity::error, "R4-footprint",
                who + " claims to touch more bytes per unit than its unit "
                      "holds",
                fp.name);
        }
        if (fp.alignment == 0 || fp.unit_bytes % fp.alignment != 0) {
            add(out, m, severity::error, "R4-footprint",
                who + " alignment does not divide its unit size", fp.name);
        }
        if (m.kind == pipeline_kind::fused &&
            m.exchange_unit_bytes % fp.unit_bytes != 0) {
            add(out, m, severity::error, "R4-footprint",
                who + " unit does not divide the exchanged unit Le=" +
                    std::to_string(m.exchange_unit_bytes) +
                    " (Le must be the lcm of all fused unit sizes, §2.2)",
                std::string(fp.name) + " × Le=" +
                    std::to_string(m.exchange_unit_bytes));
        }
    }
}

// R1: ordering-constrained manipulations cannot run under the B,C,A part
// schedule — their result depends on byte order.
void check_ordering(const pipeline_model& m, std::vector<finding>& out) {
    if (!m.out_of_order_parts) return;
    for (const footprint& fp : m.stages) {
        if (!fp.ordering_constrained) continue;
        add(out, m, severity::error, "R1-ordering",
            std::string("stage '") + fp.name +
                "' is ordering-constrained but the plan processes message "
                "parts out of order (B,C,A); process parts linearly or move "
                "the integrity check to a trailer (paper §2.2, §5)",
            std::string(fp.name) + " × B,C,A schedule");
    }
}

// R2: every header length must be fixed before the fused loop starts; a
// function that discovers its own extent mid-stream (XDR variable-length
// decode) stalls the whole integration.
void check_header_sizes(const pipeline_model& m, std::vector<finding>& out) {
    if (!m.header_sizes_known) {
        add(out, m, severity::error, "R2-header-size",
            "composition enters the loop before all header lengths are "
            "fixed; ILP requires header sizes known before the loop starts "
            "(paper §2.2)",
            "framing");
    }
    for (const footprint& fp : m.stages) {
        if (fp.length_known_before_loop) continue;
        add(out, m, severity::error, "R2-header-size",
            std::string("stage '") + fp.name +
                "' determines its own length mid-loop; such functions "
                "cannot be integrated (paper §2.2)",
            fp.name);
    }
}

// W1 / W2 / W3 / N1.
void check_costs(const pipeline_model& m, std::vector<finding>& out) {
    if (m.kind == pipeline_kind::word_chain) {
        for (const footprint& fp : m.stages) {
            if (fp.unit_bytes <= 4) continue;
            add(out, m, severity::warning, "W1-word-handoff",
                std::string("filter '") + fp.name + "' works in " +
                    std::to_string(fp.unit_bytes) +
                    "-byte units but the chain hands data out as 4-byte "
                    "words — two stores where one would do; the LCM-unit "
                    "fused loop avoids this (paper §2.2)",
                std::string(fp.name) + " × 4-byte word handoff");
        }
    }

    std::size_t tables = 0;
    for (const footprint& fp : m.stages) tables += fp.aux_table_bytes;
    if (tables >= cache_pressure_threshold_bytes) {
        add(out, m, severity::warning, "W2-cache-pressure",
            "fused stages touch " + std::to_string(tables) +
                " bytes of tables/key schedules per unit stream; on an 8 KB "
                "L1 this competes with packet data and can raise the miss "
                "ratio instead of lowering it (paper §4.2)");
    }

    if (m.kind == pipeline_kind::fused &&
        m.exchange_unit_bytes > register_file_budget_bytes) {
        add(out, m, severity::warning, "W3-register-pressure",
            "exchanged unit Le=" + std::to_string(m.exchange_unit_bytes) +
                " bytes exceeds the register budget; the loop scratch will "
                "spill and the single-read/single-write property degrades "
                "(paper §2.2)");
    }

    // N1: report what each observe-only tap actually covers.  A transformer
    // *before* the tap means the tap sees transformed data (send-side
    // checksum over ciphertext); a transformer after it means it sees the
    // input stream (receive-side checksum over ciphertext before decrypt).
    for (std::size_t i = 0; i < m.stages.size(); ++i) {
        const footprint& fp = m.stages[i];
        if (fp.writes_per_unit != 0 || fp.reads_per_unit == 0) continue;
        bool transformed_before = false;
        for (std::size_t j = 0; j < i; ++j) {
            if (m.stages[j].writes_per_unit > 0) transformed_before = true;
        }
        add(out, m, severity::note, "N1-tap-domain",
            std::string("tap '") + fp.name + "' observes the " +
                (transformed_before ? "transformed" : "untransformed") +
                " stream at this position",
            fp.name);
    }
}

}  // namespace

std::vector<finding> check_part_geometry(const pipeline_model& m,
                                         const std::vector<part_info>& parts) {
    std::vector<finding> out;
    for (const part_info& part : parts) {
        if (part.len == 0) continue;
        // The fused loop iterates in whole Le units within each part.
        if (part.len % m.exchange_unit_bytes != 0) {
            add(out, m, severity::error, "R3-granularity",
                "part [" + std::to_string(part.offset) + "," +
                    std::to_string(part.offset + part.len) + ") length " +
                    std::to_string(part.len) +
                    " is not a multiple of the exchanged unit Le=" +
                    std::to_string(m.exchange_unit_bytes) +
                    "; the loop would process a torn unit",
                "part@" + std::to_string(part.offset) + " × Le=" +
                    std::to_string(m.exchange_unit_bytes));
        }
        for (const footprint& fp : m.stages) {
            if (part.offset % fp.alignment != 0) {
                add(out, m, severity::error, "R3-granularity",
                    "part at stream offset " + std::to_string(part.offset) +
                        " misaligns stage '" + fp.name + "' (requires " +
                        std::to_string(fp.alignment) +
                        "-byte alignment); a " +
                        std::to_string(fp.unit_bytes) +
                        "-byte block would straddle the part boundary",
                    "part@" + std::to_string(part.offset) + " × " + fp.name);
            }
        }
    }
    return out;
}

std::vector<finding> check_pipeline(const pipeline_model& model) {
    std::vector<finding> out;
    check_footprints(model, out);
    check_ordering(model, out);
    check_header_sizes(model, out);
    std::vector<finding> geom = check_part_geometry(model, model.parts);
    out.insert(out.end(), geom.begin(), geom.end());
    check_costs(model, out);
    return out;
}

}  // namespace ilp::analysis
