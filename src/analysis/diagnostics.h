// Diagnostic rendering for analyzer findings.
//
// Text mode mirrors compiler diagnostics so editors and humans parse it at
// a glance:
//
//   src/app/send_path.h:send_message_ilp: error: [R1-ordering] stage
//   'crc32_tap' is ordering-constrained but ...  (pipeline: app-send-ilp)
//
// JSON mode is the machine-readable CI contract: a stable top-level object
// with per-finding records and summary counts; `ilp-lint --json` emits it
// and the workflow fails on any error-severity finding.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/check.h"

namespace ilp::analysis {

// One finding in text form (no trailing newline).
std::string render_text(const finding& f);

// All findings plus a summary line, to `out`.  Returns the error count.
std::size_t print_report(std::FILE* out, const std::vector<finding>& findings);

// The full JSON document (findings + counts + pipeline inventory).
std::string render_json(const std::vector<pipeline_model>& models,
                        const std::vector<finding>& findings);

}  // namespace ilp::analysis
