#include "analysis/touch_audit.h"

namespace ilp::analysis {

namespace {

struct deviation {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint32_t seen = 0;  // representative observed count in the run
    bool excess = false;     // redundant (true) vs missed (false)
};

// Collapses per-byte deviations of one kind (reads or writes) into runs.
std::vector<deviation> collapse(const memsim::touch_map& map, std::size_t ri,
                                std::uint32_t expected, bool reads) {
    std::vector<deviation> runs;
    const std::size_t n = map.size(ri);
    for (std::size_t i = 0; i < n; ++i) {
        const memsim::touch_map::counts& c = map.at(ri, i);
        const std::uint32_t seen = reads ? c.reads : c.writes;
        if (seen == expected) continue;
        const bool excess = seen > expected;
        if (!runs.empty() && runs.back().end == i &&
            runs.back().excess == excess && runs.back().seen == seen) {
            runs.back().end = i + 1;
        } else {
            runs.push_back({i, i + 1, seen, excess});
        }
    }
    return runs;
}

void report(std::vector<finding>& out, const std::string& site,
            const std::string& pipeline, const std::string& label,
            const char* what, std::uint32_t expected,
            const std::vector<deviation>& runs) {
    for (const deviation& d : runs) {
        finding f;
        f.sev = severity::error;
        f.rule = d.excess ? "A1-redundant-touch" : "A2-missed-touch";
        f.site = site;
        f.pipeline = pipeline;
        f.message = "range '" + label + "' bytes [" + std::to_string(d.begin) +
                    "," + std::to_string(d.end) + ") saw " +
                    std::to_string(d.seen) + " " + what + "(s) per byte, " +
                    "expected exactly " + std::to_string(expected) +
                    (d.excess ? " — a fused stage touches payload memory "
                                "it should keep in registers (Fig. 13 "
                                "single-touch property violated)"
                              : " — the fused loop skipped payload bytes");
        out.push_back(std::move(f));
    }
}

}  // namespace

std::vector<finding> audit_copy_count(const memsim::touch_map& map,
                                      std::size_t budget_bytes,
                                      const std::string& site,
                                      const std::string& pipeline) {
    std::uint64_t written = 0;
    for (std::size_t ri = 0; ri < map.range_count(); ++ri) {
        const std::size_t n = map.size(ri);
        for (std::size_t i = 0; i < n; ++i) written += map.at(ri, i).writes;
    }
    std::vector<finding> out;
    if (written > budget_bytes) {
        finding f;
        f.sev = severity::error;
        f.rule = "A3-copy-count";
        f.site = site;
        f.pipeline = pipeline;
        f.message = "watched ranges absorbed " + std::to_string(written) +
                    " byte writes, budget is " +
                    std::to_string(budget_bytes) +
                    " — a staging copy survives on a path that claims to "
                    "process data in place";
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<finding> audit_touches(
    const memsim::touch_map& map,
    const std::vector<touch_expectation>& expectations,
    const std::string& site, const std::string& pipeline) {
    std::vector<finding> out;
    for (const touch_expectation& e : expectations) {
        const std::size_t ri = map.find(e.label);
        if (ri == memsim::touch_map::npos) {
            finding f;
            f.sev = severity::error;
            f.rule = "A2-missed-touch";
            f.site = site;
            f.pipeline = pipeline;
            f.message =
                "expectation names unwatched range '" + e.label + "'";
            out.push_back(std::move(f));
            continue;
        }
        report(out, site, pipeline, e.label, "read", e.reads,
               collapse(map, ri, e.reads, /*reads=*/true));
        report(out, site, pipeline, e.label, "write", e.writes,
               collapse(map, ri, e.writes, /*reads=*/false));
    }
    return out;
}

}  // namespace ilp::analysis
