// Pipeline models — the composition-level IR the analyzer checks.
//
// A `pipeline_model` is one registered pipeline configuration: which stages
// are fused (their footprints, in loop order), how data is scheduled through
// them (linear vs the paper's out-of-order B,C,A part plan, plus the part
// geometry itself), and where in the codebase the composition lives.  The
// app/RPC/TCP layers build these next to the code they describe
// (src/app/path_models.h, src/rpc/pipeline_models.h,
// src/tcp/pipeline_models.h) and register them so `ilp-lint` can walk every
// configuration the stack actually runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/footprint.h"

namespace ilp::analysis {

// How the stages are composed.
enum class pipeline_kind {
    fused,       // compile-time fused_pipeline (the ILP loop)
    word_chain,  // Abbott & Peterson word-filter chain
    layered,     // separate per-layer passes (the non-ILP baseline)
};

// One message part as scheduled through the loop, in processing order.
// Offsets are stream offsets from the start of the wire image.
struct part_info {
    std::size_t offset = 0;
    std::size_t len = 0;
};

struct pipeline_model {
    // Registered name, unique-ish, used in diagnostics and --list.
    std::string name;
    // Where the composition lives: "src/app/send_path.h:send_message_ilp".
    std::string site;

    pipeline_kind kind = pipeline_kind::fused;

    // Stage footprints in the order they apply to each unit.
    std::vector<footprint> stages;

    // The exchanged unit Le the loop iterates in (lcm of stage units and the
    // Ls = 8 memory-path parameter for fused pipelines; the 4-byte word for
    // word-filter chains).
    std::size_t exchange_unit_bytes = 8;

    // Message parts in the order the composition processes them; empty means
    // "one contiguous run" and disables part-geometry checks.
    std::vector<part_info> parts;

    // True when `parts` are processed in a different order than their stream
    // offsets (the §3.2.2 B,C,A schedule).  Ordering-constrained stages are
    // illegal under this flag.
    bool out_of_order_parts = false;

    // False models compositions that enter the loop before every header
    // length is fixed — the paper's second applicability rule.
    bool header_sizes_known = true;
};

// Convenience: build the footprint list of a fused_pipeline instantiation.
// Usage: stages_of<core::fused_pipeline<A, B>>() — but spelled through the
// pipeline's own shape() to keep stage packs out of caller code.
template <typename... Stages>
std::vector<footprint> footprints_of() {
    return {footprint_of<Stages>()...};
}

}  // namespace ilp::analysis
