#include "analysis/gate.h"

namespace ilp::analysis {

const verdict& legality_gate::check(const stage_graph& g) {
    ++stats_.checks;
    const std::uint64_t h = graph_hash(g);
    auto it = cache_.find(h);
    if (it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
    }
    return cache_.emplace(h, compose_and_check(g)).first->second;
}

}  // namespace ilp::analysis
