// Fusion-legality checker: Braun & Diot's applicability rules, executable.
//
// `check_pipeline` maps one registered pipeline model to a list of findings.
// Error-severity findings are fusions the paper rules illegal — running them
// silently computes garbage (a CRC over parts processed out of order, a
// cipher block straddling a part boundary); warnings are legal-but-costly
// compositions (word-granularity handoffs, table working sets that thrash
// the data cache); notes record properties reviewers should see (what data
// a checksum tap actually covers).
//
// Rules (ids appear in diagnostics and JSON output):
//   R1-ordering     error  ordering-constrained stage under out-of-order
//                          part schedule (§2.2: CRC, stream ciphers)
//   R2-header-size  error  a header length is only known mid-loop (§2.2)
//   R3-granularity  error  part geometry straddles a stage's unit/alignment
//   R4-footprint    error  malformed footprint declaration (analyzer input)
//   W1-word-handoff warn   word filters split >4-byte units into word
//                          stores (§2.1/§2.2 critique)
//   W2-cache-pressure warn fused table working set rivals the L1 data cache
//                          (§4.2: table-driven manipulations under ILP)
//   W3-register-pressure warn Le exceeds what registers can hold (§2.2)
//   W4-conservative-footprint warn a stage has no declared footprint; the
//                          checker is running on a synthesized conservative
//                          default, so "legal" overstates what was proved
//   N1-tap-domain   note   what an observe-only tap covers (cipher-text vs
//                          plain-text checksums)
//   A1-redundant-touch / A2-missed-touch / A3-copy-count: emitted by the
//                          runtime word-touch auditor (touch_audit.h), not
//                          by this checker.
#pragma once

#include <string>
#include <vector>

#include "analysis/model.h"

namespace ilp::analysis {

enum class severity { note, warning, error };

const char* severity_name(severity s) noexcept;

struct finding {
    severity sev = severity::note;
    const char* rule = "";      // stable id, e.g. "R1-ordering"
    std::string site;           // file:function-style location
    std::string pipeline;       // registered pipeline name
    std::string message;
    // The offending stage — or stage pair, rendered "a × b" — the rule
    // fired on.  Machine-readable companion to the prose in `message`; the
    // composer copies the first error's value into its verdict.
    std::string stage;
};

// Working-set threshold for W2: half of the smallest evaluated L1 data
// cache (Alpha 21064: 8 KB direct-mapped).  Above this the fused loop's
// tables compete with packet data for most of the cache.
inline constexpr std::size_t cache_pressure_threshold_bytes = 4096;

// Largest exchanged unit we accept without a register-pressure warning; the
// loop scratch is meant to live in registers (§2.2).
inline constexpr std::size_t register_file_budget_bytes = 64;

// Applies every static rule to one model.
std::vector<finding> check_pipeline(const pipeline_model& model);

// Applies the part-geometry rules (R3) to an explicit geometry — used by
// ilp-lint's --sweep mode to prove the plan generator never produces a
// straddling plan for any marshalled size.
std::vector<finding> check_part_geometry(const pipeline_model& model,
                                         const std::vector<part_info>& parts);

// True if no finding is error-severity.
bool passes(const std::vector<finding>& findings) noexcept;

}  // namespace ilp::analysis
