#include "analysis/graph.h"

namespace ilp::analysis {

const char* side_name(graph_side s) noexcept {
    switch (s) {
        case graph_side::send: return "send";
        case graph_side::receive: return "receive";
    }
    return "?";
}

namespace {

constexpr std::uint64_t fnv_offset = 14695981039346656037ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

void mix_byte(std::uint64_t& h, std::uint8_t b) {
    h ^= b;
    h *= fnv_prime;
}

void mix_u64(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(h, (v >> (8 * i)) & 0xffu);
}

void mix_str(std::uint64_t& h, const char* s) {
    for (; *s != '\0'; ++s) mix_byte(h, static_cast<std::uint8_t>(*s));
    mix_byte(h, 0);  // terminator keeps ("ab","c") != ("a","bc")
}

}  // namespace

std::uint64_t graph_hash(const stage_graph& g) {
    std::uint64_t h = fnv_offset;
    mix_byte(h, static_cast<std::uint8_t>(g.side));
    mix_byte(h, static_cast<std::uint8_t>(g.kind));
    mix_u64(h, g.trailer_reserved_bytes);
    mix_byte(h, g.out_of_order_parts ? 1 : 0);
    mix_byte(h, g.header_sizes_known ? 1 : 0);
    mix_u64(h, g.parts.size());
    for (const part_info& p : g.parts) {
        mix_u64(h, p.offset);
        mix_u64(h, p.len);
    }
    mix_u64(h, g.nodes.size());
    for (const block_node& n : g.nodes) {
        mix_str(h, n.fp.name);
        mix_u64(h, n.fp.unit_bytes);
        mix_u64(h, n.fp.reads_per_unit);
        mix_u64(h, n.fp.writes_per_unit);
        mix_byte(h, n.fp.ordering_constrained ? 1 : 0);
        mix_byte(h, n.fp.length_known_before_loop ? 1 : 0);
        mix_u64(h, n.fp.alignment);
        mix_u64(h, n.fp.aux_table_bytes);
        mix_u64(h, n.fp.trailer_bytes);
        mix_byte(h, n.fp.declared ? 1 : 0);
        mix_u64(h, n.param);
    }
    mix_u64(h, g.edges.size());
    for (const graph_edge& e : g.edges) {
        mix_u64(h, e.from);
        mix_u64(h, e.to);
    }
    return h;
}

std::optional<std::vector<std::size_t>> topo_order(const stage_graph& g) {
    const std::size_t n = g.nodes.size();
    if (g.edges.empty()) {
        // Linear chain in node order.
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
        return order;
    }
    std::vector<std::size_t> indegree(n, 0);
    for (const graph_edge& e : g.edges) {
        if (e.from >= n || e.to >= n) return std::nullopt;  // dangling edge
        ++indegree[e.to];
    }
    // Kahn's algorithm, taking ready nodes in index order so the fold is
    // deterministic for a given graph.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> emitted(n, false);
    for (std::size_t round = 0; round < n; ++round) {
        std::size_t pick = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (!emitted[i] && indegree[i] == 0) {
                pick = i;
                break;
            }
        }
        if (pick == n) return std::nullopt;  // remaining nodes form a cycle
        emitted[pick] = true;
        order.push_back(pick);
        for (const graph_edge& e : g.edges) {
            if (e.from == pick) --indegree[e.to];
        }
    }
    return order;
}

}  // namespace ilp::analysis
