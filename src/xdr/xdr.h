// XDR — External Data Representation (RFC 1014).
//
// The paper's application messages are produced by a MAVROS-generated
// marshalling routine that emits XDR: every primitive occupies a multiple of
// four bytes, integers are big-endian, and variable-length data carries a
// length word and is padded to a 4-byte boundary.  This module is the
// control-plane encoder/decoder used for message headers and whole request
// messages; the ILP data path uses the word-level kernels in
// core/stage_marshal.h, which produce byte-identical output.
//
// Error model: writer/reader carry a sticky `ok()` flag.  Any bounds
// violation or malformed input clears it; subsequent operations become
// no-ops returning zero values.  Callers check ok() once after a batch of
// operations — the natural shape for packet parsing, where every field read
// would otherwise need its own branch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ilp::xdr {

// XDR word size: every encoded item is a multiple of this.
inline constexpr std::size_t unit_bytes = 4;

// ---------------------------------------------------------------------------
// Per-function applicability metadata (paper §2.2), consumed by the fusion
// analyzer in src/analysis.  Marshalling a fixed-layout value is fusable:
// its wire extent is known before the loop starts.  Variable-length forms
// (opaque<>, string<>, arrays with a leading count word) read their own
// length from mid-stream — the exact "header size only known inside the
// loop" case the paper rules out of ILP.  The stub compiler therefore emits
// fused stages only for fixed-layout prefixes and falls back to the
// control-plane reader for variable tails; ilp-lint flags any composition
// that violates this.

struct function_constraints {
    const char* name = "";
    bool ordering_constrained = false;     // all XDR codecs are stateless
    bool length_known_before_loop = true;  // false: self-describing extent
};

inline constexpr function_constraints int_codec{"xdr_int", false, true};
inline constexpr function_constraints hyper_codec{"xdr_hyper", false, true};
inline constexpr function_constraints bool_codec{"xdr_bool", false, true};
inline constexpr function_constraints enum_codec{"xdr_enum", false, true};
inline constexpr function_constraints opaque_fixed_codec{"xdr_opaque_fixed",
                                                         false, true};
inline constexpr function_constraints opaque_varlen_codec{"xdr_opaque", false,
                                                          false};
inline constexpr function_constraints string_codec{"xdr_string", false, false};
inline constexpr function_constraints array_codec{"xdr_array", false, false};

constexpr std::size_t padded_size(std::size_t n) noexcept {
    return (n + unit_bytes - 1) / unit_bytes * unit_bytes;
}

class writer {
public:
    explicit writer(std::span<std::byte> out) : out_(out) {}

    bool ok() const noexcept { return ok_; }
    std::size_t position() const noexcept { return pos_; }
    std::size_t remaining() const noexcept { return out_.size() - pos_; }

    writer& put_u32(std::uint32_t v);
    writer& put_i32(std::int32_t v) {
        return put_u32(static_cast<std::uint32_t>(v));
    }
    writer& put_u64(std::uint64_t v);
    writer& put_i64(std::int64_t v) {
        return put_u64(static_cast<std::uint64_t>(v));
    }
    writer& put_bool(bool v) { return put_u32(v ? 1 : 0); }

    // Fixed-length opaque: bytes plus zero padding to the next word.
    writer& put_opaque_fixed(std::span<const std::byte> data);

    // Variable-length opaque: length word, bytes, padding.
    writer& put_opaque(std::span<const std::byte> data);

    // String: identical wire form to variable-length opaque.
    writer& put_string(std::string_view s);

    // Array of 32-bit integers with a leading count word.
    writer& put_i32_array(std::span<const std::int32_t> values);

    // Reserves a word and returns its offset so the caller can patch it
    // later (used for length fields that depend on data marshalled after
    // them, the paper's header/data dependency).
    std::size_t reserve_u32();
    void patch_u32(std::size_t offset, std::uint32_t v);

private:
    std::byte* alloc(std::size_t n);

    std::span<std::byte> out_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

class reader {
public:
    explicit reader(std::span<const std::byte> in) : in_(in) {}

    bool ok() const noexcept { return ok_; }
    std::size_t position() const noexcept { return pos_; }
    std::size_t remaining() const noexcept { return in_.size() - pos_; }
    bool at_end() const noexcept { return pos_ == in_.size(); }

    std::uint32_t get_u32();
    std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
    std::uint64_t get_u64();
    std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
    bool get_bool();

    // Fixed-length opaque of n bytes (plus padding); returns a view into the
    // input buffer.
    std::span<const std::byte> get_opaque_fixed(std::size_t n);

    // Variable-length opaque; `max_len` guards against hostile lengths.
    std::span<const std::byte> get_opaque(std::size_t max_len);

    std::string get_string(std::size_t max_len);

    std::vector<std::int32_t> get_i32_array(std::size_t max_count);

private:
    const std::byte* take(std::size_t n);

    std::span<const std::byte> in_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace ilp::xdr
