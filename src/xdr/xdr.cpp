#include "xdr/xdr.h"

#include <cstring>

#include "util/endian.h"

namespace ilp::xdr {

std::byte* writer::alloc(std::size_t n) {
    if (!ok_ || n > out_.size() - pos_) {
        ok_ = false;
        return nullptr;
    }
    std::byte* p = out_.data() + pos_;
    pos_ += n;
    return p;
}

writer& writer::put_u32(std::uint32_t v) {
    if (std::byte* p = alloc(4)) store_be32(p, v);
    return *this;
}

writer& writer::put_u64(std::uint64_t v) {
    if (std::byte* p = alloc(8)) store_be64(p, v);
    return *this;
}

writer& writer::put_opaque_fixed(std::span<const std::byte> data) {
    const std::size_t padded = padded_size(data.size());
    if (std::byte* p = alloc(padded)) {
        std::memcpy(p, data.data(), data.size());
        std::memset(p + data.size(), 0, padded - data.size());
    }
    return *this;
}

writer& writer::put_opaque(std::span<const std::byte> data) {
    put_u32(static_cast<std::uint32_t>(data.size()));
    return put_opaque_fixed(data);
}

writer& writer::put_string(std::string_view s) {
    return put_opaque({reinterpret_cast<const std::byte*>(s.data()), s.size()});
}

writer& writer::put_i32_array(std::span<const std::int32_t> values) {
    put_u32(static_cast<std::uint32_t>(values.size()));
    for (const std::int32_t v : values) put_i32(v);
    return *this;
}

std::size_t writer::reserve_u32() {
    const std::size_t offset = pos_;
    put_u32(0);
    return offset;
}

void writer::patch_u32(std::size_t offset, std::uint32_t v) {
    if (!ok_ || offset + 4 > pos_) {
        ok_ = false;
        return;
    }
    store_be32(out_.data() + offset, v);
}

const std::byte* reader::take(std::size_t n) {
    if (!ok_ || n > in_.size() - pos_) {
        ok_ = false;
        return nullptr;
    }
    const std::byte* p = in_.data() + pos_;
    pos_ += n;
    return p;
}

std::uint32_t reader::get_u32() {
    const std::byte* p = take(4);
    return p ? load_be32(p) : 0;
}

std::uint64_t reader::get_u64() {
    const std::byte* p = take(8);
    return p ? load_be64(p) : 0;
}

bool reader::get_bool() {
    const std::uint32_t v = get_u32();
    if (v > 1) ok_ = false;  // RFC 1014: bool is 0 or 1
    return v == 1;
}

std::span<const std::byte> reader::get_opaque_fixed(std::size_t n) {
    const std::size_t padded = padded_size(n);
    const std::byte* p = take(padded);
    if (p == nullptr) return {};
    // Padding bytes must be zero per RFC 1014 §3.8.
    for (std::size_t i = n; i < padded; ++i) {
        if (p[i] != std::byte{0}) {
            ok_ = false;
            return {};
        }
    }
    return {p, n};
}

std::span<const std::byte> reader::get_opaque(std::size_t max_len) {
    const std::uint32_t len = get_u32();
    if (!ok_ || len > max_len || len > remaining()) {
        ok_ = false;
        return {};
    }
    return get_opaque_fixed(len);
}

std::string reader::get_string(std::size_t max_len) {
    const std::span<const std::byte> bytes = get_opaque(max_len);
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::vector<std::int32_t> reader::get_i32_array(std::size_t max_count) {
    const std::uint32_t count = get_u32();
    if (!ok_ || count > max_count || count * 4ull > remaining()) {
        ok_ = false;
        return {};
    }
    std::vector<std::int32_t> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) values.push_back(get_i32());
    return values;
}

}  // namespace ilp::xdr
