// Unit tests for the XDR (RFC 1014) encoder/decoder.
#include <gtest/gtest.h>

#include <vector>

#include "buffer/byte_buffer.h"
#include "xdr/xdr.h"

namespace ilp::xdr {
namespace {

TEST(XdrWriter, IntegersAreBigEndianWords) {
    byte_buffer buf(16);
    writer w(buf.span());
    w.put_u32(0x01020304u).put_i32(-1);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.position(), 8u);
    EXPECT_EQ(std::to_integer<int>(buf.data()[0]), 0x01);
    EXPECT_EQ(std::to_integer<int>(buf.data()[3]), 0x04);
    for (int i = 4; i < 8; ++i) {
        EXPECT_EQ(std::to_integer<int>(buf.data()[i]), 0xff);
    }
}

TEST(XdrWriter, HyperIs8Bytes) {
    byte_buffer buf(8);
    writer w(buf.span());
    w.put_u64(0x0102030405060708ull);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(std::to_integer<int>(buf.data()[0]), 0x01);
    EXPECT_EQ(std::to_integer<int>(buf.data()[7]), 0x08);
}

TEST(XdrWriter, OpaquePadsToWordBoundary) {
    byte_buffer buf(32);
    writer w(buf.span());
    const std::byte data[5] = {std::byte{1}, std::byte{2}, std::byte{3},
                               std::byte{4}, std::byte{5}};
    w.put_opaque(data);
    ASSERT_TRUE(w.ok());
    // length word (4) + 5 data bytes + 3 pad bytes = 12.
    EXPECT_EQ(w.position(), 12u);
    EXPECT_EQ(std::to_integer<int>(buf.data()[3]), 5);   // length low byte
    EXPECT_EQ(std::to_integer<int>(buf.data()[9]), 0);   // padding
    EXPECT_EQ(std::to_integer<int>(buf.data()[11]), 0);  // padding
}

TEST(XdrWriter, OverflowSetsStickyError) {
    byte_buffer buf(6);
    writer w(buf.span());
    w.put_u32(1);
    EXPECT_TRUE(w.ok());
    w.put_u32(2);  // only 2 bytes left
    EXPECT_FALSE(w.ok());
    w.put_u32(3);  // stays failed, no crash
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(w.position(), 4u);
}

TEST(XdrWriter, ReserveAndPatch) {
    byte_buffer buf(16);
    writer w(buf.span());
    const std::size_t slot = w.reserve_u32();
    w.put_u32(42);
    w.patch_u32(slot, 0xabcdef01u);
    ASSERT_TRUE(w.ok());
    reader r(buf.subspan(0, w.position()));
    EXPECT_EQ(r.get_u32(), 0xabcdef01u);
    EXPECT_EQ(r.get_u32(), 42u);
}

TEST(XdrRoundTrip, AllScalarTypes) {
    byte_buffer buf(64);
    writer w(buf.span());
    w.put_i32(-123456).put_u32(0xffffffffu).put_bool(true).put_bool(false);
    w.put_i64(-99999999999ll).put_u64(0x8000000000000001ull);
    ASSERT_TRUE(w.ok());

    reader r(buf.subspan(0, w.position()));
    EXPECT_EQ(r.get_i32(), -123456);
    EXPECT_EQ(r.get_u32(), 0xffffffffu);
    EXPECT_TRUE(r.get_bool());
    EXPECT_FALSE(r.get_bool());
    EXPECT_EQ(r.get_i64(), -99999999999ll);
    EXPECT_EQ(r.get_u64(), 0x8000000000000001ull);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
}

TEST(XdrRoundTrip, StringsAndArrays) {
    byte_buffer buf(256);
    writer w(buf.span());
    const std::vector<std::int32_t> values{1, -2, 3, -4, 5};
    w.put_string("file.dat").put_i32_array(values).put_string("");
    ASSERT_TRUE(w.ok());

    reader r(buf.subspan(0, w.position()));
    EXPECT_EQ(r.get_string(64), "file.dat");
    EXPECT_EQ(r.get_i32_array(64), values);
    EXPECT_EQ(r.get_string(64), "");
    EXPECT_TRUE(r.ok());
}

TEST(XdrReader, RejectsBadBool) {
    byte_buffer buf(4);
    writer w(buf.span());
    w.put_u32(2);
    reader r(buf.span());
    r.get_bool();
    EXPECT_FALSE(r.ok());
}

TEST(XdrReader, RejectsNonZeroPadding) {
    byte_buffer buf(12);
    writer w(buf.span());
    const std::byte data[3] = {std::byte{9}, std::byte{9}, std::byte{9}};
    w.put_opaque(data);
    buf.data()[7] = std::byte{1};  // corrupt a pad byte
    reader r(buf.subspan(0, w.position()));
    r.get_opaque(16);
    EXPECT_FALSE(r.ok());
}

TEST(XdrReader, RejectsHostileLength) {
    byte_buffer buf(8);
    writer w(buf.span());
    w.put_u32(0xfffffff0u);  // absurd opaque length
    reader r(buf.subspan(0, 4));
    const auto view = r.get_opaque(1 << 20);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(view.empty());
}

TEST(XdrReader, RejectsLengthBeyondMax) {
    byte_buffer buf(16);
    writer w(buf.span());
    const std::byte data[8] = {};
    w.put_opaque(data);
    reader r(buf.subspan(0, w.position()));
    r.get_opaque(4);  // max_len smaller than actual length
    EXPECT_FALSE(r.ok());
}

TEST(XdrReader, TruncatedInputSetsError) {
    byte_buffer buf(4);
    writer w(buf.span());
    w.put_u32(7);
    reader r(buf.subspan(0, 2));  // cut mid-word
    EXPECT_EQ(r.get_u32(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(XdrReader, ArrayCountGuard) {
    byte_buffer buf(8);
    writer w(buf.span());
    w.put_u32(1000);  // claims 1000 elements, only 4 bytes follow
    w.put_i32(1);
    reader r(buf.span());
    const auto values = r.get_i32_array(10);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(values.empty());
}

TEST(Xdr, PaddedSize) {
    EXPECT_EQ(padded_size(0), 0u);
    EXPECT_EQ(padded_size(1), 4u);
    EXPECT_EQ(padded_size(4), 4u);
    EXPECT_EQ(padded_size(5), 8u);
}

}  // namespace
}  // namespace ilp::xdr
