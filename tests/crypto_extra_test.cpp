// Tests for the extended cipher suite: DES (with the FIPS worked example)
// and RC4 (with the classic published vector), plus their integration with
// the stage framework and its ordering-constraint machinery.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "buffer/byte_buffer.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "crypto/block_cipher.h"
#include "crypto/des.h"
#include "crypto/rc4.h"
#include "memsim/configs.h"
#include "util/hexdump.h"
#include "util/rng.h"

namespace ilp::crypto {
namespace {

std::array<std::byte, 8> bytes8(std::uint64_t v) {
    std::array<std::byte, 8> out;
    for (int i = 7; i >= 0; --i) {
        out[i] = static_cast<std::byte>(v & 0xff);
        v >>= 8;
    }
    return out;
}

TEST(Des, FipsWorkedExample) {
    // The classic textbook vector: key 133457799BBCDFF1,
    // plaintext 0123456789ABCDEF -> ciphertext 85E813540F0AB405.
    const auto key = bytes8(0x133457799BBCDFF1ull);
    const des cipher(key);
    auto block = bytes8(0x0123456789ABCDEFull);
    memsim::direct_memory mem;
    cipher.encrypt_block(mem, block.data());
    EXPECT_EQ(to_hex(block), "85e813540f0ab405");
    cipher.decrypt_block(mem, block.data());
    EXPECT_EQ(to_hex(block), "0123456789abcdef");
}

TEST(Des, WeakKeyAllZerosStillRoundTrips) {
    const auto key = bytes8(0);
    const des cipher(key);
    memsim::direct_memory mem;
    rng r(1);
    for (int i = 0; i < 64; ++i) {
        std::array<std::byte, 8> block;
        r.fill(block);
        const auto original = block;
        cipher.encrypt_block(mem, block.data());
        cipher.decrypt_block(mem, block.data());
        EXPECT_EQ(block, original);
    }
}

TEST(Des, RoundTripRandomKeys) {
    rng r(2);
    memsim::direct_memory mem;
    for (int k = 0; k < 16; ++k) {
        std::array<std::byte, 8> key;
        r.fill(key);
        const des cipher(key);
        std::array<std::byte, 8> block;
        r.fill(block);
        const auto original = block;
        cipher.encrypt_block(mem, block.data());
        EXPECT_NE(block, original);
        cipher.decrypt_block(mem, block.data());
        EXPECT_EQ(block, original);
    }
}

TEST(Des, ComplementationProperty) {
    // DES's famous complementation property: E_{~K}(~P) = ~E_K(P).
    rng r(3);
    std::array<std::byte, 8> key, plain;
    r.fill(key);
    r.fill(plain);
    memsim::direct_memory mem;

    const des cipher(key);
    auto ct = plain;
    cipher.encrypt_block(mem, ct.data());

    std::array<std::byte, 8> key_c, plain_c;
    for (int i = 0; i < 8; ++i) {
        key_c[i] = ~key[i];
        plain_c[i] = ~plain[i];
    }
    const des cipher_c(key_c);
    auto ct_c = plain_c;
    cipher_c.encrypt_block(mem, ct_c.data());
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(ct_c[i], ~ct[i]) << "byte " << i;
    }
}

TEST(Des, SatisfiesBlockCipherConceptAndFuses) {
    static_assert(block_cipher<des>);
    const auto key = bytes8(0x0102030405060708ull);
    const des cipher(key);
    byte_buffer src(64), wire(64), restored(64);
    rng r(4);
    r.fill(src.span());
    memsim::direct_memory mem;

    core::encrypt_stage<des> enc(cipher);
    auto enc_pipe = core::make_pipeline(enc);
    enc_pipe.run(mem, core::span_source(src.span()),
                 core::span_dest(wire.span()));
    core::decrypt_stage<des> dec(cipher);
    auto dec_pipe = core::make_pipeline(dec);
    dec_pipe.run(mem, core::span_source(wire.span()),
                 core::span_dest(restored.span()));
    EXPECT_EQ(std::memcmp(src.data(), restored.data(), 64), 0);
}

TEST(Des, TablePressureDwarfsSafer) {
    // The paper's reason to avoid DES: per 8-byte block it does 8 S-box
    // reads per round x 16 rounds = 128 table reads (the simplified SAFER
    // does 16).  The simulator must see that.
    const auto key = bytes8(0xA1B2C3D4E5F60718ull);
    const des cipher(key);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    std::array<std::byte, 8> block{};
    cipher.encrypt_block(mem, block.data());
    EXPECT_EQ(sys.data_stats().reads.accesses[memsim::size_bucket(1)], 128u);
}

TEST(Rc4, PublishedVector) {
    // RC4("Key", "Plaintext") = BBF316E8D940AF0AD3.
    const char* key_text = "Key";
    rc4 cipher({reinterpret_cast<const std::byte*>(key_text), 3});
    std::byte data[9];
    std::memcpy(data, "Plaintext", 9);
    cipher.process(memsim::direct_memory{}, data, 9);
    EXPECT_EQ(to_hex(data), "bbf316e8d940af0ad3");
}

TEST(Rc4, SecondPublishedVector) {
    // RC4("Wiki", "pedia") = 1021BF0420.
    const char* key_text = "Wiki";
    rc4 cipher({reinterpret_cast<const std::byte*>(key_text), 4});
    std::byte data[5];
    std::memcpy(data, "pedia", 5);
    cipher.process(memsim::direct_memory{}, data, 5);
    EXPECT_EQ(to_hex(data), "1021bf0420");
}

TEST(Rc4, RoundTripRequiresMatchingStreamPosition) {
    const char* key_text = "secret";
    const auto key =
        std::span<const std::byte>{reinterpret_cast<const std::byte*>(key_text), 6};
    rc4 enc(key);
    rc4 dec(key);
    std::byte data[32];
    rng r(5);
    r.fill(data);
    std::byte original[32];
    std::memcpy(original, data, 32);

    memsim::direct_memory mem;
    enc.process(mem, data, 32);
    dec.process(mem, data, 32);
    EXPECT_EQ(std::memcmp(data, original, 32), 0);

    // Processing out of order breaks the stream: encrypt the two halves in
    // swapped order and decryption in natural order fails.
    rc4 enc2(key);
    rc4 dec2(key);
    std::memcpy(data, original, 32);
    enc2.process(mem, data + 16, 16);  // part "C" first
    enc2.process(mem, data, 16);       // then part "B"
    dec2.process(mem, data, 32);
    EXPECT_NE(std::memcmp(data, original, 32), 0);
}

TEST(Rc4, StageIsOrderingConstrained) {
    static_assert(core::data_stage<rc4_stage>);
    static_assert(rc4_stage::ordering_constrained);
    // The constraint propagates through the pipeline, which is what the
    // send path's static_assert consults before reordering parts B, C, A.
    static_assert(
        core::fused_pipeline<core::xdr_encode_stage, rc4_stage>::
            ordering_constrained);
}

TEST(Rc4, FusedLinearPipelineRoundTrips) {
    // In strictly linear order the stream cipher fuses fine.
    const char* key_text = "pipeline";
    const auto key =
        std::span<const std::byte>{reinterpret_cast<const std::byte*>(key_text), 8};
    rc4 enc(key);
    rc4 dec(key);
    byte_buffer src(128), wire(128), restored(128);
    rng r(6);
    r.fill(src.span());
    memsim::direct_memory mem;

    rc4_stage enc_stage(enc);
    auto enc_pipe = core::make_pipeline(enc_stage);
    enc_pipe.run(mem, core::span_source(src.span()),
                 core::span_dest(wire.span()));
    EXPECT_NE(std::memcmp(src.data(), wire.data(), 128), 0);

    rc4_stage dec_stage(dec);
    auto dec_pipe = core::make_pipeline(dec_stage);
    dec_pipe.run(mem, core::span_source(wire.span()),
                 core::span_dest(restored.span()));
    EXPECT_EQ(std::memcmp(src.data(), restored.data(), 128), 0);
}

TEST(Rc4, StateTrafficIsReadAndWrite) {
    // Unlike SAFER's read-only tables, RC4 swaps state bytes: the simulator
    // sees 3 reads + 2 writes per data byte.
    const char* key_text = "k";
    rc4 cipher({reinterpret_cast<const std::byte*>(key_text), 1});
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    std::byte data[64] = {};
    cipher.process(mem, data, 64);
    EXPECT_EQ(sys.data_stats().reads.accesses[memsim::size_bucket(1)],
              3u * 64);
    EXPECT_EQ(sys.data_stats().writes.accesses[memsim::size_bucket(1)],
              2u * 64);
}

}  // namespace
}  // namespace ilp::crypto
