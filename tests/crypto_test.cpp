// Unit and property tests for the cipher suite: SAFER tables, full SAFER
// K-64, the paper's simplified SAFER, and the constant-based simple cipher.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstring>
#include <set>

#include "buffer/byte_buffer.h"
#include "crypto/block_cipher.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "crypto/safer_tables.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"
#include "util/rng.h"

namespace ilp::crypto {
namespace {

using key_array = std::array<std::byte, 8>;

key_array make_key(std::uint64_t seed) {
    key_array key;
    rng r(seed);
    r.fill(key);
    return key;
}

template <typename Cipher>
void expect_round_trip(const Cipher& cipher, std::uint64_t seed) {
    rng r(seed);
    memsim::direct_memory mem;
    for (int i = 0; i < 256; ++i) {
        std::byte block[8];
        r.fill(block);
        std::byte original[8];
        std::memcpy(original, block, 8);
        cipher.encrypt_block(mem, block);
        cipher.decrypt_block(mem, block);
        EXPECT_EQ(std::memcmp(block, original, 8), 0) << "iteration " << i;
    }
}

TEST(SaferTables, ExpIsPermutationAndLogInverts) {
    std::set<std::uint8_t> seen;
    for (int i = 0; i < 256; ++i) {
        seen.insert(safer_exp(static_cast<std::uint8_t>(i)));
    }
    EXPECT_EQ(seen.size(), 256u);
    for (int i = 0; i < 256; ++i) {
        const auto x = static_cast<std::uint8_t>(i);
        EXPECT_EQ(safer_log(safer_exp(x)), x);
        EXPECT_EQ(safer_exp(safer_log(x)), x);
    }
}

TEST(SaferTables, KnownAlgebraicValues) {
    // 45^0 = 1, 45^1 = 45, and the defining quirk 45^128 mod 257 = 256 = 0.
    EXPECT_EQ(safer_exp(0), 1);
    EXPECT_EQ(safer_exp(1), 45);
    EXPECT_EQ(safer_exp(128), 0);
    EXPECT_EQ(safer_log(0), 128);
    EXPECT_EQ(safer_log(1), 0);
}

TEST(SaferK64, EncryptDecryptRoundTrip) {
    const key_array key = make_key(1);
    const safer_k64 cipher({key.data(), key.size()});
    expect_round_trip(cipher, 2);
}

TEST(SaferK64, RoundTripAtEveryRoundCount) {
    const key_array key = make_key(3);
    for (unsigned rounds = 1; rounds <= safer_k64::max_rounds; ++rounds) {
        const safer_k64 cipher({key.data(), key.size()}, rounds);
        expect_round_trip(cipher, 100 + rounds);
    }
}

TEST(SaferK64, DifferentKeysGiveDifferentCiphertext) {
    const key_array k1 = make_key(4);
    const key_array k2 = make_key(5);
    const safer_k64 c1({k1.data(), k1.size()});
    const safer_k64 c2({k2.data(), k2.size()});
    std::byte b1[8] = {};
    std::byte b2[8] = {};
    memsim::direct_memory mem;
    c1.encrypt_block(mem, b1);
    c2.encrypt_block(mem, b2);
    EXPECT_NE(std::memcmp(b1, b2, 8), 0);
}

TEST(SaferK64, AvalancheOnPlaintextBitFlip) {
    // Flipping one plaintext bit should change roughly half the ciphertext
    // bits after 6 rounds; demand at least 16 of 64 on average.
    const key_array key = make_key(6);
    const safer_k64 cipher({key.data(), key.size()});
    memsim::direct_memory mem;
    rng r(7);
    int total_flips = 0;
    constexpr int trials = 64;
    for (int t = 0; t < trials; ++t) {
        std::byte a[8], b[8];
        r.fill(a);
        std::memcpy(b, a, 8);
        b[t % 8] ^= static_cast<std::byte>(1u << (t % 8));
        cipher.encrypt_block(mem, a);
        cipher.encrypt_block(mem, b);
        for (int i = 0; i < 8; ++i) {
            total_flips += std::popcount(
                std::to_integer<unsigned>(a[i] ^ b[i]));
        }
    }
    EXPECT_GT(total_flips, 16 * trials);
    EXPECT_LT(total_flips, 48 * trials);
}

TEST(SaferK64, EncryptionIsNotIdentity) {
    const key_array key = make_key(8);
    const safer_k64 cipher({key.data(), key.size()});
    memsim::direct_memory mem;
    std::byte block[8] = {};
    cipher.encrypt_block(mem, block);
    std::byte zero[8] = {};
    EXPECT_NE(std::memcmp(block, zero, 8), 0);
}

TEST(SaferK64, SimulatedTableAndKeyTraffic) {
    // Per 8-byte block and round: 8 key reads + 8 table reads + 8 key reads;
    // plus the 8 reads of the final key layer.  All 1-byte accesses.
    const key_array key = make_key(9);
    const safer_k64 cipher({key.data(), key.size()}, 6);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    std::byte block[8] = {};
    cipher.encrypt_block(mem, block);
    const auto reads = sys.data_stats().reads;
    EXPECT_EQ(reads.accesses[memsim::size_bucket(1)], 6u * 24 + 8);
    EXPECT_EQ(sys.data_stats().writes.total_accesses(), 0u);
}

TEST(SaferSimplified, RoundTrip) {
    const key_array key = make_key(10);
    const safer_simplified cipher({key.data(), key.size()});
    expect_round_trip(cipher, 11);
}

TEST(SaferSimplified, MatchesPaperStructureTraffic) {
    // The simplified cipher does exactly one key read and one table read per
    // byte (paper §3.1) — 16 single-byte reads per 8-byte unit.
    const key_array key = make_key(12);
    const safer_simplified cipher({key.data(), key.size()});
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    std::byte block[8] = {};
    cipher.encrypt_block(mem, block);
    EXPECT_EQ(sys.data_stats().reads.accesses[memsim::size_bucket(1)], 16u);
    EXPECT_EQ(sys.data_stats().total_misses(),
              sys.data_stats().reads.total_misses());
}

TEST(SaferSimplified, ChangesEveryZeroBlock) {
    const key_array key = make_key(13);
    const safer_simplified cipher({key.data(), key.size()});
    memsim::direct_memory mem;
    std::byte block[8] = {};
    cipher.encrypt_block(mem, block);
    std::byte zero[8] = {};
    EXPECT_NE(std::memcmp(block, zero, 8), 0);
}

TEST(SaferSimplified, DiffersFromFullSafer) {
    const key_array key = make_key(14);
    const safer_k64 full({key.data(), key.size()});
    const safer_simplified simplified({key.data(), key.size()});
    memsim::direct_memory mem;
    std::byte a[8] = {}, b[8] = {};
    full.encrypt_block(mem, a);
    simplified.encrypt_block(mem, b);
    EXPECT_NE(std::memcmp(a, b, 8), 0);
}

TEST(SimpleCipher, RoundTrip) {
    const key_array key = make_key(15);
    const simple_cipher cipher({key.data(), key.size()});
    expect_round_trip(cipher, 16);
}

TEST(SimpleCipher, TouchesNoMemoryBeyondTheUnit) {
    // The defining property for the paper's §4.1 ablation: zero counted
    // memory accesses per block.
    const key_array key = make_key(17);
    const simple_cipher cipher({key.data(), key.size()});
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    std::byte block[8] = {};
    cipher.encrypt_block(mem, block);
    cipher.decrypt_block(mem, block);
    EXPECT_EQ(sys.data_stats().total_accesses(), 0u);
}

TEST(SimpleCipher, KeyDependence) {
    const key_array k1 = make_key(18);
    const key_array k2 = make_key(19);
    const simple_cipher c1({k1.data(), k1.size()});
    const simple_cipher c2({k2.data(), k2.size()});
    memsim::direct_memory mem;
    std::byte b1[8] = {}, b2[8] = {};
    c1.encrypt_block(mem, b1);
    c2.encrypt_block(mem, b2);
    EXPECT_NE(std::memcmp(b1, b2, 8), 0);
}

TEST(NullCipher, IdentityAndConceptConformance) {
    static_assert(block_cipher<null_cipher>);
    static_assert(block_cipher<safer_k64>);
    static_assert(block_cipher<safer_simplified>);
    static_assert(block_cipher<simple_cipher>);
    null_cipher cipher;
    memsim::direct_memory mem;
    std::byte block[8] = {std::byte{1}, std::byte{2}, std::byte{3},
                          std::byte{4}, std::byte{5}, std::byte{6},
                          std::byte{7}, std::byte{8}};
    std::byte original[8];
    std::memcpy(original, block, 8);
    cipher.encrypt_block(mem, block);
    EXPECT_EQ(std::memcmp(block, original, 8), 0);
}

// Parameterized property sweep: every cipher must be a bijection on blocks
// (no two plaintexts map to the same ciphertext under a fixed key).
class CipherBijection : public ::testing::TestWithParam<int> {};

TEST_P(CipherBijection, DistinctPlaintextsGiveDistinctCiphertexts) {
    const key_array key = make_key(20);
    memsim::direct_memory mem;
    std::set<std::uint64_t> outputs;
    constexpr int samples = 512;
    auto run = [&](const auto& cipher) {
        outputs.clear();
        for (int i = 0; i < samples; ++i) {
            std::byte block[8] = {};
            std::memcpy(block, &i, sizeof i);
            cipher.encrypt_block(mem, block);
            std::uint64_t v;
            std::memcpy(&v, block, 8);
            outputs.insert(v);
        }
        EXPECT_EQ(outputs.size(), static_cast<std::size_t>(samples));
    };
    switch (GetParam()) {
        case 0: run(safer_k64({key.data(), key.size()})); break;
        case 1: run(safer_simplified({key.data(), key.size()})); break;
        case 2: run(simple_cipher({key.data(), key.size()})); break;
        default: FAIL();
    }
}

INSTANTIATE_TEST_SUITE_P(AllCiphers, CipherBijection,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace ilp::crypto
