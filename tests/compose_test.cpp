// Composition-legality engine tests: graph hashing, the symbolic composer's
// verdicts (rules, offenders, trailer obligations, boundary geometry), the
// verdict-caching gate, and the full `--compose` sweep the CI job runs.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "analysis/compose.h"
#include "analysis/gate.h"
#include "analysis/graph.h"
#include "analysis/registry.h"
#include "app/compose_models.h"
#include "app/compose_sweep.h"
#include "core/stage.h"
#include "crypto/aead.h"
#include "crypto/safer_k64.h"

namespace {

using namespace ilp;

using enc = core::encrypt_stage<crypto::safer_k64>;
using aead_enc = core::aead_encrypt_stage<crypto::aead_cipher>;

// A linear send-side graph: encrypt then checksum-tap, one 1 KiB part.
analysis::stage_graph linear_graph() {
    analysis::stage_graph g;
    g.name = "test/linear";
    g.site = "tests/compose_test.cpp";
    g.side = analysis::graph_side::send;
    g.kind = analysis::pipeline_kind::fused;
    g.nodes.push_back({enc::footprint_decl, 0});
    g.nodes.push_back({core::checksum_tap8::footprint_decl, 0});
    g.parts = {{0, 1024}};
    return g;
}

bool has_rule(const analysis::verdict& v, const char* rule) {
    for (const analysis::finding& f : v.findings) {
        if (std::string(f.rule) == rule) return true;
    }
    return false;
}

TEST(GraphHash, DeterministicAndSensitiveToEveryVerdictInput) {
    const analysis::stage_graph a = linear_graph();
    const analysis::stage_graph b = linear_graph();
    EXPECT_EQ(analysis::graph_hash(a), analysis::graph_hash(b));

    // The epoch-relevant node parameter is part of the hash: a rekey must
    // produce a new cache key.
    analysis::stage_graph rekeyed = linear_graph();
    rekeyed.nodes[0].param = 1;
    EXPECT_NE(analysis::graph_hash(a), analysis::graph_hash(rekeyed));

    // So are the framing facts and the geometry.
    analysis::stage_graph framed = linear_graph();
    framed.trailer_reserved_bytes = 8;
    EXPECT_NE(analysis::graph_hash(a), analysis::graph_hash(framed));
    analysis::stage_graph recut = linear_graph();
    recut.parts = {{0, 512}, {512, 512}};
    EXPECT_NE(analysis::graph_hash(a), analysis::graph_hash(recut));
    analysis::stage_graph flipped = linear_graph();
    flipped.side = analysis::graph_side::receive;
    EXPECT_NE(analysis::graph_hash(a), analysis::graph_hash(flipped));
}

TEST(Composer, CyclicGraphIsRejectedUnderR4) {
    analysis::stage_graph g = linear_graph();
    g.edges = {{0, 1}, {1, 0}};
    EXPECT_FALSE(analysis::topo_order(g).has_value());

    const analysis::verdict v = analysis::compose_and_check(g);
    EXPECT_FALSE(v.legal);
    EXPECT_EQ(v.rule, "R4-footprint");
    EXPECT_EQ(v.offender, "graph cycle");
}

TEST(Composer, ExplicitDagFoldsInTopologicalOrder) {
    // Diamond declared in scrambled node order: tap8 first, encrypt last,
    // with edges forcing encrypt -> {tap8, tap2} -> opaque.
    analysis::stage_graph g;
    g.name = "test/diamond";
    g.site = "tests/compose_test.cpp";
    g.nodes.push_back({core::checksum_tap8::footprint_decl, 0});  // 0
    g.nodes.push_back({core::checksum_tap2::footprint_decl, 0});  // 1
    g.nodes.push_back({core::opaque_stage::footprint_decl, 0});   // 2
    g.nodes.push_back({enc::footprint_decl, 0});                  // 3
    g.edges = {{3, 0}, {3, 1}, {0, 2}, {1, 2}};
    g.parts = {{0, 1024}};

    const analysis::verdict v = analysis::compose_and_check(g);
    EXPECT_TRUE(v.legal) << v.rule << " on " << v.offender;
    ASSERT_EQ(v.composed.stages.size(), 4u);
    EXPECT_STREQ(v.composed.stages[0].name, "encrypt");
    EXPECT_STREQ(v.composed.stages[3].name, "opaque");
    // Le folds every unit: lcm(8, 8, 2, 1) over the base 8.
    EXPECT_EQ(v.composed.exchange_unit_bytes, 8u);
}

TEST(Composer, TrailerObligationMustMatchReservationExactly) {
    // AEAD obliges 8 trailer bytes; the v3 framing reserves 8: legal.
    analysis::stage_graph g = linear_graph();
    g.nodes[0] = {aead_enc::footprint_decl, 0};
    g.trailer_reserved_bytes = 8;
    EXPECT_TRUE(analysis::compose_and_check(g).legal);

    // Obligation without a reservation: the tag has nowhere to go.
    g.trailer_reserved_bytes = 0;
    analysis::verdict v = analysis::compose_and_check(g);
    EXPECT_FALSE(v.legal);
    EXPECT_EQ(v.rule, "R2-header-size");
    EXPECT_EQ(v.offender, "aead_encrypt × framing");

    // Reservation without an obliger: uninitialized bytes on the wire.
    analysis::stage_graph plain = linear_graph();
    plain.trailer_reserved_bytes = 8;
    v = analysis::compose_and_check(plain);
    EXPECT_FALSE(v.legal);
    EXPECT_EQ(v.rule, "R2-header-size");
    EXPECT_EQ(v.offender, "framing × (no trailer-emitting stage)");

    // Zero-length trailer on both sides is a match, not a degenerate case:
    // no R2 finding at all.
    const analysis::verdict zero = analysis::compose_and_check(linear_graph());
    EXPECT_TRUE(zero.legal);
    EXPECT_FALSE(has_rule(zero, "R2-header-size"));
}

TEST(Composer, PartCutExactlyOnGranularityBoundaryIsLegal) {
    // Le = 8 for encrypt+tap8.  A cut exactly on the unit boundary passes;
    // moving the same cut one byte off straddles a cipher block and fails
    // both R3 clauses (torn length, misaligned offset).
    analysis::stage_graph g = linear_graph();
    g.parts = {{0, 8}, {8, 1016}};
    EXPECT_TRUE(analysis::compose_and_check(g).legal);

    g.parts = {{0, 7}, {7, 1017}};
    const analysis::verdict v = analysis::compose_and_check(g);
    EXPECT_FALSE(v.legal);
    EXPECT_EQ(v.rule, "R3-granularity");
    EXPECT_TRUE(has_rule(v, "R3-granularity"));
}

TEST(Gate, CachesVerdictsByHashAndRekeyInvalidates) {
    analysis::legality_gate gate;
    const analysis::stage_graph g = linear_graph();

    const analysis::verdict& first = gate.check(g);
    EXPECT_TRUE(first.legal);
    EXPECT_EQ(gate.stats().checks, 1u);
    EXPECT_EQ(gate.stats().cache_hits, 0u);
    EXPECT_EQ(gate.cached_verdicts(), 1u);

    const analysis::verdict& again = gate.check(g);
    EXPECT_EQ(&again, &first);  // served from the cache, same storage
    EXPECT_EQ(gate.stats().checks, 2u);
    EXPECT_EQ(gate.stats().cache_hits, 1u);
    EXPECT_EQ(gate.cached_verdicts(), 1u);

    // A rekey changes the epoch-relevant node param: new hash, fresh
    // compose_and_check — the cached verdict cannot outlive the key.
    analysis::stage_graph rekeyed = linear_graph();
    rekeyed.nodes[0].param = 1;
    const analysis::verdict& fresh = gate.check(rekeyed);
    EXPECT_TRUE(fresh.legal);
    EXPECT_NE(fresh.hash, first.hash);
    EXPECT_EQ(gate.stats().checks, 3u);
    EXPECT_EQ(gate.stats().cache_hits, 1u);
    EXPECT_EQ(gate.cached_verdicts(), 2u);

    EXPECT_EQ(gate.stats().fallbacks, 0u);
    gate.count_fallback();
    EXPECT_EQ(gate.stats().fallbacks, 1u);
}

TEST(RegistryDeathTest, DuplicateRegistrationAborts) {
    analysis::pipeline_registry registry;
    analysis::pipeline_model m;
    m.name = "dup";
    m.site = "tests/compose_test.cpp:first";
    m.stages = {enc::footprint_decl};
    m.exchange_unit_bytes = 8;
    (void)registry.add(m);
    analysis::pipeline_model second = m;
    second.site = "tests/compose_test.cpp:second";
    EXPECT_DEATH((void)registry.add(second),
                 "duplicate pipeline registration 'dup'");
}

// An ad-hoc stage with no footprint declaration: composing it still works,
// but the conservative default must be flagged so "legal" is not mistaken
// for "verified".
struct undeclared_test_stage {
    static constexpr std::size_t unit_bytes = 8;
    static constexpr bool ordering_constrained = false;
};

TEST(Composer, UndeclaredStageDrawsConservativeFootprintWarning) {
    const analysis::footprint fp =
        analysis::footprint_of<undeclared_test_stage>();
    EXPECT_FALSE(fp.declared);

    analysis::stage_graph g = linear_graph();
    g.nodes.push_back({fp, 0});
    const analysis::verdict v = analysis::compose_and_check(g);
    EXPECT_TRUE(v.legal);  // warning, not error: the composition still runs
    EXPECT_TRUE(has_rule(v, "W4-conservative-footprint"));
}

TEST(FlowGraphs, EngineBuildersMatchTheGateContract) {
    const app::secure_params classic{};
    app::secure_params secure;
    secure.enabled = true;
    secure.flow_secret = 1;

    // The plain flow graphs are legal on both sides.
    EXPECT_TRUE(analysis::compose_and_check(
                    app::flow_send_graph<crypto::safer_k64>(
                        classic, app::compose_tap::none, 0))
                    .legal);
    EXPECT_TRUE(analysis::compose_and_check(
                    app::flow_receive_graph<crypto::safer_k64>(
                        classic, app::compose_tap::none, 0))
                    .legal);

    // crc32 is ordering-constrained: illegal under the B,C,A send schedule,
    // legal on the linear receive side — the canonical demotion case.
    const analysis::verdict send = analysis::compose_and_check(
        app::flow_send_graph<crypto::safer_k64>(classic,
                                                app::compose_tap::crc32, 0));
    EXPECT_FALSE(send.legal);
    EXPECT_EQ(send.rule, "R1-ordering");
    EXPECT_EQ(send.offender, "crc32_tap × B,C,A schedule");
    EXPECT_TRUE(analysis::compose_and_check(
                    app::flow_receive_graph<crypto::safer_k64>(
                        classic, app::compose_tap::crc32, 0))
                    .legal);

    // v3 framing requires the AEAD trailer obligation.
    EXPECT_TRUE(analysis::compose_and_check(
                    app::flow_send_graph<crypto::aead_cipher>(
                        secure, app::compose_tap::none, 0))
                    .legal);
    const analysis::verdict unfilled = analysis::compose_and_check(
        app::flow_send_graph<crypto::safer_k64>(secure,
                                                app::compose_tap::none, 0));
    EXPECT_FALSE(unfilled.legal);
    EXPECT_EQ(unfilled.rule, "R2-header-size");
}

TEST(ComposeSweep, CoversTheSpaceWithZeroMiscomputations) {
    const app::compose_sweep_report rep = app::run_compose_sweep();
    EXPECT_GE(rep.cases.size(), 100u);
    EXPECT_EQ(rep.miscomputations, 0u);
    EXPECT_EQ(rep.unexplained_rejections, 0u);
    EXPECT_GT(rep.accepted, 0u);
    EXPECT_GT(rep.rejected, 0u);
    EXPECT_GT(rep.executed, 0u);
    EXPECT_TRUE(rep.ok());
    for (const app::compose_case& c : rep.cases) {
        EXPECT_TRUE(c.ok) << c.name << ": " << c.status;
    }
}

}  // namespace
