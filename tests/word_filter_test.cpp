// Dedicated word-filter tests: full encrypt and decrypt chains, the
// marshalling filter, position flags, and equivalence with the fused
// pipeline in both directions.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "core/word_filter.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "util/rng.h"

namespace ilp::core {
namespace {

using memsim::direct_memory;

std::array<std::byte, 8> key() {
    std::array<std::byte, 8> k;
    rng r(1);
    r.fill(k);
    return k;
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng r(seed);
    r.fill(v);
    return v;
}

TEST(WordFilter, EncryptThenDecryptChainRestoresData) {
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    const auto payload = random_bytes(96, 2);
    const direct_memory mem;

    byte_buffer wire(96);
    {
        cipher_word_filter<direct_memory, crypto::safer_simplified, true> enc(
            cipher);
        sink_word_filter<direct_memory> sink(wire.span());
        enc.set_next(&sink);
        feed_words(mem, enc, payload);
    }
    EXPECT_NE(std::memcmp(wire.data(), payload.data(), 96), 0);

    byte_buffer restored(96);
    {
        cipher_word_filter<direct_memory, crypto::safer_simplified, false> dec(
            cipher);
        sink_word_filter<direct_memory> sink(restored.span());
        dec.set_next(&sink);
        feed_words(mem, dec, wire.span());
    }
    EXPECT_EQ(std::memcmp(restored.data(), payload.data(), 96), 0);
}

TEST(WordFilter, XdrFilterMatchesFusedMarshalling) {
    // host ints -> wire through the word-filter chain vs the fused gather.
    std::vector<std::uint32_t> values(32);
    rng r(3);
    for (auto& v : values) v = r.next_u32();
    const std::span<const std::byte> as_bytes{
        reinterpret_cast<const std::byte*>(values.data()), values.size() * 4};
    const direct_memory mem;

    byte_buffer via_filter(as_bytes.size());
    {
        xdr_word_filter<direct_memory> marshal;
        sink_word_filter<direct_memory> sink(via_filter.span());
        marshal.set_next(&sink);
        feed_words(mem, marshal, as_bytes);
    }

    byte_buffer via_gather(as_bytes.size());
    gather_source src;
    src.add(as_bytes, segment_op::xdr_words);
    fused_pipeline<> loop;
    loop.run(mem, src, span_dest(via_gather.span()));

    EXPECT_EQ(std::memcmp(via_filter.data(), via_gather.data(),
                          as_bytes.size()),
              0);
}

TEST(WordFilter, FullSendChainMatchesFusedPipeline) {
    // marshal -> encrypt -> checksum -> sink vs the fused equivalent.
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    std::vector<std::uint32_t> values(64);
    rng r(4);
    for (auto& v : values) v = r.next_u32();
    const std::span<const std::byte> app_bytes{
        reinterpret_cast<const std::byte*>(values.data()), values.size() * 4};
    const direct_memory mem;

    byte_buffer via_filter(app_bytes.size());
    checksum::inet_accumulator filter_acc;
    {
        xdr_word_filter<direct_memory> marshal;
        cipher_word_filter<direct_memory, crypto::safer_simplified, true> enc(
            cipher);
        checksum_word_filter<direct_memory> sum(filter_acc);
        sink_word_filter<direct_memory> sink(via_filter.span());
        marshal.set_next(&enc);
        enc.set_next(&sum);
        sum.set_next(&sink);
        feed_words(mem, marshal, app_bytes);
    }

    byte_buffer via_fused(app_bytes.size());
    checksum::inet_accumulator fused_acc;
    {
        gather_source src;
        src.add(app_bytes, segment_op::xdr_words);
        encrypt_stage<crypto::safer_simplified> enc(cipher);
        checksum_tap8 tap(fused_acc);
        auto pipe = make_pipeline(enc, tap);
        pipe.run(mem, src, span_dest(via_fused.span()));
    }

    EXPECT_EQ(std::memcmp(via_filter.data(), via_fused.data(),
                          app_bytes.size()),
              0);
    EXPECT_EQ(filter_acc.finish(), fused_acc.finish());
}

TEST(WordFilter, CipherFilterFlagsPositions) {
    // The paper's spec: a filter "indicates, in case of larger data units,
    // the position of the output word in this data unit using a flag."
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    const auto payload = random_bytes(32, 5);
    const direct_memory mem;

    struct probe final : word_filter<direct_memory> {
        std::vector<std::pair<int, int>> seen;  // (index, unit_words)
        void put(const direct_memory&, filter_word w) override {
            seen.emplace_back(w.index, w.unit_words);
        }
    } probe_filter;

    cipher_word_filter<direct_memory, crypto::safer_simplified, true> enc(
        cipher);
    enc.set_next(&probe_filter);
    feed_words(mem, enc, payload);

    ASSERT_EQ(probe_filter.seen.size(), 8u);  // 32 bytes = 8 words
    for (std::size_t i = 0; i < probe_filter.seen.size(); ++i) {
        EXPECT_EQ(probe_filter.seen[i].first, static_cast<int>(i % 2));
        EXPECT_EQ(probe_filter.seen[i].second, 2);  // 8-byte unit = 2 words
    }
}

TEST(WordFilter, SimulatedChainMatchesAccessShape) {
    // The chain reads words once (4-byte loads), writes words once (4-byte
    // stores); the cipher's table traffic rides on top.
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    const auto payload = random_bytes(256, 6);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);

    byte_buffer wire(256);
    cipher_word_filter<memsim::sim_memory, crypto::safer_simplified, true>
        enc(cipher);
    sink_word_filter<memsim::sim_memory> sink(wire.span());
    enc.set_next(&sink);
    feed_words(mem, enc, payload);

    const auto& stats = sys.data_stats();
    EXPECT_EQ(stats.reads.accesses[memsim::size_bucket(4)], 64u);   // loads
    EXPECT_EQ(stats.writes.accesses[memsim::size_bucket(4)], 64u);  // stores
    EXPECT_EQ(stats.reads.accesses[memsim::size_bucket(1)],
              2u * 256);  // key + table per byte
}

}  // namespace
}  // namespace ilp::core
