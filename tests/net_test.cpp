// Tests for the datagram substrate: delivery, latency, gather sends,
// deterministic fault injection and crossing accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "memsim/configs.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "util/rng.h"

namespace ilp::net {
namespace {

using memsim::direct_memory;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 0) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<std::byte>((seed + i) & 0xff);
    }
    return v;
}

TEST(Datagram, DeliversAfterLatency) {
    virtual_clock clock;
    datagram_pipe pipe(clock, 50);
    std::vector<std::vector<std::byte>> received;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        received.emplace_back(p.begin(), p.end());
    });
    const auto msg = pattern(100);
    pipe.send(direct_memory{}, msg);
    EXPECT_TRUE(received.empty());  // not yet due
    clock.advance(49);
    EXPECT_TRUE(received.empty());
    clock.advance(1);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0], msg);
    EXPECT_EQ(pipe.stats().packets_delivered, 1u);
}

TEST(Datagram, GatherSendConcatenatesParts) {
    virtual_clock clock;
    datagram_pipe pipe(clock, 0);
    std::vector<std::byte> received;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        received.assign(p.begin(), p.end());
    });
    const auto a = pattern(8, 1);
    const auto b = pattern(16, 2);
    const auto c = pattern(4, 3);
    pipe.send(direct_memory{},
              {std::span<const std::byte>(a), std::span<const std::byte>(b),
               std::span<const std::byte>(c)});
    clock.advance(1);
    ASSERT_EQ(received.size(), 28u);
    EXPECT_EQ(std::memcmp(received.data(), a.data(), 8), 0);
    EXPECT_EQ(std::memcmp(received.data() + 8, b.data(), 16), 0);
    EXPECT_EQ(std::memcmp(received.data() + 24, c.data(), 4), 0);
}

TEST(Datagram, PreservesOrderWithoutFaults) {
    virtual_clock clock;
    datagram_pipe pipe(clock, 10);
    std::vector<int> order;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        order.push_back(std::to_integer<int>(p[0]));
    });
    for (int i = 0; i < 5; ++i) {
        const std::byte b[1] = {static_cast<std::byte>(i)};
        pipe.send(direct_memory{}, std::span<const std::byte>(b));
        clock.advance(1);
    }
    clock.advance(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Datagram, DropInjection) {
    virtual_clock clock;
    fault_config faults;
    faults.drop_probability = 1.0;
    datagram_pipe pipe(clock, 0, faults);
    int delivered = 0;
    pipe.set_receiver([&](std::span<const std::byte>) { ++delivered; });
    pipe.send(direct_memory{}, pattern(10));
    clock.advance(10);
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(pipe.stats().packets_dropped, 1u);
    EXPECT_EQ(pipe.stats().packets_sent, 1u);
}

TEST(Datagram, DuplicateInjection) {
    virtual_clock clock;
    fault_config faults;
    faults.duplicate_probability = 1.0;
    datagram_pipe pipe(clock, 0, faults);
    int delivered = 0;
    pipe.set_receiver([&](std::span<const std::byte>) { ++delivered; });
    pipe.send(direct_memory{}, pattern(10));
    clock.advance(10);
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(pipe.stats().packets_duplicated, 1u);
}

TEST(Datagram, CorruptInjectionFlipsExactlyOneBit) {
    virtual_clock clock;
    fault_config faults;
    faults.corrupt_probability = 1.0;
    datagram_pipe pipe(clock, 0, faults);
    const auto msg = pattern(64);
    std::vector<std::byte> received;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        received.assign(p.begin(), p.end());
    });
    pipe.send(direct_memory{}, msg);
    clock.advance(10);
    ASSERT_EQ(received.size(), msg.size());
    int bit_diffs = 0;
    for (std::size_t i = 0; i < msg.size(); ++i) {
        bit_diffs += std::popcount(std::to_integer<unsigned>(received[i] ^ msg[i]));
    }
    EXPECT_EQ(bit_diffs, 1);
    EXPECT_EQ(pipe.stats().packets_corrupted, 1u);
}

TEST(Datagram, ReorderInjectionSwapsAdjacentPackets) {
    virtual_clock clock;
    fault_config faults;
    faults.reorder_probability = 0.5;
    faults.seed = 7;
    datagram_pipe pipe(clock, 10, faults);
    std::vector<int> order;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        order.push_back(std::to_integer<int>(p[0]));
    });
    for (int i = 0; i < 20; ++i) {
        const std::byte b[1] = {static_cast<std::byte>(i)};
        pipe.send(direct_memory{}, std::span<const std::byte>(b));
        clock.advance(2);
    }
    clock.advance(1000);
    ASSERT_EQ(order.size(), 20u);
    EXPECT_GT(pipe.stats().packets_reordered, 0u);
    // All packets arrive, some out of order.
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> expected(20);
    for (int i = 0; i < 20; ++i) expected[i] = i;
    EXPECT_EQ(sorted, expected);
    EXPECT_NE(order, expected);
}

TEST(Datagram, FaultInjectionIsDeterministic) {
    auto run = [] {
        virtual_clock clock;
        fault_config faults;
        faults.drop_probability = 0.3;
        faults.seed = 99;
        datagram_pipe pipe(clock, 0, faults);
        int delivered = 0;
        pipe.set_receiver([&](std::span<const std::byte>) { ++delivered; });
        for (int i = 0; i < 100; ++i) {
            pipe.send(direct_memory{}, pattern(8));
            clock.advance(1);
        }
        return delivered;
    };
    const int first = run();
    EXPECT_EQ(first, run());
    EXPECT_GT(first, 40);
    EXPECT_LT(first, 95);
}

TEST(Datagram, SystemCopyIsCounted) {
    virtual_clock clock;
    datagram_pipe pipe(clock, 0);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    const auto msg = pattern(128);
    pipe.send(mem, msg);
    // Send-side system copy: 128 bytes read + written in 8-byte units.
    EXPECT_EQ(sys.data_stats().reads.total_bytes(), 128u);
    EXPECT_EQ(sys.data_stats().writes.total_bytes(), 128u);
    EXPECT_EQ(pipe.stats().send_crossings, 1u);
}

TEST(DuplexLink, ForwardAndReverseAreIndependent) {
    virtual_clock clock;
    duplex_link link(clock, 5);
    int fwd = 0, rev = 0;
    link.forward().set_receiver([&](std::span<const std::byte>) { ++fwd; });
    link.reverse().set_receiver([&](std::span<const std::byte>) { ++rev; });
    link.forward().send(direct_memory{}, pattern(10));
    link.forward().send(direct_memory{}, pattern(10));
    link.reverse().send(direct_memory{}, pattern(10));
    clock.advance(10);
    EXPECT_EQ(fwd, 2);
    EXPECT_EQ(rev, 1);
}

}  // namespace
}  // namespace ilp::net
